# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-regress bench-regress-smoke chaos chaos-smoke serve serve-soak serve-smoke stream stream-smoke exact-smoke recovery-smoke native-smoke net-smoke shard-smoke experiments verify examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-regress:
	$(PYTHON) benchmarks/regression.py --check

bench-regress-smoke:
	$(PYTHON) benchmarks/regression.py --check --smoke
	REPRO_BACKEND=shm $(PYTHON) benchmarks/regression.py --check --smoke
	$(MAKE) chaos-smoke

chaos:
	$(PYTHON) -m repro chaos

chaos-smoke:
	timeout 300 $(PYTHON) -m repro chaos --smoke

serve:
	$(PYTHON) -m repro serve

serve-soak:
	timeout 600 $(PYTHON) -m repro serve --soak 200 --overload 2 --chaos

serve-smoke:
	$(PYTHON) -m pytest -m serve -q
	REPRO_BACKEND=shm timeout 300 $(PYTHON) -m repro serve --soak 200 --overload 2

stream:
	$(PYTHON) -m repro stream

stream-smoke:
	$(PYTHON) -m pytest -m stream -q
	timeout 300 $(PYTHON) -m repro stream --smoke

exact-smoke:
	timeout 480 $(PYTHON) -m pytest -m exact -q

recovery-smoke:
	timeout 480 $(PYTHON) -m pytest -m recovery -q

# Native kernel tier: the impl x backend bitwise matrix plus the
# per-kernel report/bench.  Runs with or without numba installed — the
# matrix forces the pure-Python loop bodies when numba is absent, and
# the CLI reports fallback status honestly either way.
native-smoke:
	timeout 480 $(PYTHON) -m pytest -m native -q
	timeout 300 $(PYTHON) -m repro kernels --n 20000

# Network front: framing/client/quota/failover tests plus a live
# 3-daemon router soak that SIGKILLs the session-owning daemon midway
# and exits nonzero if a single acked request is lost.
net-smoke:
	timeout 480 $(PYTHON) -m pytest -m net -q
	timeout 300 $(PYTHON) -m repro route --daemons 3 --requests 30 --kill-one --n 120

# Sharded matching: the differential matrix (sharded == serial bitwise
# for every generator family and shard count) plus a live CLI check on
# the default chunk grid.  Hard timeouts because the reconcile rounds
# are bounded by construction — a hang is itself a bug.
shard-smoke:
	timeout 480 $(PYTHON) -m pytest -m shard -q
	timeout 300 $(PYTHON) -m repro shard --check

experiments:
	$(PYTHON) -m repro.experiments all --out results.json

verify:
	$(PYTHON) -m repro.experiments verify

examples:
	$(PYTHON) examples/quickstart.py 5000 4
	$(PYTHON) examples/jump_start_exact.py 10000 4
	$(PYTHON) examples/adversarial_karp_sipser.py 800 8
	$(PYTHON) examples/rank_deficient_analysis.py 3000 2
	$(PYTHON) examples/parallel_scaling_demo.py venturiLevel3 10000
	$(PYTHON) examples/undirected_matching.py 2000 6
	$(PYTHON) examples/quality_certificates.py 3000 4
	$(PYTHON) examples/block_triangular.py 2000 2

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
