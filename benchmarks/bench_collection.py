"""Section 4.1.1 bench — guarantee check over a sampled collection.

The paper sweeps 743 fully indecomposable UFL matrices; this bench samples
a small population of the synthetic equivalents and asserts both
guarantees hold with 10 scaling iterations (the paper's protocol, which
passed 706/743 directly and the rest with 10 more iterations).
"""

import pytest

from repro import one_sided_match, two_sided_match
from repro.constants import ONE_SIDED_GUARANTEE, TWO_SIDED_GUARANTEE
from repro.graph import fully_indecomposable


def test_bench_collection_sweep(benchmark):
    def sweep():
        results = []
        for seed in range(8):
            n = 1000 + 257 * seed
            g = fully_indecomposable(n, 3.0 + (seed % 4), seed=seed)
            one = one_sided_match(g, 10, seed=seed).cardinality / n
            two = two_sided_match(g, 10, seed=seed).cardinality / n
            results.append((one, two))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ok_one = sum(q1 >= ONE_SIDED_GUARANTEE for q1, _ in results)
    ok_two = sum(q2 >= TWO_SIDED_GUARANTEE for _, q2 in results)
    # Allow at most one failure per guarantee (paper: 37/743 needed more
    # iterations); typically all pass.
    assert ok_one >= len(results) - 1
    assert ok_two >= len(results) - 1


def test_bench_single_matrix_guarantee(benchmark):
    g = fully_indecomposable(2000, 4.0, seed=0)
    res = benchmark(lambda: two_sided_match(g, 10, seed=1))
    assert res.cardinality / 2000 >= TWO_SIDED_GUARANTEE - 0.01
