"""Table 2 bench — qualities on sprank-deficient Erdős–Rényi matrices.

Shape assertions mirror the paper's reading: more scaling iterations help
both heuristics; TwoSided dominates OneSided at every (d, iter) cell; low
d (high deficiency) is the easier case.
"""

import pytest

from repro import one_sided_match, sprank, two_sided_match
from repro.graph import sprand
from repro.scaling import scale_sinkhorn_knopp

N = 10_000


@pytest.fixture(scope="module", params=[2, 5])
def er_instance(request):
    d = request.param
    g = sprand(N, float(d), seed=0)
    return d, g, sprank(g)


def test_bench_one_sided(benchmark, er_instance):
    d, g, maximum = er_instance
    scaling = scale_sinkhorn_knopp(g, 5)
    res = benchmark(lambda: one_sided_match(g, scaling=scaling, seed=0))
    assert res.cardinality / maximum > 0.60


def test_bench_two_sided(benchmark, er_instance):
    d, g, maximum = er_instance
    scaling = scale_sinkhorn_knopp(g, 5)
    res = benchmark(lambda: two_sided_match(g, scaling=scaling, seed=0))
    assert res.cardinality / maximum > 0.82


def test_bench_table2_cell_shape(benchmark):
    """Full quality grid at reduced size; assert the paper's orderings."""

    def grid():
        out = {}
        for d in (2, 5):
            g = sprand(N, float(d), seed=0)
            maximum = sprank(g)
            for iters in (0, 10):
                sc = scale_sinkhorn_knopp(g, iters)
                one = one_sided_match(g, scaling=sc, seed=1).cardinality
                two = two_sided_match(g, scaling=sc, seed=1).cardinality
                out[(d, iters)] = (one / maximum, two / maximum)
        return out

    out = benchmark.pedantic(grid, rounds=1, iterations=1)
    for key, (one_q, two_q) in out.items():
        assert two_q > one_q, key                 # TwoSided dominates
    assert out[(2, 10)][0] > out[(2, 0)][0]       # iterations help (d=2)
    assert out[(5, 10)][0] > out[(5, 0)][0]       # iterations help (d=5)
    assert out[(2, 10)][1] > out[(5, 10)][1]      # high deficiency easier
