"""Figure 5 bench — qualities across the suite at 0/1/5 iterations.

Asserts the guarantees line up as in the paper's Figure 5: with 5 scaling
iterations OneSided clears 0.632 and TwoSided clears (near) 0.866 on
representative instances; with 0 iterations there is no guarantee and
quality visibly drops.
"""

import pytest

from repro import one_sided_match, sprank, two_sided_match
from repro.constants import ONE_SIDED_GUARANTEE, TWO_SIDED_GUARANTEE
from repro.graph import suite_instance
from repro.scaling import scale_sinkhorn_knopp

INSTANCES = ("cage15", "kkt_power", "venturiLevel3")


@pytest.fixture(scope="module", params=INSTANCES)
def instance(request):
    g = suite_instance(request.param, n=4_000, seed=0)
    return request.param, g, sprank(g)


def test_bench_one_sided_quality_5_iters(benchmark, instance):
    name, g, maximum = instance
    scaling = scale_sinkhorn_knopp(g, 5)
    res = benchmark(lambda: one_sided_match(g, scaling=scaling, seed=1))
    assert res.cardinality / maximum >= ONE_SIDED_GUARANTEE - 0.02, name


def test_bench_two_sided_quality_5_iters(benchmark, instance):
    name, g, maximum = instance
    scaling = scale_sinkhorn_knopp(g, 5)
    res = benchmark(lambda: two_sided_match(g, scaling=scaling, seed=1))
    assert res.cardinality / maximum >= TWO_SIDED_GUARANTEE - 0.03, name


def test_bench_fig5_iteration_sweep(benchmark):
    """0 vs 5 iterations on one instance: scaling lifts both heuristics
    (and OneSided never reaches TwoSided's level, as in the figure)."""
    g = suite_instance("cage15", n=4_000, seed=0)
    maximum = sprank(g)

    def sweep():
        out = {}
        for iters in (0, 5):
            sc = scale_sinkhorn_knopp(g, iters)
            out[iters] = (
                one_sided_match(g, scaling=sc, seed=1).cardinality / maximum,
                two_sided_match(g, scaling=sc, seed=1).cardinality / maximum,
            )
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert out[5][0] > out[0][0]          # scaling helps OneSided
    assert out[5][1] > out[0][1]          # ... and TwoSided
    assert out[5][1] > out[5][0]          # TwoSided above OneSided
    assert out[5][0] < 0.80               # paper: OneSided never hits 0.80
