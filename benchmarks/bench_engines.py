"""Engine ablation — the four KarpSipserMT implementations.

Same algorithm, four execution strategies (serial Python loop, round-
based vectorized numpy, simulated threads, real locked threads): all must
produce the same (maximum) cardinality; the vectorized engine is the
fast path in CPython.
"""

import pytest

from repro.core.karp_sipser_mt import (
    karp_sipser_mt,
    karp_sipser_mt_simulated,
    karp_sipser_mt_threaded,
    karp_sipser_mt_vectorized,
)
from repro.core.oneout import sample_uniform_one_out

N = 100_000


@pytest.fixture(scope="module")
def one_out_choices():
    return sample_uniform_one_out(N, seed=0)


@pytest.fixture(scope="module")
def reference_cardinality(one_out_choices):
    rc, cc = one_out_choices
    return karp_sipser_mt(rc, cc).cardinality


def test_bench_engine_serial(benchmark, one_out_choices, reference_cardinality):
    rc, cc = one_out_choices
    m = benchmark(karp_sipser_mt, rc, cc)
    assert m.cardinality == reference_cardinality


def test_bench_engine_vectorized(
    benchmark, one_out_choices, reference_cardinality
):
    rc, cc = one_out_choices
    m = benchmark(karp_sipser_mt_vectorized, rc, cc)
    assert m.cardinality == reference_cardinality


def test_bench_engine_threaded(
    benchmark, one_out_choices, reference_cardinality
):
    rc, cc = one_out_choices
    small_rc, small_cc = rc[:10_000] % 10_000, cc[:10_000] % 10_000
    reference = karp_sipser_mt(small_rc, small_cc).cardinality
    m = benchmark(karp_sipser_mt_threaded, small_rc, small_cc, 2)
    assert m.cardinality == reference


def test_bench_engine_simulated(benchmark, one_out_choices):
    rc, cc = one_out_choices
    small_rc, small_cc = rc[:3_000] % 3_000, cc[:3_000] % 3_000
    reference = karp_sipser_mt(small_rc, small_cc).cardinality
    m = benchmark(
        lambda: karp_sipser_mt_simulated(
            small_rc, small_cc, 4, policy="random", seed=0
        )
    )
    assert m.cardinality == reference
