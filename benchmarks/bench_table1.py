"""Table 1 bench — Karp-Sipser vs TwoSidedMatch on the adversarial family.

Regenerates the paper's Table 1 rows at a reduced size and benchmarks the
two contenders.  Shape assertions: Karp-Sipser's quality decays with k
while TwoSidedMatch with 10 scaling iterations stays near-perfect, and 5
iterations already beat KS (the paper's reading of the table).
"""

import pytest

from repro import karp_sipser, two_sided_match
from repro.graph import karp_sipser_adversarial
from repro.scaling import scale_sinkhorn_knopp

N = 1600
RUNS = 5


@pytest.fixture(scope="module")
def adversarial_k32():
    return karp_sipser_adversarial(N, 32)


def _min_quality_ks(graph, runs=RUNS):
    return min(karp_sipser(graph, seed=s).cardinality / N for s in range(runs))


def _min_quality_two(graph, scaling, runs=RUNS):
    return min(
        two_sided_match(graph, scaling=scaling, seed=s).cardinality / N
        for s in range(runs)
    )


def test_bench_karp_sipser_on_adversarial(benchmark, adversarial_k32):
    result = benchmark(karp_sipser, adversarial_k32, seed=0)
    assert result.cardinality <= N


def test_bench_two_sided_on_adversarial(benchmark, adversarial_k32):
    scaling = scale_sinkhorn_knopp(adversarial_k32, 10)
    result = benchmark(
        lambda: two_sided_match(adversarial_k32, scaling=scaling, seed=0)
    )
    assert result.cardinality / N > 0.9


def test_bench_table1_row_shape(benchmark):
    """One full Table-1 row (k=32): the headline comparison."""

    def row():
        g = karp_sipser_adversarial(N, 32)
        ks_q = _min_quality_ks(g, runs=2)
        s10 = scale_sinkhorn_knopp(g, 10)
        two_q10 = _min_quality_two(g, s10, runs=2)
        s0 = scale_sinkhorn_knopp(g, 0)
        two_q0 = _min_quality_two(g, s0, runs=2)
        return ks_q, two_q0, two_q10

    ks_q, two_q0, two_q10 = benchmark.pedantic(row, rounds=1, iterations=1)
    # Paper shape: unscaled TwoSided < KS < scaled TwoSided.
    assert two_q0 < ks_q < two_q10
    assert ks_q < 0.85          # KS far from optimal at k=32
    assert two_q10 > 0.93       # scaling rescues the heuristic


def test_bench_quality_decays_with_k(benchmark):
    """KS quality at k=2 vs k=32 (paper: 0.782 -> 0.670)."""

    def measure():
        q2 = _min_quality_ks(karp_sipser_adversarial(N, 2), runs=3)
        q32 = _min_quality_ks(karp_sipser_adversarial(N, 32), runs=3)
        return q2, q32

    q2, q32 = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert q32 < q2
