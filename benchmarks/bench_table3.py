"""Table 3 bench — sequential kernel times on suite instances.

Benchmarks the four kernels whose single-thread times Table 3 reports
(ScaleSK, OneSidedMatch, KarpSipserMT, TwoSidedMatch) on a regular and a
skewed instance, and asserts the paper's relative ordering: ScaleSK <
OneSidedMatch < TwoSidedMatch per instance, and errors shrink with
iterations.
"""

import pytest

from repro import one_sided_match, two_sided_match
from repro.core import scaled_col_choices, scaled_row_choices, karp_sipser_mt
from repro.scaling import scale_sinkhorn_knopp


def test_bench_scale_sk_one_iteration(benchmark, mesh_instance):
    res = benchmark(scale_sinkhorn_knopp, mesh_instance, 1)
    assert res.iterations == 1


def test_bench_one_sided_total(benchmark, mesh_instance):
    res = benchmark(lambda: one_sided_match(mesh_instance, 1, seed=0))
    assert res.cardinality > 0


def test_bench_karp_sipser_mt_kernel(benchmark, mesh_instance):
    scaling = scale_sinkhorn_knopp(mesh_instance, 1)
    rc = scaled_row_choices(mesh_instance, scaling.dr, scaling.dc, 0)
    cc = scaled_col_choices(mesh_instance, scaling.dr, scaling.dc, 1)
    m = benchmark(karp_sipser_mt, rc, cc)
    assert m.cardinality > 0


def test_bench_two_sided_total(benchmark, mesh_instance):
    res = benchmark(lambda: two_sided_match(mesh_instance, 1, seed=0))
    assert res.cardinality > 0


def test_bench_skewed_instance_two_sided(benchmark, skewed_instance):
    res = benchmark(lambda: two_sided_match(skewed_instance, 1, seed=0))
    assert res.cardinality > 0


def test_bench_table3_error_columns(benchmark, mesh_instance):
    """Scaling errors at 1/5/10 iterations decrease (the err columns)."""

    def errors():
        return [
            scale_sinkhorn_knopp(mesh_instance, it).error for it in (1, 5, 10)
        ]

    e1, e5, e10 = benchmark.pedantic(errors, rounds=1, iterations=1)
    assert e1 >= e5 >= e10
