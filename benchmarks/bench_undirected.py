"""Extension bench — the heuristics on undirected graphs.

Not a paper table (the conclusion sketches the extension); asserts the
natural analogues of the bipartite results: the 1-out Karp-Sipser
variant dominates the one-sided variant, and scaling lifts both.
"""

import pytest

from repro.graph import sprand_symmetric
from repro.core.undirected import (
    one_out_match_undirected,
    one_sided_match_undirected,
)
from repro.scaling.symmetric import scale_symmetric


@pytest.fixture(scope="module")
def sym_graph():
    return sprand_symmetric(5_000, 6.0, seed=0)


def test_bench_undirected_one_sided(benchmark, sym_graph):
    scaling = scale_symmetric(sym_graph, 5)
    m = benchmark(
        lambda: one_sided_match_undirected(sym_graph, scaling=scaling, seed=0)
    )
    assert m.cardinality > 0


def test_bench_undirected_one_out(benchmark, sym_graph):
    scaling = scale_symmetric(sym_graph, 5)
    m = benchmark(
        lambda: one_out_match_undirected(sym_graph, scaling=scaling, seed=0)
    )
    assert m.cardinality > 0


def test_bench_undirected_quality_shape(benchmark, sym_graph):
    def qualities():
        out = {}
        for iters in (0, 5):
            sc = scale_symmetric(sym_graph, iters)
            one = one_sided_match_undirected(
                sym_graph, scaling=sc, seed=1
            ).cardinality
            two = one_out_match_undirected(
                sym_graph, scaling=sc, seed=1
            ).cardinality
            out[iters] = (one, two)
        return out

    out = benchmark.pedantic(qualities, rounds=1, iterations=1)
    assert out[5][1] >= out[5][0]          # 1-out dominates one-sided
    assert out[5][1] >= out[0][1]          # scaling does not hurt
