"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper (see
DESIGN.md §4).  Benchmarks run at reduced sizes so the whole harness
finishes in minutes; the experiment CLI (``python -m repro.experiments``)
is the place for full-size runs.
"""

from __future__ import annotations

import pytest

from repro.graph import sprand, suite_instance


@pytest.fixture(scope="session")
def er_graph_d4():
    """Erdős–Rényi n=10k, d=4 — the workhorse instance."""
    return sprand(10_000, 4.0, seed=0)


@pytest.fixture(scope="session")
def mesh_instance():
    """A regular suite instance (good scaling in the paper)."""
    return suite_instance("venturiLevel3", n=20_000, seed=0)


@pytest.fixture(scope="session")
def skewed_instance():
    """The paper's worst-scaling instance class (torso1-like)."""
    return suite_instance("torso1", n=3_000, seed=0)
