"""Ablation benches for the design choices DESIGN.md calls out.

* Scaling method: Sinkhorn–Knopp vs Ruiz at equal iteration budgets
  (the paper picks SK; Knight–Ruiz–Uçar show it converges faster on
  unsymmetric matrices).
* Loop schedule: dynamic vs guided vs static on a degree-skewed instance
  (the paper uses dynamic,512 everywhere except guided for KarpSipserMT).
* Baselines: the cheap greedy heuristics and classic Karp–Sipser vs the
  paper's two heuristics on quality.
* Exact matcher choice: Hopcroft–Karp vs MC21 runtimes (both are
  provided; HK has the better worst case).
"""

import numpy as np
import pytest

from repro import (
    hopcroft_karp,
    karp_sipser,
    mc21,
    one_sided_match,
    sprank,
    two_sided_match,
)
from repro.graph import fully_indecomposable, sprand
from repro.matching.heuristics.greedy import (
    greedy_edge_matching,
    greedy_row_matching,
)
from repro.parallel import MachineModel
from repro.parallel.machine import ScheduleSpec
from repro.scaling import scale_ruiz, scale_sinkhorn_knopp


# ----------------------------------------------------------------------
# Scaling-method ablation
# ----------------------------------------------------------------------
def test_bench_sk_vs_ruiz_convergence(benchmark):
    g = fully_indecomposable(5_000, 4.0, seed=0)

    def run():
        sk = scale_sinkhorn_knopp(g, 10).error
        rz = scale_ruiz(g, 10).error
        return sk, rz

    sk_err, ruiz_err = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sk_err <= ruiz_err  # SK converges at least as fast (unsymmetric)


def test_bench_scale_sk_kernel(benchmark):
    g = sprand(20_000, 5.0, seed=0)
    res = benchmark(scale_sinkhorn_knopp, g, 5)
    assert res.iterations == 5


def test_bench_scale_ruiz_kernel(benchmark):
    g = sprand(20_000, 5.0, seed=0)
    res = benchmark(scale_ruiz, g, 5)
    assert res.iterations == 5


# ----------------------------------------------------------------------
# Schedule ablation (machine model on skewed work)
# ----------------------------------------------------------------------
def test_bench_schedule_ablation(benchmark, skewed_instance):
    model = MachineModel()
    work = skewed_instance.row_degrees().astype(float) + 4.0
    chunk = max(8, skewed_instance.nrows // 256)

    def speedups():
        return {
            "static": model.speedup(work, 16, schedule=ScheduleSpec.static()),
            "dynamic": model.speedup(
                work, 16, schedule=ScheduleSpec.dynamic(chunk)
            ),
            "guided": model.speedup(
                work, 16, schedule=ScheduleSpec.guided(max(4, chunk // 8))
            ),
        }

    out = benchmark.pedantic(speedups, rounds=1, iterations=1)
    # On skewed work, dynamic chunking beats one-shot static partitioning.
    assert out["dynamic"] > out["static"]


def test_bench_heavy_row_splitting(benchmark, skewed_instance):
    """The paper's §2.2 remark: splitting skewed rows across threads
    recovers the lost speedup on torso1-like instances."""
    import numpy as np

    model = MachineModel()
    work = skewed_instance.row_degrees().astype(float) + 4.0
    chunk = max(8, skewed_instance.nrows // 256)
    sched = ScheduleSpec.dynamic(chunk)

    def speedups():
        base = model.speedup(work, 16, schedule=sched)
        threshold = float(np.median(work) * chunk)
        split_work = MachineModel.split_heavy_items(work, threshold)
        return base, model.speedup(split_work, 16, schedule=sched)

    base, split = benchmark.pedantic(speedups, rounds=1, iterations=1)
    assert split >= base - 0.2  # splitting never hurts materially


# ----------------------------------------------------------------------
# Baseline quality ablation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def quality_instance():
    g = sprand(8_000, 4.0, seed=0)
    return g, sprank(g)


def test_bench_greedy_edge_baseline(benchmark, quality_instance):
    g, maximum = quality_instance
    m = benchmark(greedy_edge_matching, g, 0)
    assert 2 * m.cardinality >= maximum  # the 1/2 guarantee


def test_bench_greedy_row_baseline(benchmark, quality_instance):
    g, maximum = quality_instance
    m = benchmark(greedy_row_matching, g, 0)
    assert m.cardinality > 0


def test_bench_classic_karp_sipser(benchmark, quality_instance):
    g, maximum = quality_instance
    m = benchmark(karp_sipser, g, 0)
    assert m.cardinality / maximum > 0.9  # KS is strong on ER graphs


def test_bench_karp_sipser_plus(benchmark, quality_instance):
    """KS + degree-2 contraction: near-exact on sparse random graphs."""
    from repro.matching import karp_sipser_plus

    g, maximum = quality_instance
    m = benchmark.pedantic(
        lambda: karp_sipser_plus(g, seed=0), rounds=1, iterations=1
    )
    assert m.cardinality / maximum > 0.995


def test_bench_quality_ladder(benchmark, quality_instance):
    """greedy <= TwoSided on quality; all valid."""
    g, maximum = quality_instance

    def ladder():
        return {
            "greedy": greedy_edge_matching(g, seed=1).cardinality / maximum,
            "one": one_sided_match(g, 5, seed=1).cardinality / maximum,
            "two": two_sided_match(g, 5, seed=1).cardinality / maximum,
        }

    out = benchmark.pedantic(ladder, rounds=1, iterations=1)
    assert out["two"] > out["one"]
    assert out["two"] > 0.85


# ----------------------------------------------------------------------
# Exact-vs-relaxed parallel Karp-Sipser (the paper's core comparative
# claim: Algorithm 4 keeps exactness under parallelism, the "inflicted
# forms" of prior work do not)
# ----------------------------------------------------------------------
def test_bench_relaxed_parallel_ks(benchmark, quality_instance):
    from repro.matching import karp_sipser_relaxed

    g, maximum = quality_instance
    m = benchmark(karp_sipser_relaxed, g, 8, 0)
    assert 2 * m.cardinality >= maximum


def test_bench_exact_vs_relaxed_parallel_ks(benchmark):
    """On choice subgraphs: KarpSipserMT(any p) = optimum; relaxed <= it."""
    from repro.core import choice_graph, karp_sipser_mt
    from repro.core.oneout import sample_uniform_one_out
    from repro.matching import karp_sipser_relaxed

    def run():
        out = []
        for seed in range(5):
            rc, cc = sample_uniform_one_out(2_000, seed)
            sub = choice_graph(rc, cc)
            exact = karp_sipser_mt(rc, cc).cardinality
            relaxed = karp_sipser_relaxed(sub, n_threads=8, seed=seed)
            out.append((exact, relaxed.cardinality))
        return out

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(relaxed <= exact for exact, relaxed in pairs)


# ----------------------------------------------------------------------
# Distributed vs shared-memory scaling (the cited VECPAR substrate)
# ----------------------------------------------------------------------
def test_bench_distributed_scaling_agrees(benchmark):
    import numpy as np

    from repro.scaling import (
        scale_sinkhorn_knopp,
        scale_sinkhorn_knopp_distributed,
    )

    g = sprand(5_000, 4.0, seed=0)
    serial = scale_sinkhorn_knopp(g, 5)
    dist = benchmark(
        lambda: scale_sinkhorn_knopp_distributed(g, 5, n_ranks=4)
    )
    np.testing.assert_allclose(dist.dr, serial.dr, rtol=1e-12)


# ----------------------------------------------------------------------
# Exact-matcher ablation
# ----------------------------------------------------------------------
def test_bench_hopcroft_karp(benchmark, quality_instance):
    g, maximum = quality_instance
    m = benchmark(hopcroft_karp, g)
    assert m.cardinality == maximum


def test_bench_mc21(benchmark, quality_instance):
    g, maximum = quality_instance
    m = benchmark(mc21, g)
    assert m.cardinality == maximum


def test_bench_hk_warm_started(benchmark, quality_instance):
    """The paper's motivating use: heuristics as exact-solver warm starts."""
    g, maximum = quality_instance
    init = two_sided_match(g, 5, seed=0).matching
    m = benchmark(lambda: hopcroft_karp(g, initial=init))
    assert m.cardinality == maximum
