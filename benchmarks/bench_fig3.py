"""Figure 3 bench — ScaleSK / OneSidedMatch scalability.

Two parts:

* real-parallel micro-benchmarks of the ScaleSK segment reductions on the
  serial vs thread backend (what this 2-core host can demonstrate);
* the machine-model speedup curves for 2/4/8/16 threads, asserting the
  paper's shape — monotone scaling, ~10x at 16 threads on regular
  instances, and visibly worse on the degree-skewed instance.
"""

import numpy as np
import pytest

from repro.parallel import MachineModel, ThreadBackend
from repro.parallel.machine import ScheduleSpec
from repro.scaling import scale_sinkhorn_knopp
from repro.scaling.sinkhorn_knopp import sinkhorn_knopp_work_profile


def test_bench_scale_sk_serial(benchmark, mesh_instance):
    res = benchmark(scale_sinkhorn_knopp, mesh_instance, 5)
    assert res.iterations == 5


def test_bench_scale_sk_thread_backend(benchmark, mesh_instance):
    with ThreadBackend(2) as be:
        res = benchmark(
            lambda: scale_sinkhorn_knopp(mesh_instance, 5, backend=be)
        )
    serial = scale_sinkhorn_knopp(mesh_instance, 5)
    np.testing.assert_allclose(res.dr, serial.dr)


def test_bench_fig3a_speedup_curve(benchmark, mesh_instance, skewed_instance):
    """Modelled ScaleSK speedups: regular vs skewed instance."""
    model = MachineModel()

    def curves():
        out = {}
        for label, g in (("mesh", mesh_instance), ("skewed", skewed_instance)):
            profile = sinkhorn_knopp_work_profile(g)
            sched = ScheduleSpec.dynamic(max(16, g.nrows // 256))
            out[label] = [
                model.speedup(profile, p, schedule=sched, barriers=2)
                for p in (2, 4, 8, 16)
            ]
        return out

    out = benchmark.pedantic(curves, rounds=1, iterations=1)
    for label, speeds in out.items():
        assert speeds == sorted(speeds), label          # monotone
    assert out["mesh"][-1] > 9.0                        # ~10x at p=16
    assert out["skewed"][-1] < out["mesh"][-1]          # imbalance hurts
    assert out["mesh"][0] > 1.8                         # near-linear at p=2
