"""Figure 4 bench — KarpSipserMT / TwoSidedMatch scalability.

Benchmarks the serial KarpSipserMT kernel and its simulated/threaded
engines, and asserts the machine-model speedup shape of Figure 4a/4b
(KarpSipserMT scales slightly *better* than ScaleSK in the paper — guided
schedule, no barriers inside the loop).
"""

import pytest

from repro.core import (
    karp_sipser_mt,
    karp_sipser_mt_simulated,
    karp_sipser_mt_threaded,
    scaled_col_choices,
    scaled_row_choices,
)
from repro.core.karp_sipser_mt import karp_sipser_mt_work_profile
from repro.parallel import MachineModel
from repro.parallel.machine import ScheduleSpec
from repro.scaling import scale_sinkhorn_knopp
from repro.scaling.sinkhorn_knopp import sinkhorn_knopp_work_profile


@pytest.fixture(scope="module")
def mesh_choices(mesh_instance):
    scaling = scale_sinkhorn_knopp(mesh_instance, 1)
    rc = scaled_row_choices(mesh_instance, scaling.dr, scaling.dc, 0)
    cc = scaled_col_choices(mesh_instance, scaling.dr, scaling.dc, 1)
    return rc, cc


def test_bench_ks_mt_serial(benchmark, mesh_choices):
    rc, cc = mesh_choices
    m = benchmark(karp_sipser_mt, rc, cc)
    assert m.cardinality > 0


def test_bench_ks_mt_threaded_2(benchmark, mesh_choices):
    rc, cc = mesh_choices
    serial = karp_sipser_mt(rc, cc).cardinality
    m = benchmark(karp_sipser_mt_threaded, rc, cc, 2)
    assert m.cardinality == serial


def test_bench_ks_mt_simulated_small(benchmark, mesh_instance):
    # The simulator steps every atomic op, so bench a smaller slice.
    from repro.graph import suite_instance

    g = suite_instance("venturiLevel3", n=2_000, seed=0)
    scaling = scale_sinkhorn_knopp(g, 1)
    rc = scaled_row_choices(g, scaling.dr, scaling.dc, 0)
    cc = scaled_col_choices(g, scaling.dr, scaling.dc, 1)
    serial = karp_sipser_mt(rc, cc).cardinality
    m = benchmark(
        lambda: karp_sipser_mt_simulated(rc, cc, 4, policy="random", seed=0)
    )
    assert m.cardinality == serial


def test_bench_fig4_speedup_shape(benchmark, mesh_instance, mesh_choices):
    """KarpSipserMT's modelled curve sits at/above ScaleSK's (paper)."""
    rc, cc = mesh_choices
    model = MachineModel()

    def curves():
        ks_prof = karp_sipser_mt_work_profile(rc, cc)
        guided = ScheduleSpec.guided(max(4, mesh_instance.nrows // 2048))
        ks = [
            model.speedup(ks_prof, p, schedule=guided, barriers=1)
            for p in (2, 4, 8, 16)
        ]
        sk_prof = sinkhorn_knopp_work_profile(mesh_instance)
        dyn = ScheduleSpec.dynamic(max(16, mesh_instance.nrows // 256))
        sk = [
            model.speedup(sk_prof, p, schedule=dyn, barriers=2)
            for p in (2, 4, 8, 16)
        ]
        return ks, sk

    ks, sk = benchmark.pedantic(curves, rounds=1, iterations=1)
    assert ks == sorted(ks)
    assert ks[-1] > 9.0                  # paper: ~11x average at p=16
    assert ks[-1] >= sk[-1] - 1.0        # KS-MT >= ScaleSK (within noise)
