"""Section 4.1.3 (rectangular) bench — sprank-deficient rectangles.

Paper minima with 5 iterations: OneSided 0.753, TwoSided 0.930.  Shape
assertions use slightly relaxed floors at the reduced size.
"""

import pytest

from repro import one_sided_match, sprank, two_sided_match
from repro.graph import sprand_rect
from repro.scaling import scale_sinkhorn_knopp


@pytest.fixture(scope="module")
def rect_instance():
    g = sprand_rect(8_000, 9_600, 3.0, seed=0)
    return g, sprank(g)


def test_bench_rect_one_sided(benchmark, rect_instance):
    g, maximum = rect_instance
    scaling = scale_sinkhorn_knopp(g, 5)
    res = benchmark(lambda: one_sided_match(g, scaling=scaling, seed=1))
    assert res.cardinality / maximum > 0.70


def test_bench_rect_two_sided(benchmark, rect_instance):
    g, maximum = rect_instance
    scaling = scale_sinkhorn_knopp(g, 5)
    res = benchmark(lambda: two_sided_match(g, scaling=scaling, seed=1))
    assert res.cardinality / maximum > 0.90


def test_bench_rect_quality_sweep(benchmark):
    """Minimum qualities over d in {2,5}, as the paper reports minima."""

    def sweep():
        minima = [1.0, 1.0]
        for d in (2, 5):
            g = sprand_rect(5_000, 6_000, float(d), seed=0)
            maximum = sprank(g)
            sc = scale_sinkhorn_knopp(g, 5)
            for s in range(2):
                one = one_sided_match(g, scaling=sc, seed=s).cardinality
                two = two_sided_match(g, scaling=sc, seed=s).cardinality
                minima[0] = min(minima[0], one / maximum)
                minima[1] = min(minima[1], two / maximum)
        return minima

    min_one, min_two = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert min_one > 0.70   # paper 0.753
    assert min_two > 0.88   # paper 0.930
    assert min_two > min_one
