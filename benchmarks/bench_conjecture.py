"""Conjecture 1 bench — maximum matchings of random 1-out graphs.

Benchmarks the linear-time exact matcher on 1-out graphs and asserts the
Karoński–Pittel constant: |M|/n -> 2(1-rho) = 0.8657...
"""

import numpy as np
import pytest

from repro.constants import TWO_SIDED_GUARANTEE
from repro.core import one_out_max_matching_size, sample_uniform_one_out
from repro.core.karp_sipser_mt import karp_sipser_mt


def test_bench_one_out_matching_100k(benchmark):
    rc, cc = sample_uniform_one_out(100_000, seed=0)
    m = benchmark(karp_sipser_mt, rc, cc)
    assert abs(m.cardinality / 100_000 - TWO_SIDED_GUARANTEE) < 0.005


def test_bench_convergence_to_constant(benchmark):
    """Deviation from 2(1-rho) shrinks as n grows."""

    def deviations():
        out = []
        for n in (1_000, 10_000, 100_000):
            ratios = [
                one_out_max_matching_size(n, seed=s) / n for s in range(3)
            ]
            out.append(abs(float(np.mean(ratios)) - TWO_SIDED_GUARANTEE))
        return out

    devs = benchmark.pedantic(deviations, rounds=1, iterations=1)
    assert devs[-1] < 0.004
    assert devs[-1] <= devs[0] + 0.002  # no divergence with n
