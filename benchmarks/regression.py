#!/usr/bin/env python
"""Seeded perf-regression harness (``make bench-regress``).

Runs a fixed workload matrix (sizes, seeds, and repetition counts are all
pinned), writes a ``BENCH_<timestamp>.json`` snapshot into the snapshot
directory, and — with ``--check`` — compares the fresh run against the most
recent previous snapshot of the same mode:

* a workload whose best-of-N wall time exceeds the previous snapshot's by
  more than ``--tolerance`` (default 40% — CI wall clocks are noisy) is a
  **timing regression**;
* a quality workload whose mean matching ratio falls below its floor
  (Theorem 1's ``1 - 1/e`` for OneSidedMatch, Conjecture 1's ``2(1 - ρ)``
  for TwoSidedMatch, each minus ``--quality-eps``) is a **quality breach**
  — floors are absolute, they are checked even when no previous snapshot
  exists.

Either failure mode exits non-zero, which is what the CI smoke job and
every future perf PR are judged by.  ``--smoke`` shrinks the matrix to
seconds for CI; smoke snapshots are only ever compared against other smoke
snapshots.  See ``docs/observability.md`` for the snapshot schema.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if not any(Path(p).resolve() == REPO_ROOT / "src" for p in sys.path if p):
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import __version__  # noqa: E402
from repro.constants import ONE_SIDED_GUARANTEE, TWO_SIDED_GUARANTEE  # noqa: E402
from repro.core import one_sided_match, two_sided_match  # noqa: E402
from repro.core.choice import (  # noqa: E402
    scaled_col_choices,
    scaled_row_choices,
)
from repro.core.karp_sipser_mt import (  # noqa: E402
    karp_sipser_mt,
    karp_sipser_mt_vectorized,
)
from repro.graph import sprand  # noqa: E402
from repro.graph.generators import union_of_permutations  # noqa: E402
from repro.scaling import scale_sinkhorn_knopp  # noqa: E402

SCHEMA_VERSION = 1

#: (workload, full_n, smoke_n) — every size in one place so full and smoke
#: snapshots stay structurally identical.
SIZES = {
    "scale_sk": (20_000, 2_000),
    "onesided": (20_000, 2_000),
    "twosided_serial": (10_000, 1_500),
    "twosided_vectorized": (20_000, 2_000),
    "ks_mt_serial": (10_000, 1_500),
    "ks_mt_vectorized": (10_000, 1_500),
    "onesided_quality": (1_500, 400),
    "twosided_quality": (1_500, 400),
    "resilient_scale_sk": (20_000, 2_000),
    # Backend matrix: the same workloads through the fork-per-call
    # process backend and the persistent zero-copy pool, at a size where
    # the multi-chunk parallel path actually engages (the smoke size is
    # a single chunk — overhead tracking only).
    "proc_scale_sk": (120_000, 8_000),
    "proc_e2e_twosided": (120_000, 8_000),
    "shm_scale_sk": (120_000, 8_000),
    "shm_onesided": (120_000, 8_000),
    "shm_e2e_twosided": (120_000, 8_000),
    # Serving layer: fixed-load soak through a live MatchingServer
    # (wall + p99 of accepted requests) and the shed-rate cell under
    # deliberate overload of a tiny admission queue.
    "serve_soak": (3_000, 800),
    "serve_shed": (1_000, 400),
    # Streaming layer: per-batch update→incremental-rematch cost under
    # 1% edge churn (gated), plus the speedup over a cold rematch of the
    # same epoch (informational — it is a ratio of two measured times,
    # so the gated cell alone pins the regression surface).
    "stream_update": (120_000, 8_000),
    # Durability layer: rebuild a journaled stream session (checkpoint +
    # WAL replay + recertification) vs the live run that produced it.
    # Informational — replay re-executes the same rematches it journaled,
    # so the honest ratio hovers around 1x; the cell keeps recovery wall
    # time visible without gating on it.
    "recovery_replay": (20_000, 2_000),
    # Exact tier: the ε-scaling auction, cold-started and warm-started
    # from a TwoSidedMatch heuristic.  Cold is the gated cell (it is the
    # quality ladder's exact rung); warm-vs-cold is an informational
    # ratio — the drain + deficiency certification dominate wall clock
    # and a warm start cannot skip them, so the honest ratio hovers
    # around 1x (see docs/performance.md).
    "auction_cold": (120_000, 8_000),
    "auction_warm": (120_000, 8_000),
    # Native kernel tier: the kernel-bound workloads re-timed under the
    # numpy tier and under the native tier on the serial backend.  All
    # three are informational (no "seconds" key — they never gate): the
    # 5x bar is the aspiration for JIT-compiled loops at this size, and
    # on hosts without numba the native tier falls back to the bitwise
    # identical numpy kernels, so the honest ratio is ~1x with
    # ``"numba": false`` recorded alongside (see docs/performance.md).
    "native_sk": (120_000, 8_000),
    "native_ks": (120_000, 8_000),
    "native_auction_cold": (120_000, 8_000),
    # Network front: request count for the framed unix-socket roundtrip
    # loop through SocketServer + ResilientClient.  Informational (no
    # "seconds" key): the cell exists to keep per-request wire overhead
    # visible, while the CPU-bound cells above pin the regression surface.
    "net_roundtrip": (200, 50),
    # Sharded matching: wall time and quality at K in {1, 2, 4} shards on
    # the in-process tier.  Informational (no "seconds" key) — the
    # subsystem's contract makes all K bitwise identical (asserted, not
    # reported), so the cell's job is to keep the coordination overhead
    # of higher shard counts visible, not to gate on it.  The smoke size
    # stays above the chunk grid (8192) so K=2 is a real split.
    "shard_scaling": (120_000, 20_000),
}


def _choice_arrays(n: int):
    """Deterministic scaled 1-out choice arrays on an ER d=4 instance."""
    g = sprand(n, 4.0, seed=0)
    sc = scale_sinkhorn_knopp(g, 5)
    rc = scaled_row_choices(g, sc.dr, sc.dc, seed=1)
    cc = scaled_col_choices(g, sc.dr, sc.dc, seed=2)
    return rc, cc


def _best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def run_workloads(smoke: bool, backend_spec: str = "serial") -> dict[str, dict]:
    """Execute the fixed matrix; returns ``{name: result-dict}``.

    *backend_spec* (the ``REPRO_BACKEND`` environment variable) selects
    the backend the generic scaling/matching cells run on; snapshots are
    only ever compared against snapshots of the same backend.
    """
    from repro.parallel import get_backend

    idx = 1 if smoke else 0
    repeats = 2 if smoke else 3
    results: dict[str, dict] = {}

    def record_timing(name: str, n: int, fn) -> None:
        seconds = _best_of(fn, repeats)
        results[name] = {"n": n, "seconds": seconds}
        print(f"  {name:<22} n={n:<7} {seconds * 1e3:9.2f} ms")

    print(f"timing workloads (backend={backend_spec}):")
    env_be = get_backend(backend_spec)

    n = SIZES["scale_sk"][idx]
    g = sprand(n, 4.0, seed=0)
    record_timing(
        "scale_sk", n, lambda: scale_sinkhorn_knopp(g, 5, backend=env_be)
    )

    n = SIZES["onesided"][idx]
    g = sprand(n, 4.0, seed=0)
    sc = scale_sinkhorn_knopp(g, 5)
    record_timing(
        "onesided", n,
        lambda: one_sided_match(g, scaling=sc, seed=1, backend=env_be),
    )

    for name, engine in (
        ("twosided_serial", "serial"),
        ("twosided_vectorized", "vectorized"),
    ):
        n = SIZES[name][idx]
        g = sprand(n, 4.0, seed=0)
        sc = scale_sinkhorn_knopp(g, 5)
        record_timing(
            name, n,
            lambda g=g, sc=sc, engine=engine: two_sided_match(
                g, scaling=sc, seed=1, engine=engine, backend=env_be
            ),
        )
    env_be.close()

    for name, engine_fn in (
        ("ks_mt_serial", karp_sipser_mt),
        ("ks_mt_vectorized", karp_sipser_mt_vectorized),
    ):
        n = SIZES[name][idx]
        rc, cc = _choice_arrays(n)
        record_timing(
            name, n, lambda rc=rc, cc=cc, fn=engine_fn: fn(rc, cc)
        )

    # Resilience-layer overhead: the same scaling workload through the
    # deadline/retry wrapper with injection off.  Tracked against the
    # plain scale_sk cell so the supervisor cost stays visibly bounded.
    from repro.resilience import ResilientBackend

    n = SIZES["resilient_scale_sk"][idx]
    g = sprand(n, 4.0, seed=0)
    be = ResilientBackend("serial", deadline=60.0)
    try:
        record_timing(
            "resilient_scale_sk", n,
            lambda: scale_sinkhorn_knopp(g, 5, backend=be),
        )
    finally:
        be.close()

    # Backend matrix: identical SK / end-to-end workloads through the
    # fork-per-call process backend and the persistent zero-copy pool.
    # shm vs proc at equal n is the pool's speedup evidence; shm vs the
    # serial scale_sk/twosided cells bounds its dispatch overhead (see
    # docs/performance.md).  Best-of-N absorbs the one-time pool spawn.
    from repro.parallel import ProcessBackend, SharedMemoryBackend

    n = SIZES["proc_scale_sk"][idx]
    g = sprand(n, 4.0, seed=0)
    sc = scale_sinkhorn_knopp(g, 5)
    proc_be = ProcessBackend()
    try:
        record_timing(
            "proc_scale_sk", n,
            lambda: scale_sinkhorn_knopp(g, 5, backend=proc_be),
        )
        record_timing(
            "proc_e2e_twosided", n,
            lambda: two_sided_match(
                g, scaling=sc, seed=1, backend=proc_be, engine="parallel"
            ),
        )
    finally:
        proc_be.close()
    shm_be = SharedMemoryBackend()
    try:
        record_timing(
            "shm_scale_sk", n,
            lambda: scale_sinkhorn_knopp(g, 5, backend=shm_be),
        )
        record_timing(
            "shm_onesided", n,
            lambda: one_sided_match(g, scaling=sc, seed=1, backend=shm_be),
        )
        record_timing(
            "shm_e2e_twosided", n,
            lambda: two_sided_match(
                g, scaling=sc, seed=1, backend=shm_be, engine="parallel"
            ),
        )
    finally:
        shm_be.close()

    # Serving layer.  serve_soak/serve_p99 run a fixed, non-shedding load
    # (clients == workers) through a live MatchingServer — the soak's
    # wall clock is the gated timing.  serve_p99 (a single worst-case
    # sample at millisecond scale, dominated by scheduler jitter) and
    # serve_shed (shedding is configuration-dependent by design) are
    # informational — no "seconds" key, so they never gate.
    from repro.serve import ServerConfig, run_soak

    n = SIZES["serve_soak"][idx]
    requests = 40 if smoke else 200
    soak = run_soak(
        requests,
        backend=backend_spec,
        n=n,
        degree=4,
        iterations=2,
        deadline=10.0,
        overload=1.0,
        seed=0,
        config=ServerConfig(max_queue=64, default_deadline=10.0),
    )
    if not soak.passed:
        raise AssertionError(
            "serve soak violated the service contract:\n" + soak.render()
        )
    results["serve_soak"] = {
        "n": n,
        "seconds": soak.elapsed,
        "requests": requests,
        "throughput": soak.throughput,
    }
    results["serve_p99"] = {"n": n, "p99_seconds": soak.percentile(0.99)}
    print(
        f"  {'serve_soak':<22} n={n:<7} {soak.elapsed * 1e3:9.2f} ms "
        f"({soak.throughput:.1f} req/s)"
    )
    print(
        f"  {'serve_p99':<22} n={n:<7} "
        f"{soak.percentile(0.99) * 1e3:9.2f} ms"
    )

    n = SIZES["serve_shed"][idx]
    shed_requests = 40 if smoke else 120
    shed_soak = run_soak(
        shed_requests,
        backend=backend_spec,
        n=n,
        degree=4,
        iterations=1,
        deadline=10.0,
        overload=4.0,  # 4 clients vs 1 worker + 1 queue slot = 2x capacity
        seed=0,
        config=ServerConfig(
            max_queue=1, n_workers=1, default_deadline=10.0
        ),
    )
    if not shed_soak.passed:
        raise AssertionError(
            "serve shed soak violated the service contract:\n"
            + shed_soak.render()
        )
    results["serve_shed"] = {
        "n": n,
        "requests": shed_requests,
        "shed": shed_soak.shed,
        "shed_rate": shed_soak.shed_rate,
    }
    print(
        f"  {'serve_shed':<22} n={n:<7} shed={shed_soak.shed}/"
        f"{shed_requests} ({shed_soak.shed_rate:.0%})"
    )

    # Streaming layer: drive a dynamic graph through churn batches and
    # time the incremental path against cold rematches of the identical
    # epochs.  The guarantee-equality contract is asserted, not merely
    # reported — a run where the incremental certificate diverges from
    # the cold one is a correctness failure, not a perf number.
    from repro.stream import run_churn

    n = SIZES["stream_update"][idx]
    churn = run_churn(
        n,
        churn_fraction=0.01,
        batches=2 if smoke else 3,
        target_quality=0.60,
        seed=0,
        backend=backend_spec,
    )
    if not churn.guarantees_match:
        raise AssertionError(
            "stream churn: incremental guarantee diverged from cold rematch"
        )
    results["stream_update"] = {
        "n": n,
        "seconds": churn.update_seconds + churn.incremental_seconds,
        "churn_fraction": churn.churn_fraction,
        "batches": churn.batches,
    }
    results["stream_speedup"] = {
        "n": n,
        "speedup": churn.speedup,
        "cold_seconds": churn.cold_seconds,
        "guarantee": churn.guarantee,
        "guarantees_match": churn.guarantees_match,
    }
    print(
        f"  {'stream_update':<22} n={n:<7} "
        f"{(churn.update_seconds + churn.incremental_seconds) * 1e3:9.2f} ms"
    )
    print(
        f"  {'stream_speedup':<22} n={n:<7} {churn.speedup:9.2f}x "
        f"(cold {churn.cold_seconds * 1e3:.2f} ms)"
    )

    # Durability layer: a journaled stream session under 1% churn, then
    # a full crash recovery of its directory.  The recovered last
    # acknowledgment must equal the live one bitwise — asserted, not
    # reported.  Neither number gates (no "seconds" key): replay
    # re-executes the same rematches the live run journaled plus
    # recertification, so live/replay is an honest ~1x ratio whose job
    # is to keep recovery wall time visible.
    import shutil
    import tempfile

    from repro.serve.daemon import GraphCache, _StreamRegistry
    from repro.serve.journal import DurableLog
    from repro.serve.recovery import recover_registry

    n = SIZES["recovery_replay"][idx]
    journal_dir = tempfile.mkdtemp(prefix="repro-bench-recovery-")
    try:
        registry = _StreamRegistry(
            8, None, journal=DurableLog(journal_dir, checkpoint_every=64)
        )
        spec = {"kind": "sprand", "n": n, "degree": 4.0, "seed": 0}
        rng = np.random.default_rng(7)
        batch = max(8, n // 100)
        t0 = time.perf_counter()
        registry.open(
            {"graph": spec, "target_quality": 0.55, "seed": 0}, GraphCache(8)
        )
        registry.rematch({"handle": "s1"})
        for _ in range(2 if smoke else 3):
            registry.update(
                {"handle": "s1", "add": {
                    "rows": rng.integers(0, n, size=batch).tolist(),
                    "cols": rng.integers(0, n, size=batch).tolist(),
                }}
            )
            registry.rematch({"handle": "s1"})
        live_seconds = time.perf_counter() - t0
        registry.journal.close()

        t0 = time.perf_counter()
        recovered, recovery_report = recover_registry(
            journal_dir, cache=GraphCache(8), attach_journal=False
        )
        replay_seconds = time.perf_counter() - t0
        if recovered._last_ack["s1"] != registry._last_ack["s1"]:
            raise AssertionError(
                "recovery replay diverged from the live acknowledgment"
            )
        results["recovery_replay"] = {
            "n": n,
            "live_seconds": live_seconds,
            "replay_seconds": replay_seconds,
            "replayed_records": recovery_report.replayed_records,
            "speedup": live_seconds / replay_seconds
            if replay_seconds
            else 1.0,
        }
        print(
            f"  {'recovery_replay':<22} n={n:<7} "
            f"{replay_seconds * 1e3:9.2f} ms "
            f"(live {live_seconds * 1e3:.2f} ms, "
            f"{recovery_report.replayed_records} records)"
        )
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)

    # Network front: framed health roundtrips through a live unix-socket
    # SocketServer and the retrying client.  Informational (no "seconds"
    # key) — it reports per-request wire overhead (framing + CRC + a
    # fresh connection per request) without gating on socket latency,
    # which is far noisier on CI boxes than the CPU-bound cells.
    from repro.serve.daemon import Dispatcher
    from repro.serve.net import ResilientClient, SocketServer
    from repro.serve.server import MatchingServer

    requests = SIZES["net_roundtrip"][idx]
    net_dir = tempfile.mkdtemp(prefix="repro-bench-net-")
    try:
        with MatchingServer("serial") as net_server:
            dispatcher = Dispatcher(
                net_server, GraphCache(4), _StreamRegistry(2, "serial")
            )
            with SocketServer(
                dispatcher, f"unix:{net_dir}/bench.sock", deadline=30.0
            ) as front:
                client = ResilientClient(front.address, retries=2)
                t0 = time.perf_counter()
                for _ in range(requests):
                    client.request({"op": "health"})
                net_seconds = time.perf_counter() - t0
        results["net_roundtrip"] = {
            "n": requests,
            "roundtrip_seconds": net_seconds,
            "per_request_ms": net_seconds / requests * 1e3,
        }
        print(
            f"  {'net_roundtrip':<22} n={requests:<7} "
            f"{net_seconds * 1e3:9.2f} ms "
            f"({net_seconds / requests * 1e6:.0f} us/request, "
            f"informational)"
        )
    finally:
        shutil.rmtree(net_dir, ignore_errors=True)

    # Sharded matching: the in-process tier at K in {1, 2, 4}.  Every K
    # must produce the identical matching (the shard-count-invariance
    # contract — asserted, not reported); the recorded numbers are the
    # per-K wall times and the K>1 overhead ratios over K=1.
    from repro.shard import plan_shards, shard_match

    n = SIZES["shard_scaling"][idx]
    g = sprand(n, 4.0, seed=0)
    shard_rows = {}
    base_match = None
    for k in (1, 2, 4):
        plan = plan_shards(g, k)
        t0 = time.perf_counter()
        res = shard_match(g, k, 5, seed=1, plan=plan)
        seconds = time.perf_counter() - t0
        if base_match is None:
            base_match = res.matching.row_match
        elif not np.array_equal(res.matching.row_match, base_match):
            raise AssertionError(
                f"shard_scaling: K={k} matching diverged from K=1 — the"
                f" shard-count-invariance contract is broken"
            )
        shard_rows[str(k)] = {
            "seconds": seconds,
            "boundary_edges": plan.boundary_edges,
            "max_held_nnz": plan.max_held_nnz,
        }
    results["shard_scaling"] = {
        "n": n,
        "shards": shard_rows,
        "cardinality": int(np.sum(base_match >= 0)),
        "overhead_k4": (
            shard_rows["4"]["seconds"] / shard_rows["1"]["seconds"]
            if shard_rows["1"]["seconds"]
            else 1.0
        ),
    }
    print(
        f"  {'shard_scaling':<22} n={n:<7} "
        + " ".join(
            f"K={k}:{shard_rows[k]['seconds'] * 1e3:.2f}ms"
            for k in ("1", "2", "4")
        )
        + " (bitwise-equal, informational)"
    )

    # Exact tier: auction cold vs warm on the same instance.  Both runs
    # must land on the identical (maximum) cardinality — asserted, not
    # reported.  The warm/cold ratio is informational with a 2x
    # aspiration bar; measured honestly it is ~0.7–1.0x because the
    # Gauss–Seidel drain and the deficiency certification dominate and
    # cannot be warm-skipped.
    from repro.matching import auction_match, hopcroft_karp

    n = SIZES["auction_cold"][idx]
    g = sprand(n, 4.0, seed=11)
    exact_card = hopcroft_karp(g).cardinality
    auction_be = get_backend(backend_spec)
    try:
        def _cold():
            res = auction_match(g, backend=auction_be, seed=0)
            assert res.cardinality == exact_card
            return res

        record_timing("auction_cold", n, _cold)

        heur = two_sided_match(g, 3, seed=0, backend=auction_be,
                               engine="vectorized")

        def _warm():
            res = auction_match(
                g, initial=heur, scaling=heur.scaling,
                backend=auction_be, seed=0,
            )
            assert res.cardinality == exact_card
            return res

        record_timing("auction_warm", n, _warm)
    finally:
        auction_be.close()
    ratio = (
        results["auction_cold"]["seconds"]
        / results["auction_warm"]["seconds"]
    )
    results["auction_warm_speedup"] = {
        "n": n,
        "speedup": ratio,
        "bar": 2.0,
        "meets_bar": ratio >= 2.0,
        "cardinality": exact_card,
    }
    print(
        f"  {'auction_warm_speedup':<22} n={n:<7} {ratio:9.2f}x "
        f"(informational bar 2.0x)"
    )

    # Native kernel tier: numpy-tier vs native-tier timings of the
    # kernel-bound workloads, on the serial backend so the ratio
    # isolates kernel execution from pool dispatch.  Informational —
    # no "seconds" key, so a host without numba (where the native tier
    # falls back to the identical numpy loops and the ratio is ~1x)
    # never fails the gate; the "numba" field keeps the context honest.
    import warnings

    from repro.matching import auction_match as _auction_match
    from repro.parallel import (
        kernel_impl,
        kernel_impls,
        native_available,
        warm_compile,
    )

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with kernel_impl("native"):
            warm_compile()
            impl_report = kernel_impls()
    numba_active = native_available() and all(
        entry["status"] == "ready" for entry in impl_report
    )

    def record_native(name: str, n: int, fn) -> None:
        with kernel_impl("numpy"):
            numpy_seconds = _best_of(fn, repeats)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with kernel_impl("native"):
                native_seconds = _best_of(fn, repeats)
        speedup = numpy_seconds / native_seconds if native_seconds else 1.0
        results[name] = {
            "n": n,
            "numpy_seconds": numpy_seconds,
            "native_seconds": native_seconds,
            "speedup": speedup,
            "bar": 5.0,
            "meets_bar": speedup >= 5.0,
            "numba": numba_active,
        }
        print(
            f"  {name:<22} n={n:<7} {speedup:9.2f}x "
            f"(numpy {numpy_seconds * 1e3:.2f} ms, native "
            f"{native_seconds * 1e3:.2f} ms, numba={numba_active}, "
            f"informational bar 5.0x)"
        )

    native_be = get_backend("serial")
    try:
        n = SIZES["native_sk"][idx]
        g = sprand(n, 4.0, seed=0)
        record_native(
            "native_sk", n,
            lambda: scale_sinkhorn_knopp(g, 5, backend=native_be),
        )

        n = SIZES["native_ks"][idx]
        g = sprand(n, 4.0, seed=0)
        sc = scale_sinkhorn_knopp(g, 5)
        record_native(
            "native_ks", n,
            lambda: two_sided_match(
                g, scaling=sc, seed=1, engine="parallel",
                backend=native_be,
            ),
        )

        n = SIZES["native_auction_cold"][idx]
        g = sprand(n, 4.0, seed=11)
        record_native(
            "native_auction_cold", n,
            lambda: _auction_match(g, backend=native_be, seed=0),
        )
    finally:
        native_be.close()

    print("quality workloads:")
    trials = 3 if smoke else 5

    n = SIZES["onesided_quality"][idx]
    g = union_of_permutations(n, 4, seed=0)
    ratios = [
        one_sided_match(g, 5, seed=s).cardinality / n for s in range(trials)
    ]
    results["onesided_quality"] = {
        "n": n,
        "quality": float(np.mean(ratios)),
        "floor": ONE_SIDED_GUARANTEE,
        "trials": trials,
    }

    n = SIZES["twosided_quality"][idx]
    g = union_of_permutations(n, 4, seed=0)
    ratios = [
        two_sided_match(g, 5, seed=s, engine="vectorized").cardinality / n
        for s in range(trials)
    ]
    results["twosided_quality"] = {
        "n": n,
        "quality": float(np.mean(ratios)),
        "floor": TWO_SIDED_GUARANTEE,
        "trials": trials,
    }
    for name in ("onesided_quality", "twosided_quality"):
        r = results[name]
        print(
            f"  {name:<22} n={r['n']:<7} quality={r['quality']:.4f} "
            f"(floor {r['floor']:.4f})"
        )

    return results


def make_snapshot(smoke: bool, backend_spec: str = "serial") -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke": smoke,
        "backend": backend_spec,
        "repro_version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": run_workloads(smoke, backend_spec),
    }


def latest_snapshot(
    out_dir: Path, smoke: bool, backend_spec: str = "serial"
) -> dict | None:
    """The newest parseable snapshot of the same mode/backend, or None."""
    for path in sorted(out_dir.glob("BENCH_*.json"), reverse=True):
        try:
            snap = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if (
            snap.get("schema") == SCHEMA_VERSION
            and snap.get("smoke") == smoke
            and snap.get("backend", "serial") == backend_spec
        ):
            snap["_path"] = str(path)
            return snap
    return None


def check(
    current: dict,
    previous: dict | None,
    tolerance: float,
    quality_eps: float,
) -> list[str]:
    """All regression/breach messages for *current* (empty list = pass)."""
    failures = []
    for name, res in current["results"].items():
        floor = res.get("floor")
        if floor is not None:
            effective = floor - quality_eps
            if res["quality"] < effective:
                failures.append(
                    f"quality breach: {name} = {res['quality']:.4f} < "
                    f"{effective:.4f} (floor {floor:.4f} - eps {quality_eps})"
                )
    if previous is None:
        return failures
    for name, res in current["results"].items():
        prev = previous["results"].get(name)
        if not prev or "seconds" not in res or "seconds" not in prev:
            continue
        if prev.get("n") != res.get("n"):
            continue  # size matrix changed; timings not comparable
        ratio = res["seconds"] / prev["seconds"] if prev["seconds"] else 1.0
        if ratio > 1.0 + tolerance:
            failures.append(
                f"timing regression: {name} {prev['seconds'] * 1e3:.2f} ms "
                f"-> {res['seconds'] * 1e3:.2f} ms ({ratio:.2f}x, "
                f"tolerance {1.0 + tolerance:.2f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded perf-regression harness"
    )
    parser.add_argument(
        "--out-dir", default=str(REPO_ROOT / "benchmarks" / "snapshots"),
        help="snapshot directory (default benchmarks/snapshots)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI (compared only against smoke snapshots)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the previous snapshot and fail on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.40,
        help="allowed relative slowdown before failing (default 0.40)",
    )
    parser.add_argument(
        "--quality-eps", type=float, default=0.02,
        help="slack below the theoretical quality floors (default 0.02)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="run and check without writing a snapshot",
    )
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    backend_spec = os.environ.get("REPRO_BACKEND", "serial")
    previous = (
        latest_snapshot(out_dir, args.smoke, backend_spec)
        if args.check
        else None
    )

    mode = "smoke" if args.smoke else "full"
    print(f"running {mode} workload matrix (REPRO_BACKEND={backend_spec}) ...")
    snapshot = make_snapshot(args.smoke, backend_spec)

    if not args.no_write:
        stamp = snapshot["date"].replace(":", "").replace("-", "")
        path = out_dir / f"BENCH_{stamp}.json"
        path.write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"wrote {path}")

    failures = check(snapshot, previous, args.tolerance, args.quality_eps)
    if previous is not None:
        print(f"compared against {previous['_path']}")
    elif args.check:
        print("no previous snapshot of this mode — quality floors only")
    if failures:
        print("\nREGRESSIONS DETECTED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("all workloads within tolerance; quality floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
