"""Warm-started Sinkhorn–Knopp: convergence, fixed points, validation.

The streaming layer leans on ``initial=`` warm starts being *safe*: a
warm run must land on the same fixed point as a cold one (not merely a
nearby one), certify the same quality, and refuse poisoned inputs
loudly.  These tests pin all three down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ScalingError
from repro.graph.generators import sprand, union_of_permutations
from repro.scaling import scale_for_quality, scale_sinkhorn_knopp
from repro.scaling.sinkhorn_knopp import initial_factors

TOL = 1e-6


def _graph(n=250, seed=0):
    # Union of permutations has total support, so SK converges properly.
    return union_of_permutations(n, 3, seed=seed)


def test_warm_start_from_converged_needs_at_most_two_sweeps():
    g = _graph()
    cold = scale_sinkhorn_knopp(g, tolerance=TOL)
    assert cold.converged
    warm = scale_sinkhorn_knopp(
        g, tolerance=TOL, initial=(cold.dr, cold.dc)
    )
    assert warm.converged and warm.warm_started
    assert warm.iterations <= 2
    assert not cold.warm_started


def test_warm_accepts_scaling_result_directly():
    g = _graph(seed=3)
    cold = scale_sinkhorn_knopp(g, tolerance=TOL)
    warm = scale_sinkhorn_knopp(g, tolerance=TOL, initial=cold)
    assert warm.iterations <= 2


def test_warm_and_cold_reach_same_fixed_point():
    g = _graph(seed=1)
    cold = scale_sinkhorn_knopp(g, tolerance=1e-10)
    # Perturbed warm start: must converge back to the same fixed point
    # (SK's doubly stochastic limit is unique up to the scalar gauge
    # freedom dr -> t*dr, dc -> dc/t, which row-normalisation removes).
    rng = np.random.default_rng(7)
    dr0 = cold.dr * rng.uniform(0.9, 1.1, size=g.nrows)
    dc0 = cold.dc * rng.uniform(0.9, 1.1, size=g.ncols)
    warm = scale_sinkhorn_knopp(g, tolerance=1e-10, initial=(dr0, dc0))
    assert warm.converged
    gauge = np.median(warm.dr / cold.dr)
    np.testing.assert_allclose(warm.dr, cold.dr * gauge, rtol=1e-6)
    np.testing.assert_allclose(warm.dc, cold.dc / gauge, rtol=1e-6)


def test_warm_quality_certificate_matches_cold():
    g = sprand(300, 5.0, seed=2)
    target = 0.55
    cold = scale_for_quality(g, target)
    warm = scale_for_quality(
        g, target, initial=(cold.scaling.dr, cold.scaling.dc)
    )
    assert warm.target_met == cold.target_met
    # Warm-starting from the converged factors changes nothing: the very
    # same certificate, to the last bit of the fixed point.
    np.testing.assert_allclose(
        warm.scaling.dc, cold.scaling.dc, rtol=1e-12
    )
    assert warm.certified_quality == pytest.approx(
        cold.certified_quality, rel=1e-12
    )
    assert warm.scaling.iterations <= cold.scaling.iterations


def test_warm_start_telemetry():
    g = _graph(seed=5)
    cold = scale_sinkhorn_knopp(g, tolerance=TOL)
    with telemetry.session() as reg:
        scale_sinkhorn_knopp(g, tolerance=TOL, initial=cold)
        snap = reg.snapshot()
    assert snap["scaling.sk.warm_starts"]["value"] == 1
    assert snap["scaling.warm_sweeps_saved"]["value"] >= 0


def test_initial_factors_cold_default():
    g = _graph(seed=6)
    dr, dc, warm = initial_factors(g, None)
    assert not warm
    assert dr.shape == (g.nrows,) and dc.shape == (g.ncols,)
    assert (dr == 1.0).all() and (dc == 1.0).all()


def test_initial_factors_rejects_poisoned_input():
    g = _graph(seed=6)
    ones_r = np.ones(g.nrows)
    ones_c = np.ones(g.ncols)
    with pytest.raises(ScalingError, match="shapes"):
        initial_factors(g, (np.ones(3), ones_c))
    with pytest.raises(ScalingError, match="finite"):
        bad = ones_r.copy()
        bad[0] = np.inf
        initial_factors(g, (bad, ones_c))
    with pytest.raises(ScalingError, match="finite"):
        bad = ones_c.copy()
        bad[0] = np.nan
        initial_factors(g, (ones_r, bad))
    with pytest.raises(ScalingError, match="positive"):
        bad = ones_r.copy()
        bad[0] = 0.0
        initial_factors(g, (bad, ones_c))
    with pytest.raises(ScalingError, match="pair or a ScalingResult"):
        initial_factors(g, 3.5)


def test_initial_factors_copies_input():
    g = _graph(seed=6)
    dr0 = np.ones(g.nrows)
    dc0 = np.ones(g.ncols)
    dr, dc, warm = initial_factors(g, (dr0, dc0))
    assert warm
    dr[0] = 99.0
    assert dr0[0] == 1.0  # caller's array untouched
