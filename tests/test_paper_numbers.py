"""Paper-number window tests.

Each test pins one quantitative claim of the paper to a tolerance window
at a reduced instance size.  These are the `pytest tests/` counterpart of
the benchmark-harness shape assertions: if a refactor shifts any of the
reproduction's headline numbers, one of these trips.
"""

import numpy as np
import pytest

from repro.constants import ONE_SIDED_GUARANTEE, TWO_SIDED_GUARANTEE
from repro import (
    karp_sipser,
    one_sided_match,
    sprank,
    two_sided_match,
)
from repro.graph import full_ones, karp_sipser_adversarial, sprand
from repro.scaling import scale_sinkhorn_knopp


class TestHeadlineConstants:
    def test_one_sided_on_ones_matrix_tight(self):
        """The all-ones matrix saturates Theorem 1: quality -> 0.632."""
        n = 3000
        g = full_ones(n)
        qualities = [
            one_sided_match(g, 1, seed=s).cardinality / n for s in range(4)
        ]
        assert abs(float(np.mean(qualities)) - ONE_SIDED_GUARANTEE) < 0.01

    def test_two_sided_on_ones_matrix_tight(self):
        """...and Conjecture 1: quality -> 0.8657."""
        n = 3000
        g = full_ones(n)
        qualities = [
            two_sided_match(g, 1, seed=s).cardinality / n for s in range(4)
        ]
        assert abs(float(np.mean(qualities)) - TWO_SIDED_GUARANTEE) < 0.01


class TestTable1Windows:
    """n=800 windows calibrated against the n=3200 run in EXPERIMENTS.md."""

    @pytest.fixture(scope="class")
    def instance(self):
        return karp_sipser_adversarial(800, 32)

    def test_ks_window(self, instance):
        q = min(
            karp_sipser(instance, seed=s).cardinality / 800 for s in range(5)
        )
        assert 0.55 < q < 0.80  # paper at k=32: 0.670

    def test_unscaled_two_sided_window(self, instance):
        scaling = scale_sinkhorn_knopp(instance, 0)
        q = min(
            two_sided_match(instance, scaling=scaling, seed=s).cardinality
            / 800
            for s in range(5)
        )
        assert 0.40 < q < 0.60  # paper: 0.447

    def test_scaled_two_sided_window(self, instance):
        scaling = scale_sinkhorn_knopp(instance, 10)
        q = min(
            two_sided_match(instance, scaling=scaling, seed=s).cardinality
            / 800
            for s in range(5)
        )
        assert q > 0.93  # paper: 0.980


class TestTable2Windows:
    """d=5, iter=10 is the paper's tightest cell: 0.716 / 0.882."""

    def test_d5_iter10(self):
        n = 10_000
        g = sprand(n, 5.0, seed=0)
        maximum = sprank(g)
        scaling = scale_sinkhorn_knopp(g, 10)
        one_q = min(
            one_sided_match(g, scaling=scaling, seed=s).cardinality / maximum
            for s in range(3)
        )
        two_q = min(
            two_sided_match(g, scaling=scaling, seed=s).cardinality / maximum
            for s in range(3)
        )
        assert abs(one_q - 0.716) < 0.04
        assert abs(two_q - 0.882) < 0.04

    def test_d2_easier_than_d5(self):
        n = 10_000
        qualities = {}
        for d in (2, 5):
            g = sprand(n, float(d), seed=0)
            maximum = sprank(g)
            scaling = scale_sinkhorn_knopp(g, 10)
            qualities[d] = (
                two_sided_match(g, scaling=scaling, seed=1).cardinality
                / maximum
            )
        assert qualities[2] - qualities[5] > 0.04  # paper: 0.954 vs 0.882


class TestSpeedupWindows:
    def test_modelled_p16_band(self):
        """Figures 3-4: every suite instance lands in [9, 12.6] at p=16."""
        from repro.graph import suite_instance
        from repro.parallel import MachineModel
        from repro.parallel.machine import ScheduleSpec
        from repro.scaling.sinkhorn_knopp import sinkhorn_knopp_work_profile

        model = MachineModel()
        for name in ("venturiLevel3", "torso1", "europe_osm"):
            g = suite_instance(name, n=8000, seed=0)
            prof = sinkhorn_knopp_work_profile(g)
            sched = ScheduleSpec.dynamic(max(16, g.nrows // 256))
            s = model.speedup(prof, 16, schedule=sched, barriers=2)
            assert 9.0 < s < 12.6, name


class TestConjectureWindow:
    def test_one_out_constant_window(self):
        from repro.core import one_out_max_matching_size

        n = 200_000
        ratio = one_out_max_matching_size(n, seed=0) / n
        assert abs(ratio - TWO_SIDED_GUARANTEE) < 0.003
