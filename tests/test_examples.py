"""Smoke tests: every example script runs green at a reduced size."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["2000", "4"], "TwoSidedMatch"),
    ("jump_start_exact.py", ["3000", "4"], "exact solvers"),
    ("adversarial_karp_sipser.py", ["400", "8"], "Karp-Sipser"),
    ("rank_deficient_analysis.py", ["1500", "2"], "sprank"),
    ("parallel_scaling_demo.py", ["venturiLevel3", "5000"], "modelled speedups"),
    ("undirected_matching.py", ["1000", "6"], "1-out Karp-Sipser"),
    ("quality_certificates.py", ["1500", "4"], "Thm-1 bound"),
    ("block_triangular.py", ["800", "2"], "block upper"),
]


@pytest.mark.parametrize("script,args,expect", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args, expect):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expect in proc.stdout, (
        f"{script} output missing {expect!r}:\n{proc.stdout[-2000:]}"
    )


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {c[0] for c in CASES}
    assert scripts == covered, f"untested examples: {scripts - covered}"
