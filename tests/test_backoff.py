"""Property tests for the shared backoff policy (`repro.resilience.backoff`).

The policy is the one retry-delay implementation for both
``ResilientBackend`` chunk retries and the network client, so its
invariants are pinned here once:

* every jittered delay lies in ``[(1 - jitter) * envelope, envelope]``;
* the undithered envelope is monotone non-decreasing and capped;
* equal seeds give bitwise-equal delay sequences; the envelope is
  seed-independent;
* invalid parameters fail typed at construction.
"""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BackendError
from repro.resilience.backoff import BackoffPolicy, BackoffSchedule

policies = st.builds(
    BackoffPolicy,
    initial=st.floats(0.0, 5.0, allow_nan=False),
    factor=st.floats(1.0, 4.0, allow_nan=False),
    maximum=st.floats(5.0, 50.0, allow_nan=False),
    jitter=st.floats(0.0, 1.0, allow_nan=False),
)


@given(policy=policies, seed=st.integers(0, 2**32), k=st.integers(1, 40))
def test_delays_stay_inside_the_jitter_envelope(policy, seed, k):
    schedule = policy.schedule(seed)
    for retry in range(k):
        envelope = policy.envelope(retry)
        assert schedule.peek_envelope() == pytest.approx(envelope)
        delay = schedule.next()
        assert delay <= envelope + 1e-12
        assert delay >= (1.0 - policy.jitter) * envelope - 1e-12


@given(policy=policies, k=st.integers(1, 60))
def test_envelope_is_monotone_and_capped(policy, k):
    envelopes = [policy.envelope(retry) for retry in range(k)]
    assert all(b >= a for a, b in zip(envelopes, envelopes[1:]))
    assert all(e <= policy.maximum for e in envelopes)
    assert envelopes[0] == min(policy.initial, policy.maximum)


@given(policy=policies, seed=st.integers(0, 2**32), k=st.integers(1, 30))
def test_same_seed_same_sequence(policy, seed, k):
    first = policy.schedule(seed)
    second = policy.schedule(seed)
    assert [first.next() for _ in range(k)] == [
        second.next() for _ in range(k)
    ]


@given(policy=policies, seed=st.integers(0, 2**32), k=st.integers(1, 20))
def test_reset_restarts_the_envelope(policy, seed, k):
    schedule = policy.schedule(seed)
    for _ in range(k):
        schedule.next()
    schedule.reset()
    assert schedule.peek_envelope() == pytest.approx(
        min(policy.initial, policy.maximum)
    )


def test_string_seeds_are_deterministic():
    # ResilientBackend seeds per-chunk schedules with "seed:chunk"
    # strings; random.Random hashes str seeds stably across runs.
    policy = BackoffPolicy()
    a = [policy.schedule("7:3").next() for _ in range(5)]
    b = [policy.schedule("7:3").next() for _ in range(5)]
    assert a == b


@pytest.mark.parametrize(
    "kwargs",
    [
        {"initial": -0.1},
        {"factor": 0.5},
        {"initial": 3.0, "maximum": 1.0},
        {"jitter": -0.01},
        {"jitter": 1.5},
    ],
)
def test_invalid_parameters_fail_typed(kwargs):
    with pytest.raises(BackendError):
        BackoffPolicy(**kwargs)


def test_negative_retry_index_fails_typed():
    with pytest.raises(BackendError):
        BackoffPolicy().envelope(-1)


def test_zero_jitter_is_exactly_the_envelope():
    policy = BackoffPolicy(initial=0.1, factor=2.0, maximum=0.5, jitter=0.0)
    schedule = policy.schedule(0)
    assert [schedule.next() for _ in range(4)] == [0.1, 0.2, 0.4, 0.5]


def test_concurrent_draws_each_stay_inside_some_envelope():
    # Chunk supervisors may share one schedule; under interleaving every
    # draw must still fall inside the envelope active when it was taken.
    policy = BackoffPolicy(initial=0.01, factor=2.0, maximum=1.0, jitter=0.5)
    schedule = BackoffSchedule(policy, seed=3)
    delays: list[float] = []
    lock = threading.Lock()

    def worker() -> None:
        for _ in range(50):
            d = schedule.next()
            with lock:
                delays.append(d)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(delays) == 200
    assert all(0.0 < d <= policy.maximum for d in delays)
