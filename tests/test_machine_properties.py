"""Property-based tests for the machine cost model and the simulator."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.parallel import MachineModel, SimScheduler
from repro.parallel.machine import ScheduleSpec


@st.composite
def work_profiles(draw):
    n = draw(st.integers(1, 400))
    seed = draw(st.integers(0, 10_000))
    skew = draw(st.floats(0.0, 3.0))
    rng = np.random.default_rng(seed)
    work = np.exp(rng.normal(0.0, skew, n)) + 1.0
    return work


@st.composite
def schedules(draw):
    kind = draw(st.sampled_from(["static", "dynamic", "guided"]))
    chunk = draw(st.integers(1, 64))
    if kind == "static":
        return ScheduleSpec.static()
    if kind == "dynamic":
        return ScheduleSpec.dynamic(chunk)
    return ScheduleSpec.guided(chunk)


class TestMachineModelProperties:
    @given(work_profiles(), st.integers(1, 32), schedules())
    @settings(max_examples=60, deadline=None)
    def test_speedup_never_exceeds_thread_count(self, work, p, sched):
        model = MachineModel()
        assert model.speedup(work, p, schedule=sched) <= p + 1e-9

    @given(work_profiles(), st.integers(1, 32), schedules())
    @settings(max_examples=60, deadline=None)
    def test_makespan_at_least_critical_path(self, work, p, sched):
        """Tp >= max(total/p, heaviest single chunk item)."""
        model = MachineModel(chunk_overhead=0.0)
        bd = model.parallel_time(work, p, schedule=sched)
        assert bd.makespan >= work.sum() / p - 1e-6
        assert bd.makespan >= work.max() - 1e-6

    @given(work_profiles(), schedules())
    @settings(max_examples=40, deadline=None)
    def test_single_thread_makespan_is_total_work(self, work, sched):
        model = MachineModel(chunk_overhead=0.0)
        bd = model.parallel_time(work, 1, schedule=sched)
        assert bd.makespan == pytest.approx(work.sum(), rel=1e-9)

    @given(work_profiles(), st.integers(2, 32))
    @settings(max_examples=40, deadline=None)
    def test_chunk_overhead_monotone(self, work, p):
        """More per-chunk overhead can only slow things down."""
        sched = ScheduleSpec.dynamic(8)
        cheap = MachineModel(chunk_overhead=0.0).parallel_time(
            work, p, schedule=sched
        )
        costly = MachineModel(chunk_overhead=100.0).parallel_time(
            work, p, schedule=sched
        )
        assert costly.total >= cheap.total

    @given(st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_bandwidth_factor_continuous_at_roof(self, p):
        model = MachineModel(bandwidth_threads=float(p))
        assert model.bandwidth_factor(p) == pytest.approx(1.0)
        assert model.bandwidth_factor(p + 1) > 1.0


class TestHeavyItemSplitting:
    """The paper's Section 2.2 remark: split skewed rows across threads."""

    def test_total_work_preserved_modulo_merge_cost(self):
        work = np.array([100.0, 1.0, 1.0])
        split = MachineModel.split_heavy_items(work, 10.0)
        assert split.max() <= 11.0 + 1e-9
        # Total grows only by the merge units.
        assert work.sum() <= split.sum() <= work.sum() + 12.0

    def test_no_heavy_items_is_identity(self):
        work = np.ones(5)
        np.testing.assert_array_equal(
            MachineModel.split_heavy_items(work, 10.0), work
        )

    def test_bad_threshold(self):
        from repro.errors import ScheduleError

        with pytest.raises(ScheduleError):
            MachineModel.split_heavy_items(np.ones(3), 0.0)

    def test_splitting_improves_skewed_speedup(self):
        """The paper's point: torso1-style skew stops hurting once heavy
        rows are split across threads."""
        model = MachineModel()
        rng = np.random.default_rng(0)
        work = rng.pareto(1.0, 3_000) * 20.0 + 2.0
        sched = ScheduleSpec.dynamic(16)
        base = model.speedup(work, 16, schedule=sched)
        split = model.speedup(
            MachineModel.split_heavy_items(work, float(np.median(work) * 8)),
            16,
            schedule=sched,
        )
        assert split > base

    @given(work_profiles(), st.floats(1.0, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_split_never_exceeds_threshold_plus_merge(self, work, threshold):
        split = MachineModel.split_heavy_items(work, threshold)
        assert split.max() <= max(work.min(), threshold) + 1.0 + 1e-9


class TestSchedulerProperties:
    @staticmethod
    def _noop_program(steps):
        for _ in range(steps):
            yield

    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=8),
        st.sampled_from(["round_robin", "random", "sequential", "adversarial"]),
        st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_steps_conserved(self, step_counts, policy, seed):
        programs = [self._noop_program(s) for s in step_counts]
        stats = SimScheduler(programs, policy=policy, seed=seed).run()
        assert stats.total_steps == sum(step_counts)
        assert stats.steps_per_thread == step_counts

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_schedules_differ_across_seeds_eventually(self, seed):
        """Two different seeds should (almost always) give different
        traces on a sufficiently long run."""

        def trace(s):
            programs = [self._noop_program(20) for _ in range(3)]
            return SimScheduler(
                programs, policy="random", seed=s, keep_trace=True
            ).run().trace

        assume(seed != seed + 1)
        t1, t2 = trace(seed), trace(seed + 1)
        # Not a hard guarantee per pair, but collisions over 60 steps are
        # astronomically unlikely; tolerate them by checking length only
        # when equal.
        if t1 == t2:  # pragma: no cover - probability ~ 3^-60
            assert len(t1) == 60
        else:
            assert len(t1) == len(t2) == 60
