"""Tests for structural diagnostics (repro.graph.properties)."""

import numpy as np

from repro.graph import (
    degree_statistics,
    from_dense,
    full_ones,
    has_total_support_certificate,
    identity,
    is_perfect_matchable,
    sprand_rect,
    union_of_permutations,
)


class TestDegreeStatistics:
    def test_identity(self):
        rows, cols = degree_statistics(identity(5))
        assert rows.minimum == rows.maximum == 1
        assert rows.mean == 1.0
        assert rows.variance == 0.0
        assert rows.empty_count == 0
        assert cols == rows

    def test_with_empty_rows(self):
        g = from_dense(np.array([[1, 1], [0, 0]]))
        rows, cols = degree_statistics(g)
        assert rows.empty_count == 1
        assert rows.maximum == 2
        assert cols.empty_count == 0

    def test_empty_graph(self):
        g = from_dense(np.zeros((0, 0)))
        rows, _ = degree_statistics(g)
        assert rows.mean == 0.0


class TestSupport:
    def test_identity_perfect(self):
        assert is_perfect_matchable(identity(4))

    def test_rectangular_never_perfect(self):
        assert not is_perfect_matchable(sprand_rect(3, 4, 2.0, seed=0))

    def test_triangular_has_support_not_total(self):
        # Upper triangular: perfect matching (diagonal) exists, but the
        # strictly-upper entries are never in one.
        a = np.triu(np.ones((4, 4)))
        g = from_dense(a)
        assert is_perfect_matchable(g)
        assert not has_total_support_certificate(g)

    def test_full_matrix_total_support(self):
        assert has_total_support_certificate(full_ones(4))

    def test_union_of_permutations_total_support(self):
        g = union_of_permutations(25, 2, seed=3)
        assert has_total_support_certificate(g)

    def test_deficient_matrix_no_support(self):
        a = np.array([[1, 1], [0, 0]])
        assert not has_total_support_certificate(from_dense(a))
