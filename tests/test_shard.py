"""Sharded matching subsystem tests (``pytest -m shard``).

The subsystem's contract is differential: for every shard count K the
partitioned scale→choice→reconcile pipeline must produce **bitwise** the
same scaling vectors, choices, matching, and §3.3 guarantee as the
unsharded serial pipeline (``two_sided_match(engine="vectorized")``).
The matrix below proves it per generator family at K ∈ {1, 2, 4}, plus:

* partition invariants — chunk-aligned deterministic bounds, frontier
  edges really cross ownership, ``plan_for_budget`` finds the smallest
  K under a per-shard memory cap and the capped plan still matches;
* the reconcile round loop pinned bitwise to
  :func:`karp_sipser_mt_vectorized` (its serial ancestor);
* the daemon tier — shard verbs through a live :class:`Dispatcher`, the
  full coordinator over a subprocess router fleet (bitwise vs the sim
  tier), and a SIGKILL of a shard daemon mid-round recovering to the
  identical merged matching;
* keep-alive :class:`~repro.serve.net.ResilientClient` connections and
  the dispatcher's bounded acked-rid replay cache.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import telemetry
from repro.core import two_sided_match
from repro.core.karp_sipser_mt import karp_sipser_mt_vectorized
from repro.errors import (
    ConvergenceWarning,
    PartitionedError,
    ShardError,
    StreamError,
)
from repro.graph import from_dense
from repro.graph.adversarial import karp_sipser_adversarial
from repro.graph.generators import (
    fully_indecomposable,
    sprand,
    sprand_rect,
    union_of_permutations,
)
from repro.matching.matching import NIL
from repro.parallel.kernels import kernel_chunk_override
from repro.scaling import scale_sinkhorn_knopp
from repro.shard import (
    ShardPlan,
    plan_for_budget,
    plan_shards,
    reconcile_serial,
    shard_match,
)

pytestmark = pytest.mark.shard

#: Small chunk override so graphs of a few hundred vertices split into
#: real multi-shard plans (the production grid's 8192 minimum chunk
#: would collapse them into one shard).  The serial reference runs under
#: the same override, so the differential contract is unchanged.
CHUNK = 32

FAMILIES = {
    "sprand": lambda: sprand(240, 4.0, seed=3),
    "sprand_rect": lambda: sprand_rect(200, 260, 3.0, seed=5),
    "union_of_permutations": lambda: union_of_permutations(220, 3, seed=1),
    "fully_indecomposable": lambda: fully_indecomposable(210, 3.0, seed=2),
    "adversarial": lambda: karp_sipser_adversarial(60, 6),
}


def _serial_reference(g, iterations=5, seed=3, scaling=None):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        if scaling is None:
            return two_sided_match(
                g, iterations, seed=seed, engine="vectorized"
            )
        return two_sided_match(
            g, scaling=scaling, seed=seed, engine="vectorized"
        )


def _assert_bitwise_equal(res, ref):
    np.testing.assert_array_equal(res.matching.row_match, ref.matching.row_match)
    np.testing.assert_array_equal(res.matching.col_match, ref.matching.col_match)
    np.testing.assert_array_equal(res.scaling.dr, ref.scaling.dr)
    np.testing.assert_array_equal(res.scaling.dc, ref.scaling.dc)
    assert res.scaling.error == ref.scaling.error
    assert res.scaling.rung == ref.scaling.rung
    assert res.guarantee == ref.guarantee
    assert res.cardinality == ref.cardinality


# ---------------------------------------------------------------------------
# differential matrix: sharded == serial bitwise, per family and K


@pytest.mark.parametrize("k", [1, 2, 4])
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_differential_matrix(family, k):
    g = FAMILIES[family]()
    with kernel_chunk_override(CHUNK):
        ref = _serial_reference(g)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            res = shard_match(g, k, 5, seed=3)
    assert res.n_shards == k and res.tier == "sim"
    _assert_bitwise_equal(res, ref)


def test_shard_count_invariance():
    g = sprand(300, 4.0, seed=9)
    with kernel_chunk_override(CHUNK):
        results = [shard_match(g, k, 4, seed=1) for k in (1, 2, 3, 4, 5)]
    base = results[0]
    for res in results[1:]:
        np.testing.assert_array_equal(
            res.matching.row_match, base.matching.row_match
        )
        assert res.rounds == base.rounds
        assert res.guarantee == base.guarantee


def test_default_chunk_grid_large():
    """No override: the production 8192-chunk grid, real 3-way split."""
    g = sprand(20_000, 4.0, seed=0)
    assert plan_shards(g, 3).boundary_edges > 0
    ref = _serial_reference(g, iterations=4, seed=2)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        res = shard_match(g, 3, 4, seed=2)
    _assert_bitwise_equal(res, ref)


def test_warm_start_and_tolerance_bitwise():
    g = union_of_permutations(200, 3, seed=4)
    prior = scale_sinkhorn_knopp(g, 3)
    with kernel_chunk_override(CHUNK):
        sc = scale_sinkhorn_knopp(g, tolerance=1e-8, initial=prior)
        ref = _serial_reference(g, seed=6, scaling=sc)
        res = shard_match(
            g, 3, None, seed=6, tolerance=1e-8, initial=prior
        )
    assert res.scaling.warm_started and res.scaling.converged
    _assert_bitwise_equal(res, ref)


def test_empty_graph_uniform_rung():
    g = from_dense(np.zeros((6, 4), dtype=int))
    res = shard_match(g, 2, 5, seed=0)
    ref = _serial_reference(g, seed=0)
    assert res.scaling.rung == "uniform"
    assert res.cardinality == 0
    _assert_bitwise_equal(res, ref)


def test_capped_rung_warns_like_serial():
    # A structurally deficient pattern: SK cannot converge, the ladder
    # caps the budget, and both pipelines must warn identically.
    dense = np.zeros((40, 40), dtype=int)
    dense[:, 0] = 1
    dense[0, :] = 1
    g = from_dense(dense)
    with kernel_chunk_override(CHUNK):
        with pytest.warns(ConvergenceWarning) as serial_warns:
            ref = two_sided_match(g, 60, seed=1, engine="vectorized")
        with pytest.warns(ConvergenceWarning) as shard_warns:
            res = shard_match(g, 2, 60, seed=1)
    assert res.scaling.rung == "capped" == ref.scaling.rung
    assert str(shard_warns[0].message) == str(serial_warns[0].message)
    _assert_bitwise_equal(res, ref)


# ---------------------------------------------------------------------------
# reconcile pinned to its serial ancestor


@pytest.mark.parametrize("seed", range(6))
def test_reconcile_matches_vectorized_karp_sipser(seed):
    rng = np.random.default_rng(seed)
    nrows, ncols = 130, 110
    rc = rng.integers(0, ncols, size=nrows).astype(np.int64)
    cc = rng.integers(0, nrows, size=ncols).astype(np.int64)
    rc[rng.random(nrows) < 0.2] = NIL
    cc[rng.random(ncols) < 0.2] = NIL
    matching, rounds = reconcile_serial(rc, cc)
    ref = karp_sipser_mt_vectorized(rc, cc)
    np.testing.assert_array_equal(matching.row_match, ref.row_match)
    np.testing.assert_array_equal(matching.col_match, ref.col_match)
    assert rounds >= 1


# ---------------------------------------------------------------------------
# partition invariants


def test_plan_is_deterministic_and_covers_edges():
    g = sprand(260, 4.0, seed=7)
    with kernel_chunk_override(CHUNK):
        a = plan_shards(g, 4)
        b = plan_shards(g, 4)
    assert a.row_bounds == b.row_bounds and a.col_bounds == b.col_bounds
    assert sum(s.csr_nnz for s in a.shards) == g.nnz
    assert sum(s.csc_nnz for s in a.shards) == g.nnz
    for bounds, n in ((a.row_bounds, g.nrows), (a.col_bounds, g.ncols)):
        assert bounds[0] == 0 and bounds[-1] == n
        assert all(x <= y for x, y in zip(bounds, bounds[1:]))
        assert all(x % CHUNK == 0 for x in bounds[1:-1])


def test_frontier_edges_really_cross_ownership():
    g = sprand(260, 4.0, seed=7)
    with kernel_chunk_override(CHUNK):
        plan = plan_shards(g, 4)
    assert plan.boundary_edges > 0
    for shard in plan.shards:
        assert shard.frontier_rows.shape == shard.frontier_cols.shape
        for i, j in zip(shard.frontier_rows, shard.frontier_cols):
            assert shard.row_lo <= i < shard.row_hi
            assert plan.owner_of_col(int(j)) != shard.index
            assert plan.owner_of_row(int(i)) == shard.index


def test_owner_helpers_and_plan_errors():
    g = sprand(100, 3.0, seed=0)
    with kernel_chunk_override(CHUNK):
        plan = plan_shards(g, 3)
        for i in (0, 50, 99):
            k = plan.owner_of_row(i)
            assert plan.row_bounds[k] <= i < plan.row_bounds[k + 1]
        with pytest.raises(ShardError):
            plan.owner_of_row(100)
        with pytest.raises(ShardError):
            plan.owner_of_col(-1)
        with pytest.raises(ShardError):
            plan_shards(g, 0)
        with pytest.raises(ShardError):
            plan_for_budget(g, 0)


def test_plan_for_budget_matches_under_memory_cap():
    """A per-shard cap smaller than the whole graph forces K > 1, and the
    capped plan's matching still equals the unsharded run bitwise."""
    g = sprand(300, 4.0, seed=11)
    with kernel_chunk_override(CHUNK):
        whole = plan_shards(g, 1).max_held_nnz
        cap = whole // 2
        plan = plan_for_budget(g, cap)
        assert isinstance(plan, ShardPlan)
        assert plan.n_shards > 1
        assert plan.max_held_nnz <= cap < whole
        # No coarser plan would have fit: the next-smaller K overflows.
        assert plan_shards(g, plan.n_shards - 1).max_held_nnz > cap
        res = plan.run(g, 5, seed=11)
        ref = _serial_reference(g, iterations=5, seed=11)
    _assert_bitwise_equal(res, ref)
    res.matching.validate(g)


# ---------------------------------------------------------------------------
# daemon tier: shard verbs through a live dispatcher (in-process)


def _dispatcher(max_streams=8, acked_cap=1024):
    from repro.serve.daemon import Dispatcher, GraphCache, _StreamRegistry
    from repro.serve.server import MatchingServer

    server = MatchingServer("serial")
    dispatcher = Dispatcher(
        server,
        GraphCache(4),
        _StreamRegistry(max_streams, "serial"),
        acked_cap=acked_cap,
    )
    return server, dispatcher


def test_dispatcher_shard_verbs_roundtrip():
    spec = {"kind": "sprand", "n": 120, "degree": 4.0, "seed": 2}
    g = sprand(120, 4.0, seed=2)
    with kernel_chunk_override(CHUNK):
        plan = plan_shards(g, 2)
        sim = shard_match(g, 2, 3, seed=5, plan=plan)
    sc, rc, cc = sim.scaling, sim.row_choice, sim.col_choice
    server, dispatcher = _dispatcher()
    try:
        handles = []
        for k in range(2):
            response, _ = dispatcher.handle({
                "op": "shard_open", "id": k, "graph": spec,
                "n_shards": 2, "index": k,
                "chunk_rows": plan.chunk_rows,
                "chunk_cols": plan.chunk_cols,
            })
            assert response["ok"], response
            assert response["csr_nnz"] == plan.shards[k].csr_nnz
            assert response["frontier"] == plan.shards[k].frontier_size
            handles.append(response["handle"])
        # Choices on the daemon's slices equal the sim tier's blocks.
        for k, handle in enumerate(handles):
            s = plan.shards[k]
            response, _ = dispatcher.handle({
                "op": "shard_choices", "id": 10 + k, "handle": handle,
                "which": "row", "opp": sc.dc.tolist(),
                "draws": None,
            })
            assert response["ok"]
        # Arm, run the reconcile rounds, finish: checksums must agree and
        # the merged matching must equal the sim tier's bitwise.
        for k, handle in enumerate(handles):
            response, _ = dispatcher.handle({
                "op": "shard_arm", "id": 20 + k, "handle": handle,
                "row_choice": rc.tolist(), "col_choice": cc.tolist(),
            })
            assert response["ok"] and response["armed"]
        while True:
            scans = []
            for k, handle in enumerate(handles):
                response, _ = dispatcher.handle({
                    "op": "shard_scan", "id": 30 + k, "handle": handle,
                })
                assert response["ok"]
                scans.append(response)
            merged = [v for r in scans for v in r["rows"]] + [
                v for r in scans for v in r["cols"]
            ]
            committed = set()
            for k, handle in enumerate(handles):
                response, _ = dispatcher.handle({
                    "op": "shard_commit", "id": 40 + k, "handle": handle,
                    "candidates": merged,
                })
                assert response["ok"]
                committed.add(response["committed"])
            assert len(committed) == 1
            if not committed.pop():
                break
        digests = set()
        for k, handle in enumerate(handles):
            response, _ = dispatcher.handle({
                "op": "shard_finish", "id": 50 + k, "handle": handle,
            })
            assert response["ok"]
            digests.add(response["checksum"])
            from repro.core.karp_sipser_mt import matching_from_unified

            match = np.asarray(response["match"], dtype=np.int64)
            merged_matching = matching_from_unified(
                match, g.nrows, g.ncols
            )
            np.testing.assert_array_equal(
                merged_matching.row_match, sim.matching.row_match
            )
        assert len(digests) == 1
        health, _ = dispatcher.handle({"op": "health", "id": 90})
        assert health["shards"] == 2
        for k, handle in enumerate(handles):
            response, _ = dispatcher.handle({
                "op": "shard_close", "id": 60 + k, "handle": handle,
            })
            assert response["ok"] and response["closed"]
        health, _ = dispatcher.handle({"op": "health", "id": 91})
        assert health["shards"] == 0
    finally:
        server.close()


def test_dispatcher_shard_errors_are_typed():
    server, dispatcher = _dispatcher(max_streams=1)
    spec = {"kind": "sprand", "n": 40, "degree": 3.0, "seed": 0}
    try:
        response, _ = dispatcher.handle({
            "op": "shard_sweep", "id": 1, "handle": "s99", "which": "col",
        })
        assert not response["ok"] and response["error"] == "ShardError"
        opened, _ = dispatcher.handle({
            "op": "shard_open", "id": 2, "graph": spec,
            "n_shards": 1, "index": 0,
        })
        assert opened["ok"]
        # Unarmed scan is a typed error, not a crash.
        response, _ = dispatcher.handle({
            "op": "shard_scan", "id": 3, "handle": opened["handle"],
        })
        assert not response["ok"] and response["error"] == "ShardError"
        # Handle budget is shared with stream sessions.
        response, _ = dispatcher.handle({
            "op": "shard_open", "id": 4, "graph": spec,
            "n_shards": 2, "index": 1,
        })
        assert not response["ok"] and response["error"] == "StreamError"
    finally:
        server.close()


def test_dispatcher_acked_cache_is_bounded():
    with telemetry.session() as reg:
        server, dispatcher = _dispatcher(acked_cap=2)
        try:
            for i in range(4):
                response, _ = dispatcher.handle(
                    {"op": "health", "id": i, "rid": f"r{i}"}
                )
                assert response["ok"]
            # Cap 2: remembering r2 evicted r0, remembering r3 evicted r1.
            assert dispatcher.rid_evictions == 2
            assert len(dispatcher._acked) == 2
            # A retry inside the window replays the cached ack...
            replay, _ = dispatcher.handle(
                {"op": "health", "id": 9, "rid": "r3"}
            )
            assert replay["ok"]
            assert reg.counter("serve.rid_replays").value == 1
            # ...and a retry of an evicted rid re-executes instead.
            fresh, _ = dispatcher.handle(
                {"op": "health", "id": 10, "rid": "r0"}
            )
            assert fresh["ok"]
            assert reg.counter("serve.rid_replays").value == 1
            assert reg.counter("serve.rid_evictions").value >= 2
            health, _ = dispatcher.handle({"op": "health", "id": 11})
            assert health["rid_evictions"] >= 2
        finally:
            server.close()


def test_dispatcher_rejects_bad_acked_cap():
    from repro.errors import ServiceError

    with pytest.raises(ServiceError):
        _dispatcher(acked_cap=0)


# ---------------------------------------------------------------------------
# journal / checkpoint round-trip of shard sessions


def test_shard_sessions_survive_journal_recovery(tmp_path):
    from repro.serve.daemon import GraphCache, _StreamRegistry
    from repro.serve.journal import DurableLog
    from repro.serve.recovery import recover_registry

    spec = {"kind": "sprand", "n": 90, "degree": 4.0, "seed": 6}
    g = sprand(90, 4.0, seed=6)
    with kernel_chunk_override(CHUNK):
        plan = plan_shards(g, 2)
        sim = shard_match(g, 2, 3, seed=8, plan=plan)
    cache = GraphCache(4)
    # checkpoint_every=2 forces a mid-stream snapshot, so recovery
    # exercises checkpoint load + WAL tail replay, not replay alone.
    registry = _StreamRegistry(
        8, None, journal=DurableLog(str(tmp_path), checkpoint_every=2)
    )
    handles = []
    for k in range(2):
        opened = registry.shard_open(
            {"graph": spec, "n_shards": 2, "index": k,
             "chunk_rows": plan.chunk_rows, "chunk_cols": plan.chunk_cols,
             "rid": f"open-{k}"},
            cache,
        )
        handles.append(opened["handle"])
    for k, handle in enumerate(handles):
        registry.shard_arm({
            "handle": handle, "rid": f"arm-{k}",
            "row_choice": sim.row_choice.tolist(),
            "col_choice": sim.col_choice.tolist(),
        })
    # One committed round before the "crash".
    scans = [registry.shard_scan({"handle": h}) for h in handles]
    merged = [v for r in scans for v in r["rows"]] + [
        v for r in scans for v in r["cols"]
    ]
    committed = [
        registry.shard_commit(
            {"handle": h, "rid": f"c0-{k}", "candidates": merged}
        )
        for k, h in enumerate(handles)
    ]
    assert all(r["committed"] for r in committed)
    mid_states = {h: registry._shards[h].export_state() for h in handles}
    registry.journal.close()

    recovered, report = recover_registry(
        str(tmp_path), cache=GraphCache(4), attach_journal=False
    )
    assert sorted(recovered._shards) == sorted(handles)
    for handle in handles:
        assert recovered._shards[handle].export_state() == mid_states[handle]
    # The recovered replica, driven to completion, lands on the sim
    # tier's matching — the crash lost nothing.
    while True:
        scans = [recovered.shard_scan({"handle": h}) for h in handles]
        merged = [v for r in scans for v in r["rows"]] + [
            v for r in scans for v in r["cols"]
        ]
        if not all(
            recovered.shard_commit({"handle": h, "candidates": merged})[
                "committed"
            ]
            for h in handles
        ):
            break
    digests = {
        recovered.shard_finish({"handle": h})["checksum"] for h in handles
    }
    assert len(digests) == 1
    from repro.core.karp_sipser_mt import matching_from_unified

    final = matching_from_unified(
        recovered._shards[handles[0]].state.match, g.nrows, g.ncols
    )
    np.testing.assert_array_equal(
        final.row_match, sim.matching.row_match
    )


# ---------------------------------------------------------------------------
# daemon tier: subprocess router fleet (e2e)


def test_daemon_tier_bitwise_equals_sim_tier(tmp_path):
    from repro.serve.router import Router
    from repro.shard import shard_match_daemons

    spec = {"kind": "sprand", "n": 250, "degree": 4.0, "seed": 9}
    g = sprand(250, 4.0, seed=9)
    sim = shard_match(g, 3, iterations=4, seed=21)
    with Router(
        2, str(tmp_path / "rt"), backend="serial", health_interval=0.0
    ) as router:
        dmn = shard_match_daemons(
            spec, 3, iterations=4, router=router, seed=21, graph=g
        )
    assert dmn.tier == "daemon"
    _assert_bitwise_equal(dmn, sim)
    np.testing.assert_array_equal(dmn.row_choice, sim.row_choice)
    np.testing.assert_array_equal(dmn.col_choice, sim.col_choice)
    assert dmn.rounds == sim.rounds


def test_daemon_tier_survives_shard_kill_mid_round(tmp_path):
    from repro.serve.router import Router
    from repro.shard import shard_match_daemons

    spec = {"kind": "sprand", "n": 250, "degree": 4.0, "seed": 9}
    g = sprand(250, 4.0, seed=9)
    sim = shard_match(g, 3, iterations=4, seed=21)
    with Router(
        2, str(tmp_path / "rt"), backend="serial", health_interval=0.0
    ) as router:
        plain = router.request
        state = {"commits": 0, "killed": False}

        def chaotic(msg, **kw):
            if msg.get("op") == "shard_commit" and not state["killed"]:
                state["commits"] += 1
                if state["commits"] == 2:
                    owner = msg["handle"].split(":", 1)[0]
                    victim = router._node_by_name(owner)
                    assert victim.alive()
                    victim.proc.kill()  # SIGKILL, no goodbye
                    victim.proc.wait()
                    state["killed"] = True
            return plain(msg, **kw)

        router.request = chaotic
        dmn = shard_match_daemons(
            spec, 3, iterations=4, router=router, seed=21, graph=g
        )
        router.request = plain
        assert state["killed"]
        restarts = sum(
            node["restarts"] for node in router.health()["nodes"]
        )
        assert restarts >= 1
    # Zero acked loss: the recovered run equals the uninterrupted one.
    _assert_bitwise_equal(dmn, sim)


# ---------------------------------------------------------------------------
# keep-alive client


def _socket_stack(tmp_path, name="ka.sock"):
    from repro.serve.daemon import Dispatcher, GraphCache, _StreamRegistry
    from repro.serve.net import SocketServer
    from repro.serve.server import MatchingServer

    server = MatchingServer("serial")
    dispatcher = Dispatcher(server, GraphCache(4), _StreamRegistry(4, "serial"))
    front = SocketServer(
        dispatcher, f"unix:{tmp_path}/{name}", deadline=30.0
    )
    return server, front


def test_keepalive_reuses_one_connection(tmp_path):
    from repro.serve.net import ResilientClient

    server, front = _socket_stack(tmp_path)
    with telemetry.session() as reg:
        with front:
            client = ResilientClient(front.address, retries=1, keepalive=True)
            try:
                for _ in range(4):
                    assert client.request({"op": "health"})["ok"]
            finally:
                client.close()
        server.close()
    assert reg.counter("serve.net.client_connects").value == 1
    assert reg.counter("serve.net.client_conn_reuses").value == 3


def test_keepalive_reconnects_after_connection_drop(tmp_path):
    from repro.serve.net import ResilientClient

    server, front = _socket_stack(tmp_path)
    with telemetry.session() as reg:
        with front:
            client = ResilientClient(front.address, retries=2, keepalive=True)
            try:
                assert client.request({"op": "health"})["ok"]
                # Sever the kept connection under the client's feet
                # (shutdown, not close: the reader's io-ref would keep a
                # closed fd alive); the next request must fail the stale
                # socket, redial, and succeed — inside one request().
                import socket as _socket

                client._conn.shutdown(_socket.SHUT_RDWR)
                assert client.request({"op": "health"})["ok"]
            finally:
                client.close()
        server.close()
    assert reg.counter("serve.net.client_connects").value == 2
    assert reg.counter("serve.net.client_retries").value >= 1


def test_keepalive_exhaustion_stays_typed(tmp_path):
    from repro.serve.net import ResilientClient

    client = ResilientClient(
        f"unix:{tmp_path}/nobody-home.sock",
        retries=1, deadline=0.5, keepalive=True,
    )
    with pytest.raises(PartitionedError):
        client.request({"op": "health"})
    client.close()


def test_fresh_connection_mode_is_unchanged(tmp_path):
    from repro.serve.net import ResilientClient

    server, front = _socket_stack(tmp_path)
    with telemetry.session() as reg:
        with front:
            client = ResilientClient(front.address, retries=1)
            for _ in range(3):
                assert client.request({"op": "health"})["ok"]
            client.close()  # harmless no-op without keepalive
        server.close()
    assert reg.counter("serve.net.client_conn_reuses").value == 0
