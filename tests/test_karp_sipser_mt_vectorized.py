"""Tests for the round-based vectorized KarpSipserMT engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import sprand
from repro.matching import hopcroft_karp
from repro.matching.matching import NIL
from repro.core import two_sided_match
from repro.core.karp_sipser_mt import (
    choice_graph,
    karp_sipser_mt,
    karp_sipser_mt_vectorized,
)
from repro.core.oneout import sample_uniform_one_out


@st.composite
def choice_arrays(draw):
    nrows = draw(st.integers(1, 50))
    ncols = draw(st.integers(1, 50))
    seed = draw(st.integers(0, 100_000))
    nil_frac = draw(st.floats(0.0, 0.3))
    rng = np.random.default_rng(seed)
    rc = rng.integers(0, ncols, nrows)
    cc = rng.integers(0, nrows, ncols)
    rc[rng.random(nrows) < nil_frac] = NIL
    cc[rng.random(ncols) < nil_frac] = NIL
    return rc.astype(np.int64), cc.astype(np.int64)


class TestVectorizedEngine:
    @given(choice_arrays())
    @settings(max_examples=120, deadline=None)
    def test_maximum_on_choice_graph(self, arrays):
        rc, cc = arrays
        g = choice_graph(rc, cc)
        m = karp_sipser_mt_vectorized(rc, cc)
        m.validate(g)
        assert m.cardinality == hopcroft_karp(g).cardinality

    @given(choice_arrays())
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_serial_engine(self, arrays):
        rc, cc = arrays
        assert (
            karp_sipser_mt_vectorized(rc, cc).cardinality
            == karp_sipser_mt(rc, cc).cardinality
        )

    def test_chain_heavy_instance(self):
        """A single long chain forces many rounds."""
        n = 500
        # rows i -> col i; col i -> row i+1 (last col self-consistent).
        rc = np.arange(n, dtype=np.int64)
        cc = np.minimum(np.arange(n, dtype=np.int64) + 1, n - 1)
        g = choice_graph(rc, cc)
        m = karp_sipser_mt_vectorized(rc, cc)
        assert m.cardinality == hopcroft_karp(g).cardinality

    def test_pure_cycles(self):
        # Disjoint 2-cycles (2-cliques) and one big cycle.
        rc = np.array([0, 1, 3, 2], dtype=np.int64)
        cc = np.array([0, 1, 2, 3], dtype=np.int64)
        m = karp_sipser_mt_vectorized(rc, cc)
        g = choice_graph(rc, cc)
        assert m.cardinality == hopcroft_karp(g).cardinality

    def test_all_nil(self):
        m = karp_sipser_mt_vectorized(
            np.full(4, NIL, dtype=np.int64), np.full(3, NIL, dtype=np.int64)
        )
        assert m.cardinality == 0

    def test_large_instance_matches_serial(self):
        rc, cc = sample_uniform_one_out(100_000, seed=0)
        assert (
            karp_sipser_mt_vectorized(rc, cc).cardinality
            == karp_sipser_mt(rc, cc).cardinality
        )

    def test_star_contention(self):
        """Many rows choosing one column: exactly one pair matched plus
        whatever the column's own choice allows."""
        n = 50
        rc = np.zeros(n, dtype=np.int64)
        cc = np.full(1, 0, dtype=np.int64)
        m = karp_sipser_mt_vectorized(rc, cc)
        g = choice_graph(rc, cc)
        assert m.cardinality == hopcroft_karp(g).cardinality == 1


class TestEngineOption:
    def test_two_sided_vectorized_engine(self):
        g = sprand(2000, 4.0, seed=0)
        serial = two_sided_match(g, 3, seed=5, engine="serial")
        fast = two_sided_match(g, 3, seed=5, engine="vectorized")
        fast.matching.validate(g)
        assert fast.cardinality == serial.cardinality
        assert fast.ks_stats is None  # the fast path skips counters
