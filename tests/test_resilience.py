"""Tests for the resilience layer: fault injection, the deadline/retry
backend wrapper, and their telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.errors import (
    BackendError,
    DeadlineExceededError,
    ResultCorruptionError,
    RetryExhaustedError,
    WorkerCrashError,
)
from repro.parallel import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.resilience import (
    CORRUPTED,
    Deadline,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilientBackend,
    active_plan,
    current_deadline,
    execute_with_fault,
    injected_faults,
    is_corrupted,
    request_deadline,
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _identity_range(lo: int, hi: int) -> np.ndarray:
    """Picklable kernel returning its slice (the library convention)."""
    return np.arange(lo, hi, dtype=np.int64)


def _buggy_range(lo: int, hi: int) -> np.ndarray:
    raise ValueError("kernel bug, not an infrastructure failure")


class TestFaultSpec:
    def test_address_matching(self):
        spec = FaultSpec("crash", backend="threads", chunk=1, call=0)
        assert spec.matches("threads", 1, 0)
        assert not spec.matches("serial", 1, 0)
        assert not spec.matches("threads", 0, 0)
        assert not spec.matches("threads", 1, 1)

    def test_wildcards_match_everything(self):
        spec = FaultSpec(FaultKind.SLOW)
        assert spec.matches("anything", 99, 12)

    def test_bad_probability_rejected(self):
        with pytest.raises(BackendError):
            FaultSpec("crash", probability=1.5)

    def test_kind_coerced_and_default_seconds(self):
        spec = FaultSpec("hang")
        assert spec.kind is FaultKind.HANG
        assert spec.seconds == 30.0


class TestFaultPlan:
    def test_max_hits_budget(self):
        plan = FaultPlan([FaultSpec("crash", max_hits=2)])
        hits = [plan.match("serial", 0, call) for call in range(4)]
        assert [h is not None for h in hits] == [True, True, False, False]

    def test_reset_restores_budget_and_calls(self):
        plan = FaultPlan([FaultSpec("crash", max_hits=1)])
        assert plan.match("serial", 0, 0) is not None
        assert plan.match("serial", 0, 1) is None
        plan.reset()
        assert plan.begin_call("serial") == 0
        assert plan.match("serial", 0, 0) is not None

    def test_probability_draw_deterministic(self):
        def draws():
            plan = FaultPlan(
                [FaultSpec("slow", probability=0.5)], seed=42
            )
            return [
                plan.match("threads", chunk, call) is not None
                for chunk in range(8)
                for call in range(4)
            ]

        first = draws()
        assert first == draws()
        assert any(first) and not all(first)  # p=0.5 actually splits

    def test_different_seeds_differ(self):
        def draws(seed):
            plan = FaultPlan(
                [FaultSpec("slow", probability=0.5)], seed=seed
            )
            return [plan.match("t", c, 0) is not None for c in range(32)]

        assert draws(0) != draws(1)

    def test_begin_call_counts_per_backend(self):
        plan = FaultPlan([])
        assert plan.begin_call("serial") == 0
        assert plan.begin_call("serial") == 1
        assert plan.begin_call("threads") == 0

    def test_plan_call_addresses_each_chunk(self):
        plan = FaultPlan([FaultSpec("crash", chunk=2)])
        specs = plan.plan_call("serial", 4)
        assert [s is not None for s in specs] == [False, False, True, False]

    def test_fault_telemetry_counters(self):
        reg = telemetry.enable()
        plan = FaultPlan([FaultSpec("corrupt")])
        plan.match("serial", 0, 0)
        assert reg.counter("resilience.faults.injected").value == 1
        assert reg.counter("resilience.faults.corrupt").value == 1


class TestInjectionContext:
    def test_off_by_default_and_restored(self):
        assert active_plan() is None
        plan = FaultPlan([])
        with injected_faults(plan):
            assert active_plan() is plan
        assert active_plan() is None

    def test_nested_installs_restore_previous(self):
        outer, inner = FaultPlan([]), FaultPlan([])
        with injected_faults(outer):
            with injected_faults(inner):
                assert active_plan() is inner
            assert active_plan() is outer


class TestExecuteWithFault:
    def test_none_spec_runs_clean(self):
        out = execute_with_fault(None, _identity_range, 2, 5)
        np.testing.assert_array_equal(out, [2, 3, 4])

    def test_crash_raises_in_process(self):
        with pytest.raises(WorkerCrashError):
            execute_with_fault(
                FaultSpec("crash"), _identity_range, 0, 3, in_child=False
            )

    def test_corrupt_returns_marker(self):
        out = execute_with_fault(FaultSpec("corrupt"), _identity_range, 0, 3)
        assert is_corrupted(out) and out is CORRUPTED

    def test_slow_still_returns_result(self):
        spec = FaultSpec("slow", seconds=0.01)
        out = execute_with_fault(spec, _identity_range, 0, 2)
        np.testing.assert_array_equal(out, [0, 1])


class TestPlainBackendInjection:
    def test_thread_backend_crash_surfaces_typed(self):
        plan = FaultPlan([FaultSpec("crash", chunk=0, max_hits=1)])
        with ThreadBackend(2) as be, injected_faults(plan):
            with pytest.raises(WorkerCrashError):
                be.map_ranges(_identity_range, 10)

    def test_serial_backend_clean_when_no_rule_matches(self):
        plan = FaultPlan([FaultSpec("crash", backend="threads")])
        with injected_faults(plan):
            out = SerialBackend().map_ranges(_identity_range, 4)
        np.testing.assert_array_equal(out[0], [0, 1, 2, 3])


class TestResilientBackend:
    def test_parameter_validation(self):
        with pytest.raises(BackendError):
            ResilientBackend(deadline=0.0)
        with pytest.raises(BackendError):
            ResilientBackend(max_retries=-1)
        with pytest.raises(BackendError):
            ResilientBackend(jitter=2.0)

    def test_nesting_refused(self):
        with pytest.raises(BackendError):
            ResilientBackend(ResilientBackend())

    def test_get_backend_resilient_spec(self):
        be = get_backend("resilient:threads:2")
        try:
            assert isinstance(be, ResilientBackend)
            assert isinstance(be.inner, ThreadBackend)
            assert be.label == "resilient.threads"
        finally:
            be.close()

    @pytest.mark.parametrize("inner", ["serial", "threads:2", "processes:2"])
    def test_clean_run_bitwise_equal(self, inner):
        reference = SerialBackend().map_ranges(_identity_range, 37)
        be = ResilientBackend(inner, deadline=10.0)
        try:
            out = be.map_ranges(_identity_range, 37)
        finally:
            be.close()
        np.testing.assert_array_equal(
            np.concatenate(out), np.concatenate(reference)
        )

    def test_crash_recovered_thread_inner(self):
        reg = telemetry.enable()
        plan = FaultPlan([FaultSpec("crash", max_hits=1)])
        be = ResilientBackend("threads:2", deadline=5.0, backoff=0.01)
        try:
            with injected_faults(plan):
                out = be.map_ranges(_identity_range, 20)
        finally:
            be.close()
        np.testing.assert_array_equal(np.concatenate(out), np.arange(20))
        assert reg.counter("resilience.retries").value == 1
        assert reg.counter("resilience.recovered_chunks").value == 1

    def test_crash_recovered_process_inner(self):
        plan = FaultPlan([FaultSpec("crash", chunk=0, max_hits=1)])
        be = ResilientBackend("processes:2", deadline=10.0, backoff=0.01)
        try:
            with injected_faults(plan):
                out = be.map_ranges(_identity_range, 16)
        finally:
            be.close()
        np.testing.assert_array_equal(np.concatenate(out), np.arange(16))

    def test_hang_hits_deadline_then_recovers(self):
        plan = FaultPlan(
            [FaultSpec("hang", seconds=5.0, max_hits=1)]
        )
        be = ResilientBackend("serial", deadline=0.2, backoff=0.01)
        try:
            with injected_faults(plan):
                out = be.map_ranges(_identity_range, 6)
        finally:
            be.close()
        np.testing.assert_array_equal(out[0], np.arange(6))

    def test_corrupt_detected_and_retried(self):
        reg = telemetry.enable()
        plan = FaultPlan([FaultSpec("corrupt", max_hits=1)])
        be = ResilientBackend("serial", deadline=5.0, backoff=0.01)
        try:
            with injected_faults(plan):
                out = be.map_ranges(_identity_range, 5)
        finally:
            be.close()
        np.testing.assert_array_equal(out[0], np.arange(5))
        assert (
            reg.counter("resilience.chunk_failures.resultcorruption").value
            == 1
        )

    def test_exhaustion_raises_typed_with_cause(self):
        plan = FaultPlan([FaultSpec("crash")])  # unbounded
        be = ResilientBackend(
            "threads:2", deadline=5.0, max_retries=1, backoff=0.01
        )
        try:
            with injected_faults(plan):
                with pytest.raises(RetryExhaustedError) as err:
                    be.map_ranges(_identity_range, 8)
        finally:
            be.close()
        assert isinstance(err.value.__cause__, WorkerCrashError)

    def test_deadline_exhaustion_type(self):
        plan = FaultPlan([FaultSpec("hang", seconds=5.0)])
        be = ResilientBackend(
            "serial", deadline=0.1, max_retries=0, backoff=0.01
        )
        try:
            with injected_faults(plan):
                with pytest.raises(RetryExhaustedError) as err:
                    be.map_ranges(_identity_range, 3)
        finally:
            be.close()
        assert isinstance(err.value.__cause__, DeadlineExceededError)

    def test_kernel_bug_not_retried(self):
        reg = telemetry.enable()
        be = ResilientBackend("serial", deadline=5.0, max_retries=3)
        try:
            with pytest.raises(ValueError, match="kernel bug"):
                be.map_ranges(_buggy_range, 4)
        finally:
            be.close()
        assert reg.counter("resilience.retries").value == 0

    def test_retry_determinism_attempt_addressing(self):
        # "fail attempt 0, succeed attempt 1" is exact: the rule fires on
        # the first attempt of every chunk and never on the retry.
        plan = FaultPlan([FaultSpec("crash", call=0)])
        be = ResilientBackend("threads:3", deadline=5.0, backoff=0.0)
        try:
            with injected_faults(plan):
                out = be.map_ranges(_identity_range, 30)
        finally:
            be.close()
        np.testing.assert_array_equal(np.concatenate(out), np.arange(30))

    def test_empty_map(self):
        be = ResilientBackend("serial")
        try:
            assert be.map_ranges(_identity_range, 0) == []
        finally:
            be.close()


class TestCorruptionMarker:
    def test_singleton_survives_pickle(self):
        import pickle

        assert pickle.loads(pickle.dumps(CORRUPTED)) is CORRUPTED

    def test_is_corrupted_rejects_lookalikes(self):
        assert not is_corrupted("<CORRUPTED>")
        assert not is_corrupted(None)


class TestRequestBudget:
    """The request-level deadline budget on top of per-chunk deadlines.

    Regression: the wrapper used to enforce *per-chunk* deadlines only,
    so a slow-faulted chunk with retries could legally burn
    ``(deadline + backoff) x (max_retries + 1)`` — far beyond what the
    caller was promised.  With a request budget installed, the sum of
    attempts (and backoff sleeps) is capped.
    """

    def test_deadline_class_basics(self):
        d = Deadline.after(5.0)
        assert 0.0 < d.remaining() <= 5.0
        assert not d.expired
        d.ensure("unit test")  # does not raise
        with pytest.raises(BackendError):
            Deadline.after(0.0)
        expired = Deadline.after(1e-9)
        import time as _time

        _time.sleep(0.01)
        assert expired.expired and expired.remaining() == 0.0
        with pytest.raises(DeadlineExceededError):
            expired.ensure("unit test")

    def test_nested_budgets_keep_the_tighter(self):
        with request_deadline(30.0) as outer:
            with request_deadline(0.5) as inner:
                assert current_deadline() is inner
            assert current_deadline() is outer
            with request_deadline(60.0):
                # looser nested budget must not extend the outer one
                assert current_deadline() is outer
        assert current_deadline() is None

    def test_no_budget_is_a_noop(self):
        with request_deadline(None):
            assert current_deadline() is None

    def test_slow_faults_with_retries_respect_request_budget(self):
        # Every attempt straggles well past the chunk deadline; with 3
        # retries the per-chunk ceiling alone would allow ~4 x 0.1s of
        # attempts plus backoff.  The 0.15s request budget must cut that
        # short with a typed error.
        reg = telemetry.enable()
        plan = FaultPlan([FaultSpec("slow", seconds=0.3)])
        be = ResilientBackend(
            "serial", deadline=0.1, max_retries=3, backoff=0.01,
            max_backoff=0.02,
        )
        import time as _time

        t0 = _time.perf_counter()
        try:
            with injected_faults(plan), request_deadline(0.15):
                with pytest.raises(DeadlineExceededError, match="budget"):
                    be.map_ranges(_identity_range, 6)
        finally:
            be.close()
        elapsed = _time.perf_counter() - t0
        # budget + one attempt-granularity overshoot + scheduling slack
        assert elapsed < 0.15 + 0.1 + 0.25, f"took {elapsed:.3f}s"
        assert reg.counter("resilience.budget_exhausted").value >= 1

    def test_generous_budget_does_not_interfere(self):
        plan = FaultPlan([FaultSpec("slow", seconds=0.02, max_hits=2)])
        be = ResilientBackend("serial", deadline=1.0, backoff=0.01)
        try:
            with injected_faults(plan), request_deadline(30.0):
                out = be.map_ranges(_identity_range, 8)
        finally:
            be.close()
        np.testing.assert_array_equal(out[0], np.arange(8))

    def test_budget_travels_to_supervisor_threads(self):
        # Multiple chunks -> supervisor threads; the budget is captured
        # on the calling thread and must still bound every chunk.
        plan = FaultPlan([FaultSpec("hang", seconds=5.0)])
        be = ResilientBackend(
            "threads:2", deadline=0.1, max_retries=5, backoff=0.01
        )
        import time as _time

        t0 = _time.perf_counter()
        try:
            with injected_faults(plan), request_deadline(0.2):
                with pytest.raises(DeadlineExceededError):
                    be.map_ranges(_identity_range, 20)
        finally:
            be.close()
        assert _time.perf_counter() - t0 < 1.5

    def test_core_entry_points_accept_deadline(self):
        from repro.core import one_sided_match, two_sided_match
        from repro.graph.generators import union_of_permutations

        g = union_of_permutations(64, 3, seed=2)
        res1 = one_sided_match(g, 2, seed=0, deadline=30.0)
        res1.matching.validate(g)
        res2 = two_sided_match(g, 2, seed=0, deadline=30.0)
        res2.matching.validate(g)
