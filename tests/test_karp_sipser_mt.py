"""Tests for KarpSipserMT (repro.core.karp_sipser_mt) — Algorithm 4.

The central claims under test (the paper's Lemmas 1-4 and the engine
equivalences):

* the matching is always *valid*;
* the matching is always *maximum on the choice subgraph* — for the
  serial engine, for simulated threads under every scheduling policy, and
  for real threads;
* all engines agree on the cardinality (the maximum is unique even though
  the matchings differ);
* degenerate inputs (NIL choices, 2-cliques, pure cycles, self-everything)
  are handled.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.graph.components import component_cycle_counts
from repro.matching import hopcroft_karp
from repro.matching.matching import NIL
from repro.core.karp_sipser_mt import (
    choice_graph,
    karp_sipser_mt,
    karp_sipser_mt_simulated,
    karp_sipser_mt_threaded,
    karp_sipser_mt_work_profile,
    matching_from_unified,
    unify_choices,
)

POLICIES = ("round_robin", "random", "sequential", "adversarial")


@st.composite
def choice_arrays(draw):
    """Arbitrary choice arrays, including NIL entries and rectangles."""
    nrows = draw(st.integers(1, 40))
    ncols = draw(st.integers(1, 40))
    seed = draw(st.integers(0, 100_000))
    nil_frac = draw(st.floats(0.0, 0.3))
    rng = np.random.default_rng(seed)
    rc = rng.integers(0, ncols, nrows)
    cc = rng.integers(0, nrows, ncols)
    rc[rng.random(nrows) < nil_frac] = NIL
    cc[rng.random(ncols) < nil_frac] = NIL
    return rc.astype(np.int64), cc.astype(np.int64)


class TestUnify:
    def test_unify_shifts_columns(self):
        choice, nrows, ncols = unify_choices(
            np.array([1, NIL]), np.array([0, 0, 1])
        )
        assert nrows == 2 and ncols == 3
        assert choice.tolist() == [3, NIL, 0, 0, 1]

    def test_out_of_range_rejected(self):
        with pytest.raises(ShapeError):
            unify_choices(np.array([5]), np.array([0]))
        with pytest.raises(ShapeError):
            unify_choices(np.array([0]), np.array([7]))

    def test_matching_from_unified_detects_corruption(self):
        from repro.errors import MatchingError

        bad = np.array([2, NIL, NIL, NIL])  # row 0 -> col 0, col side silent
        with pytest.raises(MatchingError):
            matching_from_unified(bad, 2, 2)


class TestChoiceGraph:
    def test_mutual_pair_single_edge(self):
        g = choice_graph(np.array([0]), np.array([0]))
        assert g.nnz == 1

    def test_nil_entries_skipped(self):
        g = choice_graph(np.array([NIL, 0]), np.array([NIL]))
        assert g.nnz == 1
        assert g.has_edge(1, 0)

    def test_edge_count_bound(self):
        rng = np.random.default_rng(0)
        rc = rng.integers(0, 50, 50)
        cc = rng.integers(0, 50, 50)
        g = choice_graph(rc, cc)
        assert g.nnz <= 100


class TestSerialEngine:
    def test_single_mutual_pair(self):
        m = karp_sipser_mt(np.array([0]), np.array([0]))
        assert m.cardinality == 1

    def test_two_clique_matched_in_phase2(self):
        m, stats = karp_sipser_mt(
            np.array([0]), np.array([0]), with_stats=True
        )
        assert stats.phase2_pairs == 1
        assert stats.phase1_pairs == 0

    def test_pure_cycle(self):
        # r0->c0, c0->r1, r1->c1, c1->r0 : a 4-cycle, perfect matching.
        rc = np.array([0, 1])
        cc = np.array([1, 0])
        m, stats = karp_sipser_mt(rc, cc, with_stats=True)
        assert m.cardinality == 2
        assert stats.phase1_pairs == 0  # nothing is out-one on a cycle
        assert stats.phase2_pairs == 2

    def test_chain_consumption(self):
        # r0..r2 all choose c0; c0 chooses r0. Star: only 1 match possible.
        rc = np.array([0, 0, 0])
        cc = np.array([0])
        m = karp_sipser_mt(rc, cc)
        assert m.cardinality == 1

    def test_all_nil(self):
        m = karp_sipser_mt(
            np.full(3, NIL, dtype=np.int64), np.full(2, NIL, dtype=np.int64)
        )
        assert m.cardinality == 0

    def test_stats_chain_tracking(self):
        # Path: c1->r0, r0->c0, c0->r1, r1->c0?? Use a clean 3-chain:
        # r0 chooses c0; c0 chooses r1; r1 chooses c1; c1 chooses r1.
        rc = np.array([0, 1])
        cc = np.array([1, 1])
        m, stats = karp_sipser_mt(rc, cc, with_stats=True)
        g = choice_graph(rc, cc)
        assert m.cardinality == hopcroft_karp(g).cardinality
        assert stats.cardinality == m.cardinality

    @given(choice_arrays())
    @settings(max_examples=120, deadline=None)
    def test_maximum_on_choice_graph(self, arrays):
        rc, cc = arrays
        g = choice_graph(rc, cc)
        m = karp_sipser_mt(rc, cc)
        m.validate(g)
        assert m.cardinality == hopcroft_karp(g).cardinality

    @given(choice_arrays())
    @settings(max_examples=60, deadline=None)
    def test_lemma1_on_arbitrary_choices(self, arrays):
        rc, cc = arrays
        assert component_cycle_counts(choice_graph(rc, cc)).max(initial=0) <= 1


class TestSimulatedEngine:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("n_threads", [1, 2, 4, 7])
    def test_maximum_for_every_policy_and_width(self, policy, n_threads):
        rng = np.random.default_rng(12)
        for trial in range(6):
            n = int(rng.integers(3, 120))
            rc = rng.integers(0, n, n)
            cc = rng.integers(0, n, n)
            g = choice_graph(rc, cc)
            opt = hopcroft_karp(g).cardinality
            m = karp_sipser_mt_simulated(
                rc, cc, n_threads, policy=policy, seed=trial
            )
            m.validate(g)
            assert m.cardinality == opt, (policy, n_threads, trial)

    def test_many_random_schedules(self):
        """Schedule-space sweep on one instance: all maximum."""
        rng = np.random.default_rng(3)
        n = 60
        rc = rng.integers(0, n, n)
        cc = rng.integers(0, n, n)
        opt = hopcroft_karp(choice_graph(rc, cc)).cardinality
        for seed in range(25):
            m = karp_sipser_mt_simulated(rc, cc, 5, policy="random", seed=seed)
            assert m.cardinality == opt

    def test_with_nil_choices(self):
        rc = np.array([0, NIL, 1])
        cc = np.array([NIL, 2])
        g = choice_graph(rc, cc)
        opt = hopcroft_karp(g).cardinality
        m = karp_sipser_mt_simulated(rc, cc, 3, seed=0)
        assert m.cardinality == opt

    def test_bad_thread_count(self):
        with pytest.raises(ShapeError):
            karp_sipser_mt_simulated(np.array([0]), np.array([0]), 0)

    def test_stats_pairs_sum(self):
        rng = np.random.default_rng(9)
        n = 50
        rc = rng.integers(0, n, n)
        cc = rng.integers(0, n, n)
        m, stats = karp_sipser_mt_simulated(
            rc, cc, 4, seed=1, with_stats=True
        )
        assert stats.cardinality == m.cardinality


class TestThreadedEngine:
    @pytest.mark.parametrize("n_threads", [1, 2, 4])
    def test_maximum_on_real_threads(self, n_threads):
        rng = np.random.default_rng(7)
        for _ in range(4):
            n = int(rng.integers(10, 300))
            rc = rng.integers(0, n, n)
            cc = rng.integers(0, n, n)
            opt = hopcroft_karp(choice_graph(rc, cc)).cardinality
            m = karp_sipser_mt_threaded(rc, cc, n_threads)
            assert m.cardinality == opt

    def test_bad_thread_count(self):
        with pytest.raises(ShapeError):
            karp_sipser_mt_threaded(np.array([0]), np.array([0]), 0)


class TestEngineAgreement:
    @given(choice_arrays())
    @settings(max_examples=30, deadline=None)
    def test_all_engines_same_cardinality(self, arrays):
        rc, cc = arrays
        serial = karp_sipser_mt(rc, cc).cardinality
        sim = karp_sipser_mt_simulated(rc, cc, 3, seed=0).cardinality
        threaded = karp_sipser_mt_threaded(rc, cc, 2).cardinality
        assert serial == sim == threaded


class TestWorkProfile:
    def test_profile_length_and_positivity(self):
        rng = np.random.default_rng(0)
        n = 40
        rc = rng.integers(0, n, n)
        cc = rng.integers(0, n, n)
        prof = karp_sipser_mt_work_profile(rc, cc)
        assert prof.shape == (2 * n,)
        assert (prof >= 1.0).all()

    def test_profile_total_reflects_matches(self):
        """More matched pairs in Phase 1 => more charged work."""
        n = 100
        # Chain-heavy instance: rows i -> col i, cols i -> row i+1.
        rc = np.arange(n, dtype=np.int64)
        cc = np.minimum(np.arange(n, dtype=np.int64) + 1, n - 1)
        prof = karp_sipser_mt_work_profile(rc, cc)
        assert prof.sum() > 2 * n  # chains charged beyond the base scan
