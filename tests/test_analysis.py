"""Tests for the per-instance theory module (repro.core.analysis)."""

import math

import numpy as np
import pytest

from repro.constants import ONE_SIDED_GUARANTEE
from repro.graph import from_dense, full_ones, fully_indecomposable, identity, sprand
from repro.core import one_sided_match
from repro.core.analysis import (
    expected_one_sided_cardinality,
    one_sided_lower_bound,
    one_sided_miss_probabilities,
)
from repro.scaling import scale_sinkhorn_knopp


class TestMissProbabilities:
    def test_identity_never_misses(self):
        g = identity(5)
        scaling = scale_sinkhorn_knopp(g, 1)
        miss = one_sided_miss_probabilities(g, scaling)
        np.testing.assert_allclose(miss, 0.0)

    def test_ones_matrix_closed_form(self):
        """Every column missed with probability (1 - 1/n)^n."""
        n = 16
        g = full_ones(n)
        scaling = scale_sinkhorn_knopp(g, 1)
        miss = one_sided_miss_probabilities(g, scaling)
        np.testing.assert_allclose(miss, (1 - 1 / n) ** n, rtol=1e-12)

    def test_empty_column_always_missed(self):
        g = from_dense(np.array([[1, 0], [1, 0]]))
        scaling = scale_sinkhorn_knopp(g, 0)
        miss = one_sided_miss_probabilities(g, scaling)
        assert miss[1] == 1.0
        assert miss[0] == 0.0  # both rows must pick column 0

    def test_probabilities_in_unit_interval(self):
        g = sprand(300, 3.0, seed=0)
        scaling = scale_sinkhorn_knopp(g, 5)
        miss = one_sided_miss_probabilities(g, scaling)
        assert (miss >= 0).all() and (miss <= 1).all()


class TestExpectedCardinality:
    def test_matches_monte_carlo(self):
        g = sprand(500, 4.0, seed=0)
        scaling = scale_sinkhorn_knopp(g, 5)
        expected = expected_one_sided_cardinality(g, scaling)
        samples = [
            one_sided_match(g, scaling=scaling, seed=s).cardinality
            for s in range(40)
        ]
        mean = float(np.mean(samples))
        sem = float(np.std(samples)) / math.sqrt(len(samples))
        assert abs(mean - expected) < max(5 * sem, 2.0)

    def test_ones_matrix_limit(self):
        n = 400
        g = full_ones(n)
        scaling = scale_sinkhorn_knopp(g, 1)
        expected = expected_one_sided_cardinality(g, scaling)
        assert abs(expected / n - ONE_SIDED_GUARANTEE) < 1e-3


class TestLowerBound:
    def test_bound_below_expectation(self):
        """AM-GM only weakens: bound <= exact expectation, always."""
        for seed in range(5):
            g = sprand(300, 3.0, seed=seed)
            scaling = scale_sinkhorn_knopp(g, 5)
            lb = one_sided_lower_bound(g, scaling)
            ex = expected_one_sided_cardinality(g, scaling)
            assert lb <= ex + 1e-9

    def test_theorem1_floor_with_converged_scaling(self):
        """alpha_j = 1 for all j => bound >= n(1 - 1/e)."""
        g = fully_indecomposable(300, 4.0, seed=0)
        scaling = scale_sinkhorn_knopp(g, tolerance=1e-10,
                                       max_iterations=20000)
        assert scaling.converged
        lb = one_sided_lower_bound(g, scaling)
        assert lb >= 300 * ONE_SIDED_GUARANTEE - 1e-6

    def test_bound_improves_with_scaling(self):
        g = fully_indecomposable(300, 5.0, seed=1)
        lb0 = one_sided_lower_bound(g, scale_sinkhorn_knopp(g, 0))
        lb10 = one_sided_lower_bound(g, scale_sinkhorn_knopp(g, 10))
        assert lb10 > lb0
