"""Differential tests: independent implementations must agree exactly.

Two families of oracle checks:

* The four KarpSipserMT engines (serial loop, round-based vectorized,
  simulated-interleaving, real threads) are maximum matchers on the same
  choice subgraph, so on identical choice arrays they must report
  identical cardinalities — for every seed, schedule policy, and thread
  count.
* The parallel backends only change *how* work is partitioned, never
  *what* is computed: ScaleSK scaling vectors and the scaled 1-out
  choices must be **bitwise identical** across SerialBackend,
  ThreadBackend, and ProcessBackend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.choice import scaled_col_choices, scaled_row_choices
from repro.core.karp_sipser_mt import (
    karp_sipser_mt,
    karp_sipser_mt_simulated,
    karp_sipser_mt_threaded,
    karp_sipser_mt_vectorized,
)
from repro.graph.generators import sprand, sprand_rect
from repro.matching.matching import NIL
from repro.parallel.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.parallel.simthread import SchedulePolicy
from repro.scaling import scale_sinkhorn_knopp

SEEDS = range(8)


def _random_choice_arrays(nrows, ncols, seed, nil_fraction=0.2):
    """Arbitrary choice arrays, including NIL entries (empty rows/cols)."""
    rng = np.random.default_rng(seed)
    rc = rng.integers(0, ncols, size=nrows).astype(np.int64)
    cc = rng.integers(0, nrows, size=ncols).astype(np.int64)
    rc[rng.random(nrows) < nil_fraction] = NIL
    cc[rng.random(ncols) < nil_fraction] = NIL
    return rc, cc


def _scaled_choice_arrays(n, seed):
    """Choice arrays as TwoSidedMatch actually produces them."""
    g = sprand(n, 3.0, seed=seed)
    sc = scale_sinkhorn_knopp(g, 5)
    rc = scaled_row_choices(g, sc.dr, sc.dc, seed=seed + 1)
    cc = scaled_col_choices(g, sc.dr, sc.dc, seed=seed + 2)
    return rc, cc


def _all_engine_cardinalities(rc, cc, seed):
    return {
        "serial": karp_sipser_mt(rc, cc).cardinality,
        "vectorized": karp_sipser_mt_vectorized(rc, cc).cardinality,
        "simulated": karp_sipser_mt_simulated(
            rc, cc, 4, seed=seed
        ).cardinality,
        "threaded": karp_sipser_mt_threaded(rc, cc, 4).cardinality,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree_on_random_choices(seed):
    rc, cc = _random_choice_arrays(120, 150, seed)
    sizes = _all_engine_cardinalities(rc, cc, seed)
    assert len(set(sizes.values())) == 1, sizes


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree_on_scaled_choices(seed):
    rc, cc = _scaled_choice_arrays(200, seed)
    sizes = _all_engine_cardinalities(rc, cc, seed)
    assert len(set(sizes.values())) == 1, sizes


@pytest.mark.parametrize("policy", list(SchedulePolicy))
@pytest.mark.parametrize("n_threads", [1, 3, 7])
def test_simulated_schedules_all_maximum(policy, n_threads):
    rc, cc = _random_choice_arrays(90, 80, seed=5)
    expected = karp_sipser_mt(rc, cc).cardinality
    got = karp_sipser_mt_simulated(
        rc, cc, n_threads, policy=policy, seed=11
    ).cardinality
    assert got == expected


def _backends():
    return [
        ("serial", SerialBackend()),
        ("threads", ThreadBackend(3)),
        ("processes", ProcessBackend(2)),
    ]


@pytest.mark.parametrize("seed", range(3))
def test_scale_sk_bitwise_across_backends(seed):
    g = sprand_rect(300, 260, 3.0, seed=seed)
    results = {}
    for name, backend in _backends():
        try:
            results[name] = scale_sinkhorn_knopp(g, 8, backend=backend)
        finally:
            backend.close()
    ref = results["serial"]
    for name, res in results.items():
        np.testing.assert_array_equal(res.dr, ref.dr, err_msg=name)
        np.testing.assert_array_equal(res.dc, ref.dc, err_msg=name)
        assert res.error == ref.error, name
        assert res.iterations == ref.iterations, name


@pytest.mark.parametrize("seed", range(3))
def test_choices_bitwise_across_backends(seed):
    g = sprand(400, 4.0, seed=seed)
    sc = scale_sinkhorn_knopp(g, 5)
    rows, cols = {}, {}
    for name, backend in _backends():
        try:
            rows[name] = scaled_row_choices(
                g, sc.dr, sc.dc, seed=seed, backend=backend
            )
            cols[name] = scaled_col_choices(
                g, sc.dr, sc.dc, seed=seed, backend=backend
            )
        finally:
            backend.close()
    for name in rows:
        np.testing.assert_array_equal(rows[name], rows["serial"],
                                      err_msg=name)
        np.testing.assert_array_equal(cols[name], cols["serial"],
                                      err_msg=name)


def test_two_sided_engines_identical_matching_size():
    # End-to-end: same graph + seed through every engine of TwoSidedMatch.
    from repro.core import two_sided_match

    g = sprand(300, 3.5, seed=7)
    sizes = {
        engine: two_sided_match(g, 5, seed=13, engine=engine).cardinality
        for engine in ("serial", "vectorized", "simulated", "threaded")
    }
    assert len(set(sizes.values())) == 1, sizes


# ----------------------------------------------------------------------
# Auction differential matrix: the ε-scaling auction must agree with
# every exact oracle on every suite generator family, warm == cold,
# and bitwise-identically across backends.
# ----------------------------------------------------------------------

from repro.matching import auction_match, hopcroft_karp, push_relabel, sprank
from repro.parallel.kernels import kernel_chunk_override

from tests.test_engines_fuzz import FAMILIES


@pytest.mark.exact
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_auction_matches_exact_oracles_per_family(family):
    """auction == Hopcroft–Karp == push_relabel == sprank, warm == cold."""
    from repro.core import two_sided_match

    build = FAMILIES[family]
    for seed in range(2):
        g = build(seed)
        hk = hopcroft_karp(g).cardinality
        pr = push_relabel(g).cardinality
        sp = sprank(g)
        assert hk == pr == sp, (family, seed, hk, pr, sp)

        cold = auction_match(g, seed=seed)
        cold.matching.validate(g)
        assert cold.cardinality == hk, (family, seed, "cold")

        heur = two_sided_match(g, 3, seed=seed)
        warm = auction_match(g, initial=heur, scaling=heur.scaling,
                             seed=seed)
        warm.matching.validate(g)
        assert warm.warm_started
        assert warm.cardinality == hk, (family, seed, "warm")


@pytest.mark.exact
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_auction_sampling_path_agrees(family):
    """``sampling="auto"`` (GKK fast path where the probe fires) and
    ``sampling="never"`` both land on the maximum cardinality."""
    g = FAMILIES[family](0)
    want = hopcroft_karp(g).cardinality
    for mode in ("auto", "never"):
        res = auction_match(g, sampling=mode, seed=3)
        res.matching.validate(g)
        assert res.cardinality == want, (family, mode)


def _auction_backends():
    from repro.parallel.backends import get_backend

    return [
        ("serial", SerialBackend()),
        ("threads", ThreadBackend(3)),
        ("processes", ProcessBackend(2)),
        ("shm", get_backend("shm:2")),
    ]


@pytest.mark.exact
@pytest.mark.parametrize("seed", range(2))
def test_auction_bitwise_across_backends(seed):
    """Matching, prices, and round count are bitwise identical on every
    backend — the bid kernel's fixed chunk grid and lexicographic commit
    make the parallel rounds order-independent.  ``gs_tail=0`` keeps
    every round on the kernel path so the backends actually differ in
    how bids are computed."""
    g = sprand_rect(420, 380, 3.0, seed=seed)
    results = {}
    with kernel_chunk_override(64):
        for name, backend in _auction_backends():
            try:
                results[name] = auction_match(
                    g, backend=backend, seed=seed, gs_tail=0
                )
            finally:
                backend.close()
    ref = results["serial"]
    for name, res in results.items():
        np.testing.assert_array_equal(
            res.matching.row_match, ref.matching.row_match, err_msg=name
        )
        np.testing.assert_array_equal(res.prices, ref.prices, err_msg=name)
        assert res.rounds == ref.rounds, name
        assert res.cardinality_trace == ref.cardinality_trace, name


@pytest.mark.exact
def test_auction_hybrid_tail_agrees_with_pure_kernel_rounds():
    """The Gauss–Seidel tail drain changes the execution schedule, never
    the certified cardinality."""
    g = sprand(500, 3.0, seed=21)
    pure = auction_match(g, seed=1, gs_tail=0)
    hybrid = auction_match(g, seed=1)
    assert pure.cardinality == hybrid.cardinality == sprank(g)
