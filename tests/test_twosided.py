"""Tests for TwoSidedMatch (repro.core.twosided) — Algorithm 3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import TWO_SIDED_GUARANTEE
from repro.errors import ShapeError
from repro.graph import (
    from_dense,
    full_ones,
    fully_indecomposable,
    identity,
    sprand,
    sprand_rect,
)
from repro.matching import hopcroft_karp
from repro.matching.matching import NIL
from repro.core import choice_graph, two_sided_match
from repro.scaling import scale_sinkhorn_knopp


class TestTwoSidedMatch:
    def test_valid_matching_always(self):
        g = sprand(500, 3.0, seed=0)
        res = two_sided_match(g, iterations=3, seed=1)
        res.matching.validate(g)

    def test_identity_perfect(self):
        res = two_sided_match(identity(50), iterations=1, seed=0)
        assert res.matching.is_perfect()

    def test_matching_is_maximum_on_choice_subgraph(self):
        """The core exactness claim of Section 3.2."""
        g = sprand(300, 4.0, seed=0)
        res = two_sided_match(g, 3, seed=5)
        sub = choice_graph(res.row_choice, res.col_choice)
        assert res.cardinality == hopcroft_karp(sub).cardinality

    def test_choices_are_edges(self):
        g = sprand(200, 3.0, seed=0)
        res = two_sided_match(g, 3, seed=2)
        for i in range(g.nrows):
            if res.row_choice[i] != NIL:
                assert g.has_edge(i, int(res.row_choice[i]))
        for j in range(g.ncols):
            if res.col_choice[j] != NIL:
                assert g.has_edge(int(res.col_choice[j]), j)

    def test_deterministic_with_seed(self):
        g = sprand(200, 4.0, seed=0)
        a = two_sided_match(g, 3, seed=11).matching
        b = two_sided_match(g, 3, seed=11).matching
        np.testing.assert_array_equal(a.row_match, b.row_match)

    @pytest.mark.parametrize("engine", ["serial", "simulated", "threaded"])
    def test_engines_agree_on_cardinality(self, engine):
        g = sprand(200, 4.0, seed=0)
        scaling = scale_sinkhorn_knopp(g, 3)
        reference = two_sided_match(
            g, scaling=scaling, seed=9, engine="serial"
        )
        res = two_sided_match(
            g, scaling=scaling, seed=9, engine=engine, n_threads=3
        )
        res.matching.validate(g)
        assert res.cardinality == reference.cardinality

    def test_unknown_engine_rejected(self):
        with pytest.raises(ShapeError):
            two_sided_match(identity(4), engine="quantum")

    def test_ks_stats_present_for_serial(self):
        g = sprand(100, 3.0, seed=0)
        res = two_sided_match(g, 2, seed=0, engine="serial")
        assert res.ks_stats is not None
        assert res.ks_stats.cardinality == res.cardinality

    def test_rectangular(self):
        g = sprand_rect(100, 140, 3.0, seed=0)
        res = two_sided_match(g, 3, seed=1)
        res.matching.validate(g)


class TestConjecture1:
    def test_ones_matrix_ratio_near_0866(self):
        """The all-ones matrix is the conjecture's tight case."""
        n = 2000
        g = full_ones(n)
        ratios = [
            two_sided_match(g, 1, seed=s).cardinality / n for s in range(5)
        ]
        assert abs(float(np.mean(ratios)) - TWO_SIDED_GUARANTEE) < 0.01

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_conjecture_on_fully_indecomposable(self, seed):
        g = fully_indecomposable(400, 4.0, seed=seed)
        res = two_sided_match(g, 10, seed=seed)
        assert res.cardinality / g.nrows > TWO_SIDED_GUARANTEE - 0.05

    def test_two_sided_beats_one_sided(self):
        """The reason the second heuristic exists (paper Section 5)."""
        from repro.core import one_sided_match

        g = fully_indecomposable(1000, 4.0, seed=0)
        scaling = scale_sinkhorn_knopp(g, 5)
        one = one_sided_match(g, scaling=scaling, seed=1).cardinality
        two = two_sided_match(g, scaling=scaling, seed=1).cardinality
        assert two > one


class TestDegenerateInputs:
    def test_empty_rows_and_cols(self):
        a = np.array([[1, 0, 1], [0, 0, 0], [1, 0, 0]])
        g = from_dense(a)
        res = two_sided_match(g, 3, seed=0)
        res.matching.validate(g)
        assert res.matching.row_match[1] == NIL
        assert res.matching.col_match[1] == NIL

    def test_single_edge(self):
        g = from_dense(np.array([[1]]))
        res = two_sided_match(g, 1, seed=0)
        assert res.cardinality == 1
