"""Unit tests for the telemetry subsystem.

Covers the metric primitives, span nesting, registry thread-safety under
real threads, the zero-entries guarantee of disabled mode, sink
round-trips, and the backend chunk/imbalance instrumentation.
"""

from __future__ import annotations

import io
import json
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.errors import TelemetryError
from repro.parallel.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.telemetry import (
    Counter,
    Gauge,
    JsonLinesSink,
    NullSink,
    Registry,
    TableSink,
    Timer,
    render_report,
)


@pytest.fixture(autouse=True)
def clean_state():
    """Every test starts and ends with telemetry disabled and empty."""
    telemetry.reset()
    yield
    telemetry.reset()


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------

def test_counter_inc_and_snapshot():
    c = Counter("hits")
    c.inc()
    c.inc(4)
    assert c.value == 5
    snap = c.snapshot()
    assert snap["kind"] == "counter" and snap["value"] == 5


def test_gauge_tracks_extremes():
    g = Gauge("err")
    for v in (3.0, 1.0, 2.0):
        g.set(v)
    snap = g.snapshot()
    assert snap["value"] == 2.0
    assert snap["min"] == 1.0 and snap["max"] == 3.0
    assert snap["writes"] == 3


def test_timer_observe_and_context():
    t = Timer("work")
    t.observe(0.5)
    t.observe(1.5)
    with t.time():
        pass
    snap = t.snapshot()
    assert snap["count"] == 3
    assert snap["max"] == 1.5 and snap["min"] >= 0.0
    assert snap["mean"] == pytest.approx(snap["total"] / 3)


def test_registry_kind_mismatch_raises():
    reg = Registry()
    reg.counter("x").inc()
    with pytest.raises(TelemetryError):
        reg.timer("x")
    # same-kind re-access returns the same object
    assert reg.counter("x") is reg.counter("x")


def test_registry_snapshot_and_clear():
    reg = Registry()
    reg.counter("a").inc(2)
    reg.gauge("b").set(7.0)
    assert set(reg.names()) == {"a", "b"}
    assert "a" in reg and len(reg) == 2
    snap = reg.snapshot()
    assert snap["a"]["value"] == 2 and snap["b"]["value"] == 7.0
    reg.clear()
    assert len(reg) == 0


# ----------------------------------------------------------------------
# Module-level state: enable/disable/session
# ----------------------------------------------------------------------

def test_disabled_mode_records_nothing():
    assert not telemetry.enabled()
    telemetry.incr("c")
    telemetry.set_gauge("g", 1.0)
    telemetry.observe("t", 0.1)
    telemetry.event("e", detail=1)
    with telemetry.span("s"):
        pass
    assert len(telemetry.get_registry()) == 0


def test_disabled_span_is_shared_noop():
    a = telemetry.span("x")
    b = telemetry.span("y", attr=1)
    assert a is b  # no allocation on the disabled path


def test_enable_and_record():
    reg = telemetry.enable()
    telemetry.incr("c", 3)
    telemetry.set_gauge("g", 2.5)
    telemetry.observe("t", 0.25)
    assert reg.counter("c").value == 3
    assert reg.gauge("g").snapshot()["value"] == 2.5
    assert reg.timer("t").snapshot()["count"] == 1
    telemetry.disable()
    telemetry.incr("c", 100)
    assert reg.counter("c").value == 3


def test_session_restores_previous_state():
    outer = telemetry.enable()
    telemetry.incr("outer")
    with telemetry.session() as inner:
        assert telemetry.get_registry() is inner
        telemetry.incr("inner")
    assert telemetry.enabled()
    assert telemetry.get_registry() is outer
    assert "inner" not in outer
    assert inner.counter("inner").value == 1


def test_span_nesting_builds_paths():
    reg = telemetry.enable()
    with telemetry.span("outer"):
        with telemetry.span("mid"):
            with telemetry.span("leaf"):
                pass
        with telemetry.span("leaf"):
            pass
    names = set(reg.names())
    assert "span.outer" in names
    assert "span.outer/mid" in names
    assert "span.outer/mid/leaf" in names
    assert "span.outer/leaf" in names
    assert reg.timer("span.outer").snapshot()["count"] == 1


def test_span_attrs_reach_sink():
    buf = io.StringIO()
    sink = JsonLinesSink(buf)
    telemetry.enable(sink)
    with telemetry.span("op", n=5) as sp:
        sp.set(result=np.int64(7))
    events = [json.loads(l) for l in buf.getvalue().splitlines()]
    assert events[0]["name"] == "op"
    assert events[0]["n"] == 5
    assert events[0]["result"] == 7  # numpy scalar coerced
    assert events[0]["seconds"] >= 0


def test_span_exception_still_pops_stack():
    reg = telemetry.enable()
    with pytest.raises(RuntimeError):
        with telemetry.span("outer"):
            with telemetry.span("boom"):
                raise RuntimeError()
    with telemetry.span("after"):
        pass
    assert "span.after" in set(reg.names())  # not span.outer/boom/after


# ----------------------------------------------------------------------
# Thread safety
# ----------------------------------------------------------------------

def test_registry_thread_safe_exact_counts():
    reg = telemetry.enable()
    n, per = 8, 5000

    def worker():
        for _ in range(per):
            telemetry.incr("shared")
            telemetry.observe("lat", 0.001)

    threads = [threading.Thread(target=worker) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter("shared").value == n * per
    assert reg.timer("lat").snapshot()["count"] == n * per


def test_counts_exact_under_thread_backend():
    reg = telemetry.enable()
    backend = ThreadBackend(4)
    try:
        def work(lo, hi):
            for _ in range(lo, hi):
                telemetry.incr("items")
            return hi - lo

        total = sum(backend.map_ranges(work, 1000))
    finally:
        backend.close()
    assert total == 1000
    assert reg.counter("items").value == 1000


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

def test_jsonl_sink_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonLinesSink(path)
    telemetry.enable(sink)
    telemetry.event("alpha", x=1)
    telemetry.event("beta", y=np.float64(2.5))
    telemetry.disable()
    sink.close()
    events = JsonLinesSink.read(path)
    assert events == [
        {"event": "alpha", "x": 1},
        {"event": "beta", "y": 2.5},
    ]


def test_table_sink_formats_events():
    buf = io.StringIO()
    telemetry.enable(TableSink(buf))
    telemetry.event("note", k=1)
    with telemetry.span("op"):
        pass
    out = buf.getvalue()
    assert "note" in out and "k=1" in out
    assert "op" in out and "ms" in out


def test_null_sink_swallows():
    telemetry.enable(NullSink())
    telemetry.event("anything")
    # nothing to assert beyond "no crash"; the event still hit no buffer


def test_render_report_lists_all_kinds():
    reg = telemetry.enable()
    telemetry.incr("c", 2)
    telemetry.set_gauge("g", 0.5)
    telemetry.observe("t", 0.1)
    report = render_report(reg.snapshot())
    for token in ("c", "g", "t", "counter", "gauge", "timer"):
        assert token in report
    assert render_report({}) == "(no metrics recorded)\n"


# ----------------------------------------------------------------------
# Backend instrumentation
# ----------------------------------------------------------------------

def _map_with(backend, n=400):
    try:
        return backend.map_ranges(lambda lo, hi: hi - lo, n)
    finally:
        backend.close()


@pytest.mark.parametrize(
    "make,label,parts",
    [
        (lambda: SerialBackend(), "serial", 1),
        (lambda: ThreadBackend(3), "threads", 3),
        (lambda: ProcessBackend(2), "processes", 2),
    ],
)
def test_backend_chunk_metrics(make, label, parts):
    reg = telemetry.enable()
    out = _map_with(make())
    assert sum(out) == 400
    assert reg.counter(f"parallel.{label}.calls").value == 1
    chunk = reg.timer(f"parallel.{label}.chunk").snapshot()
    assert chunk["count"] == parts
    imb = reg.gauge(f"parallel.{label}.imbalance").snapshot()["value"]
    assert imb >= 1.0


def test_backend_silent_when_disabled():
    out = _map_with(ThreadBackend(3))
    assert sum(out) == 400
    assert len(telemetry.get_registry()) == 0
