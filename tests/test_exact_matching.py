"""Tests for the exact matchers (Hopcroft-Karp, MC21, sprank)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    BipartiteGraph,
    empty,
    from_dense,
    from_edges,
    identity,
    karp_sipser_adversarial,
    sprand,
    sprand_rect,
)
from repro.matching import Matching, hopcroft_karp, mc21, sprank


def scipy_max_matching_size(graph: BipartiteGraph) -> int:
    from scipy.sparse.csgraph import maximum_bipartite_matching

    if graph.nnz == 0:
        return 0
    perm = maximum_bipartite_matching(graph.to_scipy().tocsr(), perm_type="column")
    return int((perm != -1).sum())


@st.composite
def random_graphs(draw):
    nrows = draw(st.integers(1, 15))
    ncols = draw(st.integers(1, 15))
    density = draw(st.floats(0.05, 0.6))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    dense = (rng.random((nrows, ncols)) < density).astype(int)
    return from_dense(dense)


class TestHopcroftKarp:
    def test_identity(self):
        m = hopcroft_karp(identity(5))
        assert m.is_perfect()

    def test_empty_graph(self):
        assert hopcroft_karp(empty(4, 4)).cardinality == 0

    def test_zero_vertices(self):
        assert hopcroft_karp(empty(0, 0)).cardinality == 0

    def test_path_graph(self):
        # r0-c0-r1-c1: maximum matching has 2 edges.
        g = from_edges(2, 2, [0, 1, 1], [0, 0, 1])
        assert hopcroft_karp(g).cardinality == 2

    def test_needs_augmentation(self):
        # Greedy first-fit can match r0-c0 and strand r1; HK must fix it.
        g = from_edges(2, 2, [0, 0, 1], [0, 1, 0])
        m = hopcroft_karp(g)
        assert m.is_perfect()

    def test_result_is_valid_matching(self):
        g = sprand(500, 3.0, seed=0)
        m = hopcroft_karp(g)
        m.validate(g)

    @pytest.mark.parametrize("greedy", [True, False])
    def test_greedy_init_does_not_change_size(self, greedy):
        g = sprand(300, 2.5, seed=1)
        assert (
            hopcroft_karp(g, greedy_init=greedy).cardinality
            == scipy_max_matching_size(g)
        )

    def test_warm_start_preserves_optimality(self):
        g = sprand(200, 3.0, seed=2)
        opt = hopcroft_karp(g).cardinality
        # Start from a deliberately bad partial matching.
        partial = Matching.from_row_match(
            [0 if g.has_edge(0, 0) else -1] + [-1] * 199, 200
        )
        assert hopcroft_karp(g, initial=partial).cardinality == opt

    def test_invalid_initial_rejected(self):
        from repro.errors import ValidationError

        g = identity(3)
        bad = Matching.from_row_match([1, -1, -1], 3)  # (0,1) not an edge
        with pytest.raises(ValidationError):
            hopcroft_karp(g, initial=bad)

    def test_adversarial_family_perfect(self):
        g = karp_sipser_adversarial(40, 4)
        assert hopcroft_karp(g).cardinality == 40

    @given(random_graphs())
    @settings(max_examples=80, deadline=None)
    def test_against_scipy_oracle(self, g):
        m = hopcroft_karp(g)
        m.validate(g)
        assert m.cardinality == scipy_max_matching_size(g)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_against_networkx_oracle(self, g):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.nrows), bipartite=0)
        nxg.add_nodes_from(
            range(g.nrows, g.nrows + g.ncols), bipartite=1
        )
        for i, j in g.iter_edges():
            nxg.add_edge(i, g.nrows + j)
        nx_size = len(nx.max_weight_matching(nxg, maxcardinality=True))
        assert hopcroft_karp(g).cardinality == nx_size


class TestMC21:
    @given(random_graphs())
    @settings(max_examples=80, deadline=None)
    def test_agrees_with_hopcroft_karp(self, g):
        m = mc21(g)
        m.validate(g)
        assert m.cardinality == hopcroft_karp(g).cardinality

    def test_warm_start(self):
        g = sprand(300, 3.0, seed=3)
        opt = hopcroft_karp(g).cardinality
        from repro.core import two_sided_match

        init = two_sided_match(g, 5, seed=0).matching
        m = mc21(g, initial=init)
        m.validate(g)
        assert m.cardinality == opt

    def test_rectangular(self):
        g = sprand_rect(40, 60, 2.0, seed=0)
        assert mc21(g).cardinality == hopcroft_karp(g).cardinality


class TestPushRelabelVsHopcroftKarp:
    """Differential cell: two structurally different exact algorithms
    (BFS-phase augmentation vs preflow-push) on rectangular instances,
    where row/column asymmetry exercises the free-side bookkeeping."""

    @pytest.mark.parametrize(
        "nrows,ncols,density",
        [(40, 90, 2.0), (90, 40, 2.0), (15, 200, 4.0), (200, 15, 0.3)],
    )
    def test_rectangular_agreement(self, nrows, ncols, density):
        from repro.matching import push_relabel

        for seed in range(4):
            g = sprand_rect(nrows, ncols, density, seed=seed)
            hk = hopcroft_karp(g)
            pr = push_relabel(g)
            hk.validate(g)
            pr.validate(g)
            assert hk.cardinality == pr.cardinality == \
                scipy_max_matching_size(g), (nrows, ncols, seed)

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_push_relabel_agrees_on_random_rectangles(self, g):
        from repro.matching import push_relabel

        m = push_relabel(g)
        m.validate(g)
        assert m.cardinality == hopcroft_karp(g).cardinality


class TestSprank:
    def test_full_matrix(self):
        assert sprank(from_dense(np.ones((4, 4)))) == 4

    def test_deficient(self):
        a = np.zeros((3, 3))
        a[:, 0] = 1  # all rows share one column
        assert sprank(from_dense(a)) == 1

    def test_rectangular_bounded_by_min_dim(self):
        g = sprand_rect(10, 30, 5.0, seed=0)
        assert sprank(g) <= 10
