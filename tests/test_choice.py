"""Tests for scaled random neighbour selection (repro.core.choice)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.graph import from_dense, full_ones, sprand
from repro.core.choice import (
    choices_from_weights,
    scaled_col_choices,
    scaled_row_choices,
)
from repro.matching.matching import NIL
from repro.scaling import scale_sinkhorn_knopp


class TestChoicesFromWeights:
    def test_single_option_always_picked(self):
        ptr = np.array([0, 1, 2])
        ind = np.array([3, 1])
        out = choices_from_weights(
            ptr, ind, np.array([1.0, 1.0]), np.random.default_rng(0)
        )
        assert out.tolist() == [3, 1]

    def test_empty_segment_gets_nil(self):
        ptr = np.array([0, 0, 1])
        ind = np.array([2])
        out = choices_from_weights(
            ptr, ind, np.array([1.0]), np.random.default_rng(0)
        )
        assert out[0] == NIL and out[1] == 2

    def test_zero_weight_segment_gets_nil(self):
        ptr = np.array([0, 2])
        ind = np.array([0, 1])
        out = choices_from_weights(
            ptr, ind, np.array([0.0, 0.0]), np.random.default_rng(0)
        )
        assert out[0] == NIL

    def test_no_segments(self):
        out = choices_from_weights(
            np.array([0]), np.array([], dtype=np.int64),
            np.array([]), np.random.default_rng(0),
        )
        assert out.shape == (0,)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ShapeError):
            choices_from_weights(
                np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]),
                np.random.default_rng(0),
            )

    def test_zero_weight_entries_never_picked(self):
        ptr = np.array([0, 3])
        ind = np.array([0, 1, 2])
        weights = np.array([0.0, 1.0, 0.0])
        rng = np.random.default_rng(0)
        for _ in range(50):
            out = choices_from_weights(ptr, ind, weights, rng)
            assert out[0] == 1

    def test_distribution_matches_weights(self):
        """Chi-square-style check of the weighted sampling."""
        ptr = np.array([0, 3])
        ind = np.array([0, 1, 2])
        weights = np.array([1.0, 2.0, 7.0])
        rng = np.random.default_rng(1)
        counts = np.zeros(3)
        trials = 20_000
        for _ in range(trials):
            counts[choices_from_weights(ptr, ind, weights, rng)[0]] += 1
        freq = counts / trials
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.02)


class TestRowColChoices:
    def test_choices_are_neighbours(self):
        g = sprand(300, 3.0, seed=0)
        scaling = scale_sinkhorn_knopp(g, 3)
        rc = scaled_row_choices(g, scaling.dr, scaling.dc, seed=1)
        for i in range(g.nrows):
            if rc[i] != NIL:
                assert g.has_edge(i, int(rc[i]))
            else:
                assert g.row_degrees()[i] == 0
        cc = scaled_col_choices(g, scaling.dr, scaling.dc, seed=1)
        for j in range(g.ncols):
            if cc[j] != NIL:
                assert g.has_edge(int(cc[j]), j)

    def test_uniform_on_ones_matrix(self):
        """On the all-ones matrix with dr=dc=1 every column is equally
        likely: verify first moments."""
        g = full_ones(10)
        ones = np.ones(10)
        rng = np.random.default_rng(2)
        counts = np.zeros(10)
        for _ in range(3000):
            counts[scaled_row_choices(g, ones, ones, rng)] += 1
        np.testing.assert_allclose(counts / counts.sum(), 0.1, atol=0.02)

    def test_deterministic_with_seed(self):
        g = sprand(200, 4.0, seed=0)
        s = scale_sinkhorn_knopp(g, 2)
        a = scaled_row_choices(g, s.dr, s.dc, seed=7)
        b = scaled_row_choices(g, s.dr, s.dc, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_backend_equivalence(self):
        from repro.parallel import ThreadBackend

        g = sprand(400, 4.0, seed=0)
        s = scale_sinkhorn_knopp(g, 2)
        serial = scaled_row_choices(g, s.dr, s.dc, seed=3)
        with ThreadBackend(2) as be:
            threaded = scaled_row_choices(g, s.dr, s.dc, seed=3, backend=be)
        np.testing.assert_array_equal(serial, threaded)

    def test_scaling_shape_mismatch_rejected(self):
        g = sprand(10, 2.0, seed=0)
        with pytest.raises(ShapeError):
            scaled_row_choices(g, np.ones(10), np.ones(9), seed=0)
        with pytest.raises(ShapeError):
            scaled_col_choices(g, np.ones(9), np.ones(10), seed=0)

    def test_scaled_choices_avoid_unmatchable_entries(self):
        """After scaling, probability mass concentrates on matchable
        edges (the Section 3.3 phenomenon driving Table 1)."""
        from repro.graph import karp_sipser_adversarial

        n = 200
        g = karp_sipser_adversarial(n, 4)
        s = scale_sinkhorn_knopp(g, 20)
        rng = np.random.default_rng(0)
        rc = scaled_row_choices(g, s.dr, s.dc, rng)
        h = n // 2
        # Rows of R1 should overwhelmingly choose their C2 diagonal.
        in_dense_block = sum(
            1 for i in range(h) if rc[i] < h
        )
        assert in_dense_block < 0.15 * h
