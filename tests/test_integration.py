"""Cross-module integration tests: end-to-end flows from the paper."""

import numpy as np
import pytest

from repro import (
    ONE_SIDED_GUARANTEE,
    TWO_SIDED_GUARANTEE,
    hopcroft_karp,
    karp_sipser,
    mc21,
    one_sided_match,
    sprank,
    two_sided_match,
)
from repro.graph import (
    dulmage_mendelsohn,
    fully_indecomposable,
    karp_sipser_adversarial,
    sprand,
    suite_instance,
)
from repro.scaling import scale_sinkhorn_knopp


class TestPaperStory:
    """The three headline behaviours, end to end."""

    def test_quality_ordering_on_random_graphs(self):
        """TwoSided >= OneSided in quality; both valid; exact is exact."""
        g = sprand(3000, 4.0, seed=0)
        maximum = sprank(g)
        one = one_sided_match(g, 5, seed=1)
        two = two_sided_match(g, 5, seed=1)
        one.matching.validate(g)
        two.matching.validate(g)
        assert one.cardinality <= two.cardinality <= maximum
        assert hopcroft_karp(g, initial=two.matching).cardinality == maximum

    def test_table1_story_scaling_beats_karp_sipser(self):
        """On the adversarial family, scaled TwoSided beats classic KS."""
        n = 600
        g = karp_sipser_adversarial(n, 16)
        ks_q = min(karp_sipser(g, seed=s).cardinality / n for s in range(5))
        ts_q = min(
            two_sided_match(g, 10, seed=s).cardinality / n for s in range(5)
        )
        assert ts_q > ks_q
        assert ts_q > 0.95

    def test_guarantees_on_structured_instance(self):
        g = suite_instance("cage15", n=2000, seed=0)
        maximum = sprank(g)
        one_q = one_sided_match(g, 5, seed=1).cardinality / maximum
        two_q = two_sided_match(g, 5, seed=1).cardinality / maximum
        assert one_q >= ONE_SIDED_GUARANTEE - 0.03
        assert two_q >= TWO_SIDED_GUARANTEE - 0.03


class TestScalingDMInterplay:
    def test_scaled_mass_concentrates_on_matchable_edges(self):
        g = sprand(800, 2.0, seed=2)
        dm = dulmage_mendelsohn(g)
        if dm.matchable_edges.all():
            pytest.skip("seed produced no star block")
        sc = scale_sinkhorn_knopp(g, 40)
        s = g.scaled_values(sc.dr, sc.dc)
        frac_on_star = s[~dm.matchable_edges].sum() / s.sum()
        assert frac_on_star < 0.05

    def test_heuristics_track_sprank_not_n(self):
        g = sprand(2000, 2.0, seed=3)
        maximum = sprank(g)
        assert maximum < 2000  # genuinely deficient
        two = two_sided_match(g, 10, seed=0)
        assert two.cardinality / maximum > 0.85


class TestWarmStartContract:
    """Heuristic output is always a legal warm start for exact codes."""

    @pytest.mark.parametrize("heuristic_iters", [0, 1, 5])
    def test_hopcroft_karp_accepts_all(self, heuristic_iters):
        g = sprand(400, 3.0, seed=4)
        opt = sprank(g)
        for build in (one_sided_match, two_sided_match):
            m = build(g, heuristic_iters, seed=7).matching
            assert hopcroft_karp(g, initial=m).cardinality == opt

    def test_mc21_accepts_all(self):
        g = sprand(400, 3.0, seed=5)
        opt = sprank(g)
        m = two_sided_match(g, 5, seed=0).matching
        assert mc21(g, initial=m).cardinality == opt


class TestPublicAPI:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_subpackage_exports(self):
        import repro.graph as rg
        import repro.matching as rm
        import repro.scaling as rs
        import repro.core as rc
        import repro.parallel as rp

        for mod in (rg, rm, rs, rc, rp):
            for name in mod.__all__:
                assert hasattr(mod, name), (mod.__name__, name)
