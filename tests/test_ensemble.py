"""Tests for the best-of-k ensemble API (repro.core.ensemble)."""

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.graph import sprand
from repro.core import two_sided_match
from repro.core.ensemble import best_of
from repro.scaling import scale_sinkhorn_knopp


class TestBestOf:
    def test_best_dominates_single_run(self):
        g = sprand(1000, 4.0, seed=0)
        scaling = scale_sinkhorn_knopp(g, 5)
        single = two_sided_match(g, scaling=scaling, seed=0).cardinality
        ens = best_of(g, 5, scaling=scaling, seed=0)
        assert ens.best >= single or ens.best >= min(ens.cardinalities)
        assert ens.matching.cardinality == ens.best

    def test_result_is_valid(self):
        g = sprand(500, 3.0, seed=1)
        ens = best_of(g, 3, seed=2)
        ens.matching.validate(g)
        assert len(ens.cardinalities) == 3

    def test_one_sided_method(self):
        g = sprand(500, 3.0, seed=1)
        one = best_of(g, 3, method="one-sided", seed=2)
        two = best_of(g, 3, method="two-sided", seed=2)
        assert two.best >= one.best

    def test_best_monotone_in_k(self):
        g = sprand(800, 4.0, seed=3)
        scaling = scale_sinkhorn_knopp(g, 5)
        small = best_of(g, 2, scaling=scaling, seed=7)
        large = best_of(g, 8, scaling=scaling, seed=7)
        # Same seed stream: the first 2 runs of 'large' are 'small'.
        assert large.best >= small.best
        assert large.cardinalities[:2] == small.cardinalities

    def test_spread_and_worst(self):
        g = sprand(500, 4.0, seed=4)
        ens = best_of(g, 6, seed=1)
        assert ens.spread == ens.best - ens.worst
        assert ens.spread >= 0

    def test_deterministic(self):
        g = sprand(300, 3.0, seed=5)
        a = best_of(g, 4, seed=11)
        b = best_of(g, 4, seed=11)
        assert a.cardinalities == b.cardinalities
        np.testing.assert_array_equal(a.matching.row_match, b.matching.row_match)

    def test_scaling_shared(self):
        g = sprand(200, 3.0, seed=6)
        scaling = scale_sinkhorn_knopp(g, 4)
        ens = best_of(g, 2, scaling=scaling, seed=0)
        assert ens.scaling is scaling

    def test_bad_arguments(self):
        g = sprand(50, 3.0, seed=0)
        with pytest.raises(MatchingError):
            best_of(g, 0)
        with pytest.raises(MatchingError):
            best_of(g, 2, method="three-sided")
