"""Tests for the cheap matching baselines (repro.matching.heuristics.greedy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import BipartiteGraph, from_dense, identity, sprand
from repro.matching import (
    greedy_edge_matching,
    greedy_row_matching,
    greedy_vertex_matching,
    hopcroft_karp,
)

ALL = [greedy_edge_matching, greedy_row_matching, greedy_vertex_matching]
MAXIMAL = [greedy_edge_matching, greedy_vertex_matching]


@st.composite
def random_graphs(draw):
    n = draw(st.integers(1, 14))
    density = draw(st.floats(0.05, 0.7))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    return from_dense((rng.random((n, n)) < density).astype(int))


def is_maximal(graph: BipartiteGraph, matching) -> bool:
    """No edge has both endpoints free."""
    free_rows = set(matching.unmatched_rows().tolist())
    free_cols = set(matching.unmatched_cols().tolist())
    return not any(
        i in free_rows and j in free_cols for i, j in graph.iter_edges()
    )


class TestValidity:
    @pytest.mark.parametrize("algo", ALL)
    def test_valid_on_random(self, algo):
        g = sprand(300, 3.0, seed=0)
        algo(g, seed=1).validate(g)

    @pytest.mark.parametrize("algo", ALL)
    def test_perfect_on_identity(self, algo):
        # Identity leaves no choices: every variant must match everything.
        m = algo(identity(20), seed=0)
        assert m.is_perfect()

    @pytest.mark.parametrize("algo", ALL)
    def test_deterministic_given_seed(self, algo):
        g = sprand(100, 3.0, seed=0)
        a = algo(g, seed=42)
        b = algo(g, seed=42)
        np.testing.assert_array_equal(a.row_match, b.row_match)


class TestMaximality:
    @pytest.mark.parametrize("algo", MAXIMAL)
    @given(g=random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_maximal(self, algo, g):
        m = algo(g, seed=0)
        assert is_maximal(g, m)

    @pytest.mark.parametrize("algo", MAXIMAL)
    @given(g=random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_half_approximation(self, algo, g):
        """A maximal matching is at least half the maximum (the classical
        1/2 guarantee of Section 2.1)."""
        m = algo(g, seed=0)
        opt = hopcroft_karp(g).cardinality
        assert 2 * m.cardinality >= opt
