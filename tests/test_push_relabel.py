"""Tests for the push-relabel exact matcher (repro.matching.exact.push_relabel)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    empty,
    from_dense,
    identity,
    karp_sipser_adversarial,
    sprand,
    sprand_rect,
)
from repro.matching import Matching, hopcroft_karp, push_relabel


@st.composite
def random_graphs(draw):
    nrows = draw(st.integers(1, 15))
    ncols = draw(st.integers(1, 15))
    density = draw(st.floats(0.05, 0.7))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    return from_dense((rng.random((nrows, ncols)) < density).astype(int))


class TestExactness:
    def test_identity(self):
        assert push_relabel(identity(20)).is_perfect()

    def test_empty(self):
        assert push_relabel(empty(5, 5)).cardinality == 0

    def test_displacement_chain(self):
        # r1 must displace r0 off c0 and r0 must move to c1.
        g = from_dense(np.array([[1, 1], [1, 0]]))
        m = push_relabel(g)
        assert m.is_perfect()

    @given(random_graphs())
    @settings(max_examples=100, deadline=None)
    def test_matches_hopcroft_karp(self, g):
        m = push_relabel(g)
        m.validate(g)
        assert m.cardinality == hopcroft_karp(g).cardinality

    def test_large_sparse(self):
        g = sprand(5000, 3.0, seed=0)
        assert push_relabel(g).cardinality == hopcroft_karp(g).cardinality

    def test_rectangular(self):
        g = sprand_rect(60, 90, 2.5, seed=1)
        assert push_relabel(g).cardinality == hopcroft_karp(g).cardinality

    def test_adversarial_family(self):
        g = karp_sipser_adversarial(60, 8)
        assert push_relabel(g).cardinality == 60


class TestWarmStart:
    def test_heuristic_warm_start_stays_exact(self):
        from repro.core import two_sided_match

        g = sprand(1000, 3.0, seed=2)
        opt = hopcroft_karp(g).cardinality
        init = two_sided_match(g, 5, seed=0).matching
        m = push_relabel(g, initial=init)
        m.validate(g)
        assert m.cardinality == opt

    def test_invalid_initial_rejected(self):
        from repro.errors import ValidationError

        g = identity(3)
        bad = Matching.from_row_match([1, -1, -1], 3)
        with pytest.raises(ValidationError):
            push_relabel(g, initial=bad)
