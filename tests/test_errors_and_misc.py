"""Tests for the exception hierarchy, typing helpers, and result types."""

import numpy as np
import pytest

from repro import errors
from repro._typing import NIL, rng_from
from repro.scaling.result import ScalingResult


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            if name in ("ReproError", "ConvergenceWarning"):
                continue
            assert issubclass(cls, errors.ReproError), name

    def test_shape_error_is_graph_structure_error(self):
        assert issubclass(errors.ShapeError, errors.GraphStructureError)

    def test_validation_error_is_matching_error(self):
        assert issubclass(errors.ValidationError, errors.MatchingError)

    def test_schedule_error_is_backend_error(self):
        assert issubclass(errors.ScheduleError, errors.BackendError)

    def test_convergence_warning_is_warning(self):
        assert issubclass(errors.ConvergenceWarning, UserWarning)

    def test_catch_all(self):
        """A caller can blanket-catch ReproError around the public API."""
        from repro.graph import BipartiteGraph

        with pytest.raises(errors.ReproError):
            BipartiteGraph(2, 2, np.array([0, 1]), np.array([9]))


class TestRngFrom:
    def test_none_gives_generator(self):
        assert isinstance(rng_from(None), np.random.Generator)

    def test_int_deterministic(self):
        a = rng_from(42).random(4)
        b = rng_from(42).random(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert rng_from(g) is g

    def test_numpy_integer_accepted(self):
        assert isinstance(rng_from(np.int64(7)), np.random.Generator)

    def test_nil_is_minus_one(self):
        assert NIL == -1


class TestScalingResult:
    def test_arrays_coerced_to_float64(self):
        res = ScalingResult(
            dr=[1, 2], dc=[3], error=0.1, iterations=2, converged=False
        )
        assert res.dr.dtype == np.float64
        assert res.dc.dtype == np.float64
        assert res.shape == (2, 1)

    def test_history_default_empty(self):
        res = ScalingResult(
            dr=np.ones(2), dc=np.ones(2), error=0.0, iterations=0,
            converged=True,
        )
        assert res.history == ()
