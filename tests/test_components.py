"""Tests for connected components and cycle counting (repro.graph.components)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    component_cycle_counts,
    connected_components,
    from_edges,
    identity,
)
from repro.core.karp_sipser_mt import choice_graph


class TestConnectedComponents:
    def test_identity_components(self):
        info = connected_components(identity(4))
        assert info.n_components == 4
        # Each row is with its own column.
        for i in range(4):
            assert info.row_labels[i] == info.col_labels[i]

    def test_isolated_vertices_get_own_labels(self):
        g = from_edges(3, 3, [0], [0])
        info = connected_components(g)
        # 1 joined pair + 2 isolated rows + 2 isolated cols = 5 components.
        assert info.n_components == 5

    def test_single_component(self):
        # Path r0-c0-r1-c1-r2.
        g = from_edges(3, 2, [0, 1, 1, 2], [0, 0, 1, 1])
        info = connected_components(g)
        assert info.n_components == 1
        assert info.sizes().tolist() == [5]

    def test_two_components(self):
        g = from_edges(4, 2, [0, 1, 2, 3], [0, 0, 1, 1])
        info = connected_components(g)
        assert info.n_components == 2
        assert info.row_labels[0] == info.row_labels[1]
        assert info.row_labels[2] == info.row_labels[3]
        assert info.row_labels[0] != info.row_labels[2]

    def test_component_against_networkx(self):
        import networkx as nx

        rng = np.random.default_rng(0)
        for _ in range(10):
            n = 30
            rows = rng.integers(0, n, 40)
            cols = rng.integers(0, n, 40)
            g = from_edges(n, n, rows, cols)
            nxg = nx.Graph()
            nxg.add_nodes_from(range(2 * n))
            nxg.add_edges_from(
                (int(r), n + int(c)) for r, c in zip(rows, cols)
            )
            assert (
                connected_components(g).n_components
                == nx.number_connected_components(nxg)
            )


class TestCycleCounts:
    def test_tree_has_zero(self):
        g = from_edges(2, 2, [0, 0, 1], [0, 1, 1])  # path
        assert component_cycle_counts(g).tolist() == [0]

    def test_single_cycle(self):
        # 4-cycle r0-c0-r1-c1-r0.
        g = from_edges(2, 2, [0, 0, 1, 1], [0, 1, 0, 1])
        assert component_cycle_counts(g).tolist() == [1]

    def test_two_cycles_in_one_component(self):
        # K_{2,3} has 2 independent cycles.
        g = from_edges(2, 3, [0, 0, 0, 1, 1, 1], [0, 1, 2, 0, 1, 2])
        assert component_cycle_counts(g).tolist() == [2]

    @given(st.integers(2, 80), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_lemma1_choice_graphs_unicyclic(self, n, seed):
        """Paper Lemma 1: components of choice subgraphs have <= 1 cycle."""
        rng = np.random.default_rng(seed)
        rc = rng.integers(0, n, n)
        cc = rng.integers(0, n, n)
        g = choice_graph(rc, cc)
        counts = component_cycle_counts(g)
        assert counts.max() <= 1
        assert counts.min() >= 0
