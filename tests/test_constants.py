"""Tests for the guarantee constants (repro.constants)."""

import math

import pytest

from repro.constants import (
    E,
    ONE_SIDED_GUARANTEE,
    RHO,
    TWO_SIDED_GUARANTEE,
    lambert_w0_of_one,
    one_sided_guarantee_relaxed,
)


class TestOmegaConstant:
    def test_rho_solves_defining_equation(self):
        assert abs(RHO * math.exp(RHO) - 1.0) < 1e-14

    def test_rho_against_scipy(self):
        from scipy.special import lambertw

        assert abs(RHO - float(lambertw(1.0).real)) < 1e-12

    def test_rho_known_decimal_expansion(self):
        # Omega constant = 0.5671432904097838...
        assert abs(RHO - 0.5671432904097838) < 1e-13

    def test_newton_is_idempotent(self):
        assert lambert_w0_of_one() == RHO


class TestGuarantees:
    def test_one_sided_value(self):
        assert abs(ONE_SIDED_GUARANTEE - (1.0 - 1.0 / E)) < 1e-15
        assert 0.632 < ONE_SIDED_GUARANTEE < 0.633

    def test_two_sided_value(self):
        assert abs(TWO_SIDED_GUARANTEE - 2.0 * (1.0 - RHO)) < 1e-15
        assert 0.8657 < TWO_SIDED_GUARANTEE < 0.8658

    def test_two_sided_beats_one_sided(self):
        # The whole point of the second heuristic.
        assert TWO_SIDED_GUARANTEE > ONE_SIDED_GUARANTEE


class TestRelaxedGuarantee:
    def test_alpha_one_matches_theorem(self):
        assert abs(
            one_sided_guarantee_relaxed(1.0) - ONE_SIDED_GUARANTEE
        ) < 1e-15

    def test_paper_example_alpha_092(self):
        # Section 3.3: alpha = 0.92 -> about 0.6015.
        assert abs(one_sided_guarantee_relaxed(0.92) - 0.6015) < 5e-4

    def test_monotone_in_alpha(self):
        values = [one_sided_guarantee_relaxed(a / 10) for a in range(11)]
        assert values == sorted(values)

    def test_alpha_zero_gives_zero(self):
        assert one_sided_guarantee_relaxed(0.0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, 1.5, 2.0])
    def test_out_of_range_alpha_rejected(self, bad):
        with pytest.raises(ValueError):
            one_sided_guarantee_relaxed(bad)
