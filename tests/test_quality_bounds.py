"""Statistical checks of the paper's quality guarantees.

Theorem 1: on graphs with total support, OneSidedMatch matches at least
``1 - 1/e ≈ 0.632`` of the rows in expectation.  Conjecture 1 (supported
by the paper's experiments): TwoSidedMatch reaches ``2(1 - ρ) ≈ 0.866``
where ``ρ = W(1)``.  Both statements are about the *mean* over the
algorithm's internal randomness, so these tests average many seeded
trials and compare the mean against the floor minus a slack ``EPS`` that
covers finite-sample noise (trial standard deviation is ~0.015 at the
sizes used; the standard error of a 40-trial mean is ~0.0024, so
``EPS = 0.02`` gives a >7-sigma margin against false alarms while still
catching any real quality regression).

Trial counts scale with the ``REPRO_STAT_TRIALS`` environment variable
(default 40, which keeps the file inside the tier-1 budget; the issue's
full sweep is ``REPRO_STAT_TRIALS=200 pytest -m statistical``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.constants import ONE_SIDED_GUARANTEE, TWO_SIDED_GUARANTEE
from repro.core import one_sided_match, two_sided_match
from repro.graph.generators import full_ones, sprand, union_of_permutations
from repro.matching import sprank
from repro.scaling import scale_sinkhorn_knopp

TRIALS = int(os.environ.get("REPRO_STAT_TRIALS", "40"))
EPS = 0.02

pytestmark = pytest.mark.statistical


def _mean_quality(fn, trials=TRIALS):
    return float(np.mean([fn(seed) for seed in range(trials)]))


@pytest.fixture(scope="module")
def dense_instance():
    """full_ones: doubly stochastic after scaling, sprank = n."""
    g = full_ones(300)
    return g, scale_sinkhorn_knopp(g, 5)


@pytest.fixture(scope="module")
def perm_union_instance():
    """Union of 4 permutations: sparse, total support, sprank = n."""
    g = union_of_permutations(800, 4, seed=0)
    return g, scale_sinkhorn_knopp(g, 5)


def test_one_sided_mean_quality_dense(dense_instance):
    g, sc = dense_instance
    mean = _mean_quality(
        lambda s: one_sided_match(g, scaling=sc, seed=s).cardinality
        / g.nrows
    )
    assert mean >= ONE_SIDED_GUARANTEE - EPS, mean


def test_two_sided_mean_quality_dense(dense_instance):
    g, sc = dense_instance
    mean = _mean_quality(
        lambda s: two_sided_match(
            g, scaling=sc, seed=s, engine="vectorized"
        ).cardinality / g.nrows
    )
    assert mean >= TWO_SIDED_GUARANTEE - EPS, mean


def test_one_sided_mean_quality_sparse(perm_union_instance):
    g, sc = perm_union_instance
    mean = _mean_quality(
        lambda s: one_sided_match(g, scaling=sc, seed=s).cardinality
        / g.nrows
    )
    assert mean >= ONE_SIDED_GUARANTEE - EPS, mean


def test_two_sided_mean_quality_sparse(perm_union_instance):
    g, sc = perm_union_instance
    mean = _mean_quality(
        lambda s: two_sided_match(
            g, scaling=sc, seed=s, engine="vectorized"
        ).cardinality / g.nrows
    )
    assert mean >= TWO_SIDED_GUARANTEE - EPS, mean


def test_quality_vs_sprank_er():
    """ER graphs lack total support; quality is measured against sprank.

    Empirically both heuristics clear the theoretical floors here too
    (measured means 0.71 / 0.89 at this size); the test guards the
    weaker, guaranteed-side statement.
    """
    g = sprand(1000, 5.0, seed=3)
    sc = scale_sinkhorn_knopp(g, 5)
    maximum = sprank(g)
    trials = max(10, TRIALS // 4)
    one = _mean_quality(
        lambda s: one_sided_match(g, scaling=sc, seed=s).cardinality
        / maximum,
        trials,
    )
    two = _mean_quality(
        lambda s: two_sided_match(
            g, scaling=sc, seed=s, engine="vectorized"
        ).cardinality / maximum,
        trials,
    )
    assert one >= ONE_SIDED_GUARANTEE - EPS, one
    assert two >= TWO_SIDED_GUARANTEE - EPS, two
    assert two >= one  # two-sided dominates on average


def test_more_iterations_do_not_hurt(perm_union_instance):
    """5 SK iterations should beat 0 (uniform choices) on average."""
    g, _ = perm_union_instance
    trials = max(10, TRIALS // 4)
    uniform = _mean_quality(
        lambda s: one_sided_match(g, 0, seed=s).cardinality / g.nrows,
        trials,
    )
    scaled = _mean_quality(
        lambda s: one_sided_match(g, 5, seed=s).cardinality / g.nrows,
        trials,
    )
    assert scaled >= uniform - 0.01, (uniform, scaled)
