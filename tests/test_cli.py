"""Tests for the library CLI (python -m repro)."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.graph import sprand
from repro.graph.io import write_matrix_market


@pytest.fixture()
def mtx(tmp_path):
    path = tmp_path / "g.mtx"
    write_matrix_market(sprand(200, 3.0, seed=0), path)
    return str(path)


class TestCLI:
    def test_info(self, mtx, capsys):
        assert main(["info", mtx]) == 0
        out = capsys.readouterr().out
        assert "200 x 200" in out and "edges" in out

    def test_sprank(self, mtx, capsys):
        assert main(["sprank", mtx]) == 0
        assert "sprank =" in capsys.readouterr().out

    def test_scale(self, mtx, tmp_path, capsys):
        out_file = tmp_path / "scal.npz"
        assert main(
            ["scale", mtx, "--iterations", "5", "--out", str(out_file)]
        ) == 0
        with np.load(out_file) as data:
            assert data["dr"].shape == (200,)
        assert "final error" in capsys.readouterr().out

    def test_scale_ruiz(self, mtx, capsys):
        assert main(["scale", mtx, "--method", "ruiz"]) == 0

    @pytest.mark.parametrize(
        "method",
        ["one-sided", "two-sided", "karp-sipser", "karp-sipser-plus",
         "greedy", "hopcroft-karp", "mc21", "push-relabel"],
    )
    def test_match_all_methods(self, mtx, method, capsys):
        assert main(["match", mtx, "--method", method]) == 0
        assert "cardinality" in capsys.readouterr().out

    def test_match_with_quality_and_out(self, mtx, tmp_path, capsys):
        out_file = tmp_path / "m.npz"
        assert main(
            ["match", mtx, "--quality", "--out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "quality" in out
        with np.load(out_file) as data:
            assert data["row_match"].shape == (200,)

    def test_match_best_of(self, mtx, capsys):
        assert main(["match", mtx, "--method", "two-sided",
                     "--best-of", "3"]) == 0
        assert "cardinality" in capsys.readouterr().out

    def test_dm(self, mtx, capsys):
        assert main(["dm", mtx]) == 0
        out = capsys.readouterr().out
        assert "block H" in out and "total support" in out

    def test_kernels_report(self, capsys):
        assert main(["kernels", "--n", "500", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "selected mode" in out and "cache dir" in out
        for name in ("sk_sweep", "choice_scaled", "auction_bid"):
            assert name in out

    def test_kernels_no_bench(self, capsys):
        assert main(["kernels", "--no-bench"]) == 0
        out = capsys.readouterr().out
        assert "sk_sweep_err" in out and "numpy_ms" in out

    def test_generate_sprand(self, tmp_path, capsys):
        out_file = tmp_path / "gen.mtx"
        assert main(
            ["generate", "sprand", "--n", "100", "--degree", "3",
             "--out", str(out_file)]
        ) == 0
        assert out_file.exists()

    def test_generate_suite_instance(self, tmp_path, capsys):
        assert main(["generate", "torso1", "--n", "1200"]) == 0
        assert "edges" in capsys.readouterr().out

    def test_generate_adversarial(self, capsys):
        assert main(["generate", "adversarial", "--n", "100", "--k", "4"]) == 0

    def test_generate_one_out(self, capsys):
        assert main(["generate", "one-out", "--n", "500"]) == 0

    def test_generate_unknown_kind(self):
        with pytest.raises(SystemExit):
            main(["generate", "mystery"])

    def test_npz_round_trip_via_cli(self, tmp_path, capsys):
        npz = tmp_path / "g.npz"
        assert main(
            ["generate", "fully-indecomposable", "--n", "300",
             "--out", str(npz)]
        ) == 0
        assert main(["sprank", str(npz)]) == 0
        assert "1.0000" in capsys.readouterr().out  # full sprank
