"""Cross-engine fuzzing of TwoSidedMatch over graph families.

The four KarpSipserMT engines must return matchings of identical
cardinality (the maximum of the choice subgraph is unique) for every
family x seed combination, including the pathological families.
"""

import numpy as np
import pytest

from repro.graph import (
    banded,
    from_dense,
    full_ones,
    grid_graph,
    karp_sipser_adversarial,
    power_law_bipartite,
    sprand,
    sprand_rect,
)
from repro.core import two_sided_match
from repro.scaling import scale_sinkhorn_knopp

FAMILIES = {
    "er": lambda seed: sprand(400, 3.0, seed=seed),
    "rect": lambda seed: sprand_rect(300, 400, 2.5, seed=seed),
    "dense": lambda seed: full_ones(80),
    "banded": lambda seed: banded(300, 2),
    "grid": lambda seed: grid_graph(18, 18),
    "power-law": lambda seed: power_law_bipartite(400, 5.0, skew=1.5,
                                                  seed=seed),
    "adversarial": lambda seed: karp_sipser_adversarial(200, 8),
    "with-empties": lambda seed: from_dense(
        (np.random.default_rng(seed).random((50, 50)) < 0.03).astype(int)
    ),
}

ENGINES = ("serial", "vectorized", "simulated", "threaded")


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_engines_agree_per_family(family):
    build = FAMILIES[family]
    for seed in range(3):
        g = build(seed)
        scaling = scale_sinkhorn_knopp(g, 3)
        results = {}
        for engine in ENGINES:
            res = two_sided_match(
                g, scaling=scaling, seed=seed, engine=engine, n_threads=3
            )
            res.matching.validate(g)
            results[engine] = res.cardinality
        assert len(set(results.values())) == 1, (family, seed, results)


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_maximum_on_choice_subgraph(engine):
    from repro.core import choice_graph
    from repro.matching import hopcroft_karp

    g = sprand(300, 4.0, seed=9)
    scaling = scale_sinkhorn_knopp(g, 3)
    res = two_sided_match(g, scaling=scaling, seed=9, engine=engine,
                          n_threads=4)
    sub = choice_graph(res.row_choice, res.col_choice)
    assert res.cardinality == hopcroft_karp(sub).cardinality


# ----------------------------------------------------------------------
# Auction adversarial corpus.  Each entry is a graph construction that
# stresses a specific failure mode of auction engines: price-war chains
# (long displacement cascades), structurally-deficient instances that
# force the abandonment certificate, degenerate shapes, and cases that
# previous fuzzing runs actually broke.
# ----------------------------------------------------------------------

from repro.graph import empty, from_edges
from repro.matching import auction_match, hopcroft_karp


def _price_war_chain(n):
    """Path graph r_i ~ {c_i, c_{i+1}} plus one extra row contesting
    c_0: resolving the last free row displaces every pair down the
    chain — the auction's worst-case cascade."""
    rows, cols = [], []
    for i in range(n):
        rows += [i, i]
        cols += [i, min(i + 1, n - 1)]
    rows.append(n)  # the contender: only edge is the chain's head
    cols.append(0)
    return from_edges(n + 1, n, rows, cols)


def _star(n_leaves, hub_rows):
    """hub_rows rows all adjacent ONLY to column 0, plus one row per
    remaining column: max matching is 1 + (n_leaves - 1); every hub row
    but one must be certified abandoned."""
    rows = list(range(hub_rows)) * 1
    cols = [0] * hub_rows
    for k in range(1, n_leaves):
        rows.append(hub_rows + k - 1)
        cols.append(k)
    return from_edges(hub_rows + n_leaves - 1, n_leaves, rows, cols)


AUCTION_CASES = {
    "price-war-chain": lambda: _price_war_chain(60),
    "star-contested-hub": lambda: _star(30, 12),
    "single-edge": lambda: from_edges(1, 1, [0], [0]),
    "single-edge-in-void": lambda: from_edges(40, 40, [17], [31]),
    "empty-graph": lambda: empty(25, 30),
    "zero-vertices": lambda: empty(0, 0),
    "all-empty-rows": lambda: from_dense(np.zeros((10, 10), dtype=int)),
    "wide-rect": lambda: sprand_rect(40, 400, 4.0, seed=2),
    "tall-rect": lambda: sprand_rect(400, 40, 0.4, seed=2),
    "one-row-many-cols": lambda: from_edges(
        1, 50, [0] * 50, list(range(50))
    ),
    "many-rows-one-col": lambda: from_edges(
        50, 1, list(range(50)), [0] * 50
    ),
    # Regression: the GKK random-walk fast path looped forever on fully
    # dense square instances (every walk closes a cycle instead of an
    # augmenting path) until the probe learned to hand such instances
    # back to the auction.  Keep exercising sampling="auto" on it.
    "regression-gkk-dense-cycle": lambda: full_ones(80),
    # Regression: warm starts whose carried prices violate ε-CS used to
    # leave stale pairs behind; the with-empties family found it.
    "regression-sparse-empties": lambda: from_dense(
        (np.random.default_rng(3).random((50, 50)) < 0.03).astype(int)
    ),
}


@pytest.mark.exact
@pytest.mark.parametrize("case", sorted(AUCTION_CASES))
def test_auction_adversarial_corpus(case):
    g = AUCTION_CASES[case]()
    want = hopcroft_karp(g).cardinality
    for sampling in ("auto", "never"):
        res = auction_match(g, sampling=sampling, seed=0)
        res.matching.validate(g)
        assert res.cardinality == want, (case, sampling)
    # Warm start from the cold run's own output must also be maximum.
    cold = auction_match(g, sampling="never", seed=0)
    warm = auction_match(g, initial=cold, prices=cold.prices, seed=0)
    warm.matching.validate(g)
    assert warm.cardinality == want, (case, "warm")


@pytest.mark.exact
def test_auction_random_fuzz_against_hk():
    """Randomized sweep: shapes, densities, and schedules drawn from a
    seeded rng so failures replay exactly."""
    rng = np.random.default_rng(20260808)
    for trial in range(60):
        nrows = int(rng.integers(1, 60))
        ncols = int(rng.integers(1, 60))
        density = float(rng.uniform(0.02, 0.5))
        dense = (rng.random((nrows, ncols)) < density).astype(int)
        g = from_dense(dense)
        es = float(rng.uniform(0.2, 3.0))
        em = es / float(rng.choice([1.0, 4.0, 16.0]))
        res = auction_match(
            g, eps_start=es, eps_min=em, seed=int(rng.integers(0, 100))
        )
        res.matching.validate(g)
        assert res.cardinality == hopcroft_karp(g).cardinality, trial
