"""Cross-engine fuzzing of TwoSidedMatch over graph families.

The four KarpSipserMT engines must return matchings of identical
cardinality (the maximum of the choice subgraph is unique) for every
family x seed combination, including the pathological families.
"""

import numpy as np
import pytest

from repro.graph import (
    banded,
    from_dense,
    full_ones,
    grid_graph,
    karp_sipser_adversarial,
    power_law_bipartite,
    sprand,
    sprand_rect,
)
from repro.core import two_sided_match
from repro.scaling import scale_sinkhorn_knopp

FAMILIES = {
    "er": lambda seed: sprand(400, 3.0, seed=seed),
    "rect": lambda seed: sprand_rect(300, 400, 2.5, seed=seed),
    "dense": lambda seed: full_ones(80),
    "banded": lambda seed: banded(300, 2),
    "grid": lambda seed: grid_graph(18, 18),
    "power-law": lambda seed: power_law_bipartite(400, 5.0, skew=1.5,
                                                  seed=seed),
    "adversarial": lambda seed: karp_sipser_adversarial(200, 8),
    "with-empties": lambda seed: from_dense(
        (np.random.default_rng(seed).random((50, 50)) < 0.03).astype(int)
    ),
}

ENGINES = ("serial", "vectorized", "simulated", "threaded")


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_engines_agree_per_family(family):
    build = FAMILIES[family]
    for seed in range(3):
        g = build(seed)
        scaling = scale_sinkhorn_knopp(g, 3)
        results = {}
        for engine in ENGINES:
            res = two_sided_match(
                g, scaling=scaling, seed=seed, engine=engine, n_threads=3
            )
            res.matching.validate(g)
            results[engine] = res.cardinality
        assert len(set(results.values())) == 1, (family, seed, results)


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_maximum_on_choice_subgraph(engine):
    from repro.core import choice_graph
    from repro.matching import hopcroft_karp

    g = sprand(300, 4.0, seed=9)
    scaling = scale_sinkhorn_knopp(g, 3)
    res = two_sided_match(g, scaling=scaling, seed=9, engine=engine,
                          n_threads=4)
    sub = choice_graph(res.row_choice, res.col_choice)
    assert res.cardinality == hopcroft_karp(sub).cardinality
