"""Tests for the message-passing simulation and distributed scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BackendError
from repro.graph import from_dense, sprand, sprand_rect
from repro.parallel.mpi_sim import SimComm, run_ranks
from repro.scaling import scale_sinkhorn_knopp
from repro.scaling.distributed import scale_sinkhorn_knopp_distributed


class TestCollectives:
    def test_allreduce_sum(self):
        def program(comm, value):
            total = yield from comm.allreduce(value)
            return total

        assert run_ranks(program, [1, 2, 3, 4]) == [10, 10, 10, 10]

    def test_allreduce_sum_arrays(self):
        def program(comm, value):
            total = yield from comm.allreduce(value)
            return total

        out = run_ranks(program, [np.arange(3), np.ones(3)])
        np.testing.assert_array_equal(out[0], [1, 2, 3])
        np.testing.assert_array_equal(out[1], [1, 2, 3])

    def test_allreduce_max(self):
        def program(comm, value):
            return (yield from comm.allreduce(value, op="max"))

        assert run_ranks(program, [3, 7, 5]) == [7, 7, 7]

    def test_allreduce_bad_op(self):
        def program(comm, value):
            return (yield from comm.allreduce(value, op="min"))

        with pytest.raises(BackendError):
            run_ranks(program, [1, 2])

    def test_allgather_ordered_by_rank(self):
        def program(comm, value):
            return (yield from comm.allgather(value * 10))

        assert run_ranks(program, [1, 2, 3]) == [[10, 20, 30]] * 3

    def test_bcast_from_root(self):
        def program(comm, _):
            return (yield from comm.bcast("payload" if comm.rank == 0 else None))

        assert run_ranks(program, [None, None, None]) == ["payload"] * 3

    def test_bcast_nonzero_root(self):
        def program(comm, _):
            value = {"rank": comm.rank} if comm.rank == 2 else None
            return (yield from comm.bcast(value, root=2))

        assert run_ranks(program, [0, 0, 0]) == [{"rank": 2}] * 3

    def test_barrier_and_rank_metadata(self):
        def program(comm, _):
            yield from comm.barrier()
            return (comm.rank, comm.size)

        assert run_ranks(program, [None] * 3) == [(0, 3), (1, 3), (2, 3)]

    def test_data_is_copied_across_ranks(self):
        """A rank mutating received data must not affect other ranks."""

        def program(comm, _):
            data = yield from comm.allgather(np.zeros(2))
            data[0][0] = comm.rank + 1.0  # mutate the received copy
            yield from comm.barrier()
            check = yield from comm.allgather(float(data[0][0]))
            return check

        out = run_ranks(program, [None, None])
        # Each rank sees its own mutation only.
        assert out[0] == [1.0, 2.0]

    def test_sequence_of_collectives(self):
        def program(comm, value):
            a = yield from comm.allreduce(value)
            b = yield from comm.allgather(a + comm.rank)
            c = yield from comm.allreduce(max(b), op="max")
            return c

        assert run_ranks(program, [1, 1]) == [3, 3]

    def test_mismatched_collectives_raise(self):
        def program(comm, _):
            if comm.rank == 0:
                yield from comm.allreduce(1)
            else:
                yield from comm.allgather(1)

        with pytest.raises(BackendError):
            run_ranks(program, [None, None])

    def test_mismatched_allreduce_ops_raise(self):
        """Same collective *kind* but different reduce ops is still a
        mismatch — op identity is part of the slot signature."""

        def program(comm, _):
            op = "sum" if comm.rank == 0 else "max"
            return (yield from comm.allreduce(1, op=op))

        with pytest.raises(BackendError, match="mismatch"):
            run_ranks(program, [None, None])

    def test_mismatched_bcast_roots_raise(self):
        def program(comm, _):
            root = comm.rank  # every rank nominates itself
            return (yield from comm.bcast(comm.rank, root=root))

        with pytest.raises(BackendError):
            run_ranks(program, [None, None])

    def test_bcast_root_without_payload_raises(self):
        def program(comm, _):
            return (yield from comm.bcast(None))  # no rank contributes

        with pytest.raises(BackendError):
            run_ranks(program, [None, None])

    def test_mismatched_collective_counts_raise(self):
        """One rank finishing while another still waits at a barrier is
        the classic hang; the simulator reports it instead of spinning."""

        def program(comm, _):
            yield from comm.barrier()
            if comm.rank == 0:
                yield from comm.barrier()  # extra round nobody joins
            return comm.rank

        with pytest.raises(BackendError):
            run_ranks(program, [None, None], max_steps=1000)

    def test_deadlock_detected_by_step_bound(self):
        def program(comm, _):
            if comm.rank == 0:
                yield from comm.barrier()  # rank 1 never joins
            return None

        with pytest.raises(BackendError):
            run_ranks(program, [None, None], max_steps=1000)

    def test_zero_ranks_rejected(self):
        with pytest.raises(BackendError):
            run_ranks(lambda c, a: iter(()), [])


class TestSingleRank:
    """Degenerate one-rank runs: every collective must be the identity."""

    def test_allreduce_identity(self):
        def program(comm, value):
            s = yield from comm.allreduce(value)
            m = yield from comm.allreduce(value, op="max")
            return (s, m)

        out = run_ranks(program, [np.array([1.0, 2.0])])
        np.testing.assert_array_equal(out[0][0], [1.0, 2.0])
        np.testing.assert_array_equal(out[0][1], [1.0, 2.0])

    def test_allgather_singleton(self):
        def program(comm, value):
            return (yield from comm.allgather(value))

        assert run_ranks(program, [42]) == [[42]]

    def test_bcast_self(self):
        def program(comm, _):
            return (yield from comm.bcast("solo"))

        assert run_ranks(program, [None]) == ["solo"]

    def test_barrier_no_deadlock(self):
        def program(comm, _):
            yield from comm.barrier()
            yield from comm.barrier()
            return comm.size

        assert run_ranks(program, [None], max_steps=100) == [1]


class TestDistributedScaling:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 5])
    def test_matches_serial(self, n_ranks):
        g = sprand(300, 4.0, seed=0)
        serial = scale_sinkhorn_knopp(g, 5)
        dist = scale_sinkhorn_knopp_distributed(g, 5, n_ranks=n_ranks)
        np.testing.assert_allclose(dist.dr, serial.dr, rtol=1e-12)
        np.testing.assert_allclose(dist.dc, serial.dc, rtol=1e-12)
        assert dist.error == pytest.approx(serial.error, rel=1e-9)

    def test_rectangular(self):
        g = sprand_rect(120, 200, 3.0, seed=1)
        serial = scale_sinkhorn_knopp(g, 4)
        dist = scale_sinkhorn_knopp_distributed(g, 4, n_ranks=3)
        np.testing.assert_allclose(dist.dr, serial.dr, rtol=1e-12)

    def test_empty_lines_tolerated(self):
        a = np.array([[1, 1, 0], [0, 0, 0], [0, 1, 0]])
        g = from_dense(a)
        dist = scale_sinkhorn_knopp_distributed(g, 3, n_ranks=2)
        assert np.isfinite(dist.dr).all()
        assert np.isfinite(dist.dc).all()

    def test_more_ranks_than_rows(self):
        g = sprand(5, 2.0, seed=0)
        dist = scale_sinkhorn_knopp_distributed(g, 2, n_ranks=16)
        serial = scale_sinkhorn_knopp(g, 2)
        np.testing.assert_allclose(dist.dr, serial.dr, rtol=1e-12)

    def test_zero_iterations(self):
        g = sprand(50, 3.0, seed=0)
        dist = scale_sinkhorn_knopp_distributed(g, 0, n_ranks=2)
        np.testing.assert_array_equal(dist.dr, np.ones(50))

    def test_bad_arguments(self):
        from repro.errors import ScalingError

        g = sprand(10, 2.0, seed=0)
        with pytest.raises(ScalingError):
            scale_sinkhorn_knopp_distributed(g, -1)
        with pytest.raises(ScalingError):
            scale_sinkhorn_knopp_distributed(g, 2, n_ranks=0)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=120),
        degree=st.floats(min_value=1.0, max_value=6.0),
        iterations=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_ranks=st.integers(min_value=1, max_value=7),
    )
    def test_rank_count_never_changes_the_factors(
        self, n, degree, iterations, seed, n_ranks
    ):
        """Property: for any graph, budget, and rank count, the
        distributed sweep agrees with the serial one to rtol 1e-12 (the
        partial column sums are re-associated across ranks, so bitwise
        equality is deliberately NOT claimed — see the shard subsystem
        for the replicated-sweep variant that achieves it)."""
        g = sprand(n, min(degree, float(n)), seed=seed)
        serial = scale_sinkhorn_knopp(g, iterations)
        dist = scale_sinkhorn_knopp_distributed(
            g, iterations, n_ranks=n_ranks
        )
        np.testing.assert_allclose(dist.dr, serial.dr, rtol=1e-12)
        np.testing.assert_allclose(dist.dc, serial.dc, rtol=1e-12)
        assert dist.iterations == serial.iterations
