"""The native kernel tier: bitwise identity, selection, fallback.

The contract under test (see ``repro.parallel.native``): every native
loop implementation is **bitwise identical** to its numpy kernel on any
chunk of any input — the loops mirror numpy's exact reduction orders
(reduceat's first-element + pairwise tail, sequential cumsum, bisect-left,
NaN-propagating max, first-occurrence min ties).  On hosts without numba
the loops run as pure Python through the same wrappers, so the identity
property is checked everywhere the suite runs; with numba installed the
same tests exercise the compiled dispatchers.

Also covers the satellite fixes that rode along: ``run_kernel`` output-
binding validation, chunk-grid memoization, and the selection API
(env/`set_kernel_impl`/context manager, warn-once fallback).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.parallel.kernels as kernels_mod
from repro import telemetry
from repro.errors import BackendError
from repro.matching.matching import NIL
from repro.parallel import (
    force_native_impls,
    get_kernel_impl,
    kernel_chunk_override,
    kernel_impl,
    kernel_impls,
    native_available,
    run_kernel,
    set_kernel_impl,
    warm_compile,
)
from repro.parallel import native
from repro.parallel.kernels import AUCTION_DROP, KERNELS
from repro.parallel.partition import static_partition

pytestmark = pytest.mark.native


# ----------------------------------------------------------------------
# Adversarial input strategies
# ----------------------------------------------------------------------
@st.composite
def csr_inputs(draw):
    """A small CSR with adversarial segment shapes and magnitudes.

    Covers empty segments, single-edge segments, rectangular shapes, and
    values spanning subnormal (1e-320) to 1e18 — the ranges where a
    wrong summation tree shows up as a last-bit difference.
    """
    n = draw(st.integers(1, 10))
    degs = draw(
        st.lists(st.integers(0, 9), min_size=n, max_size=n)
    )
    ncols = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.asarray(degs, dtype=np.int64), out=ptr[1:])
    nnz = int(ptr[-1])
    ind = rng.integers(0, ncols, size=nnz, dtype=np.int64)
    exps = rng.integers(-320, 19, size=ncols)
    opp = rng.random(ncols) * np.power(10.0, exps.astype(np.float64))
    opp[rng.random(ncols) < 0.1] = 0.0
    lo = draw(st.integers(0, n - 1))
    hi = draw(st.integers(lo + 1, n))
    return ptr, ind, opp, rng, lo, hi


def _run_both(name, lo, hi, views):
    """Run numpy and native (loop-body) impls on copies; return both."""
    kern = KERNELS[name]
    v_np = {
        k: (a.copy() if isinstance(a, np.ndarray) else a)
        for k, a in views.items()
    }
    v_nat = {
        k: (a.copy() if isinstance(a, np.ndarray) else a)
        for k, a in views.items()
    }
    ret_np = kern.fn(lo, hi, v_np)
    ret_nat = native._WRAPPERS[name](lo, hi, v_nat)
    return ret_np, v_np, ret_nat, v_nat


def _assert_outputs_equal(name, v_np, v_nat):
    for out in KERNELS[name].outputs:
        a, b = v_np[out], v_nat[out]
        assert a.dtype == b.dtype
        assert np.array_equal(a, b), f"{name} output {out!r} diverges"


class TestBitwiseIdentityProperties:
    @given(data=csr_inputs())
    @settings(max_examples=60, deadline=None)
    def test_sk_sweep(self, data):
        ptr, ind, opp, rng, lo, hi = data
        n = ptr.shape[0] - 1
        views = {"ptr": ptr, "ind": ind, "opp": opp,
                 "out": np.zeros(n, dtype=np.float64)}
        _, v_np, _, v_nat = _run_both("sk_sweep", lo, hi, views)
        _assert_outputs_equal("sk_sweep", v_np, v_nat)

    @given(data=csr_inputs())
    @settings(max_examples=60, deadline=None)
    def test_sk_sweep_err(self, data):
        ptr, ind, opp, rng, lo, hi = data
        n = ptr.shape[0] - 1
        exps = rng.integers(-320, 19, size=n)
        mine = rng.random(n) * np.power(10.0, exps.astype(np.float64))
        views = {"ptr": ptr, "ind": ind, "opp": opp, "mine": mine,
                 "out": np.zeros(n, dtype=np.float64)}
        ret_np, v_np, ret_nat, v_nat = _run_both(
            "sk_sweep_err", lo, hi, views
        )
        _assert_outputs_equal("sk_sweep_err", v_np, v_nat)
        assert np.float64(ret_np).tobytes() == np.float64(ret_nat).tobytes()

    @given(data=csr_inputs())
    @settings(max_examples=60, deadline=None)
    def test_choice_scaled(self, data):
        ptr, ind, opp, rng, lo, hi = data
        n = ptr.shape[0] - 1
        views = {"ptr": ptr, "ind": ind, "opp": np.abs(opp),
                 "draws": 1.0 - rng.random(n),
                 "out": np.zeros(n, dtype=np.int64)}
        _, v_np, _, v_nat = _run_both("choice_scaled", lo, hi, views)
        _assert_outputs_equal("choice_scaled", v_np, v_nat)

    @given(data=csr_inputs())
    @settings(max_examples=60, deadline=None)
    def test_choice_flat(self, data):
        ptr, ind, opp, rng, lo, hi = data
        n = ptr.shape[0] - 1
        nnz = int(ptr[-1])
        exps = rng.integers(-320, 10, size=nnz)
        weights = rng.random(nnz) * np.power(10.0, exps.astype(np.float64))
        views = {"ptr": ptr, "ind": ind, "weights": weights,
                 "draws": 1.0 - rng.random(n),
                 "out": np.zeros(n, dtype=np.int64)}
        _, v_np, _, v_nat = _run_both("choice_flat", lo, hi, views)
        _assert_outputs_equal("choice_flat", v_np, v_nat)

    @given(data=csr_inputs())
    @settings(max_examples=60, deadline=None)
    def test_ks_phase1_scan(self, data):
        ptr, ind, opp, rng, lo, hi = data
        n = ptr.shape[0] - 1
        views = {
            "alive": rng.random(n) < 0.7,
            "in_count": rng.integers(0, 2, size=n).astype(np.int64),
            "match": rng.choice([NIL, 0, n - 1], size=n).astype(np.int64),
            "choice": rng.integers(-1, n, size=n, dtype=np.int64),
            "cand": np.zeros(n, dtype=bool),
        }
        _, v_np, _, v_nat = _run_both("ks_phase1_scan", lo, hi, views)
        _assert_outputs_equal("ks_phase1_scan", v_np, v_nat)

    @given(data=csr_inputs())
    @settings(max_examples=60, deadline=None)
    def test_ks_phase2_scan(self, data):
        ptr, ind, opp, rng, lo, hi = data
        n = ptr.shape[0] - 1
        nrows = int(rng.integers(0, 4))
        total = nrows + n
        views = {
            "nrows": nrows,
            "match": rng.choice([NIL, 0], size=total).astype(np.int64),
            "choice": rng.integers(-1, total, size=total, dtype=np.int64),
            "ok": np.zeros(n, dtype=bool),
        }
        _, v_np, _, v_nat = _run_both("ks_phase2_scan", lo, hi, views)
        _assert_outputs_equal("ks_phase2_scan", v_np, v_nat)

    @given(data=csr_inputs(), eps=st.floats(1e-9, 2.0),
           dead_q=st.floats(0.0, 1.5))
    @settings(max_examples=60, deadline=None)
    def test_auction_bid(self, data, eps, dead_q):
        ptr, ind, opp, rng, lo, hi = data
        n = ptr.shape[0] - 1
        ncols = opp.shape[0]
        prices = np.round(rng.random(ncols) * 2.0, 1)  # ties likely
        views = {
            "ptr": ptr, "ind": ind, "prices": prices,
            "eps": float(eps), "dead": float(dead_q * 2.0),
            "bid_col": np.zeros(n, dtype=np.int64),
            "bid_val": np.zeros(n, dtype=np.float64),
        }
        _, v_np, _, v_nat = _run_both("auction_bid", lo, hi, views)
        _assert_outputs_equal("auction_bid", v_np, v_nat)


class TestPairwiseTreeContract:
    """The summation-order mirror itself, on shapes that pick branches."""

    @pytest.mark.parametrize(
        "n", [0, 1, 2, 7, 8, 9, 16, 127, 128, 129, 300, 1000, 4097]
    )
    def test_gather_seg_sum_matches_reduceat(self, n):
        rng = np.random.default_rng(n)
        exps = rng.integers(-320, 19, size=max(n, 1))
        vals = rng.random(max(n, 1)) * np.power(
            10.0, exps.astype(np.float64)
        )
        ind = rng.permutation(max(n, 1)).astype(np.int64)
        got = native._gather_seg_sum(vals, ind, 0, n)
        if n == 0:
            assert got == 0.0
            return
        want = float(np.add.reduceat(vals[ind[:n]], [0])[0])
        assert np.float64(got).tobytes() == np.float64(want).tobytes()

    def test_single_element_preserves_negative_zero(self):
        vals = np.array([-0.0])
        ind = np.array([0], dtype=np.int64)
        got = native._gather_seg_sum(vals, ind, 0, 1)
        assert np.signbit(got)


class TestDispatchMatrix:
    """The wrappers through run_kernel on every backend, forced native."""

    BACKENDS = ["serial", "threads:2", "processes:2", "shm:2"]

    @pytest.mark.parametrize("spec", BACKENDS)
    def test_sweep_and_choice_through_backends(self, spec):
        rng = np.random.default_rng(11)
        n = 120
        degs = rng.integers(0, 7, size=n)
        degs[::17] = 0
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degs, out=ptr[1:])
        ind = rng.integers(0, n, size=int(ptr[-1]), dtype=np.int64)
        opp = rng.random(n) * np.power(
            10.0, rng.integers(-300, 18, size=n).astype(np.float64)
        )
        draws = 1.0 - rng.random(n)

        def run(name, extra, impl_forced):
            arrays = {"ptr": ptr, "ind": ind, "opp": opp, **extra}
            with kernel_chunk_override(23):
                if impl_forced:
                    with force_native_impls():
                        rets = run_kernel(
                            name, n, arrays, backend=spec
                        )
                else:
                    rets = run_kernel(name, n, arrays)
            return rets, arrays

        for name, extra in [
            ("sk_sweep", {"out": np.zeros(n)}),
            ("sk_sweep_err",
             {"mine": rng.random(n), "out": np.zeros(n)}),
            ("choice_scaled",
             {"draws": draws, "out": np.zeros(n, dtype=np.int64)}),
        ]:
            want_rets, want = run(name, {
                k: v.copy() for k, v in extra.items()
            }, False)
            got_rets, got = run(name, {
                k: v.copy() for k, v in extra.items()
            }, True)
            assert np.array_equal(got["out"], want["out"]), (name, spec)
            for a, b in zip(got_rets, want_rets):
                if isinstance(b, float):
                    assert np.float64(a).tobytes() == np.float64(b).tobytes()


class TestSelectionApi:
    def test_sentinels_match_canonical(self):
        assert native.NIL == NIL
        assert native.AUCTION_DROP == AUCTION_DROP

    def test_default_mode_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_IMPL", raising=False)
        native._reset_for_tests()
        assert get_kernel_impl() == "auto"

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_IMPL", "numpy")
        native._reset_for_tests()
        assert get_kernel_impl() == "numpy"
        monkeypatch.delenv("REPRO_KERNEL_IMPL")
        native._reset_for_tests()

    def test_invalid_env_warns_and_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_IMPL", "cython")
        with pytest.warns(RuntimeWarning, match="REPRO_KERNEL_IMPL"):
            native._reset_for_tests()
        assert get_kernel_impl() == "auto"
        monkeypatch.delenv("REPRO_KERNEL_IMPL")
        native._reset_for_tests()

    def test_set_kernel_impl_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_kernel_impl("fortran")

    def test_context_manager_restores(self):
        before = get_kernel_impl()
        with kernel_impl("numpy"):
            assert get_kernel_impl() == "numpy"
            with kernel_impl("native"):
                assert get_kernel_impl() == "native"
            assert get_kernel_impl() == "numpy"
        assert get_kernel_impl() == before

    def test_numpy_mode_resolves_to_registered_fn(self):
        kern = KERNELS["sk_sweep"]
        with kernel_impl("numpy"):
            assert native.active_fn(kern) is kern.fn

    def test_forced_mode_resolves_to_wrapper(self):
        kern = KERNELS["sk_sweep"]
        with force_native_impls():
            assert native.active_fn(kern) is native._WRAPPERS["sk_sweep"]

    def test_unknown_kernel_has_no_native_twin(self):
        from repro.parallel.kernels import Kernel

        stray = Kernel(name="stray", fn=lambda lo, hi, v: None)
        with kernel_impl("native"):
            assert native.active_fn(stray) is stray.fn

    def test_native_without_numba_warns_once_then_silent(self):
        if native_available():
            pytest.skip("numba installed: fallback path not reachable")
        native._reset_for_tests()
        kern = KERNELS["sk_sweep"]
        with kernel_impl("native"):
            with pytest.warns(RuntimeWarning, match="numba is not"):
                fn = native.active_fn(kern)
            assert fn is kern.fn
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert native.active_fn(kern) is kern.fn
                assert native.active_fn(KERNELS["auction_bid"]) is \
                    KERNELS["auction_bid"].fn

    def test_warm_compile_reports_every_kernel(self):
        native._reset_for_tests()
        with kernel_impl("numpy"):
            statuses = warm_compile()
        assert set(statuses) == set(native._WRAPPERS)
        assert all(s == "pending" for s in statuses.values())

    def test_kernel_impls_report_shape(self):
        rows = kernel_impls()
        assert {r["kernel"] for r in rows} == set(KERNELS)
        for row in rows:
            assert row["impl"] in ("numpy", "native")
            assert row["status"] in (
                "pending", "ready", "fallback", "unavailable"
            )

    def test_compiled_identity_when_numba_present(self):
        if not native_available():
            pytest.skip("numba not installed")
        native._reset_for_tests()
        with kernel_impl("native"):
            statuses = warm_compile()
            assert all(s == "ready" for s in statuses.values())
            kern = KERNELS["sk_sweep"]
            assert native.active_fn(kern) is native._WRAPPERS["sk_sweep"]


class TestOutputValidation:
    def test_missing_output_binding_raises_typed_error(self):
        n = 16
        arrays = {
            "ptr": np.zeros(n + 1, dtype=np.int64),
            "ind": np.zeros(0, dtype=np.int64),
            "opp": np.ones(n),
            # "out" deliberately missing
        }
        with pytest.raises(BackendError) as exc:
            run_kernel("sk_sweep", n, arrays)
        assert "sk_sweep" in str(exc.value)
        assert "out" in str(exc.value)

    def test_error_raised_before_any_worker_runs(self, ):
        n = 16
        arrays = {"prices": np.ones(4)}
        with pytest.raises(BackendError) as exc:
            run_kernel(
                "auction_bid", n, arrays,
                scalars={"eps": 0.1, "dead": 1.0},
            )
        msg = str(exc.value)
        assert "auction_bid" in msg and "bid_col" in msg


class TestGridMemoization:
    def test_grid_cache_hit_counter(self):
        kern = KERNELS["sk_sweep"]
        kernels_mod._GRID_CACHE.clear()
        with telemetry.session():
            first = kernels_mod.kernel_grid(100_000, kern)
            second = kernels_mod.kernel_grid(100_000, kern)
            reg = telemetry.get_registry()
            hits = reg.counter("parallel.grid.cache_hits").value
        assert first == second
        assert hits >= 1

    def test_grid_cache_respects_override(self):
        kern = KERNELS["sk_sweep"]
        with kernel_chunk_override(10):
            inside = kernels_mod.kernel_grid(25, kern)
        outside = kernels_mod.kernel_grid(25, kern)
        assert inside == [(0, 10), (10, 20), (20, 25)]
        assert outside == [(0, 25)]

    def test_grid_returns_fresh_list(self):
        kern = KERNELS["sk_sweep"]
        a = kernels_mod.kernel_grid(50_000, kern)
        a.append((-1, -1))
        b = kernels_mod.kernel_grid(50_000, kern)
        assert (-1, -1) not in b

    def test_static_partition_memoized(self):
        from repro.parallel import partition as part_mod

        part_mod._PARTITION_CACHE.clear()
        with telemetry.session():
            first = static_partition(10_000, 4)
            second = static_partition(10_000, 4)
            reg = telemetry.get_registry()
            hits = reg.counter("parallel.grid.cache_hits").value
        assert first == second
        assert hits >= 1

    def test_empty_segment_only_chunk_picks_nil(self):
        # Regression: a chunk of nothing but empty segments used to
        # index ind_slice[-1] on an empty slice in the numpy kernel.
        n = 3
        arrays = {
            "ptr": np.zeros(n + 1, dtype=np.int64),
            "ind": np.zeros(0, dtype=np.int64),
            "weights": np.zeros(0, dtype=np.float64),
            "draws": np.full(n, 0.5),
            "out": np.full(n, 7, dtype=np.int64),
        }
        run_kernel("choice_flat", n, arrays)
        assert np.all(arrays["out"] == NIL)


class TestCacheDir:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMBA_CACHE", "/tmp/some-cache")
        assert native.native_cache_dir() == "/tmp/some-cache"

    def test_xdg_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUMBA_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
        assert native.native_cache_dir() == "/tmp/xdg/repro/numba"
