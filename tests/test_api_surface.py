"""API surface checks: exports resolve and everything public is documented.

The documentation deliverable includes doc comments on every public item;
these tests make that a maintained invariant rather than a snapshot.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.scaling",
    "repro.matching",
    "repro.matching.exact",
    "repro.matching.heuristics",
    "repro.core",
    "repro.parallel",
    "repro.experiments",
]


def _all_modules():
    src = Path(repro.__file__).parent
    names = ["repro"]
    for info in pkgutil.walk_packages([str(src)], prefix="repro."):
        names.append(info.name)
    return sorted(names)


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_documented(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert (obj.__doc__ or "").strip(), (
                    f"{package}.{name} lacks a docstring"
                )


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        undocumented = []
        for name in _all_modules():
            mod = importlib.import_module(name)
            if not (mod.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"undocumented modules: {undocumented}"

    def test_every_example_has_a_docstring(self):
        examples = Path(repro.__file__).parents[2] / "examples"
        for script in examples.glob("*.py"):
            text = script.read_text(encoding="utf-8")
            body = text.split("\n", 1)[1] if text.startswith("#!") else text
            assert body.lstrip().startswith('"""'), script.name


class TestVersionConsistency:
    def test_version_matches_pyproject(self):
        import tomllib

        pyproject = Path(repro.__file__).parents[2] / "pyproject.toml"
        with open(pyproject, "rb") as fh:
            data = tomllib.load(fh)
        assert data["project"]["version"] == repro.__version__
