"""Tests for the Matching container (repro.matching.matching)."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.graph import from_dense, identity
from repro.matching import NIL, Matching


class TestConstruction:
    def test_empty(self):
        m = Matching.empty(3, 4)
        assert m.cardinality == 0
        assert not m.is_perfect()
        assert m.nrows == 3 and m.ncols == 4

    def test_from_row_match(self):
        m = Matching.from_row_match([1, NIL, 0], 2)
        assert m.cardinality == 2
        assert m.col_match.tolist() == [2, 0]

    def test_from_row_match_conflict(self):
        with pytest.raises(ValidationError):
            Matching.from_row_match([0, 0], 2)

    def test_from_row_match_out_of_range(self):
        with pytest.raises(ValidationError):
            Matching.from_row_match([5], 2)

    def test_from_col_match(self):
        m = Matching.from_col_match([NIL, 0, 1], 2)
        assert m.row_match.tolist() == [1, 2]

    def test_from_col_match_conflict(self):
        with pytest.raises(ValidationError):
            Matching.from_col_match([0, 0], 1)

    def test_from_pairs(self):
        m = Matching.from_pairs([(0, 1), (1, 0)], 2, 2)
        assert m.is_perfect()

    def test_from_pairs_conflict(self):
        with pytest.raises(ValidationError):
            Matching.from_pairs([(0, 1), (0, 0)], 2, 2)


class TestQueries:
    def test_matched_and_unmatched_sets(self):
        m = Matching.from_row_match([NIL, 2, NIL, 0], 3)
        assert m.matched_rows().tolist() == [1, 3]
        assert m.unmatched_rows().tolist() == [0, 2]
        assert m.matched_cols().tolist() == [0, 2]
        assert m.unmatched_cols().tolist() == [1]

    def test_pairs(self):
        m = Matching.from_row_match([2, NIL, 1], 3)
        assert m.pairs() == [(0, 2), (2, 1)]

    def test_quality(self):
        m = Matching.from_row_match([0, 1, NIL], 3)
        assert m.quality(3) == pytest.approx(2 / 3)

    def test_quality_zero_denominator(self):
        with pytest.raises(ValidationError):
            Matching.empty(2, 2).quality(0)


class TestValidation:
    def test_valid_on_identity(self):
        g = identity(3)
        m = Matching.from_row_match([0, 1, 2], 3)
        m.validate(g)  # no raise

    def test_wrong_shape_rejected(self):
        g = identity(3)
        with pytest.raises(ShapeError):
            Matching.empty(2, 2).validate(g)

    def test_non_edge_rejected(self):
        g = identity(3)
        m = Matching.from_row_match([1, 0, 2], 3)
        with pytest.raises(ValidationError):
            m.validate(g)

    def test_inconsistent_sides_rejected(self):
        g = from_dense(np.ones((2, 2)))
        m = Matching(
            np.array([0, NIL]),
            np.array([1, NIL]),  # col 0 claims row 1, but row 0 claims col 0
        )
        with pytest.raises(ValidationError):
            m.validate(g)

    def test_unmirrored_column_entry_rejected(self):
        g = from_dense(np.ones((2, 2)))
        m = Matching(np.array([NIL, NIL]), np.array([0, NIL]))
        with pytest.raises(ValidationError):
            m.validate(g)
