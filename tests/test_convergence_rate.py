"""Tests for the convergence-rate analysis (repro.scaling.convergence_rate)."""

import math

import numpy as np
import pytest

from repro.errors import ScalingError
from repro.graph import (
    from_dense,
    fully_indecomposable,
    karp_sipser_adversarial,
    power_law_bipartite,
    sprand_rect,
)
from repro.scaling import scale_sinkhorn_knopp
from repro.scaling.convergence_rate import (
    ConvergenceStudy,
    convergence_study,
    observed_rate,
    theoretical_rate,
)


class TestObservedRate:
    def test_pure_geometric_history(self):
        history = [0.5 * (0.8**k) for k in range(20)]
        assert observed_rate(history) == pytest.approx(0.8, rel=1e-9)

    def test_short_history_nan(self):
        assert math.isnan(observed_rate([0.5, 0.4]))

    def test_round_off_history_nan(self):
        assert math.isnan(observed_rate([1e-16] * 10))

    def test_transient_ignored(self):
        """Only the tail determines the fitted rate."""
        history = [10.0, 5.0, 3.0] + [1.0 * (0.9**k) for k in range(20)]
        assert observed_rate(history) == pytest.approx(0.9, rel=1e-6)


class TestTheoreticalRate:
    def test_rate_in_unit_interval(self):
        g = fully_indecomposable(200, 4.0, seed=0)
        scaling = scale_sinkhorn_knopp(g, 40)
        rate = theoretical_rate(g, scaling)
        assert 0.0 <= rate <= 1.0 + 1e-9

    def test_rectangular_rejected(self):
        g = sprand_rect(10, 12, 2.0, seed=0)
        with pytest.raises(ScalingError):
            theoretical_rate(g, scale_sinkhorn_knopp(g, 2))

    def test_tiny_matrix_rejected(self):
        g = from_dense(np.ones((2, 2)))
        with pytest.raises(ScalingError):
            theoretical_rate(g, scale_sinkhorn_knopp(g, 2))


class TestStudy:
    def test_knight_agreement_on_irregular_family(self):
        """The headline: observed rate ~ sigma_2^2 (Knight's theorem)."""
        g = fully_indecomposable(400, 4.0, seed=0)
        st = convergence_study(g, iterations=60)
        assert not math.isnan(st.observed)
        assert st.agreement < 0.05

    def test_adversarial_family_is_slow(self):
        """Near-1 rates explain Table 1's need for 10 iterations."""
        g = karp_sipser_adversarial(200, 2)
        st = convergence_study(g, iterations=80)
        assert st.predicted > 0.97
        assert st.observed > 0.95

    def test_power_law_agreement(self):
        g = power_law_bipartite(400, 4.0, skew=1.0, seed=0)
        st = convergence_study(g, iterations=60)
        assert st.agreement < 0.08

    def test_study_fields(self):
        g = fully_indecomposable(100, 4.0, seed=1)
        st = convergence_study(g, iterations=20)
        assert isinstance(st, ConvergenceStudy)
        assert st.iterations == 20
        assert st.final_error >= 0.0


class TestExperiment:
    def test_convergence_experiment_smoke(self):
        from repro.experiments.convergence import run_convergence

        t = run_convergence(n=200, iterations=30)
        assert len(t.rows) == 6
        recs = t.to_records()
        for r in recs:
            assert r["predicted rate"] >= 0.0
            if "deficient" not in r["family"]:
                # Knight's theorem needs support; only then is the
                # scaled matrix (sub)stochastic with sigma_2 <= 1.
                assert r["predicted rate"] <= 1.0 + 1e-9
