"""Tests for the shared-memory worker pool and the kernel registry.

Covers the three contracts the zero-copy path makes:

* **equivalence** — every backend (serial, threads, processes, shm,
  resilient wrappers) produces bitwise-identical scaling vectors,
  choices, and matchings, including on multi-chunk grids;
* **zero-copy** — a kernel call ships only names, ranges, and scalars to
  the pool: no array ever crosses the process boundary by pickling;
* **crash semantics** — a dead worker surfaces as a typed
  ``WorkerCrashError`` and the pool self-heals on the next call.
* **impl invariance** — the native (JIT) kernel tier is bitwise
  identical to numpy on every backend; without numba the exact loop
  bodies run as pure Python through the same dispatch
  (``force_native_impls``), so the matrix holds on every host.
"""

import contextlib

import numpy as np
import pytest

from repro.core.choice import ChoiceSampler, scaled_row_choices
from repro.core.ensemble import best_of
from repro.core.twosided import two_sided_match
from repro.errors import BackendError, WorkerCrashError
from repro.graph.generators import sprand, union_of_permutations
from repro.parallel import (
    SharedMemoryBackend,
    ThreadBackend,
    default_worker_count,
    force_native_impls,
    get_backend,
    kernel_chunk_override,
    kernel_impl,
    native_available,
    run_kernel,
)
from repro.parallel.kernels import KERNELS, kernel_grid
from repro.resilience.faults import FaultPlan, FaultSpec, injected_faults
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

BACKEND_SPECS = [
    "serial",
    "threads:2",
    "processes:2",
    "shm:2",
    "resilient:shm",
]

IMPLS = ["numpy", "native"]


@contextlib.contextmanager
def impl_context(impl):
    """Select a kernel implementation tier for the block, on any host.

    ``native`` without numba runs the exact loop bodies numba would
    compile, in pure Python, through the full dispatch stack — slow but
    test-sized, and it keeps the impl×backend matrix meaningful here.
    """
    if impl == "native" and not native_available():
        with force_native_impls():
            yield
    else:
        with kernel_impl(impl):
            yield


@pytest.fixture
def shm2():
    backend = SharedMemoryBackend(2)
    yield backend
    backend.close()


class TestDefaultWorkerCount:
    def test_positive_int(self):
        count = default_worker_count()
        assert isinstance(count, int) and count >= 1

    def test_backends_default_to_it(self):
        thread_be = ThreadBackend()
        shm_be = SharedMemoryBackend()
        try:
            assert thread_be.n_workers == default_worker_count()
            assert shm_be.n_workers == default_worker_count()
        finally:
            thread_be.close()
            shm_be.close()


class TestKernelGrid:
    def test_small_n_is_single_chunk(self):
        kern = KERNELS["sk_sweep"]
        assert kernel_grid(kern.min_chunk, kern) == [(0, kern.min_chunk)]

    def test_grid_depends_only_on_n_and_kernel(self):
        kern = KERNELS["sk_sweep"]
        n = 10 * kern.min_chunk
        grid = kernel_grid(n, kern)
        assert grid[0][0] == 0 and grid[-1][1] == n
        assert 1 < len(grid) <= kern.target_chunks
        assert grid == kernel_grid(n, kern)

    def test_override_context(self):
        kern = KERNELS["sk_sweep"]
        with kernel_chunk_override(10):
            assert kernel_grid(25, kern) == [(0, 10), (10, 20), (20, 25)]
        assert kernel_grid(25, kern) == [(0, 25)]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(BackendError):
            run_kernel("no_such_kernel", 4, {})


class TestBackendEquivalence:
    """Bitwise identity across every backend, on multi-chunk grids."""

    @pytest.fixture(scope="class")
    def graphs(self):
        return [
            sprand(700, 4.0, seed=5),
            sprand(900, 2.0, seed=6),  # has empty rows/cols
            union_of_permutations(800, 3, seed=7),
        ]

    @pytest.fixture(scope="class")
    def references(self, graphs):
        return [scale_sinkhorn_knopp(g, 5) for g in graphs]

    @pytest.mark.parametrize("spec", BACKEND_SPECS)
    def test_scaling_bitwise_identical(self, spec, graphs, references):
        backend = get_backend(spec)
        try:
            with kernel_chunk_override(97):
                for graph, ref in zip(graphs, references):
                    result = scale_sinkhorn_knopp(graph, 5, backend=backend)
                    assert np.array_equal(result.dr, ref.dr)
                    assert np.array_equal(result.dc, ref.dc)
                    assert result.error == ref.error
        finally:
            backend.close()

    @pytest.mark.parametrize("spec", BACKEND_SPECS)
    def test_choices_bitwise_identical(self, spec, graphs, references):
        backend = get_backend(spec)
        try:
            with kernel_chunk_override(64):
                for graph, ref in zip(graphs, references):
                    got = scaled_row_choices(
                        graph, ref.dr, ref.dc,
                        np.random.default_rng(3), backend=backend,
                    )
                    want = scaled_row_choices(
                        graph, ref.dr, ref.dc, np.random.default_rng(3)
                    )
                    assert np.array_equal(got, want)
        finally:
            backend.close()

    @pytest.mark.parametrize("spec", ["serial", "shm:2"])
    def test_parallel_engine_matches_vectorized(self, spec):
        graph = union_of_permutations(900, 4, seed=2)
        want = two_sided_match(graph, 5, seed=13, engine="vectorized")
        backend = get_backend(spec)
        try:
            with kernel_chunk_override(64):
                got = two_sided_match(
                    graph, 5, seed=13, backend=backend, engine="parallel"
                )
        finally:
            backend.close()
        got.matching.validate(graph)
        assert np.array_equal(
            got.matching.row_match, want.matching.row_match
        )

    def test_ensemble_matches_per_run_calls(self):
        graph = union_of_permutations(600, 3, seed=4)
        scaling = scale_sinkhorn_knopp(graph, 5)
        res = best_of(graph, 3, scaling=scaling, seed=9)
        rng = np.random.default_rng(9)
        manual = tuple(
            two_sided_match(graph, scaling=scaling, seed=rng).cardinality
            for _ in range(3)
        )
        assert res.cardinalities == manual

    def test_sampler_single_gather_reuse(self):
        graph = sprand(500, 3.0, seed=8)
        scaling = scale_sinkhorn_knopp(graph, 5)
        sampler = ChoiceSampler.for_rows(graph, scaling.dr, scaling.dc)
        got = sampler.sample(np.random.default_rng(1))
        want = scaled_row_choices(
            graph, scaling.dr, scaling.dc, np.random.default_rng(1)
        )
        assert np.array_equal(got, want)


@pytest.mark.native
class TestImplBackendMatrix:
    """numpy-vs-native bitwise identity over the full impl×backend grid.

    Reuses the backend-equivalence machinery above: the same engines, on
    multi-chunk grids, with the *implementation* tier as an extra axis.
    The reference is always the numpy serial run.
    """

    @pytest.fixture(scope="class")
    def matrix_graphs(self):
        return [
            sprand(500, 3.0, seed=5),
            sprand(600, 1.5, seed=6),  # has empty rows/cols
        ]

    @pytest.fixture(scope="class")
    def matrix_references(self, matrix_graphs):
        with kernel_chunk_override(97):
            return [scale_sinkhorn_knopp(g, 3) for g in matrix_graphs]

    @pytest.mark.parametrize("impl", IMPLS)
    @pytest.mark.parametrize("spec", BACKEND_SPECS)
    def test_scaling_bitwise_identical(
        self, spec, impl, matrix_graphs, matrix_references
    ):
        with impl_context(impl):
            backend = get_backend(spec)
            try:
                with kernel_chunk_override(97):
                    for graph, ref in zip(matrix_graphs, matrix_references):
                        result = scale_sinkhorn_knopp(
                            graph, 3, backend=backend
                        )
                        assert np.array_equal(result.dr, ref.dr)
                        assert np.array_equal(result.dc, ref.dc)
                        assert result.error == ref.error
            finally:
                backend.close()

    @pytest.mark.parametrize("impl", IMPLS)
    @pytest.mark.parametrize("spec", BACKEND_SPECS)
    def test_choices_bitwise_identical(
        self, spec, impl, matrix_graphs, matrix_references
    ):
        with kernel_chunk_override(64):
            wants = [
                scaled_row_choices(
                    graph, ref.dr, ref.dc, np.random.default_rng(3)
                )
                for graph, ref in zip(matrix_graphs, matrix_references)
            ]
        with impl_context(impl):
            backend = get_backend(spec)
            try:
                with kernel_chunk_override(64):
                    for graph, ref, want in zip(
                        matrix_graphs, matrix_references, wants
                    ):
                        got = scaled_row_choices(
                            graph, ref.dr, ref.dc,
                            np.random.default_rng(3), backend=backend,
                        )
                        assert np.array_equal(got, want)
            finally:
                backend.close()

    @pytest.mark.parametrize("impl", IMPLS)
    @pytest.mark.parametrize("spec", ["serial", "threads:2", "shm:2"])
    def test_parallel_engine_bitwise_identical(self, spec, impl):
        graph = union_of_permutations(600, 4, seed=2)
        with kernel_chunk_override(64):
            want = two_sided_match(
                graph, 3, seed=13, engine="parallel"
            )
        with impl_context(impl):
            backend = get_backend(spec)
            try:
                with kernel_chunk_override(64):
                    got = two_sided_match(
                        graph, 3, seed=13, backend=backend,
                        engine="parallel",
                    )
            finally:
                backend.close()
        got.matching.validate(graph)
        assert np.array_equal(
            got.matching.row_match, want.matching.row_match
        )
        assert np.array_equal(
            got.matching.col_match, want.matching.col_match
        )

    @pytest.mark.parametrize("impl", IMPLS)
    @pytest.mark.parametrize("spec", ["serial", "shm:2"])
    def test_auction_bitwise_identical(self, spec, impl):
        from repro.matching.exact.auction import auction_match

        graph = union_of_permutations(400, 3, seed=7)
        with kernel_chunk_override(97):
            want = auction_match(graph, seed=0)
        with impl_context(impl):
            backend = get_backend(spec)
            try:
                with kernel_chunk_override(97):
                    got = auction_match(graph, seed=0, backend=backend)
            finally:
                backend.close()
        assert np.array_equal(
            got.matching.row_match, want.matching.row_match
        )
        assert np.array_equal(got.prices, want.prices)


class TestShmPool:
    def test_spec_parsing(self):
        backend = get_backend("shm:3")
        try:
            assert isinstance(backend, SharedMemoryBackend)
            assert backend.n_workers == 3
        finally:
            backend.close()

    def test_pool_persists_across_calls(self, shm2):
        graph = sprand(400, 3.0, seed=0)
        scale_sinkhorn_knopp(graph, 2, backend=shm2)
        pids = sorted(p.pid for p in shm2._procs)
        scale_sinkhorn_knopp(graph, 2, backend=shm2)
        assert sorted(p.pid for p in shm2._procs) == pids

    def test_read_only_arrays_published_once(self, shm2):
        graph = sprand(400, 3.0, seed=0)
        scale_sinkhorn_knopp(graph, 2, backend=shm2)
        seg = shm2._segments[id(graph.col_ptr)]
        scale_sinkhorn_knopp(graph, 2, backend=shm2)
        assert shm2._segments[id(graph.col_ptr)] is seg

    def test_tasks_carry_no_arrays(self, shm2):
        """The zero-copy regression: a task is a few hundred bytes of
        names/ranges/scalars regardless of graph size."""
        graph = sprand(60_000, 8.0, seed=1)
        with kernel_chunk_override(4096):
            scale_sinkhorn_knopp(graph, 1, backend=shm2)
        assert len(shm2.last_tasks) > 1
        assert max(shm2.last_task_bytes) < 4096

        def has_array(obj):
            if isinstance(obj, np.ndarray):
                return True
            if isinstance(obj, dict):
                return any(has_array(v) for v in obj.values())
            if isinstance(obj, (list, tuple)):
                return any(has_array(v) for v in obj)
            return False

        assert not any(has_array(task) for task in shm2.last_tasks)

    def test_killed_worker_self_heals(self, shm2):
        graph = sprand(400, 3.0, seed=0)
        ref = scale_sinkhorn_knopp(graph, 2)
        scale_sinkhorn_knopp(graph, 2, backend=shm2)
        shm2._procs[0].kill()
        shm2._procs[0].join()
        result = scale_sinkhorn_knopp(graph, 2, backend=shm2)
        assert np.array_equal(result.dr, ref.dr)
        assert np.array_equal(result.dc, ref.dc)
        assert all(p.is_alive() for p in shm2._procs)

    def test_injected_crash_is_typed_and_recoverable(self, shm2):
        graph = sprand(400, 3.0, seed=0)
        ref = scale_sinkhorn_knopp(graph, 2)
        plan = FaultPlan(
            [FaultSpec("crash", backend="shm", max_hits=1)], seed=0
        )
        with injected_faults(plan):
            with pytest.raises(WorkerCrashError):
                scale_sinkhorn_knopp(graph, 2, backend=shm2)
            result = scale_sinkhorn_knopp(graph, 2, backend=shm2)
        assert np.array_equal(result.dr, ref.dr)
        assert np.array_equal(result.dc, ref.dc)

    def test_close_then_reuse_respawns(self, shm2):
        graph = sprand(300, 3.0, seed=0)
        ref = scale_sinkhorn_knopp(graph, 2)
        scale_sinkhorn_knopp(graph, 2, backend=shm2)
        shm2.close()
        result = scale_sinkhorn_knopp(graph, 2, backend=shm2)
        assert np.array_equal(result.dc, ref.dc)

    def test_generic_map_ranges_fallback(self, shm2):
        out = shm2.map_ranges(lambda lo, hi: hi - lo, 100)
        assert sum(out) == 100

    def test_segment_cache_eviction(self):
        backend = SharedMemoryBackend(1, max_segments=8)
        try:
            graph = sprand(300, 3.0, seed=0)
            for seed in range(4):
                rhs = np.random.default_rng(seed).random(graph.nrows)
                out = np.empty(graph.ncols)
                run_kernel(
                    "sk_sweep", graph.ncols,
                    {"ptr": graph.col_ptr, "ind": graph.row_ind,
                     "opp": rhs, "out": out},
                    backend=backend,
                )
            assert len(backend._segments) <= 8
        finally:
            backend.close()

    def test_bad_worker_count(self):
        with pytest.raises(BackendError):
            SharedMemoryBackend(0)
        with pytest.raises(BackendError):
            SharedMemoryBackend(1, max_segments=2)


class TestShutdownAndDrain:
    """Pool shutdown: segments unlinked, in-flight work completed."""

    def test_close_unlinks_every_segment(self):
        from multiprocessing.shared_memory import SharedMemory

        from repro.parallel.shm import _OPEN_BACKENDS

        backend = SharedMemoryBackend(2)
        graph = sprand(500, 4.0, seed=1)
        scale_sinkhorn_knopp(graph, 2, backend=backend)
        names = [seg.shm.name for seg in backend._segments.values()]
        assert names, "the scale run should have published segments"
        backend.close()
        assert backend._segments == {}
        assert backend not in _OPEN_BACKENDS
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_close_is_idempotent(self):
        backend = SharedMemoryBackend(2)
        graph = sprand(200, 3.0, seed=2)
        scale_sinkhorn_knopp(graph, 1, backend=backend)
        backend.close()
        backend.close()
        assert backend._segments == {}

    def test_healthy_reflects_pool_state(self):
        backend = SharedMemoryBackend(2)
        try:
            assert backend.healthy()  # not spawned yet
            graph = sprand(200, 3.0, seed=2)
            scale_sinkhorn_knopp(graph, 1, backend=backend)
            assert backend.healthy()
            backend._procs[0].kill()
            backend._procs[0].join()
            assert not backend.healthy()
        finally:
            backend.close()

    def test_drain_completes_inflight_chunks_then_closes(self):
        import threading
        import time

        backend = SharedMemoryBackend(2)
        graph = sprand(2000, 4.0, seed=3)
        scaling = scale_sinkhorn_knopp(graph, 2)  # serial, fault-free
        reference = scaled_row_choices(
            graph, scaling.dr, scaling.dc, np.random.default_rng(7)
        )
        plan = FaultPlan(
            [FaultSpec("slow", seconds=0.2, backend="shm")], seed=0
        )
        box = {}

        def call():
            try:
                box["out"] = scaled_row_choices(
                    graph, scaling.dr, scaling.dc,
                    np.random.default_rng(7), backend=backend,
                )
            except BaseException as exc:  # noqa: BLE001 - asserted below
                box["error"] = exc

        try:
            with injected_faults(plan), kernel_chunk_override(500):
                worker = threading.Thread(target=call)
                worker.start()
                time.sleep(0.15)  # the slow-faulted call is in flight
                # a zero-timeout drain cannot finish while the call runs,
                # but must flip the backend into draining mode
                assert backend.drain(timeout=0.01) is False
                assert backend.drain(timeout=30.0) is True
                worker.join(timeout=30.0)
                assert not worker.is_alive()
            # the in-flight call was completed, not aborted...
            assert "error" not in box, f"call failed: {box.get('error')!r}"
            np.testing.assert_array_equal(box["out"], reference)
            # ...the pool is gone, and new calls are rejected typed
            assert backend._segments == {}
            with pytest.raises(BackendError, match="draining"):
                run_kernel(
                    "choice_scaled", graph.nrows,
                    {"ptr": graph.row_ptr, "ind": graph.col_ind,
                     "opp": scaling.dc,
                     "draws": np.random.default_rng(1).random(graph.nrows),
                     "out": np.empty(graph.nrows, dtype=np.int64)},
                    backend=backend,
                )
        finally:
            backend.close()
