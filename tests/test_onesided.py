"""Tests for OneSidedMatch (repro.core.onesided) — Algorithm 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import ONE_SIDED_GUARANTEE
from repro.graph import (
    from_dense,
    full_ones,
    fully_indecomposable,
    identity,
    sprand,
    sprand_rect,
)
from repro.matching.matching import NIL
from repro.core import one_sided_match
from repro.core.onesided import cmatch_from_choices
from repro.scaling import scale_sinkhorn_knopp


class TestCmatchFromChoices:
    def test_last_write_wins(self):
        # Rows 0 and 2 both pick column 1: numpy fancy assignment keeps
        # the later row.
        cm = cmatch_from_choices(np.array([1, 0, 1]), 2)
        assert cm.tolist() == [1, 2]

    def test_nil_rows_do_not_write(self):
        cm = cmatch_from_choices(np.array([NIL, 0]), 2)
        assert cm.tolist() == [1, NIL]


class TestOneSidedMatch:
    def test_valid_matching_always(self):
        g = sprand(500, 3.0, seed=0)
        res = one_sided_match(g, iterations=3, seed=1)
        res.matching.validate(g)

    def test_identity_perfect(self):
        res = one_sided_match(identity(50), iterations=1, seed=0)
        assert res.matching.is_perfect()

    def test_deterministic_with_seed(self):
        g = sprand(200, 4.0, seed=0)
        a = one_sided_match(g, 3, seed=11).matching
        b = one_sided_match(g, 3, seed=11).matching
        np.testing.assert_array_equal(a.row_match, b.row_match)

    def test_scaling_reuse(self):
        g = sprand(100, 3.0, seed=0)
        scaling = scale_sinkhorn_knopp(g, 4)
        res = one_sided_match(g, scaling=scaling, seed=0)
        assert res.scaling is scaling

    def test_row_choice_exposed_and_consistent(self):
        g = sprand(100, 3.0, seed=0)
        res = one_sided_match(g, 3, seed=2)
        # Every matched (i, j) pair must come from row i's choice.
        for i, j in res.matching.pairs():
            assert res.row_choice[i] == j

    def test_column_side(self):
        g = sprand_rect(80, 60, 3.0, seed=0)
        res = one_sided_match(g, 3, seed=1, side="column")
        res.matching.validate(g)
        assert res.matching.cardinality > 0

    def test_bad_side_rejected(self):
        with pytest.raises(ValueError):
            one_sided_match(identity(3), side="diagonal")

    def test_cardinality_property(self):
        g = sprand(50, 3.0, seed=0)
        res = one_sided_match(g, 2, seed=0)
        assert res.cardinality == res.matching.cardinality


class TestTheorem1:
    """Statistical verification of the 0.632 guarantee."""

    def test_expected_quality_on_ones_matrix(self):
        """On the all-ones matrix the bound is asymptotically tight:
        E[|M|]/n -> 1 - 1/e exactly."""
        n = 2000
        g = full_ones(n)
        qualities = [
            one_sided_match(g, 1, seed=s).cardinality / n for s in range(5)
        ]
        mean = float(np.mean(qualities))
        assert abs(mean - ONE_SIDED_GUARANTEE) < 0.02

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_guarantee_on_fully_indecomposable(self, seed):
        g = fully_indecomposable(400, 4.0, seed=seed)
        res = one_sided_match(g, 10, seed=seed)
        # Expectation is >= 0.632 n; a single draw concentrates tightly
        # for n=400 (allow 4 sigma slack ~ 0.05).
        assert res.cardinality / g.nrows > ONE_SIDED_GUARANTEE - 0.05

    def test_relaxed_bound_with_one_iteration(self):
        """Section 3.3: few iterations -> weaker but nontrivial bound."""
        g = fully_indecomposable(1000, 5.0, seed=0)
        res = one_sided_match(g, 1, seed=1)
        assert res.cardinality / g.nrows > 0.55


class TestDegenerateInputs:
    def test_empty_rows_stay_unmatched(self):
        a = np.array([[1, 1], [0, 0]])
        res = one_sided_match(from_dense(a), 2, seed=0)
        assert res.matching.row_match[1] == NIL
        assert res.row_choice[1] == NIL

    def test_single_vertex(self):
        res = one_sided_match(identity(1), 1, seed=0)
        assert res.matching.is_perfect()
