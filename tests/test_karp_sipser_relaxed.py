"""Tests for the relaxed parallel Karp-Sipser baseline."""

import numpy as np
import pytest

from repro.graph import banded, from_dense, identity, sprand
from repro.matching import hopcroft_karp, karp_sipser
from repro.matching.heuristics.karp_sipser_relaxed import karp_sipser_relaxed


class TestBasics:
    def test_valid_matching(self):
        g = sprand(300, 3.0, seed=0)
        m = karp_sipser_relaxed(g, n_threads=4, seed=1)
        m.validate(g)

    def test_identity_perfect(self):
        m = karp_sipser_relaxed(identity(20), n_threads=4, seed=0)
        assert m.is_perfect()

    def test_maximal(self):
        g = sprand(200, 3.0, seed=1)
        m = karp_sipser_relaxed(g, n_threads=8, seed=0)
        free_rows = set(m.unmatched_rows().tolist())
        free_cols = set(m.unmatched_cols().tolist())
        assert not any(
            i in free_rows and j in free_cols for i, j in g.iter_edges()
        )

    def test_half_approximation(self):
        g = sprand(400, 4.0, seed=2)
        opt = hopcroft_karp(g).cardinality
        m = karp_sipser_relaxed(g, n_threads=8, seed=0)
        assert 2 * m.cardinality >= opt

    def test_deterministic(self):
        g = sprand(150, 3.0, seed=0)
        a = karp_sipser_relaxed(g, n_threads=4, seed=7)
        b = karp_sipser_relaxed(g, n_threads=4, seed=7)
        np.testing.assert_array_equal(a.row_match, b.row_match)

    def test_bad_thread_count(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            karp_sipser_relaxed(identity(4), n_threads=0)


def _bidiagonal_chain(n: int):
    """Rows i ~ cols {i, i+1}: col 0 has degree one, so exact serial KS
    unzips the whole chain in Phase 1 (perfect matching on the diagonal)."""
    from repro.graph import from_edges

    rows = np.concatenate([np.arange(n), np.arange(n - 1)])
    cols = np.concatenate([np.arange(n), np.arange(1, n)])
    return from_edges(n, n, rows, cols)


def _disjoint_hexagons(n_cycles: int):
    """Union of disjoint bipartite 6-cycles: serial KS is exact (one
    random pick per cycle, then the degree-one rule finishes it), but
    simultaneous picks inside the same cycle can strand vertices."""
    from repro.graph import from_edges

    rows_list, cols_list = [], []
    for c in range(n_cycles):
        base = 3 * c
        r = np.arange(base, base + 3)
        rows_list += [r, r]
        cols_list += [r, base + (np.arange(1, 4) % 3)]
    return from_edges(
        3 * n_cycles,
        3 * n_cycles,
        np.concatenate(rows_list),
        np.concatenate(cols_list),
    )


class TestRelaxationCostsQuality:
    """The paper's point: the inflicted form loses the guarantee, the
    specialised KarpSipserMT does not."""

    def test_serial_ks_exact_on_chain_and_hexagons(self):
        for g in (_bidiagonal_chain(300), _disjoint_hexagons(60)):
            opt = hopcroft_karp(g).cardinality
            assert all(
                karp_sipser(g, seed=s).cardinality == opt for s in range(3)
            )

    def test_relaxed_loses_on_hexagons(self):
        """Simultaneous random picks strand vertices inside cycles that
        one-pick-at-a-time serial KS solves perfectly."""
        g = _disjoint_hexagons(80)
        opt = hopcroft_karp(g).cardinality
        results = [
            karp_sipser_relaxed(g, n_threads=32, seed=s).cardinality
            for s in range(5)
        ]
        assert all(r <= opt for r in results)
        assert min(results) < opt  # the guarantee is genuinely lost

    def test_two_sided_ks_mt_keeps_exactness_on_same_structure(self):
        """KarpSipserMT on an equivalent choice structure never loses,
        at any simulated thread count (Lemmas 1-4)."""
        from repro.core import choice_graph, karp_sipser_mt_simulated

        n_cycles = 40
        # Choice arrays describing the same disjoint hexagons:
        # row i -> col i; col j -> row (j+1) mod 3 within each cycle.
        rc = np.arange(3 * n_cycles, dtype=np.int64)
        cc = np.concatenate(
            [3 * c + (np.arange(1, 4) % 3) for c in range(n_cycles)]
        ).astype(np.int64)
        sub = choice_graph(rc, cc)
        opt = hopcroft_karp(sub).cardinality
        assert opt == 3 * n_cycles  # even cycles match perfectly
        for seed in range(5):
            m = karp_sipser_mt_simulated(
                rc, cc, 16, policy="adversarial", seed=seed
            )
            assert m.cardinality == opt  # no loss, ever
