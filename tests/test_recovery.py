"""Recovery-marked tests: journal, checkpoint/restore, crash recovery.

Run explicitly with ``pytest -m recovery`` (or ``make recovery-smoke``).
The durability contract under test: every mutation a client was
*acknowledged* survives any crash — torn writes, skipped fsyncs, deaths
mid-checkpoint, SIGKILL of the whole daemon — and anything recovery
cannot restore *and verify* is a typed
:class:`~repro.errors.RecoveryError`, never a silently weaker state.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.errors import RecoveryError, WorkerCrashError
from repro.resilience import FaultPlan, FaultSpec, injected_faults
from repro.resilience.chaos import _recovery_cell, recovery_schedules
from repro.serve.checkpoint import read_snapshot, write_snapshot
from repro.serve.daemon import GraphCache, _StreamRegistry
from repro.serve.journal import (
    DurableLog,
    encode_record,
    latest_generation,
    scan_journal,
)
from repro.serve.recovery import recover_registry, supervise

pytestmark = pytest.mark.recovery

CORPUS = Path(__file__).parent / "data" / "journal_corpus"
with open(CORPUS / "manifest.json", encoding="utf-8") as _fh:
    MANIFEST = json.load(_fh)

GRAPH_SPEC = {"kind": "union", "n": 60, "k": 3, "seed": 0}


def _churned_registry(journal=None, seed=0):
    """A registry with one session that opened, rematched, and churned."""
    registry = _StreamRegistry(8, None, journal=journal)
    cache = GraphCache(8)
    registry.open(
        {"graph": GRAPH_SPEC, "target_quality": 0.55, "seed": seed}, cache
    )
    registry.rematch({"handle": "s1"})
    registry.update(
        {"handle": "s1", "add": {"rows": [0, 1, 2], "cols": [2, 0, 1]}}
    )
    registry.rematch({"handle": "s1"})
    return registry, cache


# -- framing and the committed torn-write corpus -----------------------


def test_encode_record_frames_roundtrip(tmp_path):
    records = [
        {"op": "open", "handle": "s1", "ack": {"epoch": 0}},
        {"op": "update", "handle": "s1", "ack": {"epoch": 1, "added": 2}},
    ]
    path = tmp_path / "wal-000000.log"
    with open(path, "wb") as fh:
        for record in records:
            fh.write(encode_record(record))
    scan = scan_journal(path)
    assert scan.records == records
    assert not scan.truncated
    assert scan.valid_bytes == scan.total_bytes == path.stat().st_size


@pytest.mark.parametrize("name", sorted(n for n in MANIFEST))
def test_corpus_longest_prefix_or_typed_offset(name):
    """Each committed corpus file recovers its longest valid prefix or
    refuses with a typed ``RecoveryError`` naming the byte offset."""
    entry = MANIFEST[name]
    path = CORPUS / name
    assert path.stat().st_size == entry["total_bytes"]
    if entry["error_offset"] is not None:
        with pytest.raises(RecoveryError) as excinfo:
            scan_journal(path)
        assert excinfo.value.offset == entry["error_offset"]
        assert str(entry["error_offset"]) in str(excinfo.value)
    else:
        scan = scan_journal(path)
        assert len(scan.records) == entry["records"]
        assert scan.valid_bytes == entry["valid_bytes"]
        assert scan.total_bytes == entry["total_bytes"]
        assert scan.truncated == (
            entry["valid_bytes"] < entry["total_bytes"]
        )


def test_recover_refuses_interleaved_corruption_with_offset(tmp_path):
    """End to end: a journal directory holding an in-place-corrupted log
    is refused by ``recover_registry`` with the corpus's byte offset."""
    wal = tmp_path / "wal-000000.log"
    wal.write_bytes((CORPUS / "interleaved.wal").read_bytes())
    with pytest.raises(RecoveryError) as excinfo:
        recover_registry(tmp_path, attach_journal=False)
    assert excinfo.value.offset == MANIFEST["interleaved.wal"]["error_offset"]


# -- DurableLog: appends, rotation, poisoning --------------------------


def test_durable_log_rotates_generations(tmp_path):
    log = DurableLog(tmp_path, checkpoint_every=2)
    log.append({"op": "a"})
    log.append({"op": "b"})
    assert log.should_checkpoint
    log.rotate(lambda tmp: Path(tmp).write_bytes(b"snapshot"))
    assert log.generation == 1
    log.append({"op": "c"})
    log.close()
    gen, ckpt, wal = latest_generation(tmp_path)
    assert gen == 1 and ckpt is not None and wal is not None
    assert Path(ckpt).read_bytes() == b"snapshot"
    assert [r["op"] for r in scan_journal(wal).records] == ["c"]
    # The previous generation was retired only after the new one was
    # fully durable.
    assert not (tmp_path / "wal-000000.log").exists()


def test_poisoned_log_refuses_further_writes(tmp_path):
    log = DurableLog(tmp_path, checkpoint_every=100)
    plan = FaultPlan([FaultSpec("crash", backend="journal", call=0)])
    with injected_faults(plan):
        with pytest.raises(WorkerCrashError):
            log.append({"op": "doomed"})
    assert log.poisoned is not None
    with pytest.raises(RecoveryError):
        log.append({"op": "after"})
    with pytest.raises(RecoveryError):
        log.rotate(lambda tmp: None)
    log.close()


def test_torn_append_leaves_recoverable_tail(tmp_path):
    log = DurableLog(tmp_path, checkpoint_every=100)
    log.append({"op": "acked"})
    # Call indices are per installed plan: the clean append above ran
    # with no plan active, so this is the plan's journal call 0.
    plan = FaultPlan([FaultSpec("torn", backend="journal", call=0)])
    with injected_faults(plan):
        with pytest.raises(WorkerCrashError):
            log.append({"op": "torn-away"})
    log.close()
    scan = scan_journal(log.path)
    assert [r["op"] for r in scan.records] == ["acked"]
    assert scan.truncated


# -- checkpoint/restore: bitwise state round-trips ---------------------


def test_checkpoint_roundtrip_preserves_state_bitwise(tmp_path):
    registry, _ = _churned_registry()
    state = registry.export_state()
    path = tmp_path / "ckpt-000001.npz"
    write_snapshot(path, state)
    restored = _StreamRegistry(8, None)
    restored.restore_state(read_snapshot(path))

    g1, m1 = registry._sessions["s1"]
    g2, m2 = restored._sessions["s1"]
    assert g2.epoch == g1.epoch and g2.nnz == g1.nnz
    s1, s2 = g1.snapshot(), g2.snapshot()
    assert np.array_equal(s1.row_ptr, s2.row_ptr)
    assert np.array_equal(s1.col_ind, s2.col_ind)
    assert m2._epoch == m1._epoch
    assert restored._last_ack == registry._last_ack
    # The restored session continues bitwise-identically: same churn,
    # same rematch acknowledgment (floats and all).
    for reg in (registry, restored):
        reg.update(
            {"handle": "s1", "remove": {"rows": [0], "cols": [2]},
             "strict": False}
        )
    a1 = registry.rematch({"handle": "s1"})
    a2 = restored.rematch({"handle": "s1"})
    assert a1 == a2


def test_checkpoint_roundtrip_restores_unseeded_rng(tmp_path):
    """seed=None sessions checkpoint their concrete generator state, so
    a restored matcher draws the same randomness as the original."""
    registry = _StreamRegistry(8, None)
    registry.open(
        {"graph": GRAPH_SPEC, "target_quality": 0.55, "seed": None},
        GraphCache(8),
    )
    registry.rematch({"handle": "s1"})
    path = tmp_path / "ckpt-000001.npz"
    write_snapshot(path, registry.export_state())
    restored = _StreamRegistry(8, None)
    restored.restore_state(read_snapshot(path))
    for reg in (registry, restored):
        reg.update(
            {"handle": "s1", "add": {"rows": [3, 4], "cols": [4, 3]}}
        )
    assert registry.rematch({"handle": "s1"}) == restored.rematch(
        {"handle": "s1"}
    )


def test_read_snapshot_refuses_corrupt_checkpoint(tmp_path):
    registry, _ = _churned_registry()
    path = tmp_path / "ckpt-000001.npz"
    write_snapshot(path, registry.export_state())
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(RecoveryError):
        read_snapshot(path)


# -- crash at every record boundary (the chaos ``recovery`` row) -------


def test_recovery_row_crash_at_every_boundary():
    """The chaos matrix's recovery row: each cell crashes a journaled
    daemon at one record boundary, restarts through recovery, and audits
    the acknowledged state.  The four crash schedules must recover
    bitwise; the in-place corruption schedule must refuse typed."""
    expected = {
        "pre_fsync": "ok",
        "mid_record": "ok",
        "post_ack": "ok",
        "mid_checkpoint": "ok",
        "divergence": "degraded:RecoveryError",
    }
    for schedule, plan in recovery_schedules(seed=0).items():
        outcome = _recovery_cell(
            schedule, plan, n=120, seed=0, budget=120.0
        )
        assert outcome.status == expected[schedule], (
            f"{schedule}: {outcome.status} [{outcome.detail}]"
        )


def test_journaled_registry_recovers_acked_rematch(tmp_path):
    """Direct API version: journal a churned session, abandon it (as a
    SIGKILL would), recover, and compare the acknowledgment bitwise."""
    registry, cache = _churned_registry(
        journal=DurableLog(tmp_path, checkpoint_every=3)
    )
    acked = dict(registry._last_ack["s1"])
    registry.journal.close()

    recovered, report = recover_registry(
        tmp_path, cache=cache, attach_journal=False
    )
    assert report.sessions == 1
    assert recovered._last_ack["s1"] == acked
    graph, matcher = recovered._sessions["s1"]
    assert graph.epoch == acked["epoch"] == matcher._epoch
    # A second recovery of the same directory is deterministic.
    again, _ = recover_registry(
        tmp_path, cache=cache, attach_journal=False
    )
    assert again._last_ack["s1"] == acked


# -- the supervisor ----------------------------------------------------

_PROBE = (
    "import sys; sys.exit(0 if '--recover' in sys.argv else 75)"
)


def test_supervise_respawns_with_recover_flag(tmp_path):
    code = supervise(
        [sys.executable, "-c", _PROBE],
        journal_dir=str(tmp_path),
        max_restarts=2,
        backoff=0.01,
    )
    assert code == 0


def test_supervise_gives_up_after_restart_budget(tmp_path):
    code = supervise(
        [sys.executable, "-c", "import sys; sys.exit(75)"],
        journal_dir=str(tmp_path),
        max_restarts=2,
        backoff=0.01,
    )
    assert code == 75


# -- SIGKILL the real daemon mid-epoch ---------------------------------


class _Daemon:
    """A ``python -m repro serve`` subprocess with line-wise I/O."""

    def __init__(self, *args: str):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
            env=env,
        )
        self._lines: queue.Queue[str] = queue.Queue()
        self._reader = threading.Thread(
            target=self._pump, daemon=True
        )
        self._reader.start()

    def _pump(self):
        for line in self.proc.stdout:
            self._lines.put(line)

    def ask(self, msg: dict, timeout: float = 60.0) -> dict:
        self.proc.stdin.write(json.dumps(msg) + "\n")
        self.proc.stdin.flush()
        try:
            return json.loads(self._lines.get(timeout=timeout))
        except queue.Empty:  # pragma: no cover - hang = test failure
            self.proc.kill()
            raise AssertionError(f"daemon gave no response to {msg}")

    def sigkill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)


def test_sigkill_mid_epoch_then_recover(tmp_path):
    """The ``make recovery-smoke`` scenario: open a stream, churn it,
    SIGKILL the daemon mid-epoch (edits acknowledged but not yet
    rematched), restart with ``--recover``, and check the recovered
    session serves the acknowledged epoch with a matching guarantee."""
    journal = str(tmp_path / "journal")
    first = _Daemon("--journal", journal, "--checkpoint-every", "3")
    try:
        opened = first.ask(
            {"id": 1, "op": "stream_open", "graph": GRAPH_SPEC,
             "target_quality": 0.55, "seed": 1}
        )
        assert opened["ok"], opened
        handle = opened["handle"]
        baseline = first.ask({"id": 2, "op": "rematch", "handle": handle})
        assert baseline["ok"], baseline
        churn = first.ask(
            {"id": 3, "op": "update", "handle": handle,
             "add": {"rows": [0, 1, 2], "cols": [1, 2, 0]}}
        )
        assert churn["ok"], churn
        rematched = first.ask(
            {"id": 4, "op": "rematch", "handle": handle}
        )
        assert rematched["ok"], rematched
        # Mid-epoch: this edit is acknowledged (journaled + fsync'd)
        # but the session dies before the next rematch.
        mid_epoch = first.ask(
            {"id": 5, "op": "update", "handle": handle,
             "remove": {"rows": [0], "cols": [1]}, "strict": False}
        )
        assert mid_epoch["ok"], mid_epoch
    finally:
        first.sigkill()

    second = _Daemon(
        "--journal", journal, "--recover", "--checkpoint-every", "3"
    )
    try:
        # The recovered graph must be at the acknowledged epoch —
        # expect_epoch makes the daemon refuse if anything was lost.
        after = second.ask(
            {"id": 6, "op": "rematch", "handle": handle,
             "expect_epoch": mid_epoch["epoch"]}
        )
        assert after["ok"], after
        assert after["epoch"] == mid_epoch["epoch"]
        assert 0.0 <= after["guarantee"] <= 1.0

        # An uninterrupted replica of the same request sequence lands on
        # the same acknowledgment, bitwise — the kill changed nothing.
        registry = _StreamRegistry(8, None)
        cache = GraphCache(8)
        registry.open(
            {"graph": GRAPH_SPEC, "target_quality": 0.55, "seed": 1},
            cache,
        )
        registry.rematch({"handle": handle})
        registry.update(
            {"handle": handle, "add": {"rows": [0, 1, 2], "cols": [1, 2, 0]}}
        )
        registry.rematch({"handle": handle})
        registry.update(
            {"handle": handle, "remove": {"rows": [0], "cols": [1]},
             "strict": False}
        )
        replica = registry.rematch({"handle": handle})
        for key in ("epoch", "mode", "cardinality", "guarantee",
                    "min_column_sum"):
            assert after[key] == replica[key], (
                f"{key}: recovered {after[key]!r} != replica"
                f" {replica[key]!r}"
            )
        done = second.ask({"id": 7, "op": "shutdown"})
        assert done["ok"], done
        assert second.proc.wait(timeout=30) == 0
    finally:
        if second.proc.poll() is None:  # pragma: no cover - cleanup
            second.sigkill()


# -- orphaned shared-memory segments -----------------------------------


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no visible shm directory"
)
def test_reclaim_stale_segments_sweeps_dead_owners():
    from repro.parallel.shm import reclaim_stale_segments

    probe = subprocess.Popen([sys.executable, "-c", "pass"])
    probe.wait(timeout=30)
    dead = f"/dev/shm/rpr{probe.pid:08x}x0000"
    live = f"/dev/shm/rpr{os.getpid():08x}x7fff"
    with open(dead, "wb") as fh:
        fh.write(b"\0" * 8)
    with open(live, "wb") as fh:
        fh.write(b"\0" * 8)
    try:
        assert reclaim_stale_segments() >= 1
        assert not os.path.exists(dead), "orphan survived the sweep"
        assert os.path.exists(live), "live segment was reclaimed"
    finally:
        for path in (dead, live):
            if os.path.exists(path):
                os.unlink(path)
