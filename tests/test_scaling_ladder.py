"""Tests for the Sinkhorn–Knopp degradation ladder and the per-rung
quality guarantees it feeds into the matching heuristics."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import telemetry
from repro.constants import (
    ONE_SIDED_GUARANTEE,
    TWO_SIDED_GUARANTEE,
    one_sided_guarantee_relaxed,
)
from repro.core.onesided import one_sided_match
from repro.core.twosided import two_sided_match
from repro.errors import ConvergenceWarning
from repro.graph import from_dense, sprand, union_of_permutations
from repro.scaling import scale_sinkhorn_knopp
from repro.scaling.result import ScalingResult


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _triangular(n: int = 8):
    """Square, no empty lines, provably without total support."""
    return from_dense(np.triu(np.ones((n, n))))


def _empty_row(n: int = 6):
    a = np.ones((n, n))
    a[2, :] = 0.0
    return from_dense(a)


class TestLadderRungs:
    def test_healthy_matrix_stays_on_full_rung(self):
        g = union_of_permutations(40, 3, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            result = scale_sinkhorn_knopp(g, 40)
        assert result.rung == "full"
        assert not result.degraded
        assert result.iterations == 40

    def test_empty_row_demotes_to_capped(self):
        with pytest.warns(ConvergenceWarning):
            result = scale_sinkhorn_knopp(_empty_row(), 100)
        assert result.rung == "capped"
        assert result.degraded
        assert result.iterations <= 25

    def test_no_total_support_detected_via_dm(self):
        # No empty rows/columns — only the Dulmage–Mendelsohn test can
        # prove the deficiency.
        with pytest.warns(ConvergenceWarning):
            result = scale_sinkhorn_knopp(_triangular(), 200)
        assert result.rung == "capped"

    def test_tolerance_mode_capped_instead_of_burning_budget(self):
        with pytest.warns(ConvergenceWarning):
            result = scale_sinkhorn_knopp(
                _triangular(), tolerance=1e-10, max_iterations=1000
            )
        assert result.rung == "capped"
        assert result.iterations <= 25
        assert not result.converged

    def test_empty_matrix_uses_uniform_rung(self):
        g = from_dense(np.zeros((4, 4)))
        result = scale_sinkhorn_knopp(g, 10)
        assert result.rung == "uniform"
        np.testing.assert_array_equal(result.dr, np.ones(4))
        np.testing.assert_array_equal(result.dc, np.ones(4))

    def test_degradation_off_runs_requested_budget(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            result = scale_sinkhorn_knopp(
                _triangular(), 60, degradation=False
            )
        assert result.rung == "full"
        assert result.iterations == 60

    def test_small_budgets_not_second_guessed(self):
        # The paper's working budgets (<= capped_iterations) run as asked
        # even on deficient matrices; only the warning-free cap applies.
        result = scale_sinkhorn_knopp(_empty_row(), 5)
        assert result.iterations == 5

    def test_scaling_stays_finite_on_every_rung(self):
        for g, iters in [
            (_empty_row(), 100),
            (_triangular(), 200),
            (from_dense(np.zeros((3, 3))), 10),
            (sprand(60, 1.5, seed=3), 80),
        ]:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ConvergenceWarning)
                result = scale_sinkhorn_knopp(g, iters)
            assert np.isfinite(result.dr).all()
            assert np.isfinite(result.dc).all()
            assert np.isfinite(result.error)

    def test_degraded_telemetry_counter(self):
        reg = telemetry.enable()
        with pytest.warns(ConvergenceWarning):
            scale_sinkhorn_knopp(_empty_row(), 100)
        assert reg.counter("scaling.sk.degraded").value == 1


class TestConvergenceWarningPayload:
    def test_warning_carries_achieved_error_and_rung(self):
        with pytest.warns(ConvergenceWarning) as record:
            result = scale_sinkhorn_knopp(_empty_row(), 100)
        warning = record[0].message
        assert warning.achieved_error == pytest.approx(result.error)
        assert warning.rung == "capped"
        assert "column-sum error" in str(warning)

    def test_warning_attrs_default_none(self):
        w = ConvergenceWarning("plain")
        assert w.achieved_error is None and w.rung is None


class TestRungGuarantees:
    def _result(self, rung, error=0.0, n=4):
        return ScalingResult(
            dr=np.ones(n), dc=np.ones(n), error=error,
            iterations=0, converged=False, rung=rung,
        )

    def test_one_sided_full_floor(self):
        g = union_of_permutations(50, 3, seed=1)
        result = one_sided_match(g, 5, seed=0)
        assert result.scaling.rung == "full"
        assert result.guarantee == pytest.approx(ONE_SIDED_GUARANTEE)

    def test_one_sided_capped_uses_relaxed_bound(self):
        scaling = self._result("capped", error=0.3)
        g = union_of_permutations(4, 2, seed=0)
        result = one_sided_match(g, scaling=scaling, seed=0)
        expected = one_sided_guarantee_relaxed(0.7)
        assert result.guarantee == pytest.approx(expected)
        assert 0.0 < result.guarantee < ONE_SIDED_GUARANTEE

    def test_one_sided_uniform_has_no_floor(self):
        scaling = self._result("uniform")
        g = union_of_permutations(4, 2, seed=0)
        result = one_sided_match(g, scaling=scaling, seed=0)
        assert result.guarantee == 0.0

    def test_two_sided_full_floor(self):
        g = union_of_permutations(50, 3, seed=2)
        result = two_sided_match(g, 5, seed=0)
        assert result.guarantee == pytest.approx(TWO_SIDED_GUARANTEE)

    def test_two_sided_capped_below_conjecture(self):
        scaling = self._result("capped", error=0.5)
        g = union_of_permutations(4, 2, seed=0)
        result = two_sided_match(g, scaling=scaling, seed=0)
        assert 0.0 < result.guarantee < TWO_SIDED_GUARANTEE

    def test_error_above_one_floors_at_zero_alpha(self):
        scaling = self._result("capped", error=3.0)
        g = union_of_permutations(4, 2, seed=0)
        result = one_sided_match(g, scaling=scaling, seed=0)
        assert result.guarantee == pytest.approx(0.0)


class TestEndToEndDegraded:
    def test_matching_still_valid_on_capped_rung(self):
        g = _empty_row(30)
        with pytest.warns(ConvergenceWarning):
            scaling = scale_sinkhorn_knopp(g, 100)
        result = one_sided_match(g, scaling=scaling, seed=0)
        result.matching.validate(g)
        assert result.cardinality > 0
