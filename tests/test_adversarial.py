"""Tests for the Figure-2 adversarial family (repro.graph.adversarial)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.graph import karp_sipser_adversarial
from repro.graph.adversarial import hidden_perfect_matching
from repro.matching import Matching, sprank


class TestStructure:
    def test_blocks_k0(self):
        n = 8
        g = karp_sipser_adversarial(n, 0)
        dense = g.to_dense()
        h = n // 2
        # R1 x C1 full, R2 x C2 empty.
        assert dense[:h, :h].all()
        assert not dense[h:, h:].any()
        # Planted diagonals.
        for i in range(h):
            assert dense[i, h + i] == 1.0
            assert dense[h + i, i] == 1.0

    def test_full_rows_and_columns(self):
        n, k = 12, 3
        g = karp_sipser_adversarial(n, k)
        dense = g.to_dense()
        h = n // 2
        # Last k rows of R1 are full across all columns.
        assert dense[h - k : h, :].all()
        # Last k columns of C1 are full across all rows.
        assert dense[:, h - k : h].all()

    def test_degree_one_exists_only_when_k_small(self):
        # k <= 1: Karp-Sipser can win in Phase 1 (degree-one vertices).
        g1 = karp_sipser_adversarial(8, 1)
        assert (np.concatenate([g1.row_degrees(), g1.col_degrees()]) == 1).any() or True
        # k >= 2: no degree-one vertex anywhere.
        g2 = karp_sipser_adversarial(8, 2)
        degs = np.concatenate([g2.row_degrees(), g2.col_degrees()])
        assert degs.min() >= 2

    def test_odd_n_rejected(self):
        with pytest.raises(ShapeError):
            karp_sipser_adversarial(7, 1)

    def test_k_too_large_rejected(self):
        with pytest.raises(ShapeError):
            karp_sipser_adversarial(8, 5)


class TestPlantedMatching:
    @pytest.mark.parametrize("n,k", [(8, 0), (8, 2), (20, 4), (40, 8)])
    def test_planted_is_a_perfect_matching(self, n, k):
        g = karp_sipser_adversarial(n, k)
        planted = hidden_perfect_matching(n)
        m = Matching.from_row_match(planted, n)
        m.validate(g)
        assert m.is_perfect()

    def test_sprank_is_n(self):
        n = 24
        for k in (0, 2, 6):
            assert sprank(karp_sipser_adversarial(n, k)) == n

    def test_hidden_matching_odd_n_rejected(self):
        with pytest.raises(ShapeError):
            hidden_perfect_matching(9)
