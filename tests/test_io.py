"""Tests for graph I/O (repro.graph.io)."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph import from_dense, sprand
from repro.graph.io import (
    load_npz,
    read_matrix_market,
    save_npz,
    write_matrix_market,
)


class TestMatrixMarket:
    def test_round_trip(self, tmp_path):
        g = sprand(50, 3.0, seed=0)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        assert read_matrix_market(path) == g

    def test_pattern_header_written(self, tmp_path):
        g = from_dense(np.eye(2))
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        first = path.read_text().splitlines()[0]
        assert first == "%%MatrixMarket matrix coordinate pattern general"

    def test_read_real_field(self, tmp_path):
        path = tmp_path / "real.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment line\n"
            "2 2 2\n"
            "1 1 3.5\n"
            "2 2 -1.0\n"
        )
        g = read_matrix_market(path)
        np.testing.assert_array_equal(g.to_dense(), np.eye(2))

    def test_read_symmetric_expands(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 3\n"
            "1 1\n"
            "2 1\n"
            "3 2\n"
        )
        g = read_matrix_market(path)
        dense = g.to_dense()
        np.testing.assert_array_equal(dense, dense.T)
        assert g.nnz == 5  # diagonal entry not duplicated

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("1 1 1\n1 1\n")
        with pytest.raises(GraphStructureError):
            read_matrix_market(path)

    def test_array_format_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n")
        with pytest.raises(GraphStructureError):
            read_matrix_market(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 1\n"
        )
        with pytest.raises(GraphStructureError):
            read_matrix_market(path)


class TestNpz:
    def test_round_trip(self, tmp_path):
        g = sprand(100, 4.0, seed=1)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path) == g

    def test_preserves_rectangular_shape(self, tmp_path):
        from repro.graph import sprand_rect

        g = sprand_rect(10, 25, 2.0, seed=0)
        path = tmp_path / "r.npz"
        save_npz(g, path)
        assert load_npz(path).shape == (10, 25)
