"""Tests for graph I/O (repro.graph.io)."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph import from_dense, sprand
from repro.graph.io import (
    load_npz,
    read_matrix_market,
    save_npz,
    write_matrix_market,
)


class TestMatrixMarket:
    def test_round_trip(self, tmp_path):
        g = sprand(50, 3.0, seed=0)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        assert read_matrix_market(path) == g

    def test_pattern_header_written(self, tmp_path):
        g = from_dense(np.eye(2))
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        first = path.read_text().splitlines()[0]
        assert first == "%%MatrixMarket matrix coordinate pattern general"

    def test_read_real_field(self, tmp_path):
        path = tmp_path / "real.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment line\n"
            "2 2 2\n"
            "1 1 3.5\n"
            "2 2 -1.0\n"
        )
        g = read_matrix_market(path)
        np.testing.assert_array_equal(g.to_dense(), np.eye(2))

    def test_read_symmetric_expands(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 3\n"
            "1 1\n"
            "2 1\n"
            "3 2\n"
        )
        g = read_matrix_market(path)
        dense = g.to_dense()
        np.testing.assert_array_equal(dense, dense.T)
        assert g.nnz == 5  # diagonal entry not duplicated

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("1 1 1\n1 1\n")
        with pytest.raises(GraphStructureError):
            read_matrix_market(path)

    def test_array_format_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n")
        with pytest.raises(GraphStructureError):
            read_matrix_market(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 1\n"
        )
        with pytest.raises(GraphStructureError):
            read_matrix_market(path)


class TestMatrixMarketBrokenCorpus:
    """Every broken file is rejected with the offending line number."""

    HEADER = "%%MatrixMarket matrix coordinate pattern general\n"

    def _expect(self, tmp_path, content, lineno, fragment):
        path = tmp_path / "broken.mtx"
        path.write_text(content)
        with pytest.raises(GraphStructureError) as err:
            read_matrix_market(path)
        assert f"broken.mtx:{lineno}:" in str(err.value)
        assert fragment in str(err.value)

    def test_empty_file(self, tmp_path):
        self._expect(tmp_path, "", 1, "missing")

    def test_garbage_header(self, tmp_path):
        self._expect(tmp_path, "hello world\n1 1 1\n", 1, "header")

    def test_unsupported_field(self, tmp_path):
        self._expect(
            tmp_path,
            "%%MatrixMarket matrix coordinate quantum general\n1 1 0\n",
            1,
            "field",
        )

    def test_unsupported_symmetry(self, tmp_path):
        self._expect(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern hermitian\n1 1 0\n",
            1,
            "symmetry",
        )

    def test_missing_size_line(self, tmp_path):
        self._expect(tmp_path, self.HEADER + "% only comments\n", 3, "size")

    def test_short_size_line(self, tmp_path):
        self._expect(tmp_path, self.HEADER + "3 3\n", 2, "size line")

    def test_non_integer_size(self, tmp_path):
        self._expect(tmp_path, self.HEADER + "3 x 2\n", 2, "non-integer")

    def test_negative_size(self, tmp_path):
        self._expect(tmp_path, self.HEADER + "3 -3 2\n", 2, "negative")

    def test_truncated_entries_line_numbered(self, tmp_path):
        self._expect(
            tmp_path, self.HEADER + "3 3 2\n1 1\n", 4, "1 of 2 entries"
        )

    def test_short_entry(self, tmp_path):
        self._expect(tmp_path, self.HEADER + "3 3 1\n2\n", 3, "row col")

    def test_non_integer_entry(self, tmp_path):
        self._expect(
            tmp_path, self.HEADER + "3 3 1\n1 one\n", 3, "non-integer"
        )

    def test_row_out_of_range(self, tmp_path):
        self._expect(tmp_path, self.HEADER + "3 3 1\n4 1\n", 3, "(4, 1)")

    def test_col_out_of_range(self, tmp_path):
        self._expect(tmp_path, self.HEADER + "3 3 1\n1 9\n", 3, "(1, 9)")

    def test_zero_index_rejected(self, tmp_path):
        # MatrixMarket is 1-based; a 0 coordinate is always out of range.
        self._expect(tmp_path, self.HEADER + "3 3 1\n0 1\n", 3, "1-based")

    def test_error_after_comment_block_counts_comments(self, tmp_path):
        content = self.HEADER + "% a\n% b\n3 3 1\n5 5\n"
        self._expect(tmp_path, content, 5, "(5, 5)")


class TestNpz:
    def test_round_trip(self, tmp_path):
        g = sprand(100, 4.0, seed=1)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path) == g

    def test_preserves_rectangular_shape(self, tmp_path):
        from repro.graph import sprand_rect

        g = sprand_rect(10, 25, 2.0, seed=0)
        path = tmp_path / "r.npz"
        save_npz(g, path)
        assert load_npz(path).shape == (10, 25)
