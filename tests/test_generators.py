"""Tests for the graph generators (repro.graph.generators)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.graph import (
    banded,
    from_dense,
    full_ones,
    fully_indecomposable,
    grid_graph,
    power_law_bipartite,
    random_k_out,
    random_permutation_graph,
    sprand,
    sprand_rect,
    union_of_permutations,
)
from repro.graph.generators import drop_random_edges, grid3d, overlay
from repro.graph.properties import has_total_support_certificate


class TestSprand:
    def test_exact_nnz(self):
        g = sprand(500, 3.0, seed=0)
        assert g.nnz == 1500
        assert g.shape == (500, 500)

    def test_rectangular(self):
        g = sprand_rect(100, 120, 2.0, seed=0)
        assert g.shape == (100, 120)
        assert g.nnz == 200

    def test_deterministic_with_seed(self):
        assert sprand(200, 3.0, seed=7) == sprand(200, 3.0, seed=7)

    def test_different_seeds_differ(self):
        assert sprand(200, 3.0, seed=1) != sprand(200, 3.0, seed=2)

    def test_dense_regime_uses_permutation(self):
        g = sprand_rect(10, 10, 9.0, seed=0)  # 90 of 100 cells
        assert g.nnz == 90

    def test_negative_degree_rejected(self):
        with pytest.raises(ShapeError):
            sprand(10, -1.0)

    def test_uniformity_rough(self):
        # Mean column degree should be close to d with small spread.
        g = sprand(2000, 5.0, seed=3)
        degs = g.col_degrees()
        assert abs(degs.mean() - 5.0) < 0.01
        assert degs.max() < 30  # Poisson tail, not clustered


class TestFullOnes:
    def test_shape_and_degree(self):
        g = full_ones(6)
        assert g.nnz == 36
        assert np.all(g.row_degrees() == 6)

    def test_rectangular(self):
        g = full_ones(3, 5)
        assert g.shape == (3, 5)
        assert g.nnz == 15


class TestPermutations:
    def test_permutation_graph_is_permutation(self):
        g = random_permutation_graph(50, seed=0)
        assert np.all(g.row_degrees() == 1)
        assert np.all(g.col_degrees() == 1)

    def test_union_has_total_support(self):
        g = union_of_permutations(30, 3, seed=1)
        assert has_total_support_certificate(g)

    def test_union_nnz_bounded(self):
        g = union_of_permutations(40, 3, seed=2)
        assert 40 <= g.nnz <= 120

    def test_cycle_inclusion(self):
        g = union_of_permutations(10, 1, seed=0, include_cycle=True)
        for i in range(10):
            assert g.has_edge(i, (i + 1) % 10)

    def test_k_zero_rejected(self):
        with pytest.raises(ShapeError):
            union_of_permutations(10, 0)

    def test_fully_indecomposable_certificate(self):
        from repro.graph.dm import dulmage_mendelsohn

        g = fully_indecomposable(60, 4.0, seed=5)
        dm = dulmage_mendelsohn(g)
        assert dm.fully_indecomposable


class TestKOut:
    def test_one_out_degrees(self):
        g = random_k_out(100, 1, seed=0, both_sides=False)
        assert np.all(g.row_degrees() == 1)

    def test_both_sides_edge_count(self):
        g = random_k_out(100, 1, seed=0, both_sides=True)
        assert 100 <= g.nnz <= 200  # coincident picks merge

    def test_k_two_distinct_choices(self):
        g = random_k_out(50, 2, seed=0, both_sides=False)
        assert np.all(g.row_degrees() == 2)  # distinct by construction

    def test_bad_k_rejected(self):
        with pytest.raises(ShapeError):
            random_k_out(10, 0)
        with pytest.raises(ShapeError):
            random_k_out(10, 11)


class TestStructured:
    def test_grid_five_point_degrees(self):
        g = grid_graph(4, 4, stencil=5)
        assert g.shape == (16, 16)
        # interior cell: self + 4 neighbours
        degs = g.row_degrees()
        assert degs.max() == 5
        assert degs.min() == 3  # corners

    def test_grid_nine_point(self):
        g = grid_graph(5, 5, stencil=9)
        assert g.row_degrees().max() == 9

    def test_grid_symmetric_pattern(self):
        g = grid_graph(4, 6)
        np.testing.assert_array_equal(g.to_dense(), g.to_dense().T)

    def test_bad_stencil_rejected(self):
        with pytest.raises(ShapeError):
            grid_graph(3, 3, stencil=7)

    def test_grid3d_degrees(self):
        g = grid3d(3, 3, 3)
        assert g.shape == (27, 27)
        assert g.row_degrees().max() == 7  # interior: self + 6
        assert g.row_degrees().min() == 4  # corner: self + 3

    def test_banded(self):
        g = banded(10, 2)
        dense = g.to_dense()
        for i in range(10):
            for j in range(10):
                assert dense[i, j] == (1.0 if abs(i - j) <= 2 else 0.0)


class TestPowerLaw:
    def test_average_degree_near_target(self):
        g = power_law_bipartite(3000, 8.0, skew=1.0, seed=0)
        assert abs(g.nnz / 3000 - 8.0) < 1.5  # dedup removes a few

    def test_skew_increases_variance(self):
        low = power_law_bipartite(3000, 8.0, skew=0.2, seed=0)
        high = power_law_bipartite(3000, 8.0, skew=1.8, seed=0)
        assert high.row_degrees().var() > 4 * low.row_degrees().var()

    def test_diagonal_support(self):
        g = power_law_bipartite(100, 3.0, seed=1, ensure_diagonal=True)
        assert all(g.has_edge(i, i) for i in range(100))


class TestEdits:
    def test_drop_random_edges_fraction(self):
        g = sprand(1000, 5.0, seed=0)
        dropped = drop_random_edges(g, 0.5, seed=1)
        assert 0.4 * g.nnz < dropped.nnz < 0.6 * g.nnz

    def test_drop_zero_keeps_all(self):
        g = sprand(100, 3.0, seed=0)
        assert drop_random_edges(g, 0.0, seed=1) == g

    def test_drop_one_removes_all(self):
        g = sprand(100, 3.0, seed=0)
        assert drop_random_edges(g, 1.0, seed=1).nnz == 0

    def test_drop_bad_fraction(self):
        with pytest.raises(ShapeError):
            drop_random_edges(sprand(10, 2.0, seed=0), 1.5)

    def test_overlay_union(self):
        a = from_dense(np.eye(3))
        b = from_dense(np.fliplr(np.eye(3)))
        u = overlay(a, b)
        assert u.nnz == 5  # centre cell shared

    def test_overlay_shape_mismatch(self):
        with pytest.raises(ShapeError):
            overlay(from_dense(np.eye(2)), from_dense(np.eye(3)))

    def test_overlay_empty_args(self):
        with pytest.raises(ShapeError):
            overlay()
