"""Network serving tests: framing, client retries, quotas, failover.

Everything here carries the ``net`` marker (``pytest -m net``, CI's
``net-smoke`` job).  The suite covers the wire contract bottom-up:

* frame encode/decode rejects truncation, bad magic, and checksum
  mismatches with typed :class:`~repro.errors.TransportError`;
* :class:`~repro.serve.net.ResilientClient` retries transport faults
  under its idempotency id — a retry after a dropped ack must NOT
  re-apply the mutation, in-process or across journal recovery;
* the daemon exits :data:`~repro.serve.daemon.BROKEN_PIPE_EXIT` with a
  typed log line when its output pipe closes mid-response;
* :class:`~repro.serve.quota.TenantQuotas` holds per-tenant caps under
  concurrent submits and stays fair when one tenant floods;
* a 3-daemon :class:`~repro.serve.router.Router` survives a SIGKILL of
  the session-owning daemon with zero acked-request loss, bitwise-equal
  to an uninterrupted replica.
"""

import io
import json
import os
import threading
import time

import pytest

from repro.errors import (
    PartitionedError,
    QuotaExceededError,
    ServiceError,
    StreamError,
    TransportError,
)
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.faults import FaultPlan, FaultSpec, injected_faults
from repro.serve.daemon import (
    BROKEN_PIPE_EXIT,
    Dispatcher,
    GraphCache,
    _StreamRegistry,
    serve_forever,
)
from repro.serve.net import (
    ResilientClient,
    SocketServer,
    encode_frame,
    parse_address,
    read_frame,
)
from repro.serve.quota import TenantQuotas
from repro.serve.server import MatchingServer

pytestmark = pytest.mark.net

GRAPH = {"kind": "union", "n": 60, "k": 3, "seed": 0}


# ---------------------------------------------------------------------------
# framing


def test_frame_roundtrip():
    payload = json.dumps({"op": "health", "id": 1}).encode()
    frame = encode_frame(payload)
    assert read_frame(io.BytesIO(frame)) == payload


def test_frame_clean_eof_is_none():
    assert read_frame(io.BytesIO(b"")) is None


@pytest.mark.parametrize("cut", [1, 5, 20, 25])
def test_truncated_frames_fail_typed(cut):
    frame = encode_frame(b'{"op": "health"}')
    with pytest.raises(TransportError):
        read_frame(io.BytesIO(frame[:cut]))


def test_bad_magic_fails_typed():
    frame = bytearray(encode_frame(b"{}"))
    frame[0] = ord(b"X")
    with pytest.raises(TransportError, match="magic"):
        read_frame(io.BytesIO(bytes(frame)))


def test_flipped_payload_byte_fails_checksum():
    frame = bytearray(encode_frame(b'{"op": "health"}'))
    frame[21] ^= 0xFF
    with pytest.raises(TransportError, match="checksum"):
        read_frame(io.BytesIO(bytes(frame)))


def test_oversized_length_fails_before_allocation():
    header = b"N1 " + b"ffffffff 00000000 "
    with pytest.raises(TransportError, match="limit"):
        read_frame(io.BytesIO(header))


@pytest.mark.parametrize(
    "bad", ["", "nowhere", "unix:", "tcp:onlyhost", "tcp:h:notaport"]
)
def test_bad_addresses_fail_typed(bad):
    with pytest.raises(ServiceError):
        parse_address(bad)


# ---------------------------------------------------------------------------
# socket server + resilient client


@pytest.fixture()
def socket_stack(tmp_path):
    """An in-process dispatcher behind a real unix socket."""
    with MatchingServer("serial") as server:
        streams = _StreamRegistry(4, "serial")
        dispatcher = Dispatcher(server, GraphCache(8), streams)
        address = f"unix:{tmp_path / 'd.sock'}"
        with SocketServer(dispatcher, address, deadline=10.0) as front:
            client = ResilientClient(
                front.address,
                retries=6,
                seed=0,
                backoff=BackoffPolicy(initial=0.02, maximum=0.2),
                connect_timeout=0.5,
                deadline=10.0,
            )
            yield dispatcher, front, client


def test_match_over_socket(socket_stack):
    _, _, client = socket_stack
    response = client.request(
        {"op": "match", "graph": GRAPH, "iterations": 2, "seed": 1}
    )
    assert response["ok"] and response["cardinality"] > 0
    assert response["rung"] in ("exact", "two_sided", "one_sided", "greedy")


def test_tcp_transport(tmp_path):
    with MatchingServer("serial") as server:
        dispatcher = Dispatcher(
            server, GraphCache(4), _StreamRegistry(2, "serial")
        )
        with SocketServer(
            dispatcher, "tcp:127.0.0.1:0", deadline=5.0
        ) as front:
            assert front.address.startswith("tcp:127.0.0.1:")
            client = ResilientClient(front.address, retries=2)
            assert client.request({"op": "health"})["ok"]


def test_health_is_enriched(socket_stack):
    _, _, client = socket_stack
    health = client.request({"op": "health"})
    assert health["status"] == "ok"
    assert health["breaker"] == "closed"
    assert health["workers"] >= 1
    assert health["sessions"] == 0 and health["max_streams"] == 4
    assert health["journal"] is None
    assert health["graph_cache"] == {"size": 0, "cap": 8}
    client.request({"op": "stream_open", "graph": GRAPH})
    health = client.request({"op": "health"})
    assert health["sessions"] == 1
    assert health["graph_cache"]["size"] == 1


def test_health_reports_journal_state(tmp_path):
    from repro.serve.journal import DurableLog

    with MatchingServer("serial") as server:
        streams = _StreamRegistry(
            2, "serial", journal=DurableLog(tmp_path / "j")
        )
        dispatcher = Dispatcher(server, GraphCache(4), streams)
        health = dispatcher.health()
        assert health["journal"] == {
            "generation": 0,
            "records_since_checkpoint": 0,
            "poisoned": None,
        }
        streams.journal.close()


def test_in_band_errors_raise_typed(socket_stack):
    _, _, client = socket_stack
    with pytest.raises(StreamError, match="unknown stream handle"):
        client.request({"op": "rematch", "handle": "sX"})
    with pytest.raises(ServiceError, match="unknown op"):
        client.request({"op": "frobnicate"})


def test_unreachable_address_raises_partitioned(tmp_path):
    client = ResilientClient(
        f"unix:{tmp_path / 'nobody.sock'}",
        retries=2,
        backoff=BackoffPolicy(initial=0.01, maximum=0.02),
        connect_timeout=0.2,
    )
    with pytest.raises(PartitionedError):
        client.request({"op": "health"})


@pytest.mark.parametrize("kind", ["drop", "truncate", "garbage", "delay"])
def test_every_wire_fault_is_survived_by_retry(socket_stack, kind):
    _, _, client = socket_stack
    plan = FaultPlan(
        [FaultSpec(kind, backend="net", seconds=0.05, max_hits=2)]
    )
    with injected_faults(plan):
        response = client.request({"op": "health"})
    assert response["ok"]
    if kind != "delay":
        assert plan.specs[0].hits >= 1


def test_partition_heals_and_requests_resume(socket_stack):
    _, _, client = socket_stack
    plan = FaultPlan(
        [FaultSpec("partition", backend="net", seconds=0.3, max_hits=1)]
    )
    with injected_faults(plan):
        opened = client.request({"op": "stream_open", "graph": GRAPH})
        follow = client.request(
            {"op": "update", "handle": opened["handle"],
             "add": {"rows": [0], "cols": [1]}}
        )
    assert plan.specs[0].hits == 1
    assert follow["epoch"] == 1


def test_retry_with_same_rid_never_double_applies(socket_stack):
    _, _, client = socket_stack
    opened = client.request({"op": "stream_open", "graph": GRAPH})
    handle = opened["handle"]
    # Drop every first send: each request's ack is lost once and must
    # be recovered by a same-rid retry, without re-applying.
    plan = FaultPlan(
        [FaultSpec("drop", backend="net", probability=0.5)], seed=3
    )
    epochs = []
    with injected_faults(plan):
        for k in range(8):
            response = client.request(
                {"op": "update", "handle": handle,
                 "add": {"rows": [k % 60], "cols": [(k * 7 + 1) % 60]}}
            )
            epochs.append(response["epoch"])
    assert plan.specs[0].hits >= 1  # the schedule actually dropped acks
    assert epochs == list(range(1, 9))  # one apply per request, in order


def test_hedged_probe_wins_against_a_slow_first_response(socket_stack):
    _, _, client = socket_stack
    # First response delayed well past the hedge threshold; the hedge
    # connection answers clean (max_hits=1) and must win quickly.
    plan = FaultPlan(
        [FaultSpec("delay", backend="net", seconds=1.5, max_hits=1)]
    )
    t0 = time.perf_counter()
    with injected_faults(plan):
        health = client.probe(hedge_delay=0.1, deadline=5.0)
    elapsed = time.perf_counter() - t0
    assert health["status"] == "ok"
    assert elapsed < 1.4  # did not wait out the delayed first probe


# ---------------------------------------------------------------------------
# rid cache across journal recovery


def test_acked_rid_survives_recovery_without_reapplying(tmp_path):
    from repro.serve.journal import DurableLog
    from repro.serve.recovery import recover_registry

    jdir = str(tmp_path / "j")
    with MatchingServer("serial") as server:
        streams = _StreamRegistry(
            2, "serial", journal=DurableLog(jdir, checkpoint_every=100)
        )
        dispatcher = Dispatcher(server, GraphCache(4), streams)
        opened, _ = dispatcher.handle(
            {"id": 1, "rid": "cli:1", "op": "stream_open", "graph": GRAPH}
        )
        acked, _ = dispatcher.handle(
            {"id": 2, "rid": "cli:2", "op": "update",
             "handle": opened["handle"], "add": {"rows": [0], "cols": [1]}}
        )
        assert acked["ok"] and acked["epoch"] == 1
        streams.journal.close()  # daemon dies after the ack

    recovered, _report = recover_registry(jdir, backend="serial")
    assert recovered.replayed_acks["cli:2"]["epoch"] == 1
    with MatchingServer("serial") as server:
        dispatcher = Dispatcher(server, GraphCache(4), recovered)
        # The client never saw the ack and retries after failover.
        retry, _ = dispatcher.handle(
            {"id": 3, "rid": "cli:2", "op": "update",
             "handle": opened["handle"], "add": {"rows": [0], "cols": [1]}}
        )
        assert retry["ok"] and retry["epoch"] == 1  # NOT re-applied
        graph, _m = recovered._sessions[opened["handle"]]
        assert graph.epoch == 1
        recovered.journal.close()


# ---------------------------------------------------------------------------
# broken output pipe (stdio daemon)


class _BrokenStdout(io.StringIO):
    def __init__(self, break_after: int) -> None:
        super().__init__()
        self.break_after = break_after
        self.writes = 0

    def write(self, s: str) -> int:
        self.writes += 1
        if self.writes > self.break_after:
            raise BrokenPipeError("reader went away")
        return super().write(s)


def test_broken_output_pipe_exits_nonzero_with_typed_log(capsys):
    stdin = io.StringIO(
        json.dumps({"id": 1, "op": "health"}) + "\n"
        + json.dumps({"id": 2, "op": "health"}) + "\n"
    )
    code = serve_forever(stdin=stdin, stdout=_BrokenStdout(break_after=1))
    assert code == BROKEN_PIPE_EXIT == 74
    err = capsys.readouterr().err.strip().splitlines()
    event = json.loads(err[-1])
    assert event["event"] == "serve.output_pipe_closed"
    assert event["error"] == "BrokenPipeError"


def test_clean_run_still_exits_zero():
    stdin = io.StringIO(json.dumps({"id": 1, "op": "health"}) + "\n")
    out = io.StringIO()
    assert serve_forever(stdin=stdin, stdout=out) == 0
    assert json.loads(out.getvalue())["ok"]


# ---------------------------------------------------------------------------
# per-tenant quotas


def test_quota_sheds_typed_and_releases():
    quotas = TenantQuotas(limit=2)
    quotas.acquire("a")
    quotas.acquire("a")
    with pytest.raises(QuotaExceededError):
        quotas.acquire("a")
    quotas.release("a")
    quotas.acquire("a")  # slot came back
    assert quotas.inflight("a") == 2
    with pytest.raises(ServiceError):
        quotas.release("b")  # over-release is a bug, not a no-op


def test_quota_overrides_and_snapshot():
    quotas = TenantQuotas(limit=1, overrides={"batch": 3})
    assert quotas.limit_for("batch") == 3
    quotas.acquire("batch")
    with pytest.raises(QuotaExceededError):
        quotas.acquire("web"), quotas.acquire("web")
    snap = quotas.snapshot()
    assert snap["inflight"] == {"batch": 1, "web": 1}
    assert snap["shed"] == {"web": 1}


def test_quota_held_under_concurrent_submits():
    limit = 4
    quotas = TenantQuotas(limit=limit)
    peak = {"a": 0, "b": 0}
    shed = {"a": 0, "b": 0}
    lock = threading.Lock()

    def worker(tenant: str, submits: int) -> None:
        for _ in range(submits):
            try:
                quotas.acquire(tenant)
            except QuotaExceededError:
                with lock:
                    shed[tenant] += 1
                continue
            try:
                with lock:
                    peak[tenant] = max(
                        peak[tenant], quotas.inflight(tenant)
                    )
                time.sleep(0.001)
            finally:
                quotas.release(tenant)

    threads = [
        threading.Thread(target=worker, args=(t, 50))
        for t in ("a", "b")
        for _ in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # The cap held at every instant, and both tenants made progress.
    assert peak["a"] <= limit and peak["b"] <= limit
    assert quotas.inflight("a") == 0 and quotas.inflight("b") == 0


def test_one_flooding_tenant_cannot_starve_another():
    quotas = TenantQuotas(limit=2)
    release_flood = threading.Event()
    holding = threading.Barrier(3)

    def flooder() -> None:
        quotas.acquire("flood")
        holding.wait()
        release_flood.wait(timeout=10.0)
        quotas.release("flood")

    floods = [threading.Thread(target=flooder) for _ in range(2)]
    for t in floods:
        t.start()
    holding.wait()  # the flooding tenant now holds its entire quota
    with pytest.raises(QuotaExceededError):
        quotas.acquire("flood")
    # A different tenant is admitted instantly regardless.
    with quotas.admitted("polite"):
        assert quotas.inflight("polite") == 1
    release_flood.set()
    for t in floods:
        t.join()


# ---------------------------------------------------------------------------
# multi-daemon router failover (subprocess e2e)


def test_router_survives_sigkill_with_zero_acked_loss(tmp_path):
    from repro.serve.router import Router

    script = []
    for k in range(4):
        script.append(
            {"op": "update",
             "add": {"rows": [k % 60, (k + 1) % 60],
                     "cols": [(3 * k + 1) % 60, (5 * k + 2) % 60]}}
        )
        script.append({"op": "rematch"})
    strip = ("id", "rid", "ok", "handle")

    acked = []
    with Router(
        3, str(tmp_path / "rt"), backend="serial", health_interval=0.0
    ) as router:
        opened = router.request(
            {"op": "stream_open", "graph": GRAPH,
             "target_quality": 0.55, "seed": 0}
        )
        handle = opened["handle"]
        owner = handle.split(":", 1)[0]
        for i, op in enumerate(script):
            if i == len(script) // 2:
                victim = router._node_by_name(owner)
                assert victim.alive()
                victim.proc.kill()  # SIGKILL, no goodbye
            acked.append(
                {k: v
                 for k, v in router.request(
                     {**op, "handle": handle}
                 ).items()
                 if k not in strip}
            )
        revived = router._node_by_name(owner)
        assert revived.restarts == 1 and revived.healthy
        health = router.health()
        assert all(node["alive"] for node in health["nodes"])

    # Uninterrupted in-process replica: the acked transcript must be
    # bitwise identical — zero acked requests or epochs lost.
    registry = _StreamRegistry(4, "serial")
    cache = GraphCache(4)
    replica_open = registry.open(
        {"graph": GRAPH, "target_quality": 0.55, "seed": 0}, cache
    )
    replica = []
    for op in script:
        msg = {**op, "handle": replica_open["handle"]}
        if op["op"] == "update":
            replica.append(dict(registry.update(msg)))
        else:
            replica.append(dict(registry.rematch(msg)))
    assert acked == replica


def test_router_enforces_quota_before_routing(tmp_path):
    # Quota shedding happens before any socket I/O — provable with a
    # router whose daemons were never started.
    from repro.serve.router import Router

    router = Router(
        2,
        str(tmp_path / "rt"),
        quotas=TenantQuotas(limit=1),
        health_interval=0.0,
    )
    router.quotas.acquire("t")  # tenant already at its cap
    with pytest.raises(QuotaExceededError):
        router.request({"op": "health"}, tenant="t")


def test_router_namespaces_and_validates_handles(tmp_path):
    from repro.serve.router import Router

    router = Router(2, str(tmp_path / "rt"), health_interval=0.0)
    with pytest.raises(StreamError, match="look like"):
        router.request({"op": "rematch", "handle": "s1"})
    with pytest.raises(StreamError, match="unknown daemon"):
        router.request({"op": "rematch", "handle": "n9:s1"})


def test_serve_listen_cli_roundtrip(tmp_path):
    import subprocess
    import sys

    sock = str(tmp_path / "cli.sock")
    env = dict(os.environ)
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--listen", f"unix:{sock}",
         "--backend", "serial"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        ready = json.loads(proc.stdout.readline())
        assert ready["event"] == "serve.listening"
        client = ResilientClient(ready["address"], retries=4)
        assert client.request({"op": "health"})["ok"]
        client.request({"op": "shutdown"}, check=False)
        assert proc.wait(timeout=20) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
