"""Tests for the block triangular form (repro.graph.btf)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_dense, identity, sprand, sprand_rect
from repro.graph.btf import block_triangular_form
from repro.graph.dm import dulmage_mendelsohn


@st.composite
def any_graph(draw):
    nrows = draw(st.integers(1, 20))
    ncols = draw(st.integers(1, 20))
    density = draw(st.floats(0.05, 0.5))
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    dense = (rng.random((nrows, ncols)) < density).astype(int)
    return from_dense(dense)


class TestPermutations:
    @given(any_graph())
    @settings(max_examples=60, deadline=None)
    def test_perms_are_permutations(self, g):
        btf = block_triangular_form(g)
        assert sorted(btf.row_perm.tolist()) == list(range(g.nrows))
        assert sorted(btf.col_perm.tolist()) == list(range(g.ncols))

    @given(any_graph())
    @settings(max_examples=60, deadline=None)
    def test_block_upper_triangular_certificate(self, g):
        btf = block_triangular_form(g)
        assert btf.is_block_upper_triangular(g)

    @given(any_graph())
    @settings(max_examples=40, deadline=None)
    def test_block_boundaries_consistent(self, g):
        btf = block_triangular_form(g)
        assert btf.row_blocks[0] == 0 and btf.row_blocks[-1] == g.nrows
        assert btf.col_blocks[0] == 0 and btf.col_blocks[-1] == g.ncols
        assert np.all(np.diff(btf.row_blocks) >= 0)
        assert np.all(np.diff(btf.col_blocks) >= 0)
        assert btf.row_blocks.shape == btf.col_blocks.shape


class TestStructure:
    def test_identity_n_singleton_blocks(self):
        g = identity(5)
        btf = block_triangular_form(g)
        assert btf.n_blocks == 5
        assert btf.is_block_upper_triangular(g)

    def test_full_matrix_single_block(self):
        g = from_dense(np.ones((4, 4)))
        btf = block_triangular_form(g)
        assert btf.n_blocks == 1

    def test_square_blocks_have_zero_free_diagonal(self):
        """Inside the S range, permuted diagonal entries are edges."""
        g = sprand(300, 3.0, seed=0)
        btf = block_triangular_form(g)
        permuted = btf.permuted_pattern(g)
        start_block, end_block = btf.square_block_range
        lo = int(btf.row_blocks[start_block])
        hi = int(btf.row_blocks[end_block])
        col_lo = int(btf.col_blocks[start_block])
        for offset in range(hi - lo):
            assert permuted.has_edge(lo + offset, col_lo + offset)

    def test_triangular_input_gives_n_blocks(self):
        a = np.triu(np.ones((6, 6)))
        btf = block_triangular_form(from_dense(a))
        assert btf.n_blocks == 6
        assert btf.is_block_upper_triangular(from_dense(a))

    def test_rectangular_h_and_v(self):
        g = sprand_rect(30, 50, 2.0, seed=1)
        btf = block_triangular_form(g)
        assert btf.is_block_upper_triangular(g)

    def test_reuses_supplied_dm(self):
        g = sprand(100, 2.0, seed=2)
        dm = dulmage_mendelsohn(g)
        btf = block_triangular_form(g, dm=dm)
        assert btf.dm is dm

    def test_larger_random_instance(self):
        g = sprand(2000, 2.0, seed=3)
        btf = block_triangular_form(g)
        assert btf.is_block_upper_triangular(g)
        assert btf.n_blocks > 10  # sparse random: many fine blocks
