"""The OneSidedMatch write race, simulated explicitly.

Algorithm 2's claim: multiple rows may write to the same ``cmatch`` slot
concurrently; *whichever* write survives, the array defines a valid
matching, and the set of matched columns — hence the cardinality — is
identical for every outcome.  Here the racing writes are executed by
simulated threads under many schedules and the claim is checked, plus
the library's vectorised "last write wins" is shown to be one of the
schedule outcomes.
"""

import numpy as np
import pytest

from repro.graph import sprand
from repro.matching import Matching
from repro.matching.matching import NIL
from repro.core import one_sided_match, scaled_row_choices
from repro.parallel.partition import static_partition
from repro.parallel.simthread import SimScheduler
from repro.scaling import scale_sinkhorn_knopp


def _write_program(rows, row_choice, cmatch):
    """One simulated thread performing its rows' cmatch writes."""
    for i in rows:
        j = int(row_choice[i])
        if j == NIL:
            continue
        yield ("store", j)
        cmatch[j] = int(i)


def _race(row_choice, ncols, n_threads, policy, seed):
    cmatch = np.full(ncols, NIL, dtype=np.int64)
    nrows = row_choice.shape[0]
    programs = [
        _write_program(range(lo, hi), row_choice, cmatch)
        for lo, hi in static_partition(nrows, n_threads)
    ]
    SimScheduler(programs, policy=policy, seed=seed).run()
    return cmatch


class TestOneSidedWriteRace:
    @pytest.fixture(scope="class")
    def instance(self):
        g = sprand(200, 4.0, seed=0)
        scaling = scale_sinkhorn_knopp(g, 5)
        row_choice = scaled_row_choices(g, scaling.dr, scaling.dc, seed=1)
        return g, row_choice

    def test_every_schedule_gives_valid_matching(self, instance):
        g, row_choice = instance
        for seed in range(20):
            cmatch = _race(row_choice, g.ncols, 4, "random", seed)
            m = Matching.from_col_match(cmatch, g.nrows)
            m.validate(g)

    def test_cardinality_schedule_invariant(self, instance):
        """|M| = number of distinct chosen columns, whoever wins."""
        g, row_choice = instance
        expected = np.unique(row_choice[row_choice != NIL]).size
        for policy in ("round_robin", "random", "adversarial"):
            for seed in range(5):
                cmatch = _race(row_choice, g.ncols, 4, policy, seed)
                assert np.count_nonzero(cmatch != NIL) == expected

    def test_survivors_differ_across_schedules(self, instance):
        """The race is real: different schedules keep different writers
        (while cardinality stays fixed)."""
        g, row_choice = instance
        outcomes = {
            _race(row_choice, g.ncols, 4, "random", seed).tobytes()
            for seed in range(10)
        }
        assert len(outcomes) > 1

    def test_library_result_is_one_race_outcome(self, instance):
        """The vectorised implementation equals the sequential schedule."""
        g, row_choice = instance
        sequential = _race(row_choice, g.ncols, 1, "sequential", 0)
        library = one_sided_match(
            g,
            scaling=scale_sinkhorn_knopp(g, 5),
            seed=1,
        )
        np.testing.assert_array_equal(
            library.matching.col_match, sequential
        )
