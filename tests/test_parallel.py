"""Tests for the parallel substrate: partition, atomics, backends,
reductions, simulated threads, and the machine cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BackendError, ScheduleError
from repro.parallel import (
    AtomicArray,
    MachineModel,
    ProcessBackend,
    SerialBackend,
    SimScheduler,
    SchedulePolicy,
    ThreadBackend,
    chunk_ranges,
    get_backend,
    static_partition,
)
from repro.parallel.machine import ScheduleSpec
from repro.parallel.partition import guided_chunks
from repro.parallel.reduction import segment_sums, segment_sums_parallel


class TestPartition:
    def test_chunk_ranges_cover(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_chunk_ranges_bad_chunk(self):
        with pytest.raises(ScheduleError):
            chunk_ranges(10, 0)

    def test_static_partition_cover_and_balance(self):
        parts = static_partition(100, 7)
        assert parts[0][0] == 0 and parts[-1][1] == 100
        sizes = [hi - lo for lo, hi in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_static_partition_more_parts_than_items(self):
        parts = static_partition(3, 10)
        assert sum(hi - lo for lo, hi in parts) == 3

    def test_static_partition_bad_parts(self):
        with pytest.raises(ScheduleError):
            static_partition(5, 0)

    def test_guided_chunks_decreasing_then_floor(self):
        chunks = guided_chunks(1000, 4, min_chunk=10)
        sizes = [hi - lo for lo, hi in chunks]
        assert sizes[0] == 250
        assert all(s >= 10 or i == len(sizes) - 1 for i, s in enumerate(sizes))
        assert chunks[-1][1] == 1000

    @given(st.integers(0, 500), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_all_partitions_are_exact_covers(self, n, p):
        for ranges in (
            static_partition(n, p),
            chunk_ranges(n, 7),
            guided_chunks(n, p, 3),
        ):
            covered = []
            for lo, hi in ranges:
                covered.extend(range(lo, hi))
            assert covered == list(range(n))


class TestAtomics:
    @pytest.mark.parametrize("locking", [False, True])
    def test_add_and_fetch(self, locking):
        a = AtomicArray([5, 0], locking=locking)
        assert a.add_and_fetch(0, -2) == 3
        assert a.load(0) == 3

    @pytest.mark.parametrize("locking", [False, True])
    def test_compare_and_swap_success_returns_replacement(self, locking):
        a = AtomicArray([-1], locking=locking)
        assert a.compare_and_swap(0, -1, 7) == 7
        assert a.load(0) == 7

    @pytest.mark.parametrize("locking", [False, True])
    def test_compare_and_swap_failure_returns_current(self, locking):
        a = AtomicArray([3], locking=locking)
        assert a.compare_and_swap(0, -1, 7) == 3
        assert a.load(0) == 3

    def test_store_and_len(self):
        a = AtomicArray(4)
        a.store(2, 9)
        assert a.load(2) == 9
        assert len(a) == 4

    def test_add(self):
        a = AtomicArray([1])
        a.add(0, 10)
        assert a.load(0) == 11

    def test_concurrent_cas_under_real_threads(self):
        """Exactly one thread may win each CAS slot."""
        import threading

        a = AtomicArray(np.full(64, -1), locking=True)
        wins = [0] * 8

        def worker(tid):
            for i in range(64):
                if a.compare_and_swap(i, -1, tid) == tid:
                    wins[tid] += 1

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(wins) == 64  # every slot won exactly once


class TestBackends:
    def test_get_backend_specs(self):
        assert isinstance(get_backend(None), SerialBackend)
        assert isinstance(get_backend("serial"), SerialBackend)
        be = get_backend("threads:3")
        assert isinstance(be, ThreadBackend) and be.n_workers == 3
        be.close()
        existing = SerialBackend()
        assert get_backend(existing) is existing

    def test_get_backend_bad_spec(self):
        with pytest.raises(BackendError):
            get_backend("gpu")
        with pytest.raises(BackendError):
            get_backend(42)

    def test_serial_map(self):
        out = SerialBackend().map_ranges(lambda lo, hi: (lo, hi), 7)
        assert out == [(0, 7)]

    def test_thread_map_covers_and_orders(self):
        with ThreadBackend(3) as be:
            out = be.map_ranges(lambda lo, hi: (lo, hi), 10)
        assert out[0][0] == 0 and out[-1][1] == 10

    def test_process_map(self):
        with ProcessBackend(2) as be:
            out = be.map_ranges(_square_range, 6)
        assert sum(out, []) == [i * i for i in range(6)]

    def test_thread_backend_bad_workers(self):
        with pytest.raises(BackendError):
            ThreadBackend(0)

    def test_process_child_death_raises_typed_error(self):
        """A worker killed mid-call must surface as a typed BackendError
        naming the chunk range and exit status — never a bare EOFError."""
        from repro.errors import WorkerCrashError

        with ProcessBackend(2) as be:
            with pytest.raises(WorkerCrashError) as err:
                be.map_ranges(_die_if_first_range, 50)
        message = str(err.value)
        assert "[0, 25)" in message  # the dead worker's chunk
        assert "-9" in message or "status" in message
        assert isinstance(err.value, BackendError)

    def test_process_backend_usable_after_child_death(self):
        """One crashed call must not poison the backend for the next."""
        with ProcessBackend(2) as be:
            with pytest.raises(BackendError):
                be.map_ranges(_die_if_first_range, 10)
            out = be.map_ranges(_square_range, 6)
        assert sum(out, []) == [i * i for i in range(6)]


class TestSegmentSums:
    def test_basic(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        ptr = np.array([0, 2, 2, 4])
        np.testing.assert_allclose(segment_sums(vals, ptr), [3.0, 0.0, 7.0])

    def test_trailing_empty_segments(self):
        vals = np.array([1.0])
        ptr = np.array([0, 1, 1, 1])
        np.testing.assert_allclose(segment_sums(vals, ptr), [1.0, 0.0, 0.0])

    def test_all_empty(self):
        np.testing.assert_allclose(
            segment_sums(np.array([]), np.array([0, 0, 0])), [0.0, 0.0]
        )

    def test_no_segments(self):
        assert segment_sums(np.array([1.0]), np.array([0])).shape == (0,)

    @given(st.lists(st.integers(0, 6), min_size=0, max_size=20),
           st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_against_naive(self, seg_lengths, seed):
        rng = np.random.default_rng(seed)
        ptr = np.concatenate([[0], np.cumsum(seg_lengths)]).astype(np.int64)
        vals = rng.random(int(ptr[-1]))
        expected = np.array(
            [vals[ptr[i]:ptr[i + 1]].sum() for i in range(len(seg_lengths))]
        )
        np.testing.assert_allclose(segment_sums(vals, ptr), expected)
        with ThreadBackend(2) as be:
            np.testing.assert_allclose(
                segment_sums_parallel(vals, ptr, be), expected
            )


class TestSimScheduler:
    @staticmethod
    def _counter_program(log, tid, steps):
        for i in range(steps):
            log.append((tid, i))
            yield

    def test_all_programs_complete(self):
        log = []
        progs = [self._counter_program(log, t, 5) for t in range(3)]
        stats = SimScheduler(progs, policy="round_robin").run()
        assert stats.total_steps == 15
        assert stats.steps_per_thread == [5, 5, 5]

    def test_round_robin_interleaves(self):
        log = []
        progs = [self._counter_program(log, t, 2) for t in range(2)]
        SimScheduler(progs, policy="round_robin").run()
        assert log == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_sequential_runs_to_completion(self):
        log = []
        progs = [self._counter_program(log, t, 3) for t in range(2)]
        SimScheduler(progs, policy="sequential").run()
        assert log == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_random_deterministic_with_seed(self):
        def make():
            log = []
            progs = [self._counter_program(log, t, 4) for t in range(3)]
            SimScheduler(progs, policy="random", seed=9).run()
            return log

        assert make() == make()

    def test_adversarial_keeps_threads_level(self):
        log = []
        progs = [self._counter_program(log, t, 10) for t in range(2)]
        stats = SimScheduler(progs, policy="adversarial", seed=0).run()
        # Progress difference never exceeded 1 step.
        assert stats.steps_per_thread == [10, 10]

    def test_max_steps_guard(self):
        def forever():
            while True:
                yield

        with pytest.raises(ScheduleError):
            SimScheduler([forever()], max_steps=100).run()

    def test_trace_collection(self):
        log = []
        progs = [self._counter_program(log, t, 2) for t in range(2)]
        stats = SimScheduler(progs, policy="round_robin", keep_trace=True).run()
        assert stats.trace == [0, 1, 0, 1]


class TestMachineModel:
    def test_speedup_monotone_under_roof(self):
        model = MachineModel()
        work = np.full(10_000, 5.0)
        speeds = [model.speedup(work, p) for p in (1, 2, 4, 8)]
        assert speeds[0] == pytest.approx(1.0)
        assert speeds == sorted(speeds)

    def test_bandwidth_roofline_limits_scaling(self):
        model = MachineModel(bandwidth_threads=8.0)
        work = np.full(100_000, 3.0)
        s16 = model.speedup(work, 16)
        assert s16 < 12.0  # cannot approach 16

    def test_no_roof_when_compute_bound(self):
        model = MachineModel(compute_bound_fraction=1.0)
        assert model.bandwidth_factor(16) == pytest.approx(1.0)

    def test_skewed_work_scales_worse(self):
        model = MachineModel()
        rng = np.random.default_rng(0)
        flat = np.full(5_000, 10.0)
        skewed = rng.pareto(1.0, 5_000) * 9.0 + 1.0
        skewed *= flat.sum() / skewed.sum()  # same total work
        sched = ScheduleSpec.dynamic(32)
        assert model.speedup(skewed, 16, schedule=sched) < model.speedup(
            flat, 16, schedule=sched
        )

    def test_schedules_cover_all_work(self):
        model = MachineModel(chunk_overhead=0.0)
        work = np.arange(1, 101, dtype=float)
        for spec in (
            ScheduleSpec.dynamic(8),
            ScheduleSpec.guided(4),
            ScheduleSpec.static(),
        ):
            bd = model.parallel_time(work, 1, schedule=spec)
            assert bd.makespan == pytest.approx(work.sum())

    def test_barriers_and_serial_work_added(self):
        model = MachineModel()
        work = np.ones(100)
        bd = model.parallel_time(work, 4, serial_work=50.0, barriers=3)
        assert bd.serial_work == 50.0
        assert bd.barrier_cost == pytest.approx(3 * model.barrier_unit * 3.0)

    def test_invalid_thread_count(self):
        with pytest.raises(ScheduleError):
            MachineModel().parallel_time(np.ones(5), 0)

    def test_makespan_at_least_heaviest_chunk(self):
        model = MachineModel(chunk_overhead=0.0)
        work = np.zeros(1000)
        work[0] = 1_000_000.0  # one giant item
        bd = model.parallel_time(work, 16, schedule=ScheduleSpec.dynamic(10))
        assert bd.makespan >= 1_000_000.0


def _square_range(lo: int, hi: int) -> list:
    """Top-level helper so ProcessBackend can pickle it."""
    return [i * i for i in range(lo, hi)]


def _die_if_first_range(lo: int, hi: int) -> list:
    """Kill the worker handling the first chunk with an uncatchable signal."""
    if lo == 0:
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    return [i for i in range(lo, hi)]
