"""Tests for random 1-out graphs and quality helpers (repro.core)."""

import numpy as np
import pytest

from repro.constants import ONE_SIDED_GUARANTEE, TWO_SIDED_GUARANTEE
from repro.graph import identity, sprand
from repro.matching import hopcroft_karp
from repro.core import (
    matching_quality,
    one_out_graph,
    one_out_max_matching_size,
    one_sided_bound,
    sample_uniform_one_out,
    two_sided_bound,
)


class TestOneOutSampling:
    def test_choice_ranges(self):
        rc, cc = sample_uniform_one_out(100, seed=0)
        assert rc.shape == cc.shape == (100,)
        assert rc.min() >= 0 and rc.max() < 100
        assert cc.min() >= 0 and cc.max() < 100

    def test_graph_edge_bound(self):
        g = one_out_graph(200, seed=1)
        assert g.nnz <= 400
        assert g.shape == (200, 200)

    def test_matching_size_equals_exact(self):
        for seed in range(5):
            rc, cc = sample_uniform_one_out(150, seed=seed)
            from repro.core import choice_graph, karp_sipser_mt

            g = choice_graph(rc, cc)
            assert (
                karp_sipser_mt(rc, cc).cardinality
                == hopcroft_karp(g).cardinality
            )

    def test_karonski_pittel_constant(self):
        """|M|/n concentrates around 2(1-rho) = 0.8657."""
        n = 50_000
        ratio = one_out_max_matching_size(n, seed=0) / n
        assert abs(ratio - TWO_SIDED_GUARANTEE) < 0.01

    def test_deterministic(self):
        assert one_out_max_matching_size(1000, seed=3) == \
            one_out_max_matching_size(1000, seed=3)


class TestQualityHelpers:
    def test_matching_quality_with_known_max(self):
        g = identity(10)
        m = hopcroft_karp(g)
        assert matching_quality(g, m, maximum_cardinality=10) == 1.0

    def test_matching_quality_computes_sprank(self):
        g = sprand(100, 3.0, seed=0)
        m = hopcroft_karp(g)
        assert matching_quality(g, m) == 1.0

    def test_one_sided_bound_values(self):
        assert one_sided_bound() == ONE_SIDED_GUARANTEE
        assert one_sided_bound(1.0) == ONE_SIDED_GUARANTEE
        assert one_sided_bound(0.92) == pytest.approx(0.6015, abs=5e-4)

    def test_two_sided_bound_value(self):
        assert two_sided_bound() == TWO_SIDED_GUARANTEE
