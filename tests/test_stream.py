"""Tests for ``repro.stream``: dynamic graphs, incremental repair, daemon verbs.

The load-bearing test is the differential one: after a sequence of edit
batches, the incremental path must produce a *valid* matching whose
declared guarantee is exactly what a cold from-scratch run at the final
epoch declares — the incremental machinery may only save time, never
weaken the certificate.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import telemetry
from repro.core.karp_sipser_mt import karp_sipser_mt_vectorized
from repro.errors import GraphStructureError, ShapeError, StreamError
from repro.graph.build import from_edges
from repro.graph.generators import sprand, union_of_permutations
from repro.matching import hopcroft_karp
from repro.scaling import alpha_for_quality
from repro.serve.daemon import GraphCache, build_graph, serve_forever
from repro.stream import DynamicBipartiteGraph, StreamMatcher, run_churn
from repro.stream.rescale import local_rebalance

pytestmark = pytest.mark.stream


# ---------------------------------------------------------------------------
# DynamicBipartiteGraph
# ---------------------------------------------------------------------------


def _assert_same_graph(a, b):
    np.testing.assert_array_equal(a.row_ptr, b.row_ptr)
    np.testing.assert_array_equal(a.col_ind, b.col_ind)
    np.testing.assert_array_equal(a.col_ptr, b.col_ptr)
    np.testing.assert_array_equal(a.row_ind, b.row_ind)


def test_snapshot_matches_from_edges_after_edits():
    rng = np.random.default_rng(3)
    base = sprand(60, 4.0, seed=1)
    dyn = DynamicBipartiteGraph(base)
    edges = {
        (int(r), int(c))
        for r, c in zip(base.row_of_edge(), base.col_ind)
    }
    for _ in range(5):
        snap = dyn.snapshot()
        kill = rng.choice(snap.nnz, size=10, replace=False)
        del_r = snap.row_of_edge()[kill]
        del_c = snap.col_ind[kill]
        dyn.remove_edges(del_r, del_c)
        edges -= set(zip(map(int, del_r), map(int, del_c)))
        add_r = rng.integers(0, 60, size=12)
        add_c = rng.integers(0, 60, size=12)
        dyn.add_edges(add_r, add_c)
        edges |= set(zip(map(int, add_r), map(int, add_c)))
    ref_r, ref_c = zip(*sorted(edges))
    ref = from_edges(60, 60, ref_r, ref_c)
    _assert_same_graph(dyn.snapshot(), ref)
    assert dyn.nnz == len(edges)


def test_add_duplicate_is_noop_and_epoch_stable():
    dyn = DynamicBipartiteGraph(nrows=4, ncols=4)
    assert dyn.add_edges([0, 1], [1, 2]) == 2
    e = dyn.epoch
    assert dyn.add_edges([0], [1]) == 0
    assert dyn.epoch == e
    assert dyn.has_edge(0, 1) and not dyn.has_edge(1, 1)


def test_remove_missing_strict_raises_lenient_skips():
    dyn = DynamicBipartiteGraph(nrows=4, ncols=4)
    dyn.add_edges([0], [0])
    with pytest.raises(GraphStructureError, match="does not exist"):
        dyn.remove_edges([3], [3])
    assert dyn.remove_edges([3, 0], [3, 0], strict=False) == 1
    assert dyn.nnz == 0


def test_edit_validation():
    dyn = DynamicBipartiteGraph(nrows=4, ncols=4)
    with pytest.raises(ShapeError, match="differ in length"):
        dyn.add_edges([0, 1], [0])
    with pytest.raises(GraphStructureError, match="out of range"):
        dyn.add_edges([4], [0])
    with pytest.raises(GraphStructureError, match="out of range"):
        dyn.add_edges([0], [-1])


def test_grow_extends_only():
    dyn = DynamicBipartiteGraph(nrows=2, ncols=2)
    dyn.grow(nrows=5)
    assert dyn.shape == (5, 2)
    dyn.add_edges([4], [1])
    with pytest.raises(ShapeError, match="extend"):
        dyn.grow(nrows=3)
    snap = dyn.snapshot()
    assert snap.nrows == 5 and snap.nnz == 1


def test_snapshot_cached_per_epoch():
    dyn = DynamicBipartiteGraph(nrows=3, ncols=3)
    dyn.add_edges([0], [0])
    s1 = dyn.snapshot()
    assert dyn.snapshot() is s1
    dyn.add_edges([1], [1])
    assert dyn.snapshot() is not s1
    with pytest.raises(ValueError):
        dyn.snapshot().col_ind[0] = 2  # snapshots are frozen


def test_dirty_since_unions_epochs():
    dyn = DynamicBipartiteGraph(nrows=8, ncols=8)
    dyn.add_edges([0], [1])
    mark = dyn.epoch
    dyn.add_edges([2], [3])
    dyn.remove_edges([0], [1])
    d = dyn.dirty_since(mark)
    np.testing.assert_array_equal(d.rows, [0, 2])
    np.testing.assert_array_equal(d.cols, [1, 3])
    assert dyn.dirty_since(dyn.epoch).empty
    with pytest.raises(ShapeError, match="ahead"):
        dyn.dirty_since(dyn.epoch + 1)


def test_dirty_since_expired_journal_returns_none():
    dyn = DynamicBipartiteGraph(nrows=8, ncols=8, journal_limit=2)
    dyn.add_edges([0], [0])
    mark = dyn.epoch
    dyn.add_edges([1], [1])
    dyn.add_edges([2], [2])
    dyn.add_edges([3], [3])
    assert dyn.dirty_since(mark) is None  # trimmed past mark
    assert dyn.dirty_since(dyn.epoch - 1) is not None


# ---------------------------------------------------------------------------
# local_rebalance
# ---------------------------------------------------------------------------


def _exact_min_col_prob_sum(graph, dc):
    from repro.parallel.reduction import segment_sums

    rowtot = segment_sums(dc[graph.col_ind], graph.row_ptr)
    inv = np.zeros_like(rowtot)
    np.divide(1.0, rowtot, out=inv, where=rowtot > 0)
    probs = np.repeat(dc, np.diff(graph.col_ptr)) * inv[graph.row_ind]
    sums = segment_sums(probs, graph.col_ptr)
    nonempty = np.diff(graph.col_ptr) > 0
    return float(sums[nonempty].min())


def test_local_rebalance_certificate_is_exact():
    g = union_of_permutations(400, 2, seed=5)
    dc = np.ones(g.ncols)
    dc[::7] = 0.05  # knock a subset of columns below the bar
    target = 0.55
    qs, _ = local_rebalance(g, dc, target)
    assert qs.target_met
    # The reported minimum must equal an independent global measurement
    # of the returned factors — the certificate is exact, not estimated.
    true_min = _exact_min_col_prob_sum(g, qs.scaling.dc)
    assert qs.min_column_sum == pytest.approx(true_min, rel=1e-12)
    assert true_min >= alpha_for_quality(target)
    assert qs.scaling.warm_started


def test_local_rebalance_state_reuse_stays_exact():
    # Carrying (rowtot, colsum) across an edit batch and refreshing only
    # the dirty neighbourhood must give the same certificate as a
    # from-scratch measurement of the same factors.
    from repro.stream.rescale import measure_state

    base = union_of_permutations(300, 2, seed=8)
    dyn = DynamicBipartiteGraph(base)
    extra = sprand(300, 3.0, seed=9)
    dyn.add_edges(extra.row_of_edge(), extra.col_ind)
    g0 = dyn.snapshot()
    dc = np.ones(g0.ncols)
    qs0, state = local_rebalance(g0, dc, 0.55)
    mark = dyn.epoch

    rng = np.random.default_rng(10)
    kill = rng.choice(g0.nnz, size=15, replace=False)
    dyn.remove_edges(g0.row_of_edge()[kill], g0.col_ind[kill])
    dyn.add_edges(rng.integers(0, 300, size=15), rng.integers(0, 300, size=15))
    g1 = dyn.snapshot()
    dirty = dyn.dirty_since(mark)

    qs1, state1 = local_rebalance(
        g1, qs0.scaling.dc, 0.55,
        state=state, dirty_rows=dirty.rows, dirty_cols=dirty.cols,
    )
    # Bitwise, not approximate: recovery recertification compares the
    # carried state against a fresh measurement with array_equal, so the
    # local refreshes must replay measure_state's exact operation order
    # (multiply dc per edge BEFORE summing, not factor it out).
    fresh_rowtot, fresh_colsum = measure_state(g1, qs1.scaling.dc)
    assert np.array_equal(state1[0], fresh_rowtot)
    assert np.array_equal(state1[1], fresh_colsum)
    assert qs1.min_column_sum == pytest.approx(
        _exact_min_col_prob_sum(g1, qs1.scaling.dc), rel=1e-12
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_carried_state_stays_bitwise_over_update_rematch_epochs(seed):
    # Regression: with (n=120, seed=1) the factored-out dc
    # multiplication in the stale-column refresh drifted colsum by one
    # ulp from measure_state, which a later crash recovery rejected as
    # "recovered warm scale state does not match a fresh measurement".
    from repro.stream.rescale import measure_state

    n = 120
    matcher = StreamMatcher(
        DynamicBipartiteGraph(union_of_permutations(n, 3, seed=seed)),
        0.55,
        seed=seed,
    )
    for k in range(6):
        matcher.graph.add_edges(
            [k % n, (k + 1) % n], [(3 * k + 1) % n, (5 * k + 2) % n]
        )
        matcher.rematch()
        snap = matcher.graph.snapshot()
        fresh = measure_state(snap, matcher._quality.scaling.dc)
        assert np.array_equal(matcher._scale_state[0], fresh[0])
        assert np.array_equal(matcher._scale_state[1], fresh[1])


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_local_rebalance_sprand_churn_stays_finite(seed):
    # Regression: pure-sprand graphs develop near-empty columns under
    # churn; the per-round boost used to drive dc factors to inf, the
    # certificate to NaN, and the rematch into "alpha must be in [0, 1],
    # got nan".  The clamped boost + bounded-norm renormalisation must
    # keep every epoch finite with a valid matching.
    g = sprand(600, 2.0, seed=seed)
    dyn = DynamicBipartiteGraph(g)
    matcher = StreamMatcher(dyn, 0.5, seed=seed)
    results = [matcher.rematch()]
    rng = np.random.default_rng(1000 + seed)
    for _ in range(8):
        dyn.add_edges(
            rng.integers(0, g.nrows, size=30), rng.integers(0, g.ncols, size=30)
        )
        dyn.remove_edges(
            rng.integers(0, g.nrows, size=10),
            rng.integers(0, g.ncols, size=10),
            strict=False,
        )
        results.append(matcher.rematch())
    for res in results:
        assert np.isfinite(res.guarantee) and 0.0 <= res.guarantee <= 1.0
    assert results[-1].mode == "incremental"
    results[-1].matching.validate(dyn.snapshot())


# ---------------------------------------------------------------------------
# StreamMatcher
# ---------------------------------------------------------------------------


def _fresh_edge(dyn, row=0):
    """A column not currently adjacent to *row*."""
    return next(c for c in range(dyn.ncols) if not dyn.has_edge(row, c))


def _churned_graph(n=300, seed=0, batches=3, frac=0.02):
    """A dynamic graph driven through churn, with a matcher attached."""
    rng = np.random.default_rng(seed)
    base = union_of_permutations(n, 2, seed=seed)
    dyn = DynamicBipartiteGraph(base)
    extra = sprand(n, 4.0, seed=seed + 1)
    dyn.add_edges(extra.row_of_edge(), extra.col_ind)
    matcher = StreamMatcher(dyn, 0.55, seed=seed)
    # Each entry pairs the rematch result with the snapshot of the epoch
    # it was computed for (earlier results are not valid matchings of
    # *later* graphs — their edges may since have been deleted).
    results = [(matcher.rematch(), dyn.snapshot())]
    for _ in range(batches):
        snap = dyn.snapshot()
        kill = rng.choice(snap.nnz, size=int(frac * snap.nnz), replace=False)
        dyn.remove_edges(snap.row_of_edge()[kill], snap.col_ind[kill])
        dyn.add_edges(
            rng.integers(0, n, size=kill.size),
            rng.integers(0, n, size=kill.size),
        )
        results.append((matcher.rematch(), dyn.snapshot()))
    return dyn, matcher, results


def test_incremental_rematch_is_valid_and_incremental():
    dyn, matcher, results = _churned_graph()
    assert results[0][0].mode == "cold"
    for res, snap in results[1:]:
        assert res.mode == "incremental"
        res.matching.validate(snap)
        # Repair is genuinely local: far fewer vertices touched than n.
        assert res.resampled_rows < dyn.nrows
    assert results[-1][0].epoch == dyn.epoch


def test_incremental_matching_is_maximum_on_choice_subgraph():
    # The merged matching (retained pairs + per-component reruns) must
    # have the same cardinality as Karp–Sipser run from scratch on the
    # *same* choice arrays — KS is exact on 1-out subgraphs, so equality
    # means the merge lost nothing.
    dyn, matcher, results = _churned_graph(seed=2)
    full = karp_sipser_mt_vectorized(matcher._row_choice, matcher._col_choice)
    assert results[-1][0].cardinality == full.cardinality


def test_differential_guarantee_matches_cold_recompute():
    dyn, matcher, results = _churned_graph(seed=4)
    cold = StreamMatcher(dyn, 0.55, seed=99).rematch()
    assert cold.mode == "cold"
    assert results[-1][0].guarantee == cold.guarantee
    assert results[-1][0].epoch == cold.epoch


def test_forced_cold_and_journal_expiry_fall_back():
    base = union_of_permutations(80, 3, seed=0)
    dyn = DynamicBipartiteGraph(base, journal_limit=1)
    matcher = StreamMatcher(dyn, 0.55, seed=0)
    matcher.rematch()
    dyn.add_edges([0], [_fresh_edge(dyn)])
    assert matcher.rematch(cold=True).mode == "cold"
    # Two edits with journal_limit=1 trims history past the matcher.
    dyn.remove_edges([5], [dyn.snapshot().col_ind[dyn.snapshot().row_ptr[5]]])
    dyn.add_edges([5], [_fresh_edge(dyn, row=5)])
    assert dyn.dirty_since(matcher.epoch) is None
    assert matcher.rematch().mode == "cold"


def test_pure_growth_keeps_matching():
    base = union_of_permutations(60, 3, seed=1)
    dyn = DynamicBipartiteGraph(base)
    matcher = StreamMatcher(dyn, 0.55, seed=1)
    before = matcher.rematch()
    dyn.grow(nrows=70, ncols=70)
    after = matcher.rematch()
    assert after.mode == "incremental"
    assert after.repaired_rows == 0 and after.repaired_cols == 0
    assert after.cardinality == before.cardinality
    after.matching.validate(dyn.snapshot())


def test_topup_reaches_maximum():
    base = union_of_permutations(100, 2, seed=3)
    dyn = DynamicBipartiteGraph(base)
    matcher = StreamMatcher(dyn, 0.55, seed=3, topup=True)
    res = matcher.rematch()
    assert res.cardinality == hopcroft_karp(dyn.snapshot()).cardinality
    dyn.add_edges([0], [_fresh_edge(dyn)])
    res2 = matcher.rematch()
    assert res2.cardinality == hopcroft_karp(dyn.snapshot()).cardinality


def test_stream_telemetry_counters():
    with telemetry.session() as reg:
        _churned_graph(n=150, seed=6, batches=2)
        snap = {name: m for name, m in reg.snapshot().items()}
    assert snap["stream.rematch.runs"]["value"] == 3
    assert snap["stream.rematch.cold"]["value"] == 1
    assert snap["stream.rematch.incremental"]["value"] == 2
    assert "stream.rebalance.runs" in snap


def test_run_churn_reports_matching_guarantees():
    report = run_churn(600, batches=2, churn_fraction=0.02, seed=1)
    assert report.guarantees_match
    assert report.cardinality > 0
    assert report.update_seconds >= 0 and report.incremental_seconds > 0


# ---------------------------------------------------------------------------
# Daemon: graph cache, COO validation, stream verbs
# ---------------------------------------------------------------------------


def _drive(requests, **kwargs):
    stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    stdout = io.StringIO()
    assert serve_forever(stdin=stdin, stdout=stdout, **kwargs) == 0
    return {
        reply["id"]: reply
        for reply in map(json.loads, stdout.getvalue().splitlines())
    }


def test_graph_cache_lru_eviction_and_counter():
    cache = GraphCache(2)
    spec = lambda s: {"kind": "union", "n": 40, "k": 2, "seed": s}
    g0 = build_graph(spec(0), cache)
    build_graph(spec(1), cache)
    assert build_graph(spec(0), cache) is g0  # hit refreshes recency
    build_graph(spec(2), cache)  # evicts seed=1, not seed=0
    assert cache.evictions == 1 and len(cache) == 2
    assert build_graph(spec(0), cache) is g0
    with telemetry.session() as reg:
        build_graph(spec(3), cache)
        assert reg.snapshot()["serve.graph_cache.evictions"]["value"] == 1


def test_build_graph_coo_validation():
    from repro.errors import ServiceError

    ok = {"nrows": 2, "ncols": 2, "rows": [0, 1], "cols": [1, 0]}
    assert build_graph(ok).nnz == 2
    cases = [
        ({**ok, "rows": [0]}, "'rows' and 'cols' differ in length"),
        ({**ok, "cols": [1.5, 0.5]}, "'cols' must contain integers"),
        ({**ok, "rows": [[0], [1]]}, "'rows' must be a flat list"),
        ({**ok, "nrows": 2.0}, "'nrows' must be an integer"),
        ({"rows": [0], "cols": [0], "ncols": 1}, "missing 'nrows'"),
    ]
    for spec, fragment in cases:
        with pytest.raises(ServiceError, match=fragment):
            build_graph(spec)


def test_daemon_stream_session_lifecycle():
    graph = {"kind": "union", "n": 120, "k": 3, "seed": 0}
    by_id = _drive([
        {"id": 1, "op": "stream_open", "graph": graph,
         "target_quality": 0.55},
        {"id": 2, "op": "rematch", "handle": "s1", "include_matching": True},
        {"id": 3, "op": "update", "handle": "s1",
         "add": {"rows": [0, 1], "cols": [5, 6]},
         "remove": {"rows": [], "cols": []}},
        {"id": 4, "op": "rematch", "handle": "s1", "expect_epoch": 1},
        {"id": 5, "op": "rematch", "handle": "s1", "expect_epoch": 0},
        {"id": 6, "op": "stream_close", "handle": "s1"},
        {"id": 7, "op": "rematch", "handle": "s1"},
        {"id": 8, "op": "shutdown"},
    ])
    assert by_id[1]["ok"] and by_id[1]["handle"] == "s1"
    assert by_id[1]["epoch"] == 0 and by_id[1]["nnz"] > 0
    assert by_id[2]["ok"] and by_id[2]["mode"] == "cold"
    assert by_id[2]["guarantee"] == pytest.approx(0.55)
    assert len(by_id[2]["row_match"]) == 120
    assert by_id[3]["ok"] and by_id[3]["epoch"] == 1
    assert by_id[4]["ok"] and by_id[4]["mode"] == "incremental"
    assert "row_match" not in by_id[4]
    assert not by_id[5]["ok"] and by_id[5]["error"] == "StreamError"
    assert "stale epoch" in by_id[5]["message"]
    assert by_id[6]["ok"] and by_id[6]["closed"]
    assert not by_id[7]["ok"] and "unknown stream handle" in by_id[7]["message"]


def test_daemon_stream_limits_and_validation():
    graph = {"kind": "union", "n": 40, "k": 2, "seed": 0}
    by_id = _drive(
        [
            {"id": 1, "op": "stream_open", "graph": graph},
            {"id": 2, "op": "stream_open", "graph": graph},
            {"id": 3, "op": "update", "handle": "s1",
             "add": {"rows": [0.5], "cols": [1]}},
            {"id": 4, "op": "update", "handle": "s1",
             "remove": {"rows": [0], "cols": [39]}},
            {"id": 5, "op": "shutdown"},
        ],
        max_streams=1,
    )
    assert by_id[1]["ok"]
    assert not by_id[2]["ok"] and by_id[2]["error"] == "StreamError"
    assert "stream limit" in by_id[2]["message"]
    assert not by_id[3]["ok"] and "add.rows" in by_id[3]["message"]
    # Deleting a non-edge surfaces the typed graph error, not a crash.
    assert by_id[4]["ok"] or by_id[4]["error"] == "GraphStructureError"


def test_daemon_graph_cache_cap_threads_through():
    specs = [{"kind": "union", "n": 30, "k": 2, "seed": s} for s in range(3)]
    reqs = [
        {"id": i, "op": "match", "graph": spec, "iterations": 1}
        for i, spec in enumerate(specs)
    ]
    with telemetry.session() as reg:
        by_id = _drive(reqs + [{"id": 9, "op": "shutdown"}],
                       graph_cache_cap=1)
        evictions = reg.snapshot()["serve.graph_cache.evictions"]["value"]
    assert all(by_id[i]["ok"] for i in range(3))
    assert evictions == 2
