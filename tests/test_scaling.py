"""Tests for the scaling algorithms (repro.scaling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScalingError
from repro.graph import (
    from_dense,
    full_ones,
    fully_indecomposable,
    grid_graph,
    identity,
    sprand,
    union_of_permutations,
)
from repro.scaling import (
    column_sum_error,
    row_sum_error,
    scale_ruiz,
    scale_sinkhorn_knopp,
    scale_symmetric,
    scaled_column_sums,
    scaled_row_sums,
)
from repro.scaling.symmetric import is_pattern_symmetric


class TestSinkhornKnopp:
    def test_zero_iterations_identity_vectors(self):
        g = sprand(100, 3.0, seed=0)
        res = scale_sinkhorn_knopp(g, 0)
        np.testing.assert_array_equal(res.dr, np.ones(100))
        np.testing.assert_array_equal(res.dc, np.ones(100))
        assert res.iterations == 0

    def test_full_matrix_scales_in_one_iteration(self):
        g = full_ones(8)
        res = scale_sinkhorn_knopp(g, 1)
        s = g.scaled_values(res.dr, res.dc)
        np.testing.assert_allclose(s, 1.0 / 8.0)
        assert res.error < 1e-12

    def test_row_sums_one_after_each_iteration(self):
        """The paper: after the row sweep, row sums are one exactly."""
        g = fully_indecomposable(200, 4.0, seed=0)
        for iters in (1, 3, 7):
            res = scale_sinkhorn_knopp(g, iters)
            assert row_sum_error(g, res.dr, res.dc) < 1e-12

    def test_convergence_with_total_support(self):
        g = union_of_permutations(150, 3, seed=1)
        res = scale_sinkhorn_knopp(g, tolerance=1e-8, max_iterations=5000)
        assert res.converged
        assert res.error <= 1e-8
        # Fully doubly stochastic: both sums ~1.
        np.testing.assert_allclose(
            scaled_column_sums(g, res.dr, res.dc), 1.0, atol=1e-7
        )
        np.testing.assert_allclose(
            scaled_row_sums(g, res.dr, res.dc), 1.0, atol=1e-7
        )

    def test_positive_scaling_vectors(self):
        g = fully_indecomposable(100, 3.0, seed=2)
        res = scale_sinkhorn_knopp(g, 10)
        assert (res.dr > 0).all()
        assert (res.dc > 0).all()

    def test_error_decreases_with_iterations(self):
        g = fully_indecomposable(200, 4.0, seed=3)
        errors = [scale_sinkhorn_knopp(g, it).error for it in (1, 5, 20)]
        assert errors[0] > errors[1] > errors[2]

    def test_history_tracking(self):
        g = sprand(100, 3.0, seed=0)
        res = scale_sinkhorn_knopp(g, 5, track_history=True)
        assert len(res.history) == 5
        assert res.history[-1] == pytest.approx(res.error)

    def test_empty_lines_are_tolerated(self):
        # Matrix with an empty row and an empty column.
        a = np.array([[1, 1, 0], [0, 0, 0], [0, 1, 0]])
        g = from_dense(a)
        res = scale_sinkhorn_knopp(g, 5)
        assert np.isfinite(res.dr).all()
        assert np.isfinite(res.dc).all()
        assert np.isfinite(res.error)

    def test_mutually_exclusive_arguments(self):
        g = identity(3)
        with pytest.raises(ScalingError):
            scale_sinkhorn_knopp(g, 5, tolerance=1e-3)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ScalingError):
            scale_sinkhorn_knopp(identity(3), -1)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ScalingError):
            scale_sinkhorn_knopp(identity(3), tolerance=0.0)

    def test_backend_equivalence(self):
        from repro.parallel import ThreadBackend

        g = sprand(500, 4.0, seed=4)
        serial = scale_sinkhorn_knopp(g, 5)
        with ThreadBackend(2) as be:
            threaded = scale_sinkhorn_knopp(g, 5, backend=be)
        np.testing.assert_allclose(serial.dr, threaded.dr)
        np.testing.assert_allclose(serial.dc, threaded.dc)

    def test_star_block_entries_decay(self):
        """Section 3.3: scaling drives non-matchable entries to zero."""
        from repro.graph.dm import dulmage_mendelsohn

        g = sprand(400, 2.0, seed=5)
        dm = dulmage_mendelsohn(g)
        if dm.matchable_edges.all():  # pragma: no cover - unlucky seed
            pytest.skip("no star block on this seed")
        few = scale_sinkhorn_knopp(g, 2)
        many = scale_sinkhorn_knopp(g, 60)
        star_few = g.scaled_values(few.dr, few.dc)[~dm.matchable_edges].mean()
        star_many = g.scaled_values(many.dr, many.dc)[~dm.matchable_edges].mean()
        assert star_many < star_few / 2

    def test_error_matches_table1_convention_for_zero_iters(self):
        """Table 1: with 0 iterations the error equals n - 1 (full block)."""
        g = full_ones(32)
        res = scale_sinkhorn_knopp(g, 0)
        assert res.error == pytest.approx(31.0)


class TestRuiz:
    def test_converges_on_total_support(self):
        g = union_of_permutations(100, 3, seed=0)
        res = scale_ruiz(g, tolerance=1e-6, max_iterations=5000)
        assert res.converged

    def test_slower_than_sinkhorn_knopp_unsymmetric(self):
        """Knight-Ruiz-Ucar: Ruiz converges more slowly on unsymmetric
        matrices; compare errors after the same iteration budget."""
        g = fully_indecomposable(200, 4.0, seed=1)
        sk = scale_sinkhorn_knopp(g, 10)
        rz = scale_ruiz(g, 10)
        assert sk.error <= rz.error

    def test_symmetric_factors_on_symmetric_input(self):
        g = grid_graph(8, 8)
        res = scale_ruiz(g, 20)
        np.testing.assert_allclose(res.dr, res.dc, rtol=1e-10)

    def test_mutually_exclusive_arguments(self):
        with pytest.raises(ScalingError):
            scale_ruiz(identity(3), 5, tolerance=1e-3)


class TestSymmetric:
    def test_requires_symmetric_pattern(self):
        g = sprand(50, 3.0, seed=0)
        if not is_pattern_symmetric(g):
            with pytest.raises(ScalingError):
                scale_symmetric(g, 5)

    def test_grid_is_symmetric(self):
        assert is_pattern_symmetric(grid_graph(5, 5))

    def test_returns_equal_vectors(self):
        g = grid_graph(6, 6)
        res = scale_symmetric(g, 10)
        np.testing.assert_array_equal(res.dr, res.dc)

    def test_converges_on_grid(self):
        g = grid_graph(8, 8)
        res = scale_symmetric(g, tolerance=1e-8, max_iterations=10000)
        assert res.converged
        sums = scaled_row_sums(g, res.dr, res.dc)
        np.testing.assert_allclose(sums, 1.0, atol=1e-7)

    def test_rectangular_rejected(self):
        from repro.graph import sprand_rect

        with pytest.raises(ScalingError):
            scale_symmetric(sprand_rect(4, 5, 2.0, seed=0), 3)


class TestConvergenceMeasures:
    def test_column_sums_formula(self):
        g = from_dense(np.array([[1, 1], [1, 0]]))
        dr = np.array([2.0, 3.0])
        dc = np.array([5.0, 7.0])
        # col0: (2+3)*5 = 25 ; col1: 2*7 = 14
        np.testing.assert_allclose(
            scaled_column_sums(g, dr, dc), [25.0, 14.0]
        )

    def test_row_sums_formula(self):
        g = from_dense(np.array([[1, 1], [1, 0]]))
        dr = np.array([2.0, 3.0])
        dc = np.array([5.0, 7.0])
        np.testing.assert_allclose(scaled_row_sums(g, dr, dc), [24.0, 15.0])

    def test_errors_ignore_empty_lines(self):
        a = np.array([[1, 0], [0, 0]])
        g = from_dense(a)
        assert column_sum_error(g, np.ones(2), np.ones(2)) == 0.0
        assert row_sum_error(g, np.ones(2), np.ones(2)) == 0.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_doubly_stochastic_limit_on_random_support(self, seed):
        """SK on any total-support matrix converges to doubly stochastic."""
        g = union_of_permutations(30, 2, np.random.default_rng(seed))
        res = scale_sinkhorn_knopp(g, tolerance=1e-9, max_iterations=20000)
        assert res.converged
