"""Tests for the BipartiteGraph container (repro.graph.csr)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphStructureError, ShapeError
from repro.graph import BipartiteGraph, from_dense, from_edges


def small_graph() -> BipartiteGraph:
    # 3x4 pattern:
    # [1 0 1 0]
    # [0 0 0 0]
    # [1 1 0 1]
    return BipartiteGraph(
        3, 4, np.array([0, 2, 2, 5]), np.array([0, 2, 0, 1, 3])
    )


@st.composite
def random_patterns(draw):
    nrows = draw(st.integers(0, 12))
    ncols = draw(st.integers(0, 12))
    cells = draw(
        st.lists(
            st.tuples(
                st.integers(0, max(0, nrows - 1)),
                st.integers(0, max(0, ncols - 1)),
            ),
            max_size=40,
        )
    ) if nrows and ncols else []
    return nrows, ncols, cells


class TestConstruction:
    def test_basic_attributes(self):
        g = small_graph()
        assert g.shape == (3, 4)
        assert g.nnz == 5
        assert not g.is_square
        assert list(g.row_degrees()) == [2, 0, 3]
        assert list(g.col_degrees()) == [2, 1, 1, 1]

    def test_csc_mirror_consistency(self):
        g = small_graph()
        assert list(g.col_neighbors(0)) == [0, 2]
        assert list(g.col_neighbors(1)) == [2]
        assert list(g.col_neighbors(2)) == [0]
        assert list(g.col_neighbors(3)) == [2]

    def test_arrays_are_read_only(self):
        g = small_graph()
        with pytest.raises(ValueError):
            g.col_ind[0] = 3
        with pytest.raises(ValueError):
            g.row_ptr[0] = 1

    def test_row_ptr_wrong_length(self):
        with pytest.raises(ShapeError):
            BipartiteGraph(3, 3, np.array([0, 1]), np.array([0]))

    def test_row_ptr_not_starting_at_zero(self):
        with pytest.raises(GraphStructureError):
            BipartiteGraph(1, 2, np.array([1, 2]), np.array([0, 1]))

    def test_row_ptr_nnz_mismatch(self):
        with pytest.raises(GraphStructureError):
            BipartiteGraph(1, 3, np.array([0, 2]), np.array([0]))

    def test_decreasing_row_ptr_rejected(self):
        with pytest.raises(GraphStructureError):
            BipartiteGraph(2, 3, np.array([0, 2, 1]), np.array([0, 1]))

    def test_column_out_of_range_rejected(self):
        with pytest.raises(GraphStructureError):
            BipartiteGraph(1, 2, np.array([0, 1]), np.array([5]))

    def test_duplicate_in_row_rejected(self):
        with pytest.raises(GraphStructureError):
            BipartiteGraph(1, 3, np.array([0, 2]), np.array([1, 1]))

    def test_unsorted_row_rejected(self):
        with pytest.raises(GraphStructureError):
            BipartiteGraph(1, 3, np.array([0, 2]), np.array([2, 0]))

    def test_float_indices_rejected(self):
        with pytest.raises(GraphStructureError):
            BipartiteGraph(1, 2, np.array([0.0, 1.0]), np.array([0]))

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ShapeError):
            BipartiteGraph(-1, 2, np.array([0]), np.array([], dtype=np.int64))

    def test_empty_graph(self):
        g = BipartiteGraph(0, 0, np.array([0]), np.array([], dtype=np.int64))
        assert g.nnz == 0
        assert g.shape == (0, 0)


class TestAccess:
    def test_has_edge(self):
        g = small_graph()
        assert g.has_edge(0, 0)
        assert g.has_edge(2, 3)
        assert not g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert not g.has_edge(-1, 0)
        assert not g.has_edge(0, 99)

    def test_iter_edges(self):
        g = small_graph()
        assert list(g.iter_edges()) == [
            (0, 0), (0, 2), (2, 0), (2, 1), (2, 3)
        ]

    def test_row_of_edge_cached_and_consistent(self):
        g = small_graph()
        roe = g.row_of_edge()
        assert roe is g.row_of_edge()  # cached
        assert list(roe) == [0, 0, 2, 2, 2]

    def test_to_dense(self):
        g = small_graph()
        expected = np.array(
            [[1, 0, 1, 0], [0, 0, 0, 0], [1, 1, 0, 1]], dtype=float
        )
        np.testing.assert_array_equal(g.to_dense(), expected)

    def test_to_scipy_round_trip(self):
        g = small_graph()
        sp = g.to_scipy()
        np.testing.assert_array_equal(sp.toarray(), g.to_dense())


class TestTranspose:
    def test_transpose_is_involution(self):
        g = small_graph()
        assert g.transpose().transpose() == g

    def test_transpose_dense_agrees(self):
        g = small_graph()
        np.testing.assert_array_equal(
            g.transpose().to_dense(), g.to_dense().T
        )

    def test_transpose_shares_arrays(self):
        g = small_graph()
        t = g.transpose()
        assert t.row_ptr is g.col_ptr
        assert t.col_ind is g.row_ind


class TestScaledValues:
    def test_values_match_outer_product(self):
        g = small_graph()
        dr = np.array([2.0, 3.0, 5.0])
        dc = np.array([1.0, 10.0, 100.0, 1000.0])
        vals = g.scaled_values(dr, dc)
        dense = g.to_dense() * np.outer(dr, dc)
        np.testing.assert_allclose(vals, dense[dense > 0])

    def test_shape_mismatch_rejected(self):
        g = small_graph()
        with pytest.raises(ShapeError):
            g.scaled_values(np.ones(2), np.ones(4))


class TestSubgraph:
    def test_subgraph_rows(self):
        g = small_graph()
        sub = g.subgraph_rows(np.array([2, 0]))
        assert sub.shape == (2, 4)
        assert list(sub.row_neighbors(0)) == [0, 1, 3]
        assert list(sub.row_neighbors(1)) == [0, 2]

    def test_subgraph_out_of_range(self):
        with pytest.raises(ShapeError):
            small_graph().subgraph_rows(np.array([5]))


class TestEquality:
    def test_equal_patterns(self):
        assert small_graph() == small_graph()

    def test_unequal_patterns(self):
        g = small_graph()
        h = from_dense(np.eye(3))
        assert g != h

    def test_hashable(self):
        assert isinstance(hash(small_graph()), int)


class TestPropertyBased:
    @given(random_patterns())
    @settings(max_examples=60, deadline=None)
    def test_dense_round_trip(self, pattern):
        nrows, ncols, cells = pattern
        dense = np.zeros((nrows, ncols))
        for i, j in cells:
            dense[i, j] = 1.0
        g = from_dense(dense)
        np.testing.assert_array_equal(g.to_dense(), dense)

    @given(random_patterns())
    @settings(max_examples=60, deadline=None)
    def test_csc_matches_transpose_of_csr(self, pattern):
        nrows, ncols, cells = pattern
        rows = [c[0] for c in cells]
        cols = [c[1] for c in cells]
        g = from_edges(nrows, ncols, rows, cols)
        # CSC arrays must describe exactly the transposed dense pattern.
        t = BipartiteGraph(ncols, nrows, g.col_ptr, g.row_ind)
        np.testing.assert_array_equal(t.to_dense(), g.to_dense().T)

    @given(random_patterns())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_nnz(self, pattern):
        nrows, ncols, cells = pattern
        rows = [c[0] for c in cells]
        cols = [c[1] for c in cells]
        g = from_edges(nrows, ncols, rows, cols)
        assert g.row_degrees().sum() == g.nnz
        assert g.col_degrees().sum() == g.nnz
