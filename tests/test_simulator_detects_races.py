"""Negative control: the concurrency simulator has teeth.

If the simulator certified *any* protocol, its green checkmarks on
Algorithm 4 would mean nothing.  This module runs a deliberately broken
variant of KarpSipserMT's Phase 1 — test-then-set instead of
compare-and-swap (the classic TOCTOU race) — and shows that adversarial
interleavings make it produce *invalid* matchings (a vertex matched to
two partners), while the correct CAS protocol never does.
"""

import numpy as np
import pytest

from repro.core.karp_sipser_mt import (
    _init_mark_deg,
    karp_sipser_mt_simulated,
    unify_choices,
)
from repro.matching.matching import NIL
from repro.parallel.atomics import AtomicArray
from repro.parallel.partition import static_partition
from repro.parallel.simthread import SimScheduler


def _racy_phase1_program(vertices, choice, mark, match: AtomicArray):
    """Phase 1 with the CAS replaced by separate load + store."""
    for u in vertices:
        u = int(u)
        if not mark[u] or choice[u] == NIL:
            continue
        nbr = int(choice[u])
        yield ("load", nbr)
        observed = match.load(nbr)           # test ...
        if observed == NIL:
            yield ("store", nbr)
            match.store(nbr, u)              # ... then set: racy!
            yield ("store", u)
            match.store(u, nbr)


def _is_consistent(match: np.ndarray) -> bool:
    """Every matched vertex's partner must point back at it."""
    for u in range(match.shape[0]):
        v = int(match[u])
        if v != NIL and int(match[v]) != u:
            return False
    return True


def _star_instance(n_leaves: int):
    """Many rows all choosing the same column: maximal CAS contention."""
    row_choice = np.zeros(n_leaves, dtype=np.int64)       # all -> col 0
    col_choice = np.full(1, NIL, dtype=np.int64)
    return row_choice, col_choice


def _run_racy(row_choice, col_choice, n_threads, seed):
    choice, nrows, ncols = unify_choices(row_choice, col_choice)
    n = nrows + ncols
    mark, _deg = _init_mark_deg(choice)
    match = AtomicArray(np.full(n, NIL, dtype=np.int64))
    programs = [
        _racy_phase1_program(
            np.arange(lo, hi, dtype=np.int64), choice, mark, match
        )
        for lo, hi in static_partition(n, n_threads)
    ]
    SimScheduler(programs, policy="adversarial", seed=seed).run()
    return match.values


class TestNegativeControl:
    def test_racy_protocol_breaks_under_some_schedule(self):
        """Adversarial schedules expose the TOCTOU bug."""
        rc, cc = _star_instance(8)
        broke = False
        for seed in range(50):
            result = _run_racy(rc, cc, n_threads=4, seed=seed)
            if not _is_consistent(result):
                broke = True
                break
        assert broke, (
            "the deliberately racy protocol survived 50 adversarial "
            "schedules — the simulator would not catch real races either"
        )

    def test_correct_protocol_never_breaks_same_schedules(self):
        """Algorithm 4's CAS version survives the identical stress."""
        rc, cc = _star_instance(8)
        for seed in range(50):
            m = karp_sipser_mt_simulated(
                rc, cc, 4, policy="adversarial", seed=seed
            )
            # A star can match exactly one leaf; validity is checked
            # inside (matching_from_unified raises on inconsistency).
            assert m.cardinality == 1

    def test_racy_protocol_ok_single_threaded(self):
        """The broken variant is fine without concurrency — the bug is
        a race, not a logic error (so only interleaving finds it)."""
        rc, cc = _star_instance(8)
        result = _run_racy(rc, cc, n_threads=1, seed=0)
        assert _is_consistent(result)
