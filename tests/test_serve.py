"""Serve-marked tests: the overload-safe matching service.

Run explicitly with ``pytest -m serve``; they also run in the default
sweep (they are fast — the slow overload soaks live in the CI
``serve-smoke`` job and ``python -m repro serve --soak``).
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro import telemetry
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ServerClosedError,
    ServiceError,
    WorkerCrashError,
)
from repro.graph.generators import union_of_permutations
from repro.serve import (
    RUNG_GUARANTEES,
    RUNGS,
    BreakerState,
    CircuitBreaker,
    MatchingServer,
    MatchRequest,
    MatchResponse,
    ServerConfig,
    SoakReport,
    rung_for_pressure,
    run_soak,
    serve_forever,
)
from repro.serve.admission import AdmissionQueue

pytestmark = pytest.mark.serve

N = 300


@pytest.fixture(scope="module")
def graph():
    return union_of_permutations(N, 3, seed=11)


def _config(**overrides) -> ServerConfig:
    base = dict(
        n_workers=1,
        max_queue=4,
        default_deadline=10.0,
        chunk_deadline=2.0,
        breaker_cooldown=0.05,
    )
    base.update(overrides)
    return ServerConfig(**base)


# -- happy path --------------------------------------------------------


def test_submit_returns_valid_matching_with_guarantee(graph):
    with MatchingServer(config=_config()) as server:
        response = server.submit(MatchRequest(graph, iterations=2, seed=3))
    assert response.rung == "two_sided"
    assert not response.degraded
    response.matching.validate(graph)
    assert 0.0 < response.guarantee <= RUNG_GUARANTEES["two_sided"] + 1e-9
    assert response.scaling_rung == "full"
    assert response.elapsed >= response.queue_wait >= 0.0


@pytest.mark.parametrize("method", RUNGS)
def test_explicit_method_served_on_that_rung(graph, method):
    with MatchingServer(config=_config()) as server:
        response = server.submit(
            MatchRequest(graph, iterations=1, seed=5, method=method)
        )
    assert response.rung == method
    assert not response.degraded
    response.matching.validate(graph)
    if method == "greedy":
        assert response.guarantee == RUNG_GUARANTEES["greedy"]
        assert response.scaling_rung is None


def test_request_validation():
    g = union_of_permutations(8, 2, seed=0)
    with pytest.raises(ServiceError):
        MatchRequest(g, method="fastest")
    with pytest.raises(ServiceError):
        MatchRequest(g, deadline=0.0)
    with pytest.raises(ServiceError):
        ServerConfig(max_queue=0)
    with pytest.raises(ServiceError):
        ServerConfig(pressure_high=0.9, pressure_critical=0.5)


# -- admission control -------------------------------------------------


def test_admission_queue_sheds_typed_when_full():
    q = AdmissionQueue(2)
    q.offer("a")
    q.offer("b")
    with pytest.raises(OverloadedError):
        q.offer("c")
    assert q.take(timeout=0.1) == "a"
    q.offer("c")
    assert q.drain_pending() == ["b", "c"]
    assert q.depth == 0


def test_server_sheds_overload_and_serves_accepted(graph):
    release = threading.Event()
    cfg = _config(max_queue=1, execute_hook=lambda req, rung: release.wait(5.0))
    with MatchingServer(config=cfg) as server:
        first = server.submit_async(MatchRequest(graph, iterations=1, seed=0))
        time.sleep(0.1)  # let the single worker pick `first` up
        queued = server.submit_async(MatchRequest(graph, iterations=1, seed=1))
        with pytest.raises(OverloadedError):
            server.submit(MatchRequest(graph, iterations=1, seed=2))
        release.set()
        assert first.result(10.0).matching is not None
        assert queued.result(10.0).matching is not None


# -- deadline budgets --------------------------------------------------


def test_budget_spent_queueing_is_a_typed_deadline_error(graph):
    release = threading.Event()
    cfg = _config(execute_hook=lambda req, rung: release.wait(5.0))
    with MatchingServer(config=cfg) as server:
        blocker = server.submit_async(MatchRequest(graph, iterations=1))
        time.sleep(0.1)
        doomed = server.submit_async(
            MatchRequest(graph, iterations=1, deadline=0.05)
        )
        time.sleep(0.2)  # its entire budget elapses in the queue
        release.set()
        blocker.result(10.0)
        with pytest.raises(DeadlineExceededError):
            doomed.result(10.0)


def test_budget_bounds_execution_and_ladder_falls_through(graph):
    def stall(req, rung):
        time.sleep(0.3)  # longer than the whole request budget

    cfg = _config(execute_hook=stall)
    with MatchingServer(config=cfg) as server:
        started = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            server.submit(
                MatchRequest(graph, iterations=1, deadline=0.2,
                             method="two_sided")
            )
        # the budget, not the per-rung stall count, bounds the request
        assert time.monotonic() - started < 2.0


# -- degradation ladder ------------------------------------------------


def test_rung_for_pressure_steps_down():
    cfg = ServerConfig()
    assert rung_for_pressure(0.0, 0, cfg) == "two_sided"
    assert rung_for_pressure(0.6, 0, cfg) == "one_sided"
    assert rung_for_pressure(0.9, 0, cfg) == "greedy"
    assert rung_for_pressure(0.0, cfg.miss_threshold, cfg) == "one_sided"
    assert rung_for_pressure(0.6, cfg.miss_threshold, cfg) == "greedy"
    # explicit method ignores pressure
    assert rung_for_pressure(1.0, 99, cfg, "two_sided") == "two_sided"


def test_substrate_failure_degrades_to_next_rung(graph):
    def crash_top(req, rung):
        if rung == "two_sided":
            raise WorkerCrashError("injected: two_sided substrate died")

    cfg = _config(execute_hook=crash_top)
    with MatchingServer(config=cfg) as server:
        response = server.submit(MatchRequest(graph, iterations=1, seed=9))
    assert response.rung == "one_sided"
    assert response.degraded
    response.matching.validate(graph)
    assert response.guarantee <= RUNG_GUARANTEES["one_sided"] + 1e-9


def test_all_rungs_failing_raises_last_typed_error(graph):
    def crash_all(req, rung):
        raise WorkerCrashError(f"injected: {rung} died")

    cfg = _config(execute_hook=crash_all)
    with MatchingServer(config=cfg) as server:
        with pytest.raises(WorkerCrashError):
            server.submit(MatchRequest(graph, iterations=1))


# -- circuit breaker ---------------------------------------------------


def test_breaker_unit_transitions_with_fake_clock():
    now = [0.0]
    breaker = CircuitBreaker(
        threshold=2, cooldown=1.0, probes=1, clock=lambda: now[0]
    )
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()  # trips
    assert breaker.state is BreakerState.OPEN
    with pytest.raises(CircuitOpenError):
        breaker.admit()
    now[0] = 1.5  # cooldown elapsed -> half-open
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.admit() is True  # the probe
    with pytest.raises(CircuitOpenError):
        breaker.admit()  # only one probe slot
    breaker.record_failure(probe=True)  # probe failed -> re-open
    assert breaker.state is BreakerState.OPEN
    now[0] = 3.0
    assert breaker.admit() is True
    breaker.record_success(probe=True)  # probe succeeded -> closed
    assert breaker.state is BreakerState.CLOSED
    assert breaker.admit() is False


def test_breaker_opens_on_consecutive_failures_and_recovers(graph):
    failing = [True]

    def maybe_crash(req, rung):
        if failing[0]:
            raise WorkerCrashError("injected substrate failure")

    cfg = _config(
        breaker_threshold=2, breaker_cooldown=0.05, execute_hook=maybe_crash
    )
    with MatchingServer(config=cfg) as server:
        # every rung of each request fails -> breaker counts them
        for _ in range(2):
            with pytest.raises(WorkerCrashError):
                server.submit(MatchRequest(graph, iterations=1))
        with pytest.raises(CircuitOpenError):
            server.submit(MatchRequest(graph, iterations=1))
        assert server.health()["breaker"] == "open"
        assert not server.ready()
        failing[0] = False
        time.sleep(0.1)  # cooldown -> half-open, next submit is the probe
        response = server.submit(MatchRequest(graph, iterations=1))
        response.matching.validate(graph)
        assert server.health()["breaker"] == "closed"
        assert server.ready()


def test_shed_probe_releases_its_slot(graph):
    release = threading.Event()
    cfg = _config(
        max_queue=1, breaker_threshold=1, breaker_cooldown=0.05,
        execute_hook=lambda req, rung: release.wait(5.0),
    )
    server = MatchingServer(config=cfg)
    try:
        blocker = server.submit_async(MatchRequest(graph, iterations=1))
        time.sleep(0.1)
        queued = server.submit_async(MatchRequest(graph, iterations=1))
        server._breaker.record_failure()  # trip (threshold=1)
        time.sleep(0.1)  # half-open
        # probe admitted but shed by the full queue -> slot released
        with pytest.raises(OverloadedError):
            server.submit(MatchRequest(graph, iterations=1))
        assert server._breaker._probes_out == 0
        release.set()
        blocker.result(10.0)
        queued.result(10.0)
    finally:
        release.set()
        server.drain(timeout=10.0)


# -- drain / shutdown --------------------------------------------------


def test_drain_completes_queued_work_then_rejects(graph):
    server = MatchingServer(config=_config())
    tickets = [
        server.submit_async(MatchRequest(graph, iterations=1, seed=i))
        for i in range(3)
    ]
    assert server.drain(timeout=30.0) is True
    for ticket in tickets:
        ticket.result(1.0).matching.validate(graph)
    with pytest.raises(ServerClosedError):
        server.submit(MatchRequest(graph, iterations=1))
    assert server.health()["status"] == "stopped"
    assert server.drain() is True  # idempotent


def test_drain_timeout_sheds_queued_typed(graph):
    release = threading.Event()
    cfg = _config(max_queue=4, execute_hook=lambda req, rung: release.wait(5.0))
    server = MatchingServer(config=cfg)
    try:
        blocker = server.submit_async(MatchRequest(graph, iterations=1))
        time.sleep(0.1)
        queued = [
            server.submit_async(MatchRequest(graph, iterations=1))
            for _ in range(2)
        ]
        drained = threading.Thread(
            target=server.drain, kwargs={"timeout": 0.2}
        )
        drained.start()
        time.sleep(0.3)
        release.set()  # let the in-flight blocker finish
        drained.join(timeout=10.0)
        assert not drained.is_alive()
        blocker.result(10.0)  # in-flight work was completed, not dropped
        for ticket in queued:  # queued work was shed, typed
            with pytest.raises(ServerClosedError):
                ticket.result(1.0)
    finally:
        release.set()
        server.drain(timeout=10.0)


# -- probes + telemetry ------------------------------------------------


def test_health_and_ready_shape(graph):
    with MatchingServer(config=_config()) as server:
        health = server.health()
        assert health["status"] == "ok"
        assert health["ready"] and server.ready()
        assert health["queue_capacity"] == 4
        assert health["breaker"] == "closed"
        assert health["rung_floor"] == "two_sided"
    assert not server.ready()
    assert server.health()["status"] == "stopped"


def test_serve_telemetry_counters(graph):
    with telemetry.session() as registry:
        with MatchingServer(config=_config()) as server:
            server.submit(MatchRequest(graph, iterations=1, seed=2))
        full = AdmissionQueue(1)
        full.offer("x")
        with pytest.raises(OverloadedError):
            full.offer("y")
        snap = registry.snapshot()
    assert snap["serve.submitted"]["value"] == 1
    assert snap["serve.accepted"]["value"] == 1
    assert snap["serve.completed"]["value"] == 1
    assert snap["serve.rung.two_sided"]["value"] == 1
    assert snap["serve.shed.overloaded"]["value"] == 1
    assert "serve.latency.two_sided" in snap


# -- soak harness ------------------------------------------------------


def test_soak_healthy_contract(graph):
    report = run_soak(
        12, n=N, degree=3, iterations=1, deadline=5.0, overload=2.0,
        seed=4,
    )
    assert report.passed, report.render()
    assert report.completed + report.shed == 12
    assert "contract held" in report.render()


def test_soak_report_percentiles():
    report = SoakReport(
        requests=4, clients=2, overload=2.0, deadline=1.0, elapsed=2.0
    )
    report.latencies = [0.1, 0.2, 0.3, 0.4]
    report.outcomes["ok:two_sided"] = 4
    assert report.percentile(0.5) == 0.3
    assert report.percentile(0.99) == 0.4
    assert report.throughput == 2.0
    assert report.passed


# -- daemon ------------------------------------------------------------


def test_daemon_json_lines_round_trip():
    requests = [
        {"id": 1, "op": "health"},
        {
            "id": 2,
            "op": "match",
            "graph": {"kind": "union", "n": 60, "k": 3, "seed": 0},
            "iterations": 2,
            "seed": 5,
        },
        {"id": 3, "op": "match", "graph": {"bogus": True}},
        {"id": 4, "op": "nope"},
        {"id": 5, "op": "shutdown"},
    ]
    stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    stdout = io.StringIO()
    code = serve_forever(stdin=stdin, stdout=stdout)
    assert code == 0
    replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
    by_id = {reply["id"]: reply for reply in replies}
    assert by_id[1]["ok"] and by_id[1]["status"] == "ok"
    assert by_id[2]["ok"] and by_id[2]["rung"] in RUNGS
    assert by_id[2]["cardinality"] == len(
        [c for c in by_id[2]["row_match"] if c >= 0]
    )
    assert not by_id[3]["ok"] and by_id[3]["error"] == "ServiceError"
    assert not by_id[4]["ok"] and "unknown op" in by_id[4]["message"]
    assert by_id[5]["ok"] and by_id[5]["status"] == "draining"


def test_daemon_rejects_malformed_lines():
    stdin = io.StringIO("this is not json\n")
    stdout = io.StringIO()
    assert serve_forever(stdin=stdin, stdout=stdout) == 0
    reply = json.loads(stdout.getvalue().splitlines()[0])
    assert not reply["ok"]
    assert reply["error"] == "ServiceError"


# -- exact rung --------------------------------------------------------


def test_exact_rung_returns_maximum_with_guarantee_one(graph):
    from repro.matching import hopcroft_karp

    with MatchingServer(config=_config(default_deadline=30.0)) as server:
        response = server.submit(
            MatchRequest(graph, iterations=1, seed=7, method="exact")
        )
    assert response.rung == "exact"
    assert not response.degraded
    assert response.guarantee == 1.0
    response.matching.validate(graph)
    assert response.cardinality == hopcroft_karp(graph).cardinality


def test_exact_sheds_to_two_sided_when_budget_below_floor(graph):
    """An explicit exact request whose remaining budget is under
    ``exact_min_budget`` must be served degraded on two_sided, not risk
    blowing the deadline inside the auction."""
    with telemetry.session() as registry:
        with MatchingServer(config=_config(default_deadline=10.0)) as server:
            response = server.submit(
                MatchRequest(
                    graph, iterations=1, seed=7, method="exact",
                    deadline=2.0,
                )
            )
        snap = registry.snapshot()
    assert response.rung == "two_sided"
    assert response.degraded
    assert response.guarantee == RUNG_GUARANTEES["two_sided"]
    response.matching.validate(graph)
    assert snap["serve.exact.shed"]["value"] == 1


def test_exact_shed_floor_configurable(graph):
    # With the floor at zero the same tiny budget reaches the exact rung.
    with MatchingServer(
        config=_config(default_deadline=10.0, exact_min_budget=0.0)
    ) as server:
        response = server.submit(
            MatchRequest(graph, iterations=1, seed=7, method="exact",
                         deadline=2.0)
        )
    assert response.rung == "exact"
    assert not response.degraded


def test_auto_ladder_never_enters_exact(graph):
    # The exact rung is opt-in: auto tops out at two_sided regardless of
    # how much budget is available.
    assert rung_for_pressure(0.0, 0, _config()) == "two_sided"
    with MatchingServer(config=_config(default_deadline=60.0)) as server:
        response = server.submit(MatchRequest(graph, iterations=1, seed=7))
    assert response.rung == "two_sided"
    assert not response.degraded


def test_daemon_exact_method_end_to_end():
    requests = [
        {
            "id": 1,
            "op": "match",
            "graph": {"kind": "union", "n": 60, "k": 3, "seed": 0},
            "iterations": 1,
            "seed": 5,
            "method": "exact",
            "deadline": 30.0,
        },
        {
            "id": 2,
            "op": "match",
            "graph": {"kind": "union", "n": 60, "k": 3, "seed": 0},
            "iterations": 1,
            "seed": 5,
            "method": "exact",
            "deadline": 1.0,
        },
        {"id": 3, "op": "shutdown"},
    ]
    stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    stdout = io.StringIO()
    assert serve_forever(stdin=stdin, stdout=stdout) == 0
    replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
    by_id = {reply["id"]: reply for reply in replies}
    assert by_id[1]["ok"]
    assert by_id[1]["rung"] == "exact"
    assert by_id[1]["guarantee"] == 1.0
    assert not by_id[1]["degraded"]
    # n=60, k=3 unions of permutations have a perfect matching.
    assert by_id[1]["cardinality"] == 60
    # Deadline below the exact floor: served degraded on two_sided.
    assert by_id[2]["ok"]
    assert by_id[2]["rung"] == "two_sided"
    assert by_id[2]["degraded"]


def test_daemon_stream_exact_repair_end_to_end():
    requests = [
        {
            "id": 1,
            "op": "stream_open",
            "graph": {"kind": "union", "n": 50, "k": 2, "seed": 3},
            "target_quality": 0.55,
            "seed": 9,
            "exact": True,
        },
        {
            # Add a fresh diagonal band so the epoch advances; removals
            # would need exact edge coordinates, adds don't.
            "id": 2,
            "op": "update",
            "handle": "s1",
            "add": {"rows": list(range(10)), "cols": list(range(10))},
        },
        {
            "id": 3,
            "op": "rematch",
            "handle": "s1",
            "include_matching": True,
        },
        {"id": 4, "op": "stream_close", "handle": "s1"},
        {"id": 5, "op": "shutdown"},
    ]
    stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    stdout = io.StringIO()
    assert serve_forever(stdin=stdin, stdout=stdout) == 0
    replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
    by_id = {reply["id"]: reply for reply in replies}
    assert by_id[1]["ok"] and by_id[1]["handle"] == "s1"
    assert by_id[2]["ok"]
    rematch = by_id[3]
    assert rematch["ok"]
    # exact=True streams certify guarantee 1.0 and report the auction's
    # top-up over the repaired heuristic matching.
    assert rematch["guarantee"] == 1.0
    assert "exact_gain" in rematch and rematch["exact_gain"] >= 0
    matched = [c for c in rematch["row_match"] if c >= 0]
    assert rematch["cardinality"] == len(matched)
    assert by_id[4]["ok"] and by_id[4]["closed"]
