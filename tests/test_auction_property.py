"""Property-based tests for the ε-scaling auction engine.

Three invariants, each checked over Hypothesis-generated graphs and
ε-schedules:

* **ε-complementary slackness** — every matched row holds a column whose
  final price is within ``eps_start`` of the cheapest price in the row's
  neighborhood.  This is the invariant that makes the abandonment
  certificates sound, so it must hold for the *returned* prices, not
  just transiently during bidding.
* **Termination** — the auction halts under any valid ε-schedule
  (including degenerate single-phase and steeply-decaying ones) and
  always reports the maximum cardinality.
* **Monotone trace** — ``cardinality_trace`` never decreases: columns
  never unmatch, a displaced row's column is re-matched within the same
  commit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_dense
from repro.matching import auction_match, hopcroft_karp
from repro.matching.matching import NIL

pytestmark = pytest.mark.exact


@st.composite
def random_graphs(draw):
    nrows = draw(st.integers(1, 18))
    ncols = draw(st.integers(1, 18))
    density = draw(st.floats(0.05, 0.7))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    dense = (rng.random((nrows, ncols)) < density).astype(int)
    return from_dense(dense)


@st.composite
def eps_schedules(draw):
    eps_start = draw(st.floats(0.1, 4.0))
    # eps_min in (0, eps_start]: 1 → single phase, small → many phases.
    divisor = draw(st.sampled_from([1.0, 2.0, 5.0, 16.0, 64.0]))
    eps_factor = draw(st.sampled_from([2.0, 4.0, 10.0]))
    return eps_start, eps_start / divisor, eps_factor


def _assert_eps_cs(graph, result, eps_start):
    """Matched (i, j): p[j] ≤ min_{k ∈ N(i)} p[k] + eps_start."""
    p = result.prices
    rm = result.matching.row_match
    ptr, ind = graph.row_ptr, graph.col_ind
    for i in range(graph.nrows):
        j = rm[i]
        if j == NIL:
            continue
        neigh = ind[ptr[i]:ptr[i + 1]]
        assert p[j] <= p[neigh].min() + eps_start * (1 + 1e-9), (
            i,
            j,
            p[j],
            p[neigh].min(),
        )


@given(random_graphs(), eps_schedules())
@settings(max_examples=120, deadline=None)
def test_eps_cs_holds_for_final_prices(g, sched):
    eps_start, eps_min, eps_factor = sched
    res = auction_match(
        g, eps_start=eps_start, eps_min=eps_min, eps_factor=eps_factor,
        seed=0,
    )
    res.matching.validate(g)
    _assert_eps_cs(g, res, eps_start)


@given(random_graphs(), eps_schedules(), st.integers(0, 3))
@settings(max_examples=120, deadline=None)
def test_terminates_at_maximum_under_any_schedule(g, sched, seed):
    eps_start, eps_min, eps_factor = sched
    res = auction_match(
        g, eps_start=eps_start, eps_min=eps_min, eps_factor=eps_factor,
        seed=seed,
    )
    res.matching.validate(g)
    assert res.cardinality == hopcroft_karp(g).cardinality
    assert res.phases >= 1
    assert res.eps_final <= eps_start * (1 + 1e-12)


@given(random_graphs(), st.integers(0, 3))
@settings(max_examples=120, deadline=None)
def test_cardinality_trace_monotone_nondecreasing(g, seed):
    res = auction_match(g, seed=seed)
    trace = res.cardinality_trace
    assert all(a <= b for a, b in zip(trace, trace[1:])), trace
    if trace:
        assert trace[-1] == res.cardinality


@given(random_graphs(), eps_schedules())
@settings(max_examples=60, deadline=None)
def test_warm_start_preserves_all_properties(g, sched):
    """Warm-starting from a cold run's own output (matching + prices)
    keeps termination, optimality, ε-CS, and trace monotonicity."""
    eps_start, eps_min, eps_factor = sched
    cold = auction_match(
        g, eps_start=eps_start, eps_min=eps_min, eps_factor=eps_factor,
        seed=1,
    )
    warm = auction_match(
        g, initial=cold, prices=cold.prices,
        eps_start=eps_start, eps_min=eps_min, eps_factor=eps_factor,
        seed=1,
    )
    warm.matching.validate(g)
    assert warm.warm_started
    assert warm.cardinality == cold.cardinality
    _assert_eps_cs(g, warm, eps_start)
    trace = warm.cardinality_trace
    assert all(a <= b for a, b in zip(trace, trace[1:])), trace


def test_prices_reusable_across_epochs_stay_bounded():
    """Feeding prices back in for many epochs must not let them grow
    without bound (the clip against the abandonment cap)."""
    rng = np.random.default_rng(7)
    dense = (rng.random((30, 28)) < 0.15).astype(int)
    g = from_dense(dense)
    cap = min(g.nrows, g.ncols) * 1.0  # eps_start = 1.0 default
    res = auction_match(g, seed=0)
    for epoch in range(6):
        res = auction_match(g, initial=res, prices=res.prices, seed=epoch)
        res.matching.validate(g)
        assert res.prices.max() <= cap + 1.0 + 1e-9
        assert res.cardinality == hopcroft_karp(g).cardinality
