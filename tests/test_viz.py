"""Tests for the terminal visualisation helpers (repro.graph.viz)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.graph import from_dense, identity
from repro.graph.viz import choice_diagram, spy
from repro.matching import Matching, hopcroft_karp
from repro.matching.matching import NIL


class TestSpy:
    def test_pattern_characters(self):
        g = from_dense(np.array([[1, 0], [0, 1]]))
        out = spy(g)
        lines = out.splitlines()
        assert lines[1].endswith("*.")
        assert lines[2].endswith(".*")

    def test_matching_highlighted(self):
        g = identity(3)
        m = hopcroft_karp(g)
        out = spy(g, m)
        assert "@" in out and "*" not in out  # every edge matched

    def test_partial_matching_mixed(self):
        g = from_dense(np.ones((2, 2)))
        m = Matching.from_row_match([0, NIL], 2)
        out = spy(g, m)
        assert "@" in out and "*" in out

    def test_size_limit(self):
        from repro.graph import sprand

        with pytest.raises(ShapeError):
            spy(sprand(500, 2.0, seed=0))

    def test_column_header_present(self):
        out = spy(identity(12))
        assert out.splitlines()[0].strip().startswith("01234567891011"[:10])


class TestChoiceDiagram:
    def test_simple_pair(self):
        out = choice_diagram(np.array([0]), np.array([0]))
        assert "r0 -> c0" in out
        assert "c0 -> r0" in out

    def test_nil_choices_skipped(self):
        out = choice_diagram(
            np.array([NIL], dtype=np.int64), np.array([NIL], dtype=np.int64)
        )
        assert out == "(no non-trivial components)"

    def test_components_grouped(self):
        rc = np.array([0, 1], dtype=np.int64)
        cc = np.array([0, 1], dtype=np.int64)
        out = choice_diagram(rc, cc)
        assert out.count("component") == 2

    def test_size_limit(self):
        big = np.zeros(1000, dtype=np.int64)
        with pytest.raises(ShapeError):
            choice_diagram(big, big)
