"""Tests for graph constructors (repro.graph.build)."""

import numpy as np
import pytest

from repro.errors import GraphStructureError, ShapeError
from repro.graph import (
    empty,
    from_adjacency_lists,
    from_dense,
    from_edges,
    from_scipy,
    identity,
)


class TestFromEdges:
    def test_basic(self):
        g = from_edges(2, 3, [0, 1, 1], [2, 0, 1])
        assert g.nnz == 3
        assert list(g.row_neighbors(0)) == [2]
        assert list(g.row_neighbors(1)) == [0, 1]

    def test_unsorted_input_is_sorted(self):
        g = from_edges(2, 3, [1, 0, 1], [1, 2, 0])
        assert list(g.row_neighbors(1)) == [0, 1]

    def test_duplicates_merged_by_default(self):
        g = from_edges(1, 2, [0, 0, 0], [1, 1, 0])
        assert g.nnz == 2

    def test_duplicates_rejected_when_asked(self):
        with pytest.raises(GraphStructureError):
            from_edges(1, 2, [0, 0], [1, 1], dedup=False)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphStructureError):
            from_edges(2, 2, [2], [0])
        with pytest.raises(GraphStructureError):
            from_edges(2, 2, [0], [-1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            from_edges(2, 2, [0, 1], [0])

    def test_no_edges(self):
        g = from_edges(3, 3, [], [])
        assert g.nnz == 0
        assert g.shape == (3, 3)


class TestFromDense:
    def test_nonzero_pattern(self):
        a = np.array([[0.0, 2.5], [-1.0, 0.0]])
        g = from_dense(a)
        assert list(g.iter_edges()) == [(0, 1), (1, 0)]

    def test_non_2d_rejected(self):
        with pytest.raises(ShapeError):
            from_dense(np.zeros(3))


class TestFromScipy:
    def test_round_trip_csr(self):
        from scipy.sparse import random as sprandom

        mat = sprandom(10, 8, density=0.3, random_state=0, format="csr")
        g = from_scipy(mat)
        np.testing.assert_array_equal(
            g.to_dense() > 0, mat.toarray() != 0
        )

    def test_coo_and_csc_accepted(self):
        from scipy.sparse import coo_matrix

        mat = coo_matrix(np.eye(4))
        assert from_scipy(mat).nnz == 4
        assert from_scipy(mat.tocsc()).nnz == 4

    def test_dense_rejected(self):
        with pytest.raises(ShapeError):
            from_scipy(np.eye(3))


class TestFromAdjacencyLists:
    def test_basic(self):
        g = from_adjacency_lists(3, 4, [[1, 3], [], [0]])
        assert list(g.row_neighbors(0)) == [1, 3]
        assert list(g.row_neighbors(1)) == []
        assert list(g.row_neighbors(2)) == [0]

    def test_dedup_and_sort(self):
        g = from_adjacency_lists(1, 5, [[4, 1, 4, 0]])
        assert list(g.row_neighbors(0)) == [0, 1, 4]

    def test_row_count_mismatch(self):
        with pytest.raises(ShapeError):
            from_adjacency_lists(2, 2, [[0]])


class TestSpecialGraphs:
    def test_empty(self):
        g = empty(4, 5)
        assert g.nnz == 0
        assert g.shape == (4, 5)

    def test_identity(self):
        g = identity(5)
        np.testing.assert_array_equal(g.to_dense(), np.eye(5))
