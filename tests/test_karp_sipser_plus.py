"""Tests for Karp-Sipser with the degree-2 contraction rule (KS+)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    banded,
    from_dense,
    from_edges,
    identity,
    karp_sipser_adversarial,
    sprand,
    sprand_rect,
)
from repro.matching import hopcroft_karp, karp_sipser
from repro.matching.heuristics.karp_sipser_plus import (
    KarpSipserPlusStats,
    karp_sipser_plus,
)


@st.composite
def random_graphs(draw):
    nrows = draw(st.integers(1, 15))
    ncols = draw(st.integers(1, 15))
    density = draw(st.floats(0.05, 0.7))
    seed = draw(st.integers(0, 100_000))
    rng = np.random.default_rng(seed)
    return from_dense((rng.random((nrows, ncols)) < density).astype(int))


class TestValidity:
    @given(random_graphs())
    @settings(max_examples=120, deadline=None)
    def test_always_valid(self, g):
        m = karp_sipser_plus(g, seed=0)
        m.validate(g)

    def test_identity(self):
        assert karp_sipser_plus(identity(10), seed=0).is_perfect()

    def test_rectangular(self):
        g = sprand_rect(60, 90, 2.5, seed=0)
        karp_sipser_plus(g, seed=1).validate(g)

    def test_empty_graph(self):
        from repro.graph import empty

        m = karp_sipser_plus(empty(4, 4), seed=0)
        assert m.cardinality == 0

    def test_deterministic(self):
        g = sprand(200, 3.0, seed=0)
        a = karp_sipser_plus(g, seed=5)
        b = karp_sipser_plus(g, seed=5)
        np.testing.assert_array_equal(a.row_match, b.row_match)


class TestDegree2Rule:
    def test_tridiagonal_exact_without_random_picks(self):
        """Classic KS needs random picks on tridiagonal matrices (no
        degree-1 seed); KS+ peels it deterministically via degree-2
        contractions."""
        g = banded(200, 1)
        m, stats = karp_sipser_plus(g, seed=0, with_stats=True)
        opt = hopcroft_karp(g).cardinality
        assert m.cardinality == opt
        assert stats.random_picks == 0
        assert stats.degree2_contractions > 0

    def test_cycle_exact(self):
        # Bipartite 2k-cycle: every vertex degree 2 -> pure contraction.
        k = 20
        rows = np.concatenate([np.arange(k), np.arange(k)])
        cols = np.concatenate([np.arange(k), (np.arange(k) + 1) % k])
        g = from_edges(k, k, rows, cols)
        m = karp_sipser_plus(g, seed=0)
        assert m.cardinality == hopcroft_karp(g).cardinality == k

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_at_least_half(self, g):
        m = karp_sipser_plus(g, seed=1)
        assert 2 * m.cardinality >= hopcroft_karp(g).cardinality

    def test_stats_structure(self):
        g = sprand(300, 3.0, seed=2)
        m, stats = karp_sipser_plus(g, seed=0, with_stats=True)
        assert isinstance(stats, KarpSipserPlusStats)
        assert stats.degree1_matches >= 0
        assert stats.random_picks >= 0


class TestQualityVsClassicKS:
    def test_near_exact_on_sparse_random(self):
        """Both rules together: essentially no loss on ER d=3."""
        g = sprand(2000, 3.0, seed=0)
        opt = hopcroft_karp(g).cardinality
        plus = karp_sipser_plus(g, seed=1).cardinality
        assert plus >= opt - 2

    def test_dominates_classic_on_average(self):
        """KS+ ≥ KS in expectation (both optimal-rule supersets)."""
        g = sprand(1500, 4.0, seed=3)
        classic = np.mean(
            [karp_sipser(g, seed=s).cardinality for s in range(5)]
        )
        plus = np.mean(
            [karp_sipser_plus(g, seed=s).cardinality for s in range(5)]
        )
        assert plus >= classic

    def test_improves_on_adversarial_family(self):
        """The Figure-2 trap: k=2 keeps some degree-<=2 structure that
        KS+ exploits better than classic KS."""
        n = 400
        g = karp_sipser_adversarial(n, 2)
        classic = min(
            karp_sipser(g, seed=s).cardinality / n for s in range(5)
        )
        plus = min(
            karp_sipser_plus(g, seed=s).cardinality / n for s in range(5)
        )
        assert plus >= classic - 0.02  # never meaningfully worse
