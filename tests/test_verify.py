"""Tests for the shape-verification harness (repro.experiments.verify)."""

import pytest

from repro.experiments.verify import CHECKS, run_verification


class TestChecklist:
    def test_all_checks_named_and_referenced(self):
        names = [c.name for c in CHECKS]
        assert len(names) == len(set(names))
        for c in CHECKS:
            assert c.paper_ref

    def test_individual_fast_checks_pass(self):
        fast = {
            "two-sided-dominates",
            "ksmt-exactness",
            "schedule-independence",
            "scaling-error-drops",
        }
        for check in CHECKS:
            if check.name in fast:
                assert check.fn(0), check.name

    def test_run_verification_end_to_end(self):
        passed, total, lines = run_verification(seed=0)
        assert total == len(CHECKS)
        assert passed == total, "\n".join(lines)
        assert all(line.startswith("[PASS]") for line in lines)

    def test_cli_verify(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "shape checks passed" in out
