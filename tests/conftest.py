"""Shared test configuration.

Registers hypothesis profiles: the default keeps deadlines off (the
first execution of a numpy-heavy path can blow a per-example deadline
spuriously) and a ``thorough`` profile for overnight runs
(``pytest --hypothesis-profile=thorough``).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    deadline=None,
    max_examples=1000,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")
