"""Property-based invariant sweep over every matching engine.

For arbitrary seeded random bipartite graphs, every engine — the paper's
heuristics, the baseline heuristics, and the exact solvers — must return
a matching that

* matches no vertex twice and stays row/col consistent,
* uses only edges present in the graph,
* has cardinality at most the structural rank,

and the exact solvers must all *attain* the structural rank.  The graph
strategy covers square/rectangular shapes, varying densities, and (via
low densities) empty rows and columns.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import one_sided_match, two_sided_match
from repro.graph.generators import sprand_rect
from repro.matching import (
    hopcroft_karp,
    karp_sipser,
    karp_sipser_plus,
    karp_sipser_relaxed,
    mc21,
    push_relabel,
    sprank,
)
from repro.matching.heuristics.greedy import greedy_edge_matching
from repro.matching.matching import NIL, Matching

HEURISTICS = {
    "one_sided": lambda g, seed: one_sided_match(g, 3, seed=seed).matching,
    "two_sided": lambda g, seed: two_sided_match(g, 3, seed=seed).matching,
    "two_sided_vectorized": lambda g, seed: two_sided_match(
        g, 3, seed=seed, engine="vectorized"
    ).matching,
    "karp_sipser": lambda g, seed: karp_sipser(g, seed=seed),
    "karp_sipser_plus": lambda g, seed: karp_sipser_plus(g, seed=seed),
    "karp_sipser_relaxed": lambda g, seed: karp_sipser_relaxed(
        g, 2, seed=seed
    ),
    "greedy": lambda g, seed: greedy_edge_matching(g, seed=seed),
}

EXACT = {
    "hopcroft_karp": hopcroft_karp,
    "mc21": mc21,
    "push_relabel": push_relabel,
}


@st.composite
def graphs(draw):
    nrows = draw(st.integers(min_value=1, max_value=60))
    ncols = draw(st.integers(min_value=1, max_value=60))
    degree = draw(st.floats(min_value=0.0, max_value=4.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return sprand_rect(nrows, ncols, degree, seed=seed)


def assert_valid_matching(matching: Matching, graph) -> None:
    """Structural invariants every engine's output must satisfy."""
    matching.validate(graph)  # consistency + edges-exist-in-A
    rm, cm = matching.row_match, matching.col_match
    assert rm.shape == (graph.nrows,)
    assert cm.shape == (graph.ncols,)
    matched_cols = rm[rm != NIL]
    matched_rows = cm[cm != NIL]
    # no vertex matched twice
    assert len(set(matched_cols.tolist())) == matched_cols.size
    assert len(set(matched_rows.tolist())) == matched_rows.size
    assert matched_cols.size == matched_rows.size == matching.cardinality


@pytest.mark.parametrize("name", sorted(HEURISTICS))
@given(graph=graphs(), seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25)
def test_heuristic_invariants(name, graph, seed):
    matching = HEURISTICS[name](graph, seed)
    assert_valid_matching(matching, graph)
    assert matching.cardinality <= sprank(graph)


@pytest.mark.parametrize("name", sorted(EXACT))
@given(graph=graphs())
@settings(max_examples=25)
def test_exact_solvers_attain_sprank(name, graph):
    matching = EXACT[name](graph)
    assert_valid_matching(matching, graph)
    assert matching.cardinality == sprank(graph)


@given(graph=graphs(), seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15)
def test_heuristics_never_beat_exact(graph, seed):
    maximum = hopcroft_karp(graph).cardinality
    for fn in HEURISTICS.values():
        assert fn(graph, seed).cardinality <= maximum


def test_empty_graph_all_engines():
    g = sprand_rect(5, 7, 0.0, seed=0)
    assert g.nnz == 0
    for fn in HEURISTICS.values():
        matching = fn(g, 0)
        assert_valid_matching(matching, g)
        assert matching.cardinality == 0
    for fn in EXACT.values():
        assert fn(g).cardinality == 0
