"""Tests for the experiment harness (repro.experiments)."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.common import Table, fmt, timeit


class TestTable:
    def test_render_contains_headers_and_rows(self):
        t = Table("demo", ["a", "b"])
        t.add_row([1, 0.5])
        text = t.render()
        assert "demo" in text and "a" in text and "0.500" in text

    def test_row_width_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_to_records(self):
        t = Table("demo", ["x", "y"])
        t.add_row([1, 2])
        assert t.to_records() == [{"x": 1, "y": 2}]

    def test_notes_rendered(self):
        t = Table("demo", ["a"])
        t.add_row([1])
        t.note("hello")
        assert "hello" in t.render()

    def test_fmt_variants(self):
        assert fmt(0.5) == "0.500"
        assert fmt(123456) == "123,456"
        assert fmt(float("nan")) == "-"
        assert fmt(1e-9) == "1.000e-09"
        assert fmt("x") == "x"
        assert fmt(True) == "True"

    def test_timeit(self):
        dt, val = timeit(lambda: 42, repeats=2)
        assert val == 42 and dt >= 0


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "table1", "table2", "table3", "fig3", "fig4", "fig5",
            "collection", "rectangular", "conjecture", "undirected",
            "convergence",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("table99")

    def test_every_experiment_has_paper_ref(self):
        for exp in EXPERIMENTS.values():
            assert exp.paper_ref
            assert exp.description


class TestSmallRuns:
    """Run each experiment at tiny sizes: smoke + shape assertions."""

    def test_table1_shape(self):
        from repro.experiments.table1 import run_table1

        t = run_table1(n=200, ks=(2, 8), iteration_counts=(0, 5), runs=2)
        assert len(t.rows) == 2
        rec = t.to_records()
        # Scaling reduces the error and improves quality.
        assert rec[0]["err(5)"] < rec[0]["err(0)"]
        assert rec[0]["qual(5)"] > rec[0]["qual(0)"]

    def test_table2_shape(self):
        from repro.experiments.table2 import run_table2

        t = run_table2(n=1000, ds=(2, 5), iteration_counts=(0, 5), runs=2)
        assert len(t.rows) == 4
        for rec in t.to_records():
            assert 0.0 < rec["OneSidedMatch"] <= 1.0
            assert rec["TwoSidedMatch"] >= rec["OneSidedMatch"]

    def test_table3_runs_on_subset(self):
        from repro.experiments.table3 import run_table3

        t = run_table3(names=("venturiLevel3", "torso1"), n_override=1500)
        assert len(t.rows) == 2
        for rec in t.to_records():
            assert rec["err(10)"] <= rec["err(1)"] + 1e-9
            assert rec["TwoSided"] >= rec["ScaleSK"]

    def test_fig3_speedups_reasonable(self):
        from repro.experiments.fig3 import run_fig3

        a, b = run_fig3(names=("venturiLevel3",), n_override=20_000)
        rec = a.to_records()[0]
        assert 1.5 < rec["p=2"] <= 2.0
        assert rec["p=16"] > rec["p=8"] > rec["p=4"] > rec["p=2"]
        assert 6.0 < rec["p=16"] < 16.0

    def test_fig4_speedups_reasonable(self):
        from repro.experiments.fig4 import run_fig4

        a, b = run_fig4(names=("venturiLevel3",), n_override=20_000)
        for table in (a, b):
            rec = table.to_records()[0]
            assert rec["p=16"] > 6.0

    def test_fig5_qualities(self):
        from repro.experiments.fig5 import run_fig5

        a, b = run_fig5(
            names=("cage15",), iteration_counts=(0, 5), n_override=1500,
            runs=2,
        )
        rec_one = a.to_records()[0]
        rec_two = b.to_records()[0]
        assert rec_one["iter=5"] >= 0.632 - 0.05
        assert rec_two["iter=5"] >= 0.866 - 0.05

    def test_collection_smoke(self):
        from repro.experiments.collection import run_collection

        t = run_collection(n_matrices=3, base_iterations=10,
                           min_n=200, max_n=400, seed=1)
        rec = t.to_records()[0]
        assert rec["matrices"] == 3

    def test_rectangular_smoke(self):
        from repro.experiments.rectangular import run_rectangular

        t = run_rectangular(nrows=800, ncols=1000, ds=(2,), runs=2)
        rec = t.to_records()[0]
        assert rec["TwoSidedMatch"] > rec["OneSidedMatch"]

    def test_conjecture_smoke(self):
        from repro.experiments.conjecture import run_conjecture

        t = run_conjecture(sizes=(2000,), trials=3)
        rec = t.to_records()[0]
        assert abs(rec["mean |M|/n"] - 0.8657) < 0.02

    def test_undirected_smoke(self):
        from repro.experiments.undirected import run_undirected

        t = run_undirected(n=400, degrees=(6.0,), iteration_counts=(5,),
                           runs=2)
        rec = t.to_records()[0]
        assert rec["1-out KS"] >= rec["one-sided"] - 0.05
        assert rec["1-out KS"] > 0.75

    def test_run_experiment_wrapper(self):
        tables = run_experiment("conjecture", n=1000, runs=2)
        assert len(tables) == 1


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "conjecture" in out

    def test_run_and_json_out(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_file = tmp_path / "res.json"
        assert main(
            ["conjecture", "--n", "1000", "--runs", "2", "--out", str(out_file)]
        ) == 0
        data = json.loads(out_file.read_text())
        assert "conjecture" in data
