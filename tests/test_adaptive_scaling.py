"""Tests for quality-driven scaling budgets (repro.scaling.adaptive)."""

import math

import numpy as np
import pytest

from repro.constants import ONE_SIDED_GUARANTEE
from repro.errors import ScalingError
from repro.graph import from_dense, fully_indecomposable, sprand
from repro.core import one_sided_match
from repro.scaling.adaptive import (
    alpha_for_quality,
    scale_for_quality,
)


class TestAlphaForQuality:
    def test_paper_example(self):
        # Section 3.3: alpha = 0.92 certifies ~0.6015.
        assert alpha_for_quality(0.6015) == pytest.approx(0.92, abs=5e-3)

    def test_zero_quality_zero_alpha(self):
        assert alpha_for_quality(0.0) == 0.0

    def test_monotone(self):
        qs = [0.1, 0.3, 0.5, 0.6]
        alphas = [alpha_for_quality(q) for q in qs]
        assert alphas == sorted(alphas)

    def test_ceiling_enforced(self):
        with pytest.raises(ScalingError):
            alpha_for_quality(ONE_SIDED_GUARANTEE)
        with pytest.raises(ScalingError):
            alpha_for_quality(0.99)
        with pytest.raises(ScalingError):
            alpha_for_quality(-0.1)


class TestScaleForQuality:
    def test_meets_target_on_total_support(self):
        g = fully_indecomposable(500, 4.0, seed=0)
        qs = scale_for_quality(g, 0.60)
        assert qs.target_met
        assert qs.certified_quality >= 0.60
        assert qs.min_column_sum >= alpha_for_quality(0.60)

    def test_certificate_is_honoured_empirically(self):
        """The heuristic's measured quality meets the certificate."""
        g = fully_indecomposable(2000, 5.0, seed=1)
        qs = scale_for_quality(g, 0.58)
        samples = [
            one_sided_match(g, scaling=qs.scaling, seed=s).cardinality
            / g.nrows
            for s in range(5)
        ]
        assert float(np.mean(samples)) >= qs.certified_quality - 0.03

    def test_higher_target_needs_more_iterations(self):
        g = fully_indecomposable(500, 4.0, seed=2)
        low = scale_for_quality(g, 0.40)
        high = scale_for_quality(g, 0.62)
        assert high.scaling.iterations >= low.scaling.iterations

    def test_budget_expiry_reports_honest_certificate(self):
        # A matrix with an empty column can never certify q > 0: the min
        # nonempty-column rule ignores it, but a column with a single
        # shared row keeps min sums low under a tiny budget.
        a = np.array([[1, 1, 1], [1, 0, 0], [1, 0, 0]])
        g = from_dense(a)
        qs = scale_for_quality(g, 0.62, max_iterations=1)
        assert not qs.target_met or qs.scaling.iterations <= 1
        assert 0.0 <= qs.certified_quality <= ONE_SIDED_GUARANTEE

    def test_zero_target_trivially_met(self):
        g = sprand(100, 3.0, seed=0)
        qs = scale_for_quality(g, 0.0)
        assert qs.target_met
        assert qs.scaling.iterations == 0
