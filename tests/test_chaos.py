"""Chaos-marked tests: the backend matrix under injected fault schedules.

Run explicitly with ``pytest -m chaos`` (or ``make chaos-smoke``); the
full human-facing sweep is ``python -m repro chaos`` / ``make chaos``.
"""

from __future__ import annotations

import pytest

from repro.resilience import run_chaos, standard_schedules
from repro.resilience.chaos import ChaosOutcome

pytestmark = pytest.mark.chaos


def test_standard_schedules_cover_all_kinds():
    schedules = standard_schedules()
    assert set(schedules) == {
        "none", "crash", "hang", "slow", "corrupt", "storm"
    }
    assert schedules["none"].specs == []


def test_outcome_classification():
    ok = ChaosOutcome("scale", "serial", "none", "ok", 0.1, 5.0)
    degraded = ChaosOutcome(
        "scale", "serial", "storm", "degraded:RetryExhaustedError", 0.1, 5.0
    )
    failed = ChaosOutcome(
        "scale", "serial", "storm", "FAILED:untyped:EOFError", 0.1, 5.0
    )
    assert ok.passed and degraded.passed and not failed.passed


def test_chaos_matrix_honours_contract():
    """Every cell: bitwise-correct result or typed error, inside budget."""
    report = run_chaos(n=250, deadline=0.25, seed=0)
    assert report.passed, "\n" + report.render()
    # The control schedule must not merely "not fail" — it must succeed.
    controls = [o for o in report.outcomes if o.schedule == "none"]
    assert controls and all(o.status == "ok" for o in controls)


def test_chaos_serial_only_quick():
    """A tiny single-backend sweep (the CI smoke cell)."""
    report = run_chaos(n=120, backends=("serial",), deadline=0.2, seed=1)
    assert report.passed, "\n" + report.render()
    rendered = report.render()
    assert "cells honoured the contract" in rendered
    # The durability row rides every full sweep: one cell per crash
    # boundary, all on the journal "backend".
    recovery = [o for o in report.outcomes if o.workload == "recovery"]
    assert {o.schedule for o in recovery} == {
        "pre_fsync", "mid_record", "post_ack", "mid_checkpoint",
        "divergence",
    }
    assert all(o.backend == "journal" for o in recovery)


def test_chaos_serve_row_runs_and_holds_contract():
    """The serve workload: a live MatchingServer soaked under the storm
    schedule must resolve every request typed-or-correct, losing none."""
    report = run_chaos(n=150, backends=("serial",), deadline=0.2, seed=2)
    serve_rows = [o for o in report.outcomes if o.workload == "serve"]
    assert len(serve_rows) == 1
    row = serve_rows[0]
    assert row.schedule == "storm"
    assert row.passed, f"{row.status} [{row.detail}]"


def test_chaos_serve_row_absent_without_storm():
    schedules = {"none": standard_schedules()["none"]}
    report = run_chaos(
        n=100, backends=("serial",), schedules=schedules, deadline=0.2,
        seed=3,
    )
    assert all(o.workload == "scale" for o in report.outcomes)
