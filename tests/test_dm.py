"""Tests for the Dulmage-Mendelsohn decomposition (repro.graph.dm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MatchingError
from repro.graph import BipartiteGraph, from_dense, identity, sprand
from repro.graph.dm import CoarseDM, dulmage_mendelsohn
from repro.matching import Matching, hopcroft_karp, sprank


def brute_matchable_mask(a: np.ndarray) -> np.ndarray:
    """Per-edge ground truth: edge is in some maximum matching iff deleting
    its row and column drops the sprank by exactly one."""
    g = from_dense(a)
    best = sprank(g)
    out = []
    for i in range(a.shape[0]):
        for j in range(a.shape[1]):
            if a[i, j]:
                b = a.copy()
                b[i, :] = 0
                b[:, j] = 0
                rest = sprank(from_dense(b)) if b.any() else 0
                out.append(rest == best - 1)
    return np.array(out, dtype=bool)


class TestCoarseBlocks:
    def test_identity_all_square(self):
        dm = dulmage_mendelsohn(identity(4))
        assert np.all(dm.row_block == CoarseDM.S_BLOCK)
        assert np.all(dm.col_block == CoarseDM.S_BLOCK)
        assert dm.total_support
        assert dm.sprank == 4

    def test_horizontal_only(self):
        # 1 row, 3 columns, all edges: everything horizontal.
        dm = dulmage_mendelsohn(from_dense(np.ones((1, 3))))
        assert np.all(dm.row_block == CoarseDM.H_BLOCK)
        assert np.all(dm.col_block == CoarseDM.H_BLOCK)
        assert dm.sprank == 1

    def test_vertical_only(self):
        dm = dulmage_mendelsohn(from_dense(np.ones((3, 1))))
        assert np.all(dm.row_block == CoarseDM.V_BLOCK)
        assert np.all(dm.col_block == CoarseDM.V_BLOCK)

    def test_mixed_blocks(self):
        # [H | S | V] textbook example:
        # row0 spans c0,c1 (H); rows 1 matched to c2 (S); rows 2,3 on c3 (V).
        a = np.array(
            [
                [1, 1, 0, 0],
                [0, 0, 1, 0],
                [0, 0, 0, 1],
                [0, 0, 0, 1],
            ]
        )
        dm = dulmage_mendelsohn(from_dense(a))
        assert dm.row_block[0] == CoarseDM.H_BLOCK
        assert dm.col_block[0] == dm.col_block[1] == CoarseDM.H_BLOCK
        assert dm.row_block[1] == CoarseDM.S_BLOCK
        assert dm.col_block[2] == CoarseDM.S_BLOCK
        assert dm.row_block[2] == dm.row_block[3] == CoarseDM.V_BLOCK
        assert dm.col_block[3] == CoarseDM.V_BLOCK

    def test_sprank_decomposes(self):
        g = sprand(300, 2.0, seed=0)
        dm = dulmage_mendelsohn(g)
        # sprank = rows(H) + n(S) + cols(V).
        expected = (
            dm.rows_of(CoarseDM.H_BLOCK).size
            + dm.rows_of(CoarseDM.S_BLOCK).size
            + dm.cols_of(CoarseDM.V_BLOCK).size
        )
        assert dm.sprank == expected

    def test_h_rows_always_matched_v_cols_always_matched(self):
        g = sprand(200, 2.0, seed=1)
        dm = dulmage_mendelsohn(g)
        rm = dm.matching.row_match
        cm = dm.matching.col_match
        assert np.all(rm[dm.rows_of(CoarseDM.H_BLOCK)] >= 0)
        assert np.all(cm[dm.cols_of(CoarseDM.V_BLOCK)] >= 0)


class TestFineDecomposition:
    def test_triangular_sccs_are_singletons(self):
        a = np.triu(np.ones((4, 4)))
        dm = dulmage_mendelsohn(from_dense(a))
        assert dm.n_scc == 4
        # Only diagonal entries are matchable.
        g = from_dense(a)
        rows = g.row_of_edge()
        cols = g.col_ind
        np.testing.assert_array_equal(dm.matchable_edges, rows == cols)
        assert not dm.total_support

    def test_full_matrix_single_scc(self):
        dm = dulmage_mendelsohn(from_dense(np.ones((4, 4))))
        assert dm.n_scc == 1
        assert dm.fully_indecomposable

    def test_block_diagonal_two_sccs(self):
        a = np.kron(np.eye(2), np.ones((2, 2)))
        dm = dulmage_mendelsohn(from_dense(a))
        assert dm.n_scc == 2
        assert dm.total_support
        assert not dm.fully_indecomposable


class TestMatchableMask:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_against_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 7))
        n = int(rng.integers(1, 7))
        a = (rng.random((m, n)) < 0.45).astype(int)
        if a.sum() == 0:
            return
        dm = dulmage_mendelsohn(from_dense(a))
        np.testing.assert_array_equal(
            dm.matchable_edges, brute_matchable_mask(a)
        )


class TestMatchingArgument:
    def test_reuses_supplied_maximum_matching(self):
        g = sprand(100, 3.0, seed=0)
        m = hopcroft_karp(g)
        dm = dulmage_mendelsohn(g, matching=m)
        assert dm.matching is m

    def test_rejects_non_maximum_matching(self):
        g = from_dense(np.ones((3, 3)))
        with pytest.raises(MatchingError):
            dulmage_mendelsohn(g, matching=Matching.empty(3, 3))
