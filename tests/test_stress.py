"""Randomized cross-validation stress tests.

Each test sweeps a moderate number of random instances and cross-checks
independent implementations against each other — the strongest kind of
evidence the library can give that its pieces are mutually consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    hopcroft_karp,
    karp_sipser,
    mc21,
    one_sided_match,
    push_relabel,
    two_sided_match,
)
from repro.graph import from_dense, sprand, sprand_rect
from repro.graph.dm import dulmage_mendelsohn
from repro.matching.heuristics.greedy import (
    greedy_edge_matching,
    greedy_vertex_matching,
)
from repro.scaling import (
    scale_sinkhorn_knopp,
    scaled_column_sums,
    scaled_row_sums,
)


@st.composite
def any_graph(draw):
    nrows = draw(st.integers(1, 25))
    ncols = draw(st.integers(1, 25))
    density = draw(st.floats(0.02, 0.6))
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    return from_dense((rng.random((nrows, ncols)) < density).astype(int))


class TestExactMatcherAgreement:
    @given(any_graph())
    @settings(max_examples=60, deadline=None)
    def test_three_exact_matchers_agree(self, g):
        hk = hopcroft_karp(g).cardinality
        assert mc21(g).cardinality == hk
        assert push_relabel(g).cardinality == hk

    def test_agreement_on_larger_instances(self):
        for seed in range(6):
            g = sprand_rect(700, 900, 2.5, seed=seed)
            hk = hopcroft_karp(g).cardinality
            assert mc21(g).cardinality == hk
            assert push_relabel(g).cardinality == hk


class TestHeuristicContracts:
    @given(any_graph())
    @settings(max_examples=40, deadline=None)
    def test_all_heuristics_valid_and_bounded(self, g):
        maximum = hopcroft_karp(g).cardinality
        for m in (
            one_sided_match(g, 2, seed=0).matching,
            two_sided_match(g, 2, seed=0).matching,
            karp_sipser(g, seed=0),
            greedy_edge_matching(g, seed=0),
            greedy_vertex_matching(g, seed=0),
        ):
            m.validate(g)
            assert m.cardinality <= maximum

    @given(any_graph())
    @settings(max_examples=40, deadline=None)
    def test_maximal_heuristics_half_bound(self, g):
        maximum = hopcroft_karp(g).cardinality
        for m in (
            karp_sipser(g, seed=1),
            greedy_edge_matching(g, seed=1),
            greedy_vertex_matching(g, seed=1),
        ):
            assert 2 * m.cardinality >= maximum

    @given(any_graph())
    @settings(max_examples=30, deadline=None)
    def test_warm_starts_never_break_exactness(self, g):
        maximum = hopcroft_karp(g).cardinality
        init = two_sided_match(g, 2, seed=3).matching
        assert hopcroft_karp(g, initial=init).cardinality == maximum
        assert mc21(g, initial=init).cardinality == maximum
        assert push_relabel(g, initial=init).cardinality == maximum


class TestScalingInvariants:
    @given(any_graph(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_row_sums_one_and_errors_finite(self, g, iters):
        res = scale_sinkhorn_knopp(g, iters)
        assert np.isfinite(res.dr).all() and np.isfinite(res.dc).all()
        assert (res.dr > 0).all() and (res.dc > 0).all()
        rsums = scaled_row_sums(g, res.dr, res.dc)
        nonempty = g.row_degrees() > 0
        if nonempty.any():
            np.testing.assert_allclose(rsums[nonempty], 1.0, atol=1e-9)

    @given(any_graph())
    @settings(max_examples=30, deadline=None)
    def test_scaled_mass_conserved(self, g):
        """After a row sweep, total scaled mass = number of nonempty rows."""
        res = scale_sinkhorn_knopp(g, 3)
        csums = scaled_column_sums(g, res.dr, res.dc)
        n_nonempty_rows = int((g.row_degrees() > 0).sum())
        np.testing.assert_allclose(csums.sum(), n_nonempty_rows, rtol=1e-9)


class TestDMInvariants:
    @given(any_graph())
    @settings(max_examples=40, deadline=None)
    def test_block_accounting(self, g):
        dm = dulmage_mendelsohn(g)
        # All rows/cols assigned to exactly one block.
        assert (
            dm.rows_of(dm.H_BLOCK).size
            + dm.rows_of(dm.S_BLOCK).size
            + dm.rows_of(dm.V_BLOCK).size
            == g.nrows
        )
        # S square; H wide; V tall.
        assert dm.rows_of(dm.S_BLOCK).size == dm.cols_of(dm.S_BLOCK).size
        assert dm.rows_of(dm.H_BLOCK).size <= dm.cols_of(dm.H_BLOCK).size
        assert dm.rows_of(dm.V_BLOCK).size >= dm.cols_of(dm.V_BLOCK).size
        # sprank decomposition.
        assert dm.sprank == (
            dm.rows_of(dm.H_BLOCK).size
            + dm.rows_of(dm.S_BLOCK).size
            + dm.cols_of(dm.V_BLOCK).size
        )

    @given(any_graph())
    @settings(max_examples=30, deadline=None)
    def test_matching_restricted_to_matchable_edges(self, g):
        """Any maximum matching uses only DM-matchable edges."""
        dm = dulmage_mendelsohn(g)
        matchable = set()
        rows = g.row_of_edge()
        for k in np.flatnonzero(dm.matchable_edges):
            matchable.add((int(rows[k]), int(g.col_ind[k])))
        for i, j in dm.matching.pairs():
            assert (i, j) in matchable


class TestEndToEndLarge:
    def test_full_pipeline_various_shapes(self):
        shapes = [(2000, 2000, 3.0), (1500, 2500, 2.0), (2500, 1500, 2.0)]
        for idx, (m, n, d) in enumerate(shapes):
            g = sprand_rect(m, n, d, seed=idx)
            maximum = hopcroft_karp(g).cardinality
            one = one_sided_match(g, 5, seed=idx)
            two = two_sided_match(g, 5, seed=idx)
            one.matching.validate(g)
            two.matching.validate(g)
            assert one.cardinality <= two.cardinality + int(0.02 * maximum)
            assert two.cardinality >= 0.8 * maximum
