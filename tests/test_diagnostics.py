"""Tests for the scaling-based matchability detector
(repro.scaling.diagnostics)."""

import numpy as np
import pytest

from repro.graph import from_dense, karp_sipser_adversarial, sprand
from repro.graph.dm import dulmage_mendelsohn
from repro.scaling.diagnostics import (
    MatchabilityReport,
    estimate_matchable_edges,
    matchability_report,
)


class TestEstimate:
    def test_total_support_all_matchable(self):
        from repro.graph import union_of_permutations

        g = union_of_permutations(100, 3, seed=0)
        est = estimate_matchable_edges(g, iterations=30)
        assert est.all()

    def test_triangular_detects_diagonal(self):
        a = np.triu(np.ones((8, 8)))
        g = from_dense(a)
        est = estimate_matchable_edges(g, iterations=200, threshold=0.2)
        truth = g.row_of_edge() == g.col_ind
        np.testing.assert_array_equal(est, truth)

    def test_adversarial_family_star_block_rejected(self):
        """The dense R1xC1 block of the Figure-2 family is all-'*'."""
        n = 200
        g = karp_sipser_adversarial(n, 4)
        est = estimate_matchable_edges(g, iterations=100, threshold=0.05)
        truth = dulmage_mendelsohn(g).matchable_edges
        # Perfect recall is essential (never discard a matchable edge);
        # precision may be imperfect at finite iterations.
        assert not (truth & ~est).any()
        # The vast majority of the star block must be rejected.
        rejected = np.count_nonzero(~est & ~truth)
        assert rejected > 0.9 * np.count_nonzero(~truth)

    def test_sharper_with_more_iterations(self):
        g = sprand(400, 2.0, seed=0)
        acc_few = matchability_report(g, iterations=5).accuracy
        acc_many = matchability_report(g, iterations=150).accuracy
        assert acc_many >= acc_few


class TestReport:
    def test_report_counts_sum_to_nnz(self):
        g = sprand(300, 2.0, seed=1)
        rep = matchability_report(g, iterations=40)
        total = (
            rep.true_positive + rep.false_positive
            + rep.true_negative + rep.false_negative
        )
        assert total == g.nnz

    def test_metrics_ranges(self):
        g = sprand(300, 2.5, seed=2)
        rep = matchability_report(g, iterations=40)
        for value in (rep.precision, rep.recall, rep.accuracy):
            assert 0.0 <= value <= 1.0

    def test_high_recall_on_random_deficient(self):
        """Matchable edges mostly keep their mass.  (Recall plateaus a
        little above 0.9 on ER deficient matrices: inside the H/V blocks
        the equilibration is only proportional, so low-weight matchable
        edges in skewed rows can dip under the cut.)"""
        g = sprand(500, 2.0, seed=3)
        rep = matchability_report(g, iterations=80)
        assert rep.recall > 0.90
        assert rep.accuracy > 0.80

    def test_degenerate_empty_report(self):
        rep = MatchabilityReport(0, 0, 0, 0)
        assert rep.precision == 1.0
        assert rep.recall == 1.0
        assert rep.accuracy == 1.0
