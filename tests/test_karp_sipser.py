"""Tests for the classic Karp-Sipser heuristic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    from_dense,
    from_edges,
    identity,
    karp_sipser_adversarial,
    sprand,
)
from repro.matching import hopcroft_karp, karp_sipser
from repro.matching.heuristics.karp_sipser import KarpSipserResult


@st.composite
def random_graphs(draw):
    n = draw(st.integers(1, 14))
    density = draw(st.floats(0.05, 0.7))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    return from_dense((rng.random((n, n)) < density).astype(int))


class TestBasics:
    def test_valid_matching(self):
        g = sprand(400, 3.0, seed=0)
        karp_sipser(g, seed=1).validate(g)

    def test_identity_phase1_only(self):
        res = karp_sipser(identity(10), seed=0, with_stats=True)
        assert isinstance(res, KarpSipserResult)
        assert res.matching.is_perfect()
        assert res.stats.phase1_matches == 10
        assert res.stats.random_picks == 0

    def test_exact_on_trees(self):
        # A path r0-c0-r1-c1-r2-c2 (tree): KS is optimal (all degree-1 rule).
        g = from_edges(3, 3, [0, 1, 1, 2, 2], [0, 0, 1, 1, 2])
        m = karp_sipser(g, seed=0)
        assert m.cardinality == hopcroft_karp(g).cardinality

    def test_full_matrix_perfect(self):
        # On the full matrix every maximal matching is perfect.
        g = from_dense(np.ones((8, 8)))
        assert karp_sipser(g, seed=0).cardinality == 8

    def test_deterministic_given_seed(self):
        g = sprand(200, 3.0, seed=0)
        a = karp_sipser(g, seed=5)
        b = karp_sipser(g, seed=5)
        np.testing.assert_array_equal(a.row_match, b.row_match)

    def test_stats_sum_to_cardinality(self):
        g = sprand(300, 4.0, seed=2)
        res = karp_sipser(g, seed=0, with_stats=True)
        assert res.stats.total_matches == res.matching.cardinality


class TestQuality:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_maximal_hence_half(self, g):
        m = karp_sipser(g, seed=0)
        m.validate(g)
        assert 2 * m.cardinality >= hopcroft_karp(g).cardinality

    def test_near_optimal_on_sparse_random(self):
        """KS matches all but ~n^{1/5} vertices of sparse random graphs."""
        g = sprand(3000, 2.0, seed=0)
        opt = hopcroft_karp(g).cardinality
        m = karp_sipser(g, seed=1)
        assert m.cardinality >= 0.97 * opt

    def test_degrades_on_adversarial_family(self):
        """Table 1's phenomenon: quality decays as k grows."""
        n = 800
        qual = {}
        for k in (2, 32):
            g = karp_sipser_adversarial(n, k)
            qual[k] = min(
                karp_sipser(g, seed=s).cardinality / n for s in range(5)
            )
        assert qual[32] < qual[2]
        assert qual[32] < 0.80  # far from the perfect matching

    def test_phase1_solves_k1_adversarial(self):
        """For k <= 1 the paper notes KS consumes the graph in Phase 1."""
        g = karp_sipser_adversarial(100, 1)
        res = karp_sipser(g, seed=0, with_stats=True)
        assert res.matching.cardinality == 100
        assert res.stats.random_picks == 0
