"""Tests for the undirected extension (repro.core.undirected)."""

import numpy as np
import pytest

from repro.errors import MatchingError, ScalingError
from repro.graph import BipartiteGraph, from_dense, grid_graph, sprand, sprand_symmetric
from repro.core.undirected import (
    UndirectedMatching,
    one_out_match_undirected,
    one_sided_match_undirected,
    validate_undirected_matching,
)
from repro.matching.matching import NIL


def blossom_maximum(graph: BipartiteGraph) -> int:
    """Exact maximum matching of the symmetric pattern via networkx."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.nrows))
    for i, j in graph.iter_edges():
        if i < j:
            g.add_edge(i, j)
    return len(nx.max_weight_matching(g, maxcardinality=True))


def choice_subgraph_maximum(graph, choice) -> int:
    """Exact maximum matching of the undirected 1-out choice subgraph."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(len(choice)))
    for u, v in enumerate(choice):
        if v != NIL:
            g.add_edge(int(u), int(v))
    return len(nx.max_weight_matching(g, maxcardinality=True))


class TestValidation:
    def test_valid_matching_accepted(self):
        g = sprand_symmetric(50, 4.0, seed=0)
        m = one_sided_match_undirected(g, 3, seed=1)
        validate_undirected_matching(g, m)

    def test_non_mutual_rejected(self):
        g = sprand_symmetric(10, 4.0, seed=0)
        mate = np.full(10, NIL, dtype=np.int64)
        mate[0] = 1  # not mirrored
        with pytest.raises(MatchingError):
            validate_undirected_matching(g, UndirectedMatching(mate))

    def test_self_match_rejected(self):
        g = sprand_symmetric(10, 4.0, seed=0)
        mate = np.full(10, NIL, dtype=np.int64)
        mate[0] = 0
        with pytest.raises(MatchingError):
            validate_undirected_matching(g, UndirectedMatching(mate))

    def test_asymmetric_input_rejected(self):
        g = sprand(30, 3.0, seed=0)  # almost surely asymmetric
        from repro.scaling.symmetric import is_pattern_symmetric

        if is_pattern_symmetric(g):
            pytest.skip("unlucky symmetric draw")
        with pytest.raises(ScalingError):
            one_sided_match_undirected(g, 2, seed=0)


class TestOneSidedUndirected:
    def test_valid_on_random(self):
        for seed in range(5):
            g = sprand_symmetric(200, 5.0, seed=seed)
            m = one_sided_match_undirected(g, 5, seed=seed)
            validate_undirected_matching(g, m)

    def test_quality_above_half_of_maximum(self):
        g = sprand_symmetric(500, 6.0, seed=0)
        opt = blossom_maximum(g)
        m = one_sided_match_undirected(g, 5, seed=1)
        assert m.cardinality >= 0.5 * opt

    def test_never_matches_self_loops(self):
        g = sprand_symmetric(100, 4.0, seed=2, with_diagonal=True)
        m = one_sided_match_undirected(g, 3, seed=0)
        for u in m.matched_vertices():
            assert m.mate[u] != u

    def test_deterministic(self):
        g = sprand_symmetric(150, 4.0, seed=0)
        a = one_sided_match_undirected(g, 3, seed=9)
        b = one_sided_match_undirected(g, 3, seed=9)
        np.testing.assert_array_equal(a.mate, b.mate)


class TestOneOutUndirected:
    def test_valid_on_random(self):
        for seed in range(5):
            g = sprand_symmetric(200, 5.0, seed=seed)
            m = one_out_match_undirected(g, 5, seed=seed)
            validate_undirected_matching(g, m)

    def test_maximum_on_choice_subgraph(self):
        """The Karp-Sipser engine stays exact on the (possibly odd-cycle)
        undirected choice graphs."""
        for seed in range(10):
            g = sprand_symmetric(120, 5.0, seed=seed)
            m, choice = one_out_match_undirected(
                g, 4, seed=seed, with_choice=True
            )
            assert m.cardinality == choice_subgraph_maximum(g, choice), seed

    def test_beats_one_sided(self):
        g = sprand_symmetric(1000, 6.0, seed=0)
        one = one_sided_match_undirected(g, 5, seed=1).cardinality
        two = one_out_match_undirected(g, 5, seed=1).cardinality
        assert two >= one

    def test_quality_on_mesh(self):
        g = grid_graph(20, 20, stencil=5)
        # Remove the diagonal (self-loops) to get a clean undirected mesh.
        dense = g.to_dense()
        np.fill_diagonal(dense, 0.0)
        g = from_dense(dense)
        opt = blossom_maximum(g)
        m = one_out_match_undirected(g, 10, seed=0)
        validate_undirected_matching(g, m)
        assert m.cardinality >= 0.80 * opt

    def test_high_quality_on_dense_symmetric(self):
        g = sprand_symmetric(800, 10.0, seed=3)
        opt = blossom_maximum(g)
        m = one_out_match_undirected(g, 8, seed=0)
        assert m.cardinality >= 0.84 * opt
