"""Tests for the synthetic instance suite (repro.graph.suite)."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.graph import SUITE_NAMES, suite_instance, suite_spec
from repro.matching import sprank


class TestRegistry:
    def test_twelve_instances(self):
        assert len(SUITE_NAMES) == 12

    def test_paper_names_present(self):
        for name in ("torso1", "europe_osm", "audikw_1", "cage15"):
            assert name in SUITE_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError):
            suite_spec("nonexistent")
        with pytest.raises(ExperimentError):
            suite_instance("nonexistent")

    def test_spec_metadata(self):
        spec = suite_spec("torso1")
        assert spec.paper_n == 116_158
        assert spec.paper_avg_degree == pytest.approx(73.3)
        assert spec.skewed


class TestInstances:
    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_builds_at_small_size(self, name):
        g = suite_instance(name, n=2000, seed=0)
        assert g.nrows >= 1000  # mesh builders round the size
        assert g.nnz > 0

    @pytest.mark.parametrize("name", SUITE_NAMES)
    def test_deterministic(self, name):
        a = suite_instance(name, n=1500, seed=3)
        b = suite_instance(name, n=1500, seed=3)
        assert a == b

    def test_average_degrees_roughly_match_paper(self):
        for name in SUITE_NAMES:
            spec = suite_spec(name)
            g = suite_instance(name, n=4000, seed=0)
            measured = g.nnz / g.nrows
            # Within a factor 1.7 of the paper's average degree.
            assert measured > spec.paper_avg_degree / 1.7, name
            assert measured < spec.paper_avg_degree * 1.7, name

    def test_skewed_instances_have_higher_variance(self):
        skew_var = suite_instance("torso1", n=3000, seed=0).row_degrees().var()
        flat_var = suite_instance(
            "venturiLevel3", n=3000, seed=0
        ).row_degrees().var()
        assert skew_var > 100 * max(flat_var, 1e-9)

    def test_road_instances_are_sprank_deficient(self):
        for name in ("europe_osm", "road_usa"):
            g = suite_instance(name, n=4000, seed=0)
            assert sprank(g) < g.nrows, name

    def test_mesh_instances_have_full_sprank(self):
        for name in ("venturiLevel3", "hugebubbles", "nlpkkt240"):
            g = suite_instance(name, n=2000, seed=0)
            assert sprank(g) == g.nrows, name
