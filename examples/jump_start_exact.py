#!/usr/bin/env python
"""Jump-starting exact matching with the heuristics.

The paper's introduction motivates cheap approximate matchings as
initialisers for exact algorithms ("such cheap algorithms are used as a
jump-start routine by the current state of the art matching algorithms").
This example quantifies that: Hopcroft-Karp and MC21 are run cold and
warm-started from each heuristic, counting how much augmentation work
remains.

Run:  python examples/jump_start_exact.py [n] [avg_degree]
"""

import sys
import time

from repro import hopcroft_karp, mc21, one_sided_match, two_sided_match
from repro.graph import sprand
from repro.matching.heuristics.greedy import greedy_row_matching


def timed(label: str, fn):
    t0 = time.perf_counter()
    result = fn()
    dt = time.perf_counter() - t0
    print(f"  {label:<34s} {dt * 1000:8.1f} ms   |M| = {result.cardinality}")
    return result


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    d = float(sys.argv[2]) if len(sys.argv) > 2 else 5.0
    graph = sprand(n, d, seed=0)
    print(f"random n={n}, d={d} graph: {graph.nnz} edges\n")

    print("initialisers:")
    greedy = timed("greedy (classic warm start)", lambda: greedy_row_matching(graph, seed=1))
    one = timed("OneSidedMatch (5 iters)", lambda: one_sided_match(graph, 5, seed=1).matching)
    two = timed("TwoSidedMatch (5 iters)", lambda: two_sided_match(graph, 5, seed=1).matching)

    print("\nexact solvers (cold vs warm):")
    cold = timed("Hopcroft-Karp cold", lambda: hopcroft_karp(graph, greedy_init=False))
    for label, init in [
        ("Hopcroft-Karp from greedy", greedy),
        ("Hopcroft-Karp from OneSided", one),
        ("Hopcroft-Karp from TwoSided", two),
    ]:
        warm = timed(label, lambda m=init: hopcroft_karp(graph, initial=m))
        assert warm.cardinality == cold.cardinality, "exactness lost!"

    timed("MC21 cold", lambda: mc21(graph))
    timed("MC21 from TwoSided", lambda: mc21(graph, initial=two))

    deficit = cold.cardinality - two.cardinality
    print(
        f"\nTwoSidedMatch leaves only {deficit} of {cold.cardinality} "
        f"augmenting paths for the exact phase "
        f"({100 * deficit / cold.cardinality:.1f}%)."
    )


if __name__ == "__main__":
    main()
