#!/usr/bin/env python
"""Why scaling matters: the adversarial family of the paper's Figure 2.

These matrices hide a perfect matching in two off-diagonal stripes, while
a dense (but useless for a perfect matching) block tempts random edge
choices.  Classic Karp-Sipser falls for it; TwoSidedMatch's scaling
drives the dense block's probabilities toward zero, so its choices land
on edges that can actually be extended to a perfect matching.

Run:  python examples/adversarial_karp_sipser.py [n] [k]
"""

import sys

import numpy as np

from repro import karp_sipser, two_sided_match
from repro.graph import karp_sipser_adversarial
from repro.graph.adversarial import hidden_perfect_matching
from repro.scaling import scale_sinkhorn_knopp


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3200
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    graph = karp_sipser_adversarial(n, k)
    print(
        f"adversarial matrix: n={n}, k={k}, {graph.nnz} edges, "
        f"perfect matching exists (the planted diagonals)"
    )

    # Where does the scaled probability mass go?
    scaling = scale_sinkhorn_knopp(graph, 10)
    s = graph.scaled_values(scaling.dr, scaling.dc)
    rows = graph.row_of_edge()
    cols = graph.col_ind
    h = n // 2
    planted = hidden_perfect_matching(n)
    on_planted = s[cols == planted[rows]].sum()
    in_dense_block = s[(rows < h) & (cols < h)].sum()
    print(f"scaled mass on the planted matching : {on_planted / n:.3f} of n")
    print(f"scaled mass in the dense R1xC1 block: {in_dense_block / n:.3f} of n")

    runs = 10
    ks_q = min(karp_sipser(graph, seed=s_).cardinality / n for s_ in range(runs))
    print(f"\nKarp-Sipser (min of {runs} runs)        : quality {ks_q:.3f}")
    for iters in (0, 1, 5, 10):
        sc = scale_sinkhorn_knopp(graph, iters)
        q = min(
            two_sided_match(graph, scaling=sc, seed=s_).cardinality / n
            for s_ in range(runs)
        )
        print(
            f"TwoSidedMatch, {iters:2d} scaling iterations: quality {q:.3f} "
            f"(scaling error {sc.error:.3f})"
        )


if __name__ == "__main__":
    main()
