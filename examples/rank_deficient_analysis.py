#!/usr/bin/env python
"""Structural rank analysis of a deficient matrix (paper Section 3.3).

For matrices *without* a perfect matching, the Dulmage-Mendelsohn
decomposition splits rows/columns into horizontal (H), square (S) and
vertical (V) parts; entries in the off-diagonal "*" blocks cannot appear
in any maximum matching.  The paper's observation: Sinkhorn-Knopp scaling
drives exactly those entries to zero, which is why the heuristics remain
effective on deficient inputs.  This example shows both facts numerically.

Run:  python examples/rank_deficient_analysis.py [n] [avg_degree]
"""

import sys

import numpy as np

from repro import one_sided_match, sprank, two_sided_match
from repro.graph import dulmage_mendelsohn, sprand
from repro.scaling import scale_sinkhorn_knopp


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    d = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0
    graph = sprand(n, d, seed=0)

    dm = dulmage_mendelsohn(graph)
    print(f"random n={n}, d={d}: sprank = {dm.sprank} ({dm.sprank / n:.3f} n)")
    for name, block in [("H", dm.H_BLOCK), ("S", dm.S_BLOCK), ("V", dm.V_BLOCK)]:
        print(
            f"  block {name}: {dm.rows_of(block).size} rows x "
            f"{dm.cols_of(block).size} cols"
        )
    frac_star = 1.0 - dm.matchable_edges.mean()
    print(f"  edges in '*' blocks (never matchable): {frac_star:.1%}")

    # Scaling sends the "*" entries to zero.
    for iters in (1, 5, 20, 80):
        sc = scale_sinkhorn_knopp(graph, iters)
        s = graph.scaled_values(sc.dr, sc.dc)
        star = s[~dm.matchable_edges]
        good = s[dm.matchable_edges]
        print(
            f"  after {iters:3d} iterations: mean scaled value on '*' edges "
            f"{star.mean():.2e} vs {good.mean():.2e} on matchable edges"
        )

    print("\nheuristic quality relative to sprank (not n):")
    one = one_sided_match(graph, iterations=5, seed=1)
    two = two_sided_match(graph, iterations=5, seed=1)
    print(f"  OneSidedMatch: {one.cardinality / dm.sprank:.3f}")
    print(f"  TwoSidedMatch: {two.cardinality / dm.sprank:.3f}")


if __name__ == "__main__":
    main()
