#!/usr/bin/env python
"""Per-instance quality certificates (Theorem 1 made executable).

Three layers of prediction for OneSidedMatch on a concrete instance:

1. the *closed-form bound* of Theorem 1 evaluated on the actual scaled
   column sums (the AM-GM step of the proof);
2. the *exact expectation* of |M| computed from the per-column miss
   probabilities (no sampling!);
3. the Monte-Carlo measurement.

And the control knob built from the Section 3.3 relaxation: ask for a
target quality and get back the minimal scaling effort that certifies it.

Run:  python examples/quality_certificates.py [n] [avg_degree]
"""

import sys

import numpy as np

from repro.core import one_sided_match
from repro.core.analysis import (
    expected_one_sided_cardinality,
    one_sided_lower_bound,
)
from repro.graph import power_law_bipartite
from repro.scaling import scale_for_quality, scale_sinkhorn_knopp


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    d = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    # A degree-skewed instance: unscaled choices waste mass on hub
    # columns, so the certificates visibly improve with iterations.
    graph = power_law_bipartite(n, d, skew=1.2, seed=0)
    print(f"power-law n={n}, ~{d} edges/vertex, skewed degrees\n")

    print("iterations | Thm-1 bound | exact E[|M|] | measured (10 runs)")
    for iters in (0, 1, 5, 10):
        scaling = scale_sinkhorn_knopp(graph, iters)
        bound = one_sided_lower_bound(graph, scaling) / n
        exact = expected_one_sided_cardinality(graph, scaling) / n
        measured = np.mean(
            [
                one_sided_match(graph, scaling=scaling, seed=s).cardinality
                for s in range(10)
            ]
        ) / n
        print(
            f"{iters:10d} | {bound:11.4f} | {exact:12.4f} | {measured:.4f}"
        )

    print("\nquality-driven scaling budgets (Section 3.3 inverted):")
    for target in (0.40, 0.55, 0.62):
        qs = scale_for_quality(graph, target)
        print(
            f"  target {target:.2f} -> {qs.scaling.iterations} iterations, "
            f"certified {qs.certified_quality:.4f} "
            f"(min column sum {qs.min_column_sum:.3f})"
        )


if __name__ == "__main__":
    main()
