#!/usr/bin/env python
"""The undirected extension (the paper's concluding outlook).

Matches vertices of a general (non-bipartite) graph using the same
recipe: symmetric doubly stochastic scaling, scaled random 1-out
choices, and the out-one-chasing Karp-Sipser on the functional graph.
Compared against the exact blossom-algorithm maximum from networkx.

Run:  python examples/undirected_matching.py [n] [avg_degree]
"""

import sys

import networkx as nx

from repro.graph import sprand_symmetric
from repro.core.undirected import (
    one_out_match_undirected,
    one_sided_match_undirected,
    validate_undirected_matching,
)
from repro.scaling.symmetric import scale_symmetric


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    d = float(sys.argv[2]) if len(sys.argv) > 2 else 6.0
    graph = sprand_symmetric(n, d, seed=0)
    print(f"undirected Erdős–Rényi graph: n={n}, ~{d} neighbours/vertex")

    g = nx.Graph()
    g.add_nodes_from(range(n))
    rows = graph.row_of_edge()
    for i, j in zip(rows, graph.col_ind):
        if i < j:
            g.add_edge(int(i), int(j))
    maximum = len(nx.max_weight_matching(g, maxcardinality=True))
    print(f"exact maximum matching (blossom): {maximum} pairs\n")

    for iters in (0, 5):
        scaling = scale_symmetric(graph, iters)
        one = one_sided_match_undirected(graph, scaling=scaling, seed=1)
        two = one_out_match_undirected(graph, scaling=scaling, seed=1)
        validate_undirected_matching(graph, one)
        validate_undirected_matching(graph, two)
        print(
            f"{iters} scaling iterations: "
            f"one-sided {one.cardinality / maximum:.3f}, "
            f"1-out Karp-Sipser {two.cardinality / maximum:.3f}"
        )

    print(
        "\nThe 1-out variant tracks the bipartite 0.866 level — the "
        "'natural extension' the paper's conclusion describes."
    )


if __name__ == "__main__":
    main()
