#!/usr/bin/env python
"""Quickstart: scale, match, measure quality.

Builds a random sparse bipartite graph, runs both of the paper's
heuristics, and compares their cardinalities against the exact maximum
(and the theoretical guarantees).

Run:  python examples/quickstart.py [n] [avg_degree]
"""

import sys

from repro import (
    ONE_SIDED_GUARANTEE,
    TWO_SIDED_GUARANTEE,
    hopcroft_karp,
    one_sided_match,
    two_sided_match,
)
from repro.graph import sprand


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    d = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0

    print(f"random n={n} bipartite graph, ~{d} edges per vertex")
    graph = sprand(n, d, seed=0)

    # Exact maximum cardinality (the quality denominator).
    maximum = hopcroft_karp(graph).cardinality
    print(f"maximum matching (Hopcroft-Karp): {maximum}")

    # OneSidedMatch: no synchronisation at all; guarantee 1 - 1/e.
    one = one_sided_match(graph, iterations=5, seed=1)
    one.matching.validate(graph)
    print(
        f"OneSidedMatch : |M| = {one.cardinality}  "
        f"quality = {one.cardinality / maximum:.3f}  "
        f"(guarantee {ONE_SIDED_GUARANTEE:.3f})"
    )

    # TwoSidedMatch: Karp-Sipser on the 1-out choice subgraph; 0.866.
    two = two_sided_match(graph, iterations=5, seed=1)
    two.matching.validate(graph)
    print(
        f"TwoSidedMatch : |M| = {two.cardinality}  "
        f"quality = {two.cardinality / maximum:.3f}  "
        f"(conjecture {TWO_SIDED_GUARANTEE:.3f})"
    )

    # The scaling error after 5 iterations (the paper's convergence gauge).
    print(f"scaling error after 5 Sinkhorn-Knopp iterations: {two.scaling.error:.4f}")


if __name__ == "__main__":
    main()
