#!/usr/bin/env python
"""Block triangular form — what maximum transversals are *for*.

The matching literature the paper belongs to (Duff's MC21, Pothen–Fan)
exists because sparse direct solvers want to permute a matrix to block
upper triangular form and factorise only the diagonal blocks.  This
example runs the full production pipeline:

1. heuristic matching (TwoSidedMatch) as a jump start,
2. exact maximum matching (Hopcroft–Karp warm-started),
3. Dulmage–Mendelsohn decomposition from the matching,
4. BTF permutations, certified block-upper-triangular,

and shows the ASCII spy plot before/after on a small instance.

Run:  python examples/block_triangular.py [n] [avg_degree]
"""

import sys

from repro import hopcroft_karp, two_sided_match
from repro.graph import sprand
from repro.graph.btf import block_triangular_form
from repro.graph.dm import dulmage_mendelsohn
from repro.graph.viz import spy


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    d = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0

    graph = sprand(n, d, seed=0)
    print(f"random n={n}, d={d} pattern, {graph.nnz} edges")

    # 1-2: heuristic jump start, then exact.
    warm = two_sided_match(graph, 5, seed=1).matching
    exact = hopcroft_karp(graph, initial=warm)
    print(f"maximum matching: {exact.cardinality} (sprank/n = "
          f"{exact.cardinality / n:.3f})")

    # 3-4: decomposition and permutations.
    dm = dulmage_mendelsohn(graph, matching=exact)
    btf = block_triangular_form(graph, dm=dm)
    print(f"DM blocks: H {dm.rows_of(dm.H_BLOCK).size}x"
          f"{dm.cols_of(dm.H_BLOCK).size}, "
          f"S {dm.rows_of(dm.S_BLOCK).size} (in {dm.n_scc} fine blocks), "
          f"V {dm.rows_of(dm.V_BLOCK).size}x{dm.cols_of(dm.V_BLOCK).size}")
    print(f"BTF: {btf.n_blocks} diagonal blocks; certified block upper "
          f"triangular: {btf.is_block_upper_triangular(graph)}")

    sizes = sorted(
        (int(b - a) for a, b in zip(btf.row_blocks, btf.row_blocks[1:])),
        reverse=True,
    )
    print(f"largest diagonal blocks: {sizes[:8]}")

    # Visual: a tiny instance before/after.
    small = sprand(24, 1.8, seed=7)
    small_btf = block_triangular_form(small)
    print("\ntiny 24x24 pattern, original:")
    print(spy(small))
    print("\nafter BTF permutation (edges gather on/above the diagonal):")
    print(spy(small_btf.permuted_pattern(small)))


if __name__ == "__main__":
    main()
