#!/usr/bin/env python
"""The three faces of parallelism in this reproduction.

1. **Real backends** — Sinkhorn-Knopp runs its segment reductions on a
   thread pool (numpy releases the GIL), with identical numerics.
2. **Simulated threads** — KarpSipserMT runs under adversarially
   interleaved simulated threads: the matching stays maximum for every
   schedule, which is the paper's Algorithm-4 safety claim.
3. **Machine model** — the measured work profile of this instance is
   scheduled onto 2..16 modelled threads to produce the speedup curves of
   the paper's Figures 3-4.

Run:  python examples/parallel_scaling_demo.py [suite-instance] [n]
"""

import sys
import time

import numpy as np

from repro import hopcroft_karp
from repro.core import (
    karp_sipser_mt,
    karp_sipser_mt_simulated,
    scaled_col_choices,
    scaled_row_choices,
    choice_graph,
)
from repro.core.karp_sipser_mt import karp_sipser_mt_work_profile
from repro.graph import suite_instance, SUITE_NAMES
from repro.parallel import MachineModel, ThreadBackend
from repro.parallel.machine import ScheduleSpec
from repro.scaling import scale_sinkhorn_knopp


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "venturiLevel3"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else None
    if name not in SUITE_NAMES:
        raise SystemExit(f"unknown instance {name!r}; options: {SUITE_NAMES}")
    graph = suite_instance(name, n=n)
    print(f"{name}: n={graph.nrows}, {graph.nnz} edges\n")

    # --- 1. Real thread backend -----------------------------------------
    t0 = time.perf_counter()
    serial = scale_sinkhorn_knopp(graph, 5)
    t_serial = time.perf_counter() - t0
    with ThreadBackend(2) as be:
        t0 = time.perf_counter()
        threaded = scale_sinkhorn_knopp(graph, 5, backend=be)
        t_thread = time.perf_counter() - t0
    assert np.allclose(serial.dr, threaded.dr)
    print(
        f"ScaleSK x5: serial {t_serial * 1000:.0f} ms, "
        f"2-thread backend {t_thread * 1000:.0f} ms (identical numerics)"
    )

    # --- 2. Simulated threads over the choice subgraph ------------------
    rc = scaled_row_choices(graph, serial.dr, serial.dc, seed=1)
    cc = scaled_col_choices(graph, serial.dr, serial.dc, seed=2)
    reference = karp_sipser_mt(rc, cc)
    g_choice = choice_graph(rc, cc)
    optimum = hopcroft_karp(g_choice).cardinality
    assert reference.cardinality == optimum
    print(
        f"\nKarpSipserMT serial: |M| = {reference.cardinality} "
        f"(= maximum on the choice subgraph)"
    )
    for policy in ("round_robin", "random", "adversarial"):
        m = karp_sipser_mt_simulated(rc, cc, n_threads=8, policy=policy, seed=3)
        status = "max" if m.cardinality == optimum else "NOT MAX (bug!)"
        print(f"  8 simulated threads, {policy:<12s}: |M| = {m.cardinality} ({status})")

    # --- 3. Machine-model speedups --------------------------------------
    print("\nmodelled speedups (paper's 16-core machine):")
    model = MachineModel()
    profile = karp_sipser_mt_work_profile(rc, cc)
    guided = ScheduleSpec.guided(max(4, graph.nrows // 2048))
    for p in (2, 4, 8, 16):
        s = model.speedup(profile, p, schedule=guided, serial_work=64, barriers=1)
        bar = "#" * int(round(s * 3))
        print(f"  p={p:2d}: {s:5.2f}x  {bar}")


if __name__ == "__main__":
    main()
