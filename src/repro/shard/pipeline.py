"""The sharded matching pipeline: scale → choice → reconcile → certify.

In-process execution tier: one :mod:`repro.parallel.mpi_sim` coroutine
rank per shard runs the whole pipeline — 2-D sharded Sinkhorn–Knopp
(:mod:`repro.shard.scale`), shard-local choice sampling on the registered
``choice_scaled`` kernel (chunk-aligned, so picks are bitwise equal to
the serial kernel), BSP Karp–Sipser reconciliation
(:mod:`repro.shard.reconcile`), then a distributed leg of the §3.3
certificate: every shard checks its owned rows' matched edges against its
own CSR slice, and the coordinator re-proves validity and the guarantee
on the *global* graph.

The result is bitwise equal to the unsharded
``two_sided_match(engine="vectorized")`` path for every shard count —
same scaling vectors, same choices, same merged matching — which is the
subsystem's differential test anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry as _tm
from .._typing import NIL, FloatArray, IndexArray, SeedLike, rng_from
from ..core.onesided import _rung_guarantee
from ..constants import TWO_SIDED_GUARANTEE
from ..errors import MatchingError
from ..graph.csr import BipartiteGraph
from ..matching.matching import Matching
from ..parallel.kernels import kernel_chunk_override, run_kernel
from ..parallel.mpi_sim import SimComm, run_ranks
from ..scaling.result import ScalingResult
from ..scaling.sinkhorn_knopp import initial_factors
from .partition import ShardPlan, ShardSlice, plan_shards
from .reconcile import ReconcileState, reconcile_rounds
from .scale import ShardScaleLocal, maybe_warn_capped, resolve_budget, sk_rounds

__all__ = [
    "ShardMatchResult",
    "shard_match",
    "generate_draws",
    "shard_row_choices",
    "shard_col_choices",
    "shard_validate_rows",
]


def generate_draws(
    graph: BipartiteGraph, seed: SeedLike
) -> tuple[FloatArray | None, FloatArray | None]:
    """The serial path's choice randomness, drawn in the serial order.

    ``None`` marks an axis the serial ``_scaled_choices`` would answer
    with all-:data:`~repro._typing.NIL` *without consuming the rng* —
    replicating that early return keeps the rng stream, and therefore
    every downstream draw, identical to the unsharded run.
    """
    rng = rng_from(seed)
    draws_rows = draws_cols = None
    if graph.nnz != 0 and graph.nrows != 0:
        draws_rows = 1.0 - rng.random(graph.nrows)
    if graph.nnz != 0 and graph.ncols != 0:
        draws_cols = 1.0 - rng.random(graph.ncols)
    return draws_rows, draws_cols


def _slice_choices(
    n_local: int,
    lo: int,
    hi: int,
    ptr: IndexArray,
    ind: IndexArray,
    opp: FloatArray,
    draws: FloatArray | None,
    chunk: int,
) -> IndexArray:
    if draws is None:
        return np.full(n_local, NIL, dtype=np.int64)
    out = np.empty(n_local, dtype=np.int64)
    # The choice kernel's cumsum is chunk-local; forcing the coordinator's
    # chunk makes the rebased slice's grid the global grid shifted by the
    # (chunk-aligned) slice start — identical picks, bit for bit.
    with kernel_chunk_override(chunk):
        run_kernel(
            "choice_scaled", n_local,
            {
                "ptr": ptr, "ind": ind, "opp": opp,
                "draws": draws[lo:hi], "out": out,
            },
        )
    return out


def shard_row_choices(
    shard: ShardSlice, dc_full: FloatArray, draws_rows: FloatArray | None
) -> IndexArray:
    """Owned-row block of the serial scaled row choices (global draws)."""
    return _slice_choices(
        shard.n_local_rows, shard.row_lo, shard.row_hi,
        shard.row_ptr, shard.col_ind, dc_full, draws_rows, shard.chunk_rows,
    )


def shard_col_choices(
    shard: ShardSlice, dr_full: FloatArray, draws_cols: FloatArray | None
) -> IndexArray:
    """Owned-column block of the serial scaled column choices."""
    return _slice_choices(
        shard.n_local_cols, shard.col_lo, shard.col_hi,
        shard.col_ptr, shard.row_ind, dr_full, draws_cols, shard.chunk_cols,
    )


def shard_validate_rows(shard: ShardSlice, match: IndexArray) -> int:
    """Matched owned rows whose matched edge is NOT in this shard's CSR
    slice — the distributed leg of the certificate.  Must be 0."""
    bad = 0
    for i_local in range(shard.n_local_rows):
        partner = match[shard.row_lo + i_local]
        if partner == NIL:
            continue
        j = partner - shard.nrows
        a, b = int(shard.row_ptr[i_local]), int(shard.row_ptr[i_local + 1])
        pos = int(np.searchsorted(shard.col_ind[a:b], j))
        if pos >= b - a or shard.col_ind[a + pos] != j:
            bad += 1
    return bad


@dataclass(frozen=True)
class ShardMatchResult:
    """Outcome of a sharded run, mirroring ``TwoSidedResult``'s surface."""

    matching: Matching
    scaling: ScalingResult
    row_choice: IndexArray
    col_choice: IndexArray
    n_shards: int
    rounds: int
    tier: str
    plan: ShardPlan

    @property
    def cardinality(self) -> int:
        return self.matching.cardinality

    @property
    def guarantee(self) -> float:
        """The §3.3 expected-quality floor, by the scaling's ladder rung —
        identical to the unsharded ``TwoSidedResult.guarantee``."""
        return _rung_guarantee(self.scaling, TWO_SIDED_GUARANTEE)


def _pipeline_program(comm: SimComm, arg):
    shard, dr0, dc0, limit, tolerance, draws_rows, draws_cols = arg
    local = ShardScaleLocal(shard)
    dr, dc, error, done, converged, fell_back = yield from sk_rounds(
        comm, local, dr0, dc0, limit, tolerance
    )
    rc_blocks = yield from comm.allgather(
        shard_row_choices(shard, dc, draws_rows)
    )
    row_choice = np.concatenate(rc_blocks)
    cc_blocks = yield from comm.allgather(
        shard_col_choices(shard, dr, draws_cols)
    )
    col_choice = np.concatenate(cc_blocks)
    state = ReconcileState.from_choices(row_choice, col_choice)
    ranges = [
        (shard.row_lo, shard.row_hi),
        (shard.nrows + shard.col_lo, shard.nrows + shard.col_hi),
    ]
    yield from reconcile_rounds(comm, state, ranges)
    bad = yield from comm.allreduce(
        shard_validate_rows(shard, state.match), op="sum"
    )
    if comm.rank != 0:
        return {"bad": bad}
    return {
        "bad": bad,
        "dr": dr,
        "dc": dc,
        "error": error,
        "done": done,
        "converged": converged,
        "fell_back": fell_back,
        "row_choice": row_choice,
        "col_choice": col_choice,
        "state": state,
    }


def shard_match(
    graph: BipartiteGraph,
    n_shards: int = 2,
    iterations: int | None = 5,
    *,
    seed: SeedLike = None,
    tolerance: float | None = None,
    initial=None,
    validate: bool = True,
    plan: ShardPlan | None = None,
) -> ShardMatchResult:
    """Sharded TwoSidedMatch on the in-process tier.

    Bitwise equal to the unsharded serial pipeline for any *n_shards*;
    with ``validate=True`` (default) the merged matching is re-validated
    against the global graph before the result is returned, on top of
    the per-shard owned-row edge checks that always run.
    """
    if plan is None:
        plan = plan_shards(graph, n_shards)
    limit, requested_limit, rung = resolve_budget(graph, iterations, tolerance)
    dr0, dc0, warm = initial_factors(graph, initial)
    draws_rows, draws_cols = generate_draws(graph, seed)
    with _tm.span(
        "shard.match",
        n_shards=plan.n_shards, nrows=graph.nrows, ncols=graph.ncols,
        nnz=graph.nnz, boundary=plan.boundary_edges,
    ) as sp:
        results = run_ranks(
            _pipeline_program,
            [
                (s, dr0.copy(), dc0.copy(), limit, tolerance,
                 draws_rows, draws_cols)
                for s in plan.shards
            ],
        )
        head = results[0]
        if head["bad"]:
            raise MatchingError(
                f"sharded reconcile produced {head['bad']} matched edge(s)"
                f" absent from their owning shard's CSR slice"
            )
        if head["fell_back"]:
            rung = "uniform"
        maybe_warn_capped(
            rung, head["converged"], head["done"], head["error"],
            limit, requested_limit, tolerance,
        )
        scaling = ScalingResult(
            dr=head["dr"],
            dc=head["dc"],
            error=head["error"],
            iterations=head["done"],
            converged=head["converged"],
            history=(),
            rung=rung,
            warm_started=warm,
        )
        state: ReconcileState = head["state"]
        matching = state.result()
        if validate:
            matching.validate(graph)
        sp.set(
            cardinality=matching.cardinality, rounds=state.rounds,
            error=scaling.error, rung=rung,
        )
    return ShardMatchResult(
        matching=matching,
        scaling=scaling,
        row_choice=head["row_choice"],
        col_choice=head["col_choice"],
        n_shards=plan.n_shards,
        rounds=state.rounds,
        tier="sim",
        plan=plan,
    )
