"""Boundary reconciliation: Karp–Sipser as synchronous merge rounds.

The serial reference is the vectorized multithreaded KS engine
(:func:`repro.core.karp_sipser_mt.karp_sipser_mt_vectorized`): rounds of
*scan all out-one vertices → last-writer-wins conflict resolution in
ascending vertex order → commit + degree decrement*, then a one-shot
column phase 2.  That engine is already a sequence of whole-array passes,
so it shards naturally: each shard scans only its owned unified-id ranges
(its rows, then its columns — boundary edges included, since a choice may
point into a foreign shard), the per-shard candidate lists are allgathered
and concatenated in rank order — which *is* the serial ascending scan
order, because ownership ranges are contiguous and sorted — and every
shard applies the identical merged commit to its replicated O(n) state.

The commit's last-writer-wins scatter in ascending candidate order is the
deterministic tie order of the subsystem: it never consults shard ids, so
the merged matching is independent of the shard count.  :class:`ReconcileState`
is the single implementation of scan/commit used by the serial check, the
in-process tier, and the daemon tier.
"""

from __future__ import annotations

import numpy as np

from .._typing import NIL, IndexArray
from ..core.karp_sipser_mt import matching_from_unified, unify_choices
from ..matching.matching import Matching

__all__ = ["ReconcileState", "reconcile_rounds", "reconcile_serial"]


class ReconcileState:
    """Replicated state of the vectorized KS engine, driven in BSP rounds.

    ``scan_range`` is the shard-local step (pure read); ``commit`` applies
    one merged round and is deterministic given the merged candidate list.
    Splitting the engine at exactly this seam keeps every array operation
    literally the serial engine's, so the final ``match`` array is bitwise
    equal to :func:`karp_sipser_mt_vectorized` for any partition of the
    scan axis.
    """

    def __init__(self, choice: IndexArray, nrows: int, ncols: int) -> None:
        self.nrows = nrows
        self.ncols = ncols
        self.n = nrows + ncols
        self.choice = np.asarray(choice, dtype=np.int64)
        self.match = np.full(self.n, NIL, dtype=np.int64)
        valid = self.choice != NIL
        self.in_count = np.zeros(self.n, dtype=np.int64)
        np.add.at(self.in_count, self.choice[valid], 1)
        self.alive = valid.copy()
        self.rounds = 0

    @classmethod
    def from_choices(
        cls, row_choice: IndexArray, col_choice: IndexArray
    ) -> "ReconcileState":
        choice, nrows, ncols = unify_choices(row_choice, col_choice)
        return cls(choice, nrows, ncols)

    def scan_range(self, lo: int, hi: int) -> IndexArray:
        """Out-one candidates among unified ids ``[lo, hi)`` — no
        ``usable`` filter here; that needs the merged global view and is
        applied identically by every shard in :meth:`commit`."""
        sl = slice(lo, hi)
        return lo + np.flatnonzero(
            self.alive[sl] & (self.in_count[sl] == 0) & (self.match[sl] == NIL)
        )

    def commit(self, candidates: IndexArray) -> bool:
        """Apply one merged round; ``False`` means the round was empty
        after the usable filter (phase 1 is done)."""
        candidates = np.asarray(candidates, dtype=np.int64)
        targets = self.choice[candidates]
        if candidates.size:
            usable = self.match[targets] == NIL
            candidates = candidates[usable]
            targets = targets[usable]
        if candidates.size == 0:
            return False
        self.rounds += 1
        winner_of = np.full(self.n, NIL, dtype=np.int64)
        winner_of[targets] = candidates  # last writer wins: the tie order
        winners = winner_of[targets] == candidates
        w = candidates[winners]
        t = targets[winners]
        self.match[w] = t
        self.match[t] = w
        self.alive[candidates] = False
        self.alive[w] = False
        t_next = self.choice[t]
        has_next = t_next != NIL
        np.subtract.at(self.in_count, t_next[has_next], 1)
        return True

    def phase2(self) -> None:
        """The engine's one-shot column pass: unmatched columns claim their
        chosen still-free rows, conflicts resolved by the same scatter."""
        cols = np.arange(self.nrows, self.n, dtype=np.int64)
        v = self.choice[cols]
        ok = (v != NIL) & (self.match[cols] == NIL)
        ok[ok] &= self.match[v[ok]] == NIL
        cu = cols[ok]
        cv = v[ok]
        winner_of = np.full(self.n, NIL, dtype=np.int64)
        winner_of[cv] = cu
        keep = winner_of[cv] == cu
        self.match[cu[keep]] = cv[keep]
        self.match[cv[keep]] = cu[keep]

    def result(self) -> Matching:
        return matching_from_unified(self.match, self.nrows, self.ncols)

    # -- daemon-tier checkpoint plumbing ---------------------------------

    def export_state(self) -> dict:
        return {
            "nrows": self.nrows,
            "ncols": self.ncols,
            "choice": self.choice.tolist(),
            "match": self.match.tolist(),
            "in_count": self.in_count.tolist(),
            "alive": [int(a) for a in self.alive],
            "rounds": self.rounds,
        }

    @classmethod
    def import_state(cls, state: dict) -> "ReconcileState":
        obj = cls.__new__(cls)
        obj.nrows = int(state["nrows"])
        obj.ncols = int(state["ncols"])
        obj.n = obj.nrows + obj.ncols
        obj.choice = np.asarray(state["choice"], dtype=np.int64)
        obj.match = np.asarray(state["match"], dtype=np.int64)
        obj.in_count = np.asarray(state["in_count"], dtype=np.int64)
        obj.alive = np.asarray(state["alive"], dtype=np.int64).astype(bool)
        obj.rounds = int(state["rounds"])
        return obj


def reconcile_rounds(comm, state: ReconcileState, ranges) -> None:
    """The BSP reconcile loop as an :mod:`mpi_sim` subgenerator.

    *ranges* is this rank's list of owned ``(lo, hi)`` unified-id ranges
    (its row range, then its column range shifted by ``nrows``).  Ranks'
    ranges are contiguous and ascending with rank id per axis, so the
    rank-ordered allgather concatenation reproduces the serial scan order.
    """
    while True:
        parts = yield from comm.allgather(
            [state.scan_range(lo, hi) for lo, hi in ranges]
        )
        merged = np.concatenate(
            [p[axis] for axis in range(len(ranges)) for p in parts]
        )
        if not state.commit(merged):
            break
    state.phase2()
    return state


def reconcile_serial(
    row_choice: IndexArray, col_choice: IndexArray
) -> tuple[Matching, int]:
    """Single-shard reference: drive :class:`ReconcileState` over the full
    axis.  Exists so a test can pin the round loop to
    :func:`karp_sipser_mt_vectorized` bitwise."""
    state = ReconcileState.from_choices(row_choice, col_choice)
    ranges = [(0, state.nrows), (state.nrows, state.n)]
    while state.commit(
        np.concatenate([state.scan_range(lo, hi) for lo, hi in ranges])
    ):
        pass
    state.phase2()
    return state.result(), state.rounds
