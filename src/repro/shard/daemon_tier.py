"""Daemon execution tier: one journaled socket daemon per shard.

The coordinator mirrors the in-process tier's program step for step —
the same :mod:`repro.shard.scale` budget, the same sweep/choice/commit
order, the same rank-ordered concatenations — but each shard's kernel
steps run inside a serving daemon behind the
:class:`~repro.serve.router.Router`, reached through ``shard_*`` verbs.

Why the result is still bitwise equal to the sim tier (and therefore to
the serial pipeline):

* the daemons run the *same* :class:`~repro.shard.scale.ShardScaleLocal`
  and :class:`~repro.shard.reconcile.ReconcileState` code the coroutine
  ranks run — the tiers differ only in transport;
* JSON float round-trips are exact (shortest-repr), so vectors shipped
  over the wire come back bit for bit;
* the coordinator concatenates per-shard blocks in shard order, which is
  the same merge the ``allgather`` pattern performs.

Crash safety: ``shard_open`` / ``shard_arm`` / ``shard_commit`` /
``shard_finish`` are write-ahead journaled; ``shard_sweep`` /
``shard_choices`` / ``shard_scan`` are pure.  A shard daemon SIGKILLed
mid-round is revived by the router through ``--recover`` (journal replay
rebuilds the armed state and every committed round), and the in-flight
request retries under its original idempotency id — so the merged
matching equals the uninterrupted run's, or the failure surfaces as a
typed error.  Never a silently sub-quality matching.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import telemetry as _tm
from .._typing import SeedLike
from ..errors import MatchingError, ShardError
from ..graph.csr import BipartiteGraph
from ..core.karp_sipser_mt import matching_from_unified
from ..scaling.result import ScalingResult
from ..scaling.sinkhorn_knopp import initial_factors
from .partition import ShardPlan, plan_shards
from .pipeline import ShardMatchResult, generate_draws, shard_validate_rows
from .scale import maybe_warn_capped, resolve_budget

__all__ = ["shard_match_daemons"]


class _ShardHandles:
    """K namespaced shard handles plus typed request plumbing."""

    def __init__(self, router: Any, plan: ShardPlan, spec: Any) -> None:
        self.router = router
        self.plan = plan
        self.handles: list[str] = []
        for k in range(plan.n_shards):
            response = router.request(
                {
                    "op": "shard_open",
                    "graph": spec,
                    "n_shards": plan.n_shards,
                    "index": k,
                    "chunk_rows": plan.chunk_rows,
                    "chunk_cols": plan.chunk_cols,
                }
            )
            s = plan.shards[k]
            if (
                response["frontier"] != s.frontier_size
                or response["csr_nnz"] != s.csr_nnz
            ):
                raise ShardError(
                    f"shard {k} daemon built a different slice than the"
                    f" coordinator's plan: {response}"
                )
            self.handles.append(response["handle"])

    def call(self, k: int, op: str, **fields: Any) -> dict[str, Any]:
        return self.router.request(
            {"op": op, "handle": self.handles[k], **fields}
        )

    def close(self) -> None:
        for handle in self.handles:
            self.router.request({"op": "shard_close", "handle": handle})


def shard_match_daemons(
    spec: Any,
    n_shards: int = 2,
    iterations: int | None = 5,
    *,
    router: Any,
    seed: SeedLike = None,
    tolerance: float | None = None,
    validate: bool = True,
    graph: BipartiteGraph | None = None,
) -> ShardMatchResult:
    """Sharded TwoSidedMatch over *router*'s daemon fleet.

    *spec* is a daemon graph spec (see :func:`repro.serve.daemon.build_graph`)
    so every shard daemon can materialize the same graph independently;
    the coordinator builds it too (pass *graph* to reuse an existing
    build) for the plan, the draws, and the final global certificate.
    """
    from ..serve.daemon import build_graph

    if graph is None:
        graph = build_graph(spec, None)
    plan = plan_shards(graph, n_shards)
    limit, requested_limit, rung = resolve_budget(graph, iterations, tolerance)
    dr, dc, warm = initial_factors(graph, None)
    draws_rows, draws_cols = generate_draws(graph, seed)
    with _tm.span(
        "shard.match_daemons",
        n_shards=plan.n_shards, nrows=graph.nrows, ncols=graph.ncols,
        nnz=graph.nnz, boundary=plan.boundary_edges,
    ) as sp:
        shards = _ShardHandles(router, plan, spec)
        try:
            result = _drive(
                shards, plan, graph, dr, dc, limit, requested_limit, rung,
                tolerance, warm, draws_rows, draws_cols, validate,
            )
        finally:
            shards.close()
        sp.set(
            cardinality=result.matching.cardinality,
            rounds=result.rounds,
            error=result.scaling.error,
            rung=result.scaling.rung,
        )
    return result


def _drive(
    shards: _ShardHandles,
    plan: ShardPlan,
    graph: BipartiteGraph,
    dr: np.ndarray,
    dc: np.ndarray,
    limit: int,
    requested_limit: int,
    rung: str,
    tolerance: float | None,
    warm: bool,
    draws_rows: np.ndarray | None,
    draws_cols: np.ndarray | None,
    validate: bool,
) -> ShardMatchResult:
    K = plan.n_shards

    # -- Sinkhorn–Knopp, mirroring scale.sk_rounds ----------------------
    def col_sweep_with_error() -> tuple[float, np.ndarray]:
        errs = np.empty(K, dtype=np.float64)
        blocks = []
        for k in range(K):
            s = plan.shards[k]
            r = shards.call(
                k, "shard_sweep", which="col",
                dr=dr.tolist(), dc=dc[s.col_lo : s.col_hi].tolist(),
            )
            errs[k] = r["err"]
            blocks.append(np.asarray(r["dc_next"], dtype=np.float64))
        # np.max over the per-shard maxima propagates NaN, like the
        # sim tier's allreduce(max) fold.
        return (float(np.max(errs)) if K else 0.0), np.concatenate(blocks)

    error, dc_next = col_sweep_with_error()
    done = 0
    converged = False
    for _ in range(limit):
        if tolerance is not None and error <= tolerance:
            converged = True
            break
        dc, dc_next = dc_next, dc
        dr = np.concatenate(
            [
                np.asarray(
                    shards.call(k, "shard_sweep", which="row", dc=dc.tolist())[
                        "dr"
                    ],
                    dtype=np.float64,
                )
                for k in range(K)
            ]
        )
        done += 1
        error, dc_next = col_sweep_with_error()
    if tolerance is not None and error <= tolerance:
        converged = True
    fell_back = False
    if not (
        np.isfinite(error) and np.isfinite(dr).all() and np.isfinite(dc).all()
    ):
        fell_back = True
        dr = np.ones(graph.nrows, dtype=np.float64)
        dc = np.ones(graph.ncols, dtype=np.float64)
        converged = False
        error = float(
            np.max(
                [
                    shards.call(k, "shard_sweep", which="uniform")["err"]
                    for k in range(K)
                ]
            )
        )
    if fell_back:
        rung = "uniform"
    maybe_warn_capped(
        rung, converged, done, error, limit, requested_limit, tolerance
    )

    # -- choices --------------------------------------------------------
    def gather_choices(which: str, opp: np.ndarray, draws) -> np.ndarray:
        blocks = []
        for k in range(K):
            s = plan.shards[k]
            lo, hi = (
                (s.row_lo, s.row_hi) if which == "row" else (s.col_lo, s.col_hi)
            )
            r = shards.call(
                k, "shard_choices", which=which, opp=opp.tolist(),
                draws=None if draws is None else draws[lo:hi].tolist(),
            )
            blocks.append(np.asarray(r["choice"], dtype=np.int64))
        return np.concatenate(blocks)

    row_choice = gather_choices("row", dc, draws_rows)
    col_choice = gather_choices("col", dr, draws_cols)

    # -- reconcile rounds ----------------------------------------------
    for k in range(K):
        shards.call(
            k, "shard_arm",
            row_choice=row_choice.tolist(), col_choice=col_choice.tolist(),
        )
    rounds = 0
    while True:
        scans = [shards.call(k, "shard_scan") for k in range(K)]
        # Rows of every shard in shard order, then columns — the same
        # axis-major merge the sim tier's allgather concatenation does,
        # which is the serial ascending scan order.
        merged = [v for r in scans for v in r["rows"]] + [
            v for r in scans for v in r["cols"]
        ]
        committed = None
        for k in range(K):
            r = shards.call(k, "shard_commit", candidates=merged)
            if committed is None:
                committed = r["committed"]
                rounds = r["rounds"]
            elif r["committed"] != committed:
                raise ShardError(
                    f"shard {k} diverged from shard 0 on commit round"
                    f" {rounds}: replicated state is no longer replicated"
                )
        if not committed:
            break

    # -- finish + global certificate ------------------------------------
    finishes = [shards.call(k, "shard_finish") for k in range(K)]
    checksums = {f["checksum"] for f in finishes}
    if len(checksums) != 1:
        raise ShardError(
            f"shard daemons finished with diverging match checksums:"
            f" {sorted(checksums)}"
        )
    match = np.asarray(finishes[0]["match"], dtype=np.int64)
    rounds = int(finishes[0]["rounds"])
    bad = sum(
        shard_validate_rows(plan.shards[k], match) for k in range(K)
    )
    if bad:
        raise MatchingError(
            f"sharded reconcile produced {bad} matched edge(s) absent"
            f" from their owning shard's CSR slice"
        )
    matching = matching_from_unified(match, graph.nrows, graph.ncols)
    if validate:
        matching.validate(graph)
    scaling = ScalingResult(
        dr=dr,
        dc=dc,
        error=error,
        iterations=done,
        converged=converged,
        history=(),
        rung=rung,
        warm_started=warm,
    )
    return ShardMatchResult(
        matching=matching,
        scaling=scaling,
        row_choice=row_choice,
        col_choice=col_choice,
        n_shards=K,
        rounds=rounds,
        tier="daemon",
        plan=plan,
    )
