"""2-D sharded Sinkhorn–Knopp: row *and* column ownership per shard.

The 1-D seed (:mod:`repro.scaling.distributed`) partitions rows only and
rebuilds column sums with ``np.add.at`` — a reassociated reduction that
agrees with serial SK to rtol, not bitwise.  This module generalizes the
same allreduce pattern to two dimensions while keeping the serial kernels:
each shard owns a contiguous row range and a contiguous column range
(:class:`~repro.shard.partition.ShardSlice`) and runs the registered
``sk_sweep``/``sk_sweep_err`` kernels on its *rebased* CSC/CSR slices
against replicated opposite-side vectors.  Per column (and per row) the
arithmetic is then literally the serial kernel's — same gather, same
``segment_sums``, same reciprocal — so the gathered global vectors are
bitwise equal to :func:`repro.scaling.sinkhorn_knopp.scale_sinkhorn_knopp`
for every shard count, and the convergence error (a max, which is
association-free) matches exactly as well.

Communication per sweep: one ``allreduce(max)`` for the error and one
``allgather`` per updated vector — the Amestoy–Duff–Ruiz–Uçar pattern the
paper's §2.2 cites, with column ownership added.

The per-shard kernel steps live in :class:`ShardScaleLocal`, which both
execution tiers (the in-process :mod:`repro.parallel.mpi_sim` coroutines
here and the daemon tier in :mod:`repro.shard.daemon_tier`) call — the
tiers can only differ in transport, not arithmetic.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import telemetry as _tm
from .._typing import FloatArray
from ..errors import ConvergenceWarning, ScalingError
from ..graph.csr import BipartiteGraph
from ..parallel.kernels import run_kernel
from ..parallel.mpi_sim import SimComm, run_ranks
from ..scaling.result import ScalingResult
from ..scaling.sinkhorn_knopp import _lacks_total_support, initial_factors
from .partition import ShardPlan, ShardSlice, plan_shards

__all__ = [
    "ShardScaleLocal",
    "resolve_budget",
    "shard_scale",
    "maybe_warn_capped",
]


class ShardScaleLocal:
    """One shard's kernel-level SK steps, shared by both execution tiers."""

    def __init__(self, shard: ShardSlice) -> None:
        self.shard = shard

    def col_sweep(
        self, dr_full: FloatArray, dc_own: FloatArray
    ) -> tuple[FloatArray, float]:
        """The shard-local piece of the serial fused column pass: the next
        owned-column factors and the local max column-sum error of the
        *current* ``(dr, dc)``.  Row ids in the CSC slice are global, so
        ``dr_full`` is the whole replicated vector; ``dc_own`` is this
        shard's block."""
        s = self.shard
        n_local = s.n_local_cols
        dc_next = np.empty(n_local, dtype=np.float64)
        errs = run_kernel(
            "sk_sweep_err", n_local,
            {
                "ptr": s.col_ptr, "ind": s.row_ind,
                "opp": dr_full, "mine": dc_own, "out": dc_next,
            },
        )
        # np.max propagates NaN, which the non-finite fallback relies on
        # (mirrors the serial loop).
        return dc_next, (float(np.max(errs)) if errs else 0.0)

    def row_sweep(self, dc_full: FloatArray) -> FloatArray:
        """Next owned-row factors for the committed global ``dc``."""
        s = self.shard
        n_local = s.n_local_rows
        dr_own = np.empty(n_local, dtype=np.float64)
        run_kernel(
            "sk_sweep", n_local,
            {"ptr": s.row_ptr, "ind": s.col_ind, "opp": dc_full, "out": dr_own},
        )
        return dr_own

    def uniform_col_error(self) -> float:
        """Owned-column piece of ``column_sum_error(graph, ones, ones)`` —
        what the serial non-finite fallback reports.  A column of degree
        ``d`` sums ``d`` ones exactly, so ``|float(d) - 1|`` reproduces the
        serial ``segment_sums`` result bit for bit."""
        deg = np.diff(self.shard.col_ptr)
        nonempty = deg > 0
        if not nonempty.any():
            return 0.0
        return float(np.abs(deg[nonempty].astype(np.float64) - 1.0).max())


def resolve_budget(
    graph: BipartiteGraph,
    iterations: int | None,
    tolerance: float | None,
    *,
    max_iterations: int = 1000,
    degradation: bool = True,
    capped_iterations: int = 25,
    support_check_cutoff: int = 10_000,
) -> tuple[int, int, str]:
    """``(limit, requested_limit, rung)`` — the serial ladder decision,
    taken once on the global graph so every shard runs the same budget."""
    if iterations is not None and tolerance is not None:
        raise ScalingError("pass either iterations or tolerance, not both")
    if iterations is None and tolerance is None:
        iterations = 10  # the paper's default working budget
    if iterations is not None and iterations < 0:
        raise ScalingError(f"iterations must be >= 0, got {iterations}")
    if tolerance is not None and tolerance <= 0:
        raise ScalingError(f"tolerance must be positive, got {tolerance}")
    limit = iterations if iterations is not None else max_iterations
    requested_limit = limit
    rung = "full"
    if degradation:
        if graph.nnz == 0:
            rung, limit = "uniform", 0
        elif _lacks_total_support(
            graph,
            support_check_cutoff if limit > capped_iterations else 0,
        ):
            rung = "capped"
            limit = min(limit, capped_iterations)
    return limit, requested_limit, rung


def maybe_warn_capped(
    rung: str,
    converged: bool,
    done: int,
    error: float,
    limit: int,
    requested_limit: int,
    tolerance: float | None,
) -> None:
    """Emit the serial path's :class:`ConvergenceWarning` under the same
    condition and with the same message."""
    if rung == "capped" and not converged and (
        limit < requested_limit or tolerance is not None
    ):
        warnings.warn(
            ConvergenceWarning(
                f"matrix lacks total support; Sinkhorn-Knopp stopped "
                f"on the '{rung}' rung after {done} iteration(s) with "
                f"column-sum error {error:.6g}",
                achieved_error=error,
                rung=rung,
            ),
            stacklevel=3,
        )


def sk_rounds(
    comm: SimComm,
    local: ShardScaleLocal,
    dr: FloatArray,
    dc: FloatArray,
    limit: int,
    tolerance: float | None,
):
    """The serial SK loop as a collective program (a ``yield from``-able
    subgenerator for :mod:`repro.parallel.mpi_sim` rank coroutines).

    Returns ``(dr, dc, error, done, converged, fell_back)`` with ``dr``
    and ``dc`` full replicated vectors, bitwise equal on every rank to the
    serial loop's state.  ``fell_back`` reports the non-finite uniform
    fallback (the caller demotes the rung)."""
    s = local.shard

    def col_sweep_with_error():
        block, local_err = local.col_sweep(dr, dc[s.col_lo : s.col_hi])
        error = yield from comm.allreduce(local_err, op="max")
        blocks = yield from comm.allgather(block)
        # Contiguous rank-ordered blocks concatenate to the global vector
        # — pure data movement, no arithmetic to reassociate.
        return error, np.concatenate(blocks)

    error, dc_next = yield from col_sweep_with_error()
    done = 0
    converged = False
    for _ in range(limit):
        if tolerance is not None and error <= tolerance:
            converged = True
            break
        dc, dc_next = dc_next, dc  # commit the fused column sweep
        dr_blocks = yield from comm.allgather(local.row_sweep(dc))
        dr = np.concatenate(dr_blocks)
        done += 1
        error, dc_next = yield from col_sweep_with_error()
    if tolerance is not None and error <= tolerance:
        converged = True
    fell_back = False
    if not (
        np.isfinite(error)
        and np.isfinite(dr).all()
        and np.isfinite(dc).all()
    ):
        # The replicated state is identical on every rank, so every rank
        # takes this branch together — no collective divergence.
        fell_back = True
        dr = np.ones(s.nrows, dtype=np.float64)
        dc = np.ones(s.ncols, dtype=np.float64)
        converged = False
        error = yield from comm.allreduce(local.uniform_col_error(), op="max")
    return dr, dc, error, done, converged, fell_back


def _scale_program(comm: SimComm, arg):
    shard, dr0, dc0, limit, tolerance = arg
    out = yield from sk_rounds(
        comm, ShardScaleLocal(shard), dr0, dc0, limit, tolerance
    )
    return out


def shard_scale(
    graph: BipartiteGraph,
    iterations: int | None = None,
    *,
    n_shards: int = 2,
    tolerance: float | None = None,
    max_iterations: int = 1000,
    initial=None,
    degradation: bool = True,
    capped_iterations: int = 25,
    support_check_cutoff: int = 10_000,
    plan: ShardPlan | None = None,
) -> ScalingResult:
    """Sharded SK on the in-process fabric, bitwise equal to
    :func:`~repro.scaling.sinkhorn_knopp.scale_sinkhorn_knopp` (modulo
    ``history``, which the sharded path does not track)."""
    if plan is None:
        plan = plan_shards(graph, n_shards)
    limit, requested_limit, rung = resolve_budget(
        graph,
        iterations,
        tolerance,
        max_iterations=max_iterations,
        degradation=degradation,
        capped_iterations=capped_iterations,
        support_check_cutoff=support_check_cutoff,
    )
    dr0, dc0, warm = initial_factors(graph, initial)
    with _tm.span(
        "shard.scale",
        n_shards=plan.n_shards, nrows=graph.nrows, ncols=graph.ncols,
    ) as sp:
        results = run_ranks(
            _scale_program,
            [(s, dr0.copy(), dc0.copy(), limit, tolerance) for s in plan.shards],
        )
        dr, dc, error, done, converged, fell_back = results[0]
        if fell_back:
            rung = "uniform"
        maybe_warn_capped(
            rung, converged, done, error, limit, requested_limit, tolerance
        )
        sp.set(iterations=done, error=error, converged=converged, rung=rung)
    return ScalingResult(
        dr=dr,
        dc=dc,
        error=error,
        iterations=done,
        converged=converged,
        history=(),
        rung=rung,
        warm_started=warm,
    )
