"""Deterministic range partitioning of a bipartite graph into shards.

A :class:`ShardPlan` splits the row and column axes into ``K`` contiguous
ranges and gives each shard rebased CSR/CSC slices of its owned rows and
columns (indices into the *opposite* axis stay global), plus an explicit
frontier of boundary edges — edges whose row owner and column owner are
different shards.

Two properties make the plan more than a bookkeeping split:

* **Chunk alignment.**  Partition bounds are snapped to the choice
  kernel's chunk grid (:func:`repro.parallel.kernels.effective_chunk`).
  The choice kernel's tie-breaking cumsum is chunk-local, so a kernel
  run on a rebased slice whose bounds sit on global chunk boundaries
  reproduces the serial picks bit for bit.  The SK sweep kernels are
  segment-local and need no alignment, but share the same bounds.
* **Determinism.**  The plan is a pure function of ``(nrows, ncols,
  row_ptr, col_ptr, K)`` and the active chunk override — never of worker
  count, backend, or tier — so both execution tiers and the serial
  reference agree on ownership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ShardError
from ..parallel.kernels import effective_chunk
from .._typing import IndexArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.csr import BipartiteGraph
    from .pipeline import ShardMatchResult

__all__ = [
    "ShardSlice",
    "ShardPlan",
    "plan_shards",
    "shard_slice",
    "plan_for_budget",
]


@dataclass(frozen=True)
class ShardSlice:
    """One shard's owned ranges plus rebased CSR/CSC slices.

    ``row_ptr``/``col_ind`` describe the owned rows (pointers rebased to
    start at 0, column ids global); ``col_ptr``/``row_ind`` mirror that
    for the owned columns.  ``frontier_rows``/``frontier_cols`` list the
    boundary edges *leaving* this shard through a foreign column, one
    entry per edge, in CSR order.
    """

    index: int
    n_shards: int
    nrows: int
    ncols: int
    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int
    chunk_rows: int
    chunk_cols: int
    row_ptr: IndexArray
    col_ind: IndexArray
    col_ptr: IndexArray
    row_ind: IndexArray
    frontier_rows: IndexArray
    frontier_cols: IndexArray

    @property
    def n_local_rows(self) -> int:
        return self.row_hi - self.row_lo

    @property
    def n_local_cols(self) -> int:
        return self.col_hi - self.col_lo

    @property
    def csr_nnz(self) -> int:
        return int(self.row_ptr[-1])

    @property
    def csc_nnz(self) -> int:
        return int(self.col_ptr[-1])

    @property
    def held_nnz(self) -> int:
        """Edge entries this shard materializes (CSR + CSC slices)."""
        return self.csr_nnz + self.csc_nnz

    @property
    def frontier_size(self) -> int:
        return int(self.frontier_rows.shape[0])


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic K-way partition of one graph's row/column axes."""

    nrows: int
    ncols: int
    nnz: int
    n_shards: int
    row_bounds: tuple[int, ...]
    col_bounds: tuple[int, ...]
    chunk_rows: int
    chunk_cols: int
    shards: tuple[ShardSlice, ...]

    @property
    def boundary_edges(self) -> int:
        """Total edges whose row owner and column owner differ."""
        return sum(s.frontier_size for s in self.shards)

    @property
    def max_held_nnz(self) -> int:
        """The largest per-shard materialized edge count — the quantity a
        per-shard memory budget constrains."""
        return max(s.held_nnz for s in self.shards)

    def owner_of_row(self, i: int) -> int:
        return _owner(self.row_bounds, i, self.nrows, "row")

    def owner_of_col(self, j: int) -> int:
        return _owner(self.col_bounds, j, self.ncols, "column")

    def run(
        self,
        graph: "BipartiteGraph",
        iterations: int | None = 5,
        *,
        seed=None,
        tolerance: float | None = None,
        validate: bool = True,
    ) -> "ShardMatchResult":
        """Run the in-process tier over this plan (see
        :func:`repro.shard.pipeline.shard_match`)."""
        from .pipeline import shard_match

        return shard_match(
            graph,
            self.n_shards,
            iterations,
            seed=seed,
            tolerance=tolerance,
            validate=validate,
            plan=self,
        )


def _owner(bounds: tuple[int, ...], idx: int, n: int, axis: str) -> int:
    if not 0 <= idx < n:
        raise ShardError(f"{axis} id {idx} out of range for axis of size {n}")
    return int(np.searchsorted(np.asarray(bounds), idx, side="right")) - 1


def _aligned_bounds(n: int, parts: int, chunk: int) -> tuple[int, ...]:
    """``parts + 1`` non-decreasing bounds over ``[0, n]``, every interior
    bound a multiple of *chunk* — i.e. ranges are unions of whole kernel
    chunks (the last global chunk may be a tail shorter than *chunk*)."""
    if n <= 0:
        return tuple([0] * (parts + 1))
    n_chunks = -(-n // chunk)
    bounds = [min(round(i * n_chunks / parts) * chunk, n) for i in range(parts + 1)]
    bounds[0] = 0
    bounds[parts] = n
    for i in range(1, parts + 1):  # monotonic even under rounding ties
        bounds[i] = max(bounds[i], bounds[i - 1])
    return tuple(bounds)


def _make_slice(
    graph: "BipartiteGraph",
    row_bounds: tuple[int, ...],
    col_bounds: tuple[int, ...],
    k: int,
    n_shards: int,
    chunk_rows: int,
    chunk_cols: int,
) -> ShardSlice:
    rlo, rhi = row_bounds[k], row_bounds[k + 1]
    clo, chi = col_bounds[k], col_bounds[k + 1]
    row_ptr = graph.row_ptr[rlo : rhi + 1] - graph.row_ptr[rlo]
    col_ind = graph.col_ind[graph.row_ptr[rlo] : graph.row_ptr[rhi]]
    col_ptr = graph.col_ptr[clo : chi + 1] - graph.col_ptr[clo]
    row_ind = graph.row_ind[graph.col_ptr[clo] : graph.col_ptr[chi]]
    # Boundary frontier: owned-row edges whose column lives elsewhere.
    col_owner = np.searchsorted(np.asarray(col_bounds), col_ind, side="right") - 1
    crossing = np.flatnonzero(col_owner != k)
    frontier_cols = col_ind[crossing]
    frontier_rows = (
        rlo
        + np.searchsorted(row_ptr, crossing, side="right").astype(np.int64)
        - 1
    )
    return ShardSlice(
        index=k,
        n_shards=n_shards,
        nrows=graph.nrows,
        ncols=graph.ncols,
        row_lo=rlo,
        row_hi=rhi,
        col_lo=clo,
        col_hi=chi,
        chunk_rows=chunk_rows,
        chunk_cols=chunk_cols,
        row_ptr=np.ascontiguousarray(row_ptr),
        col_ind=np.ascontiguousarray(col_ind),
        col_ptr=np.ascontiguousarray(col_ptr),
        row_ind=np.ascontiguousarray(row_ind),
        frontier_rows=np.ascontiguousarray(frontier_rows),
        frontier_cols=np.ascontiguousarray(frontier_cols),
    )


def _resolve_chunks(
    graph: "BipartiteGraph",
    n_shards: int,
    chunk_rows: int | None,
    chunk_cols: int | None,
) -> tuple[int, int, tuple[int, ...], tuple[int, ...]]:
    if n_shards < 1:
        raise ShardError(f"n_shards must be >= 1, got {n_shards}")
    if chunk_rows is None:
        chunk_rows = effective_chunk(graph.nrows, "choice_scaled")
    if chunk_cols is None:
        chunk_cols = effective_chunk(graph.ncols, "choice_scaled")
    if chunk_rows < 1 or chunk_cols < 1:
        raise ShardError(
            f"chunk sizes must be >= 1, got {chunk_rows} and {chunk_cols}"
        )
    row_bounds = _aligned_bounds(graph.nrows, n_shards, chunk_rows)
    col_bounds = _aligned_bounds(graph.ncols, n_shards, chunk_cols)
    return int(chunk_rows), int(chunk_cols), row_bounds, col_bounds


def shard_slice(
    graph: "BipartiteGraph",
    n_shards: int,
    index: int,
    *,
    chunk_rows: int | None = None,
    chunk_cols: int | None = None,
) -> ShardSlice:
    """Build just shard *index* of the K-way plan — what a shard daemon
    materializes, without holding the other K-1 slices.  Passing explicit
    chunk sizes (the coordinator's) pins the bounds even if this process
    has a different chunk override active."""
    if not 0 <= index < n_shards:
        raise ShardError(
            f"shard index {index} out of range for n_shards={n_shards}"
        )
    chunk_rows, chunk_cols, row_bounds, col_bounds = _resolve_chunks(
        graph, n_shards, chunk_rows, chunk_cols
    )
    return _make_slice(
        graph, row_bounds, col_bounds, index, n_shards, chunk_rows, chunk_cols
    )


def plan_shards(
    graph: "BipartiteGraph",
    n_shards: int,
    *,
    chunk_rows: int | None = None,
    chunk_cols: int | None = None,
) -> ShardPlan:
    """Partition *graph* into *n_shards* deterministic range shards.

    Every shard exists even when its range is empty — the fabric needs a
    fixed rank count for collectives — so ``K`` never silently shrinks.
    """
    chunk_rows, chunk_cols, row_bounds, col_bounds = _resolve_chunks(
        graph, n_shards, chunk_rows, chunk_cols
    )
    nrows, ncols = graph.nrows, graph.ncols
    shards = [
        _make_slice(
            graph, row_bounds, col_bounds, k, n_shards, chunk_rows, chunk_cols
        )
        for k in range(n_shards)
    ]
    return ShardPlan(
        nrows=nrows,
        ncols=ncols,
        nnz=graph.nnz,
        n_shards=n_shards,
        row_bounds=row_bounds,
        col_bounds=col_bounds,
        chunk_rows=chunk_rows,
        chunk_cols=chunk_cols,
        shards=tuple(shards),
    )


def plan_for_budget(graph: "BipartiteGraph", max_held_nnz: int) -> ShardPlan:
    """The smallest-K plan whose largest shard materializes at most
    *max_held_nnz* edge entries (CSR + CSC slices combined).

    Raises :class:`ShardError` when no K can satisfy the budget — sharding
    only divides edges along chunk-aligned ranges, so a budget below the
    densest chunk's edge count is unsatisfiable.
    """
    if max_held_nnz < 1:
        raise ShardError(f"max_held_nnz must be >= 1, got {max_held_nnz}")
    chunk_rows = effective_chunk(graph.nrows, "choice_scaled")
    chunk_cols = effective_chunk(graph.ncols, "choice_scaled")
    k_cap = max(
        1,
        -(-graph.nrows // chunk_rows) if graph.nrows else 1,
        -(-graph.ncols // chunk_cols) if graph.ncols else 1,
    )
    best = None
    for k in range(1, k_cap + 1):
        plan = plan_shards(graph, k)
        best = plan
        if plan.max_held_nnz <= max_held_nnz:
            return plan
    assert best is not None
    raise ShardError(
        f"no shard count up to {k_cap} fits max_held_nnz={max_held_nnz}; "
        f"the finest chunk-aligned split still holds {best.max_held_nnz} "
        "edge entries in its largest shard"
    )
