"""Sharded matching: partitioned scale→choice→KS with reconciliation.

The first leg of the "graphs bigger than one machine" north star: a
bipartite graph is partitioned into K deterministic range shards
(:mod:`repro.shard.partition`), each shard runs the full pipeline on its
rebased CSR/CSC slices — 2-D distributed Sinkhorn–Knopp
(:mod:`repro.shard.scale`), chunk-aligned choice sampling, BSP
Karp–Sipser reconciliation (:mod:`repro.shard.reconcile`) — and the
merged matching carries the same §3.3 certificate as the unsharded
path, re-proved on the global graph.

Two execution tiers behind one :class:`~repro.shard.partition.ShardPlan`:

* ``shard_match`` — in-process coroutine ranks on
  :mod:`repro.parallel.mpi_sim`; bitwise equal to the serial vectorized
  pipeline for every shard count (the provable tier).
* ``shard_match_daemons`` — one journaled socket daemon per shard behind
  the :class:`~repro.serve.router.Router`; shard crashes recover through
  the write-ahead journal with zero acked-request loss (the scale tier).

See ``docs/sharding.md`` for the design and the guarantee argument.
"""

from .partition import (
    ShardPlan,
    ShardSlice,
    plan_for_budget,
    plan_shards,
    shard_slice,
)
from .pipeline import ShardMatchResult, shard_match
from .reconcile import ReconcileState, reconcile_serial
from .scale import shard_scale

__all__ = [
    "ShardPlan",
    "ShardSlice",
    "plan_shards",
    "shard_slice",
    "plan_for_budget",
    "ShardMatchResult",
    "shard_match",
    "shard_match_daemons",
    "ReconcileState",
    "reconcile_serial",
    "shard_scale",
]


def shard_match_daemons(*args, **kwargs):
    """Lazy alias for :func:`repro.shard.daemon_tier.shard_match_daemons`
    (imports the serving stack only when the daemon tier is used)."""
    from .daemon_tier import shard_match_daemons as _impl

    return _impl(*args, **kwargs)
