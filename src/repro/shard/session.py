"""Server-side state of one shard daemon: the daemon tier's half-step.

A :class:`ShardSession` is what a ``shard_open`` verb materializes inside
a serving daemon: one :class:`~repro.shard.partition.ShardSlice` (built
with the *coordinator's* pinned chunk sizes, so ownership bounds agree
across processes), the shard-local kernel steps
(:class:`~repro.shard.scale.ShardScaleLocal`), and — once armed — a
replicated :class:`~repro.shard.reconcile.ReconcileState`.

Every method here is one daemon verb's body.  The split between *pure*
verbs (``sweep``, ``choices``, ``scan`` — deterministic functions of the
request payload and armed state, safe to re-run) and *mutating* verbs
(``arm``, ``commit``, ``finish`` — journaled write-ahead by the registry)
is what lets a SIGKILLed shard daemon recover to the exact replicated
state its peers hold: replaying the journal re-runs ``arm`` and the
committed rounds, and ``finish`` (phase 2) is idempotent by construction.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from .._typing import NIL
from ..errors import ShardError
from .partition import ShardSlice, shard_slice
from .pipeline import _slice_choices
from .reconcile import ReconcileState
from .scale import ShardScaleLocal

__all__ = ["ShardSession"]


def _floats(value: Any, field: str) -> np.ndarray:
    if value is None:
        raise ShardError(f"shard verb is missing the {field!r} vector")
    return np.asarray(value, dtype=np.float64)


class ShardSession:
    """One daemon-resident shard: slice + kernels + reconcile state."""

    def __init__(
        self,
        spec: Any,
        shard: ShardSlice,
    ) -> None:
        self.spec = spec
        self.shard = shard
        self.local = ShardScaleLocal(shard)
        self.state: ReconcileState | None = None

    @classmethod
    def build(
        cls,
        graph: Any,
        spec: Any,
        n_shards: int,
        index: int,
        *,
        chunk_rows: int | None = None,
        chunk_cols: int | None = None,
    ) -> "ShardSession":
        shard = shard_slice(
            graph,
            int(n_shards),
            int(index),
            chunk_rows=None if chunk_rows is None else int(chunk_rows),
            chunk_cols=None if chunk_cols is None else int(chunk_cols),
        )
        return cls(spec, shard)

    def info(self) -> dict[str, Any]:
        s = self.shard
        return {
            "index": s.index,
            "n_shards": s.n_shards,
            "nrows": s.nrows,
            "ncols": s.ncols,
            "row_lo": s.row_lo,
            "row_hi": s.row_hi,
            "col_lo": s.col_lo,
            "col_hi": s.col_hi,
            "csr_nnz": s.csr_nnz,
            "csc_nnz": s.csc_nnz,
            "frontier": s.frontier_size,
        }

    # -- pure verbs (never journaled; deterministic in their inputs) -----

    def sweep(self, msg: dict[str, Any]) -> dict[str, Any]:
        which = str(msg.get("which", "col"))
        if which == "col":
            dc_next, err = self.local.col_sweep(
                _floats(msg.get("dr"), "dr"), _floats(msg.get("dc"), "dc")
            )
            return {"dc_next": dc_next.tolist(), "err": err}
        if which == "row":
            dr_own = self.local.row_sweep(_floats(msg.get("dc"), "dc"))
            return {"dr": dr_own.tolist()}
        if which == "uniform":
            return {"err": self.local.uniform_col_error()}
        raise ShardError(
            f"unknown sweep kind {which!r}; expected 'col', 'row', or"
            f" 'uniform'"
        )

    def choices(self, msg: dict[str, Any]) -> dict[str, Any]:
        s = self.shard
        which = str(msg.get("which", "row"))
        opp = _floats(msg.get("opp"), "opp")
        draws = msg.get("draws")
        block = None if draws is None else np.asarray(draws, dtype=np.float64)
        if which == "row":
            # The draws block is this shard's owned slice, so lo=0 against
            # the block equals the global [row_lo, row_hi) slice.
            out = _slice_choices(
                s.n_local_rows, 0, s.n_local_rows,
                s.row_ptr, s.col_ind, opp, block, s.chunk_rows,
            )
        elif which == "col":
            out = _slice_choices(
                s.n_local_cols, 0, s.n_local_cols,
                s.col_ptr, s.row_ind, opp, block, s.chunk_cols,
            )
        else:
            raise ShardError(
                f"unknown choices kind {which!r}; expected 'row' or 'col'"
            )
        return {"choice": out.tolist()}

    def scan(self) -> dict[str, Any]:
        state = self.require_state()
        s = self.shard
        return {
            "rows": state.scan_range(s.row_lo, s.row_hi).tolist(),
            "cols": state.scan_range(
                s.nrows + s.col_lo, s.nrows + s.col_hi
            ).tolist(),
        }

    # -- mutating verbs (journaled write-ahead by the registry) ----------

    def arm(self, msg: dict[str, Any]) -> dict[str, Any]:
        row_choice = np.asarray(msg.get("row_choice"), dtype=np.int64)
        col_choice = np.asarray(msg.get("col_choice"), dtype=np.int64)
        s = self.shard
        if row_choice.shape[0] != s.nrows or col_choice.shape[0] != s.ncols:
            raise ShardError(
                f"arm expects full global choice vectors ({s.nrows} rows,"
                f" {s.ncols} cols); got {row_choice.shape[0]} and"
                f" {col_choice.shape[0]}"
            )
        self.state = ReconcileState.from_choices(row_choice, col_choice)
        return {"armed": True, "rounds": 0}

    def commit(self, msg: dict[str, Any]) -> dict[str, Any]:
        state = self.require_state()
        candidates = np.asarray(
            msg.get("candidates", ()), dtype=np.int64
        )
        committed = state.commit(candidates)
        return {"committed": committed, "rounds": state.rounds}

    def finish(self) -> dict[str, Any]:
        """Phase 2 + digest.  Idempotent: phase 2 re-run on its own output
        matches nothing new, so a journal replay that repeats ``finish``
        converges to the same match array and checksum."""
        state = self.require_state()
        state.phase2()
        return {
            "checksum": hashlib.sha256(state.match.tobytes()).hexdigest(),
            "matched": int(
                np.count_nonzero(state.match[: state.nrows] != NIL)
            ),
            "rounds": state.rounds,
        }

    def require_state(self) -> ReconcileState:
        if self.state is None:
            raise ShardError(
                "shard session is not armed; send 'shard_arm' with the"
                " global choice vectors first"
            )
        return self.state

    # -- checkpoint plumbing ---------------------------------------------

    def export_state(self) -> dict[str, Any]:
        s = self.shard
        return {
            "graph": self.spec,
            "n_shards": s.n_shards,
            "index": s.index,
            "chunk_rows": s.chunk_rows,
            "chunk_cols": s.chunk_cols,
            "state": None if self.state is None else self.state.export_state(),
        }

    @classmethod
    def import_state(cls, state: dict[str, Any], cache: Any) -> "ShardSession":
        from ..serve.daemon import build_graph

        session = cls.build(
            build_graph(state["graph"], cache),
            state["graph"],
            int(state["n_shards"]),
            int(state["index"]),
            chunk_rows=int(state["chunk_rows"]),
            chunk_cols=int(state["chunk_cols"]),
        )
        if state.get("state") is not None:
            session.state = ReconcileState.import_state(state["state"])
        return session
