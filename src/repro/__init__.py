"""repro — bipartite matching heuristics with quality guarantees.

A from-scratch reproduction of:

    Fanny Dufossé, Kamer Kaya, Bora Uçar.
    *Bipartite matching heuristics with quality guarantees on shared
    memory parallel computers.*  Inria RR-8386 / IPDPS 2014.

Public API highlights
---------------------
* :func:`repro.one_sided_match` / :func:`repro.two_sided_match` — the
  paper's two heuristics (Algorithms 2 and 3).
* :func:`repro.scale_sinkhorn_knopp` — parallel doubly stochastic scaling
  (Algorithm 1).
* :func:`repro.karp_sipser_mt` — the specialised exact Karp–Sipser for
  choice subgraphs (Algorithm 4), with serial, simulated-parallel and
  real-thread engines.
* :mod:`repro.graph` — graph container, generators (including the paper's
  adversarial family and a synthetic proxy suite for its 12 UFL
  instances), Dulmage–Mendelsohn decomposition.
* :mod:`repro.matching` — exact matchers (Hopcroft–Karp, MC21) and
  baseline heuristics (greedy variants, classic Karp–Sipser).
* :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation (``python -m repro.experiments list``).
* :mod:`repro.telemetry` — opt-in observability (counters/timers/spans
  wired through the hot paths; ``python -m repro telemetry`` for a
  per-run report, ``docs/observability.md`` for the metric catalogue).
* :mod:`repro.resilience` — fault injection, the deadline/retry
  :class:`~repro.resilience.ResilientBackend`, and the chaos harness
  (``python -m repro chaos``; ``docs/resilience.md``).
* :mod:`repro.stream` — dynamic bipartite graphs with epoch-stamped
  snapshots, warm-started quality re-certification, and incremental
  matching repair (``python -m repro stream``; ``docs/streaming.md``).
"""

from repro.constants import (
    ONE_SIDED_GUARANTEE,
    RHO,
    TWO_SIDED_GUARANTEE,
)
from repro.errors import (
    BackendError,
    ConvergenceWarning,
    DeadlineExceededError,
    GraphStructureError,
    MatchingError,
    ReproError,
    ResultCorruptionError,
    RetryExhaustedError,
    ScalingError,
    ShapeError,
    StreamError,
    TelemetryError,
    ValidationError,
    WorkerCrashError,
)
from repro import telemetry
from repro.graph import BipartiteGraph
from repro.matching import (
    AuctionResult,
    Matching,
    NIL,
    auction_match,
    hopcroft_karp,
    karp_sipser,
    mc21,
    push_relabel,
    sprank,
)
from repro.scaling import (
    ScalingResult,
    dual_prices,
    scale_ruiz,
    scale_sinkhorn_knopp,
)
from repro.core import (
    OneSidedResult,
    TwoSidedResult,
    karp_sipser_mt,
    matching_quality,
    one_sided_match,
    two_sided_match,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # constants
    "ONE_SIDED_GUARANTEE",
    "TWO_SIDED_GUARANTEE",
    "RHO",
    # errors
    "ReproError",
    "GraphStructureError",
    "ShapeError",
    "ScalingError",
    "ConvergenceWarning",
    "MatchingError",
    "ValidationError",
    "BackendError",
    "WorkerCrashError",
    "DeadlineExceededError",
    "ResultCorruptionError",
    "RetryExhaustedError",
    "StreamError",
    "TelemetryError",
    # telemetry
    "telemetry",
    # graph
    "BipartiteGraph",
    # matching
    "Matching",
    "NIL",
    "hopcroft_karp",
    "mc21",
    "push_relabel",
    "sprank",
    "karp_sipser",
    # scaling
    "ScalingResult",
    "scale_sinkhorn_knopp",
    "scale_ruiz",
    # core
    "one_sided_match",
    "OneSidedResult",
    "two_sided_match",
    "TwoSidedResult",
    "karp_sipser_mt",
    "matching_quality",
]
