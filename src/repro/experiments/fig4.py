"""Figures 4a/4b — modelled speedups of KarpSipserMT and TwoSidedMatch.

Paper setup: same grid as Figure 3; KarpSipserMT uses
``schedule(guided)``.  Reported: KarpSipserMT averages 11.1x at 16
threads (max 12.6 on channel); TwoSidedMatch averages 10.6x.

Reproduction: the Phase-1 work profile is *measured* by replaying the
serial engine on the actual choice arrays of the instance
(:func:`repro.core.karp_sipser_mt.karp_sipser_mt_work_profile` — each
root vertex is charged its chain length), then scheduled with the guided
policy; Phase 2 is a constant-work-per-column loop.  TwoSidedMatch
composes ScaleSK + two choice samplings + KarpSipserMT.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, rng_from
from repro.core.choice import scaled_col_choices, scaled_row_choices
from repro.core.karp_sipser_mt import karp_sipser_mt_work_profile
from repro.experiments.common import Table
from repro.experiments.fig3 import DEFAULT_THREADS, _combined_speedup
from repro.graph.suite import SUITE_NAMES, suite_instance
from repro.parallel.machine import MachineModel, ScheduleSpec
from repro.scaling.sinkhorn_knopp import (
    scale_sinkhorn_knopp,
    sinkhorn_knopp_work_profile,
)

__all__ = ["run_fig4"]


def run_fig4(
    names: tuple[str, ...] = SUITE_NAMES,
    threads: tuple[int, ...] = DEFAULT_THREADS,
    n_override: int | None = None,
    seed: SeedLike = 0,
    model: MachineModel | None = None,
) -> tuple[Table, Table]:
    """Regenerate Figures 4a (KarpSipserMT) and 4b (TwoSidedMatch)."""
    model = model or MachineModel()
    cols = ["name"] + [f"p={p}" for p in threads]
    t_ks = Table("Figure 4a: KarpSipserMT modelled speedups", cols)
    t_two = Table("Figure 4b: TwoSidedMatch modelled speedups", cols)

    for name in names:
        rng = rng_from(seed)
        graph = suite_instance(name, n=n_override, seed=seed)
        # Chunk sizes scaled with instance size to keep the paper's chunk
        # count (see fig3.py for the rationale).
        dyn = ScheduleSpec.dynamic(min(512, max(16, graph.nrows // 256)))
        guided = ScheduleSpec.guided(min(64, max(4, graph.nrows // 2048)))
        scaling = scale_sinkhorn_knopp(graph, 1)
        rc = scaled_row_choices(graph, scaling.dr, scaling.dc, rng)
        cc = scaled_col_choices(graph, scaling.dr, scaling.dc, rng)

        phase1_profile = karp_sipser_mt_work_profile(rc, cc)
        phase2_profile = np.full(graph.ncols, 3.0)
        ks_nests = [
            (phase1_profile, guided, 64.0, 1),
            (phase2_profile, guided, 16.0, 1),
        ]

        scale_profile = sinkhorn_knopp_work_profile(graph)
        row_choice_profile = graph.row_degrees().astype(np.float64) + 6.0
        col_choice_profile = graph.col_degrees().astype(np.float64) + 6.0
        two_nests = [
            (scale_profile, dyn, 64.0, 2),
            (row_choice_profile, dyn, 16.0, 0),
            (col_choice_profile, dyn, 16.0, 0),
        ] + ks_nests

        t_ks.add_row(
            [name] + [_combined_speedup(model, ks_nests, p) for p in threads]
        )
        t_two.add_row(
            [name] + [_combined_speedup(model, two_nests, p) for p in threads]
        )
    t_ks.note("paper at p=16: geometric mean 11.1, max 12.6 (channel)")
    t_two.note("paper at p=16: geometric mean 10.6")
    return t_ks, t_two
