"""Shared infrastructure for the experiment harness: tables and timing."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

__all__ = ["Table", "timeit", "fmt"]


def fmt(value: Any, precision: int = 3) -> str:
    """Human format: floats to *precision*, ints grouped, rest via str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 10 ** -precision):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class Table:
    """A plain-text table with the paper's row/column layout.

    >>> t = Table("demo", ["k", "quality"])
    >>> t.add_row([2, 0.987])
    >>> print(t.render())  # doctest: +SKIP
    """

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    precision: int = 3

    def add_row(self, values: Iterable[Any]) -> None:
        row = list(values)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[fmt(v, self.precision) for v in row] for row in self.rows]
        widths = [
            max(len(str(c)), *(len(r[i]) for r in cells)) if cells else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        sep = "  "
        header = sep.join(str(c).rjust(w) for c, w in zip(self.columns, widths))
        rule = "-" * len(header)
        lines = [f"== {self.title} ==", header, rule]
        for row in cells:
            lines.append(sep.join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_records(self) -> list[dict[str, Any]]:
        """Rows as dictionaries (for JSON output / programmatic use)."""
        return [dict(zip(self.columns, row)) for row in self.rows]


def timeit(fn: Callable[[], Any], repeats: int = 1) -> tuple[float, Any]:
    """Best-of-*repeats* wall time of ``fn()`` and its (last) result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result
