"""Experiment registry: one entry per paper table/figure.

Each entry maps an experiment id to a runner ``fn(full: bool, seed: int,
n: int | None, runs: int | None) -> list[Table]``.  ``full=True`` uses the
paper's original sizes (hours of CPython time on large entries — the
default sizes reproduce the shapes in minutes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments.common import Table

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment"]

Runner = Callable[[bool, int, "int | None", "int | None"], list[Table]]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    id: str
    paper_ref: str
    description: str
    runner: Runner


def _table1(full: bool, seed: int, n: int | None, runs: int | None) -> list[Table]:
    from repro.experiments.table1 import run_table1

    return [
        run_table1(
            n=n or 3200,
            runs=runs or (10 if full else 5),
            seed=seed,
        )
    ]


def _table2(full: bool, seed: int, n: int | None, runs: int | None) -> list[Table]:
    from repro.experiments.table2 import run_table2

    return [
        run_table2(
            n=n or (100_000 if full else 20_000),
            runs=runs or (10 if full else 3),
            seed=seed,
        )
    ]


def _table3(full: bool, seed: int, n: int | None, runs: int | None) -> list[Table]:
    from repro.experiments.table3 import run_table3

    return [run_table3(n_override=n, seed=seed)]


def _fig3(full: bool, seed: int, n: int | None, runs: int | None) -> list[Table]:
    from repro.experiments.fig3 import run_fig3

    return list(run_fig3(n_override=n, seed=seed))


def _fig4(full: bool, seed: int, n: int | None, runs: int | None) -> list[Table]:
    from repro.experiments.fig4 import run_fig4

    return list(run_fig4(n_override=n, seed=seed))


def _fig5(full: bool, seed: int, n: int | None, runs: int | None) -> list[Table]:
    from repro.experiments.fig5 import run_fig5

    return list(run_fig5(n_override=n, runs=runs or 3, seed=seed))


def _collection(
    full: bool, seed: int, n: int | None, runs: int | None
) -> list[Table]:
    from repro.experiments.collection import run_collection

    return [
        run_collection(
            n_matrices=runs or (200 if full else 40),
            seed=seed,
            max_n=n or 4000,
        )
    ]


def _rectangular(
    full: bool, seed: int, n: int | None, runs: int | None
) -> list[Table]:
    from repro.experiments.rectangular import run_rectangular

    nrows = n or (100_000 if full else 20_000)
    return [
        run_rectangular(
            nrows=nrows,
            ncols=int(nrows * 1.2),
            runs=runs or (10 if full else 5),
            seed=seed,
        )
    ]


def _convergence(
    full: bool, seed: int, n: int | None, runs: int | None
) -> list[Table]:
    from repro.experiments.convergence import run_convergence

    return [
        run_convergence(
            n=n or (2_000 if full else 500),
            iterations=runs or 80,
            seed=seed,
        )
    ]


def _undirected(
    full: bool, seed: int, n: int | None, runs: int | None
) -> list[Table]:
    from repro.experiments.undirected import run_undirected

    return [
        run_undirected(
            n=n or (10_000 if full else 2_000),
            runs=runs or 3,
            seed=seed,
        )
    ]


def _conjecture(
    full: bool, seed: int, n: int | None, runs: int | None
) -> list[Table]:
    from repro.experiments.conjecture import run_conjecture

    sizes = (1_000, 10_000, 100_000, 1_000_000) if full else (1_000, 10_000, 100_000)
    if n:
        sizes = (n,)
    return [run_conjecture(sizes=sizes, trials=runs or 5, seed=seed)]


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment(
            "table1", "Table 1 / §4.1.2",
            "Karp-Sipser vs TwoSidedMatch on the adversarial family",
            _table1,
        ),
        Experiment(
            "table2", "Table 2 / §4.1.3",
            "qualities on sprank-deficient Erdos-Renyi matrices",
            _table2,
        ),
        Experiment(
            "table3", "Table 3 / §4.2",
            "suite properties, scaling errors, sequential times",
            _table3,
        ),
        Experiment(
            "fig3", "Figures 3a,3b / §4.2",
            "modelled speedups: ScaleSK and OneSidedMatch",
            _fig3,
        ),
        Experiment(
            "fig4", "Figures 4a,4b / §4.2",
            "modelled speedups: KarpSipserMT and TwoSidedMatch",
            _fig4,
        ),
        Experiment(
            "fig5", "Figures 5a,5b / §4.2",
            "qualities across the suite at 0/1/5 scaling iterations",
            _fig5,
        ),
        Experiment(
            "collection", "§4.1.1",
            "guarantee check over a fully indecomposable collection",
            _collection,
        ),
        Experiment(
            "rectangular", "§4.1.3",
            "rectangular sprank-deficient matrices",
            _rectangular,
        ),
        Experiment(
            "conjecture", "Conjecture 1 / §3.2",
            "maximum matchings of random 1-out graphs -> 0.866n",
            _conjecture,
        ),
        Experiment(
            "undirected", "§5 (extension)",
            "the heuristics on undirected graphs vs exact blossom",
            _undirected,
        ),
        Experiment(
            "convergence", "§3.3 (cited theory)",
            "SK convergence rate: observed vs Knight's sigma_2^2",
            _convergence,
        ),
    ]
}


def get_experiment(exp_id: str) -> Experiment:
    """Look up a registered experiment by id (raises ExperimentError)."""
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {known}"
        ) from None


def run_experiment(
    exp_id: str,
    *,
    full: bool = False,
    seed: int = 0,
    n: int | None = None,
    runs: int | None = None,
) -> list[Table]:
    """Run one experiment and return its tables."""
    return get_experiment(exp_id).runner(full, seed, n, runs)
