"""Conjecture 1 support — maximum matchings of random 1-out graphs.

The conjecture: TwoSidedMatch achieves ``2(1-ρ)n ≈ 0.8657 n``
asymptotically almost surely on matrices with total support.  The
supporting evidence in the paper is the Karoński–Pittel analysis of the
all-ones case, where the choice subgraph is a *uniform random 1-out
bipartite graph*.  This experiment samples such graphs at growing n and
measures the exact maximum matching (KarpSipserMT is exact there),
showing convergence to the constant.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, rng_from
from repro.constants import TWO_SIDED_GUARANTEE
from repro.core.oneout import one_out_max_matching_size
from repro.experiments.common import Table

__all__ = ["run_conjecture"]

DEFAULT_SIZES = (1_000, 10_000, 100_000)


def run_conjecture(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    trials: int = 5,
    seed: SeedLike = 0,
) -> Table:
    """Measure |maximum matching| / n on uniform 1-out graphs."""
    rng = rng_from(seed)
    table = Table(
        f"Conjecture 1: random 1-out graphs, {trials} trials, "
        f"target 2(1-rho) = {TWO_SIDED_GUARANTEE:.6f}",
        ["n", "mean |M|/n", "std", "deviation from 2(1-rho)"],
    )
    for n in sizes:
        ratios = np.array(
            [one_out_max_matching_size(n, rng) / n for _ in range(trials)]
        )
        table.add_row(
            [
                n,
                float(ratios.mean()),
                float(ratios.std()),
                float(abs(ratios.mean() - TWO_SIDED_GUARANTEE)),
            ]
        )
    table.note("deviation should shrink as n grows (a.a.s. convergence)")
    return table
