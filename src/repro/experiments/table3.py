"""Table 3 — instance properties, scaling errors, sequential run times.

Paper setup: the 12 UFL instances; for each, n, edge count, average
degree, sprank/n, the scaling error after 1/5/10 Sinkhorn–Knopp
iterations, and single-thread times of ScaleSK (one iteration),
OneSidedMatch, KarpSipserMT and TwoSidedMatch (each heuristic time
includes its prerequisites, as in the paper).

This reproduction uses the synthetic proxy suite
(:mod:`repro.graph.suite`); absolute times are CPython-vs-C apart, but the
*relative* pattern the paper reads off the table holds: OneSidedMatch
costs ~2x ScaleSK, TwoSidedMatch ~2.6x OneSidedMatch, road-type instances
have sprank/n < 1, and errors collapse after a few iterations except on
the road networks (europe_osm error 8.0, road_usa 6.0 even at 10
iterations — structurally deficient columns cannot be balanced).
"""

from __future__ import annotations

import time

from repro._typing import SeedLike
from repro.core.karp_sipser_mt import karp_sipser_mt
from repro.core.choice import scaled_col_choices, scaled_row_choices
from repro.core.onesided import one_sided_match
from repro.core.twosided import two_sided_match
from repro.experiments.common import Table
from repro.graph.suite import SUITE_NAMES, suite_instance
from repro.matching.exact.sprank import sprank
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

__all__ = ["run_table3"]


def run_table3(
    names: tuple[str, ...] = SUITE_NAMES,
    n_override: int | None = None,
    seed: SeedLike = 0,
    compute_sprank: bool = True,
) -> Table:
    """Regenerate Table 3 on the synthetic suite."""
    table = Table(
        "Table 3: suite properties, scaling errors, sequential seconds",
        [
            "name", "n", "edges", "avg.deg", "sprank/n",
            "err(1)", "err(5)", "err(10)",
            "ScaleSK", "OneSided", "KS-MT", "TwoSided",
        ],
    )
    for name in names:
        graph = suite_instance(name, n=n_override, seed=seed)
        n = graph.nrows
        avg_deg = graph.nnz / max(1, n)
        ratio = sprank(graph) / n if compute_sprank else float("nan")

        errors = {}
        for it in (1, 5, 10):
            errors[it] = scale_sinkhorn_knopp(graph, it).error

        t0 = time.perf_counter()
        scaling = scale_sinkhorn_knopp(graph, 1)
        t_scale = time.perf_counter() - t0

        t0 = time.perf_counter()
        one_sided_match(graph, scaling=scaling, seed=seed)
        t_one = t_scale + (time.perf_counter() - t0)

        rc = scaled_row_choices(graph, scaling.dr, scaling.dc, seed)
        cc = scaled_col_choices(graph, scaling.dr, scaling.dc, seed)
        t0 = time.perf_counter()
        karp_sipser_mt(rc, cc)
        t_ksmt = time.perf_counter() - t0

        t0 = time.perf_counter()
        two_sided_match(graph, scaling=scaling, seed=seed)
        t_two = t_scale + (time.perf_counter() - t0)

        table.add_row([
            name, n, graph.nnz, avg_deg, ratio,
            errors[1], errors[5], errors[10],
            t_scale, t_one, t_ksmt, t_two,
        ])
    table.note(
        "synthetic proxies at scaled-down sizes; paper full sizes in "
        "repro.graph.suite_spec(name).paper_n / .paper_nnz"
    )
    return table
