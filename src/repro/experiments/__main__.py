"""CLI for the experiment harness.

Examples::

    python -m repro.experiments list
    python -m repro.experiments table1
    python -m repro.experiments fig5 --runs 5 --seed 7
    python -m repro.experiments all --out results.json
    python -m repro.experiments table2 --full        # paper-scale sizes
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id, 'all', or 'list'",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's original problem sizes (slow in CPython)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--n", type=int, default=None, help="override the instance size"
    )
    parser.add_argument(
        "--runs", type=int, default=None,
        help="override the number of repetitions / matrices",
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="also write results as JSON to this path",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(e) for e in EXPERIMENTS)
        for exp in EXPERIMENTS.values():
            print(f"{exp.id.ljust(width)}  [{exp.paper_ref}]  {exp.description}")
        print(f"{'verify'.ljust(width)}  [all]  pass/fail shape checklist")
        return 0

    if args.experiment == "verify":
        from repro.experiments.verify import run_verification

        passed, total, lines = run_verification(args.seed)
        print("\n".join(lines))
        print(f"\n{passed}/{total} shape checks passed")
        return 0 if passed == total else 1

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    records: dict[str, list[dict]] = {}
    for exp_id in ids:
        t0 = time.perf_counter()
        tables = run_experiment(
            exp_id, full=args.full, seed=args.seed, n=args.n, runs=args.runs
        )
        elapsed = time.perf_counter() - t0
        for table in tables:
            print(table.render())
            print()
            records.setdefault(exp_id, []).extend(table.to_records())
        print(f"[{exp_id} finished in {elapsed:.1f}s]\n")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(records, fh, indent=2, default=str)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
