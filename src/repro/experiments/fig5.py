"""Figures 5a/5b — matching qualities across the suite at 0/1/5 iterations.

Paper setup: both heuristics on the 12 instances with 0 (uniform), 1 and
5 scaling iterations; horizontal reference lines at the guarantees 0.632
(OneSided, Theorem 1) and 0.866 (TwoSided, Conjecture 1).

Paper's reading: 5 iterations achieve the guarantees almost everywhere
(nlpkkt240 needed 15 for TwoSided); TwoSided exceeds 0.86 even with one
iteration; OneSided never reaches 0.80 even with 10.
"""

from __future__ import annotations

from repro._typing import SeedLike, rng_from
from repro.constants import ONE_SIDED_GUARANTEE, TWO_SIDED_GUARANTEE
from repro.core.onesided import one_sided_match
from repro.core.twosided import two_sided_match
from repro.experiments.common import Table
from repro.graph.suite import SUITE_NAMES, suite_instance
from repro.matching.exact.sprank import sprank
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

__all__ = ["run_fig5"]

DEFAULT_ITERS = (0, 1, 5)


def run_fig5(
    names: tuple[str, ...] = SUITE_NAMES,
    iteration_counts: tuple[int, ...] = DEFAULT_ITERS,
    n_override: int | None = None,
    runs: int = 3,
    seed: SeedLike = 0,
) -> tuple[Table, Table]:
    """Regenerate Figures 5a (OneSidedMatch) and 5b (TwoSidedMatch).

    Qualities are minima over *runs* executions, against the instance's
    sprank.
    """
    cols = ["name"] + [f"iter={it}" for it in iteration_counts]
    t_one = Table(
        f"Figure 5a: OneSidedMatch quality (guarantee {ONE_SIDED_GUARANTEE:.3f})",
        cols,
    )
    t_two = Table(
        f"Figure 5b: TwoSidedMatch quality (conjecture {TWO_SIDED_GUARANTEE:.3f})",
        cols,
    )
    for name in names:
        rng = rng_from(seed)
        graph = suite_instance(name, n=n_override, seed=seed)
        maximum = sprank(graph)
        one_row: list[object] = [name]
        two_row: list[object] = [name]
        for it in iteration_counts:
            scaling = scale_sinkhorn_knopp(graph, it)
            one_row.append(
                min(
                    one_sided_match(graph, scaling=scaling, seed=rng)
                    .matching.cardinality
                    / maximum
                    for _ in range(runs)
                )
            )
            two_row.append(
                min(
                    two_sided_match(graph, scaling=scaling, seed=rng)
                    .matching.cardinality
                    / maximum
                    for _ in range(runs)
                )
            )
        t_one.add_row(one_row)
        t_two.add_row(two_row)
    t_one.note("paper: 5 iterations clear 0.632 on all 12; never reaches 0.80")
    t_two.note("paper: >= 0.86 even at 1 iteration on all 12")
    return t_one, t_two
