"""Experiment harness: regenerate every table and figure of the paper.

Run ``python -m repro.experiments list`` to see the registry;
``python -m repro.experiments all`` reproduces the full evaluation at the
scaled-down default sizes (see DESIGN.md §4 for the experiment index and
EXPERIMENTS.md for paper-vs-measured records).
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]
