"""Extension experiment — the heuristics on undirected graphs.

The paper's conclusion sketches this extension ("the algorithms and
results extend naturally").  This experiment measures both undirected
variants against the exact maximum matching (networkx blossom) on random
symmetric graphs and 2-D meshes, at several scaling-iteration budgets.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike, rng_from
from repro.experiments.common import Table
from repro.graph.csr import BipartiteGraph
from repro.graph.generators import sprand_symmetric
from repro.core.undirected import (
    one_out_match_undirected,
    one_sided_match_undirected,
)
from repro.scaling.symmetric import scale_symmetric

__all__ = ["run_undirected"]


def _blossom_maximum(graph: BipartiteGraph) -> int:
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.nrows))
    rows = graph.row_of_edge()
    cols = graph.col_ind
    g.add_edges_from(
        (int(i), int(j)) for i, j in zip(rows, cols) if i < j
    )
    return len(nx.max_weight_matching(g, maxcardinality=True))


def run_undirected(
    n: int = 2_000,
    degrees: tuple[float, ...] = (3.0, 6.0, 10.0),
    iteration_counts: tuple[int, ...] = (0, 5),
    runs: int = 3,
    seed: SeedLike = 0,
) -> Table:
    """Quality of the undirected variants vs the exact (blossom) maximum."""
    rng = rng_from(seed)
    table = Table(
        f"Extension: undirected graphs, n={n}, min of {runs} runs "
        "(exact = blossom)",
        ["avg.deg", "iter", "maximum", "one-sided", "1-out KS"],
    )
    for d in degrees:
        graph = sprand_symmetric(n, d, seed=rng)
        maximum = _blossom_maximum(graph)
        for it in iteration_counts:
            scaling = scale_symmetric(graph, it)
            one_q = min(
                one_sided_match_undirected(
                    graph, scaling=scaling, seed=rng
                ).cardinality
                / maximum
                for _ in range(runs)
            )
            two_q = min(
                one_out_match_undirected(
                    graph, scaling=scaling, seed=rng
                ).cardinality
                / maximum
                for _ in range(runs)
            )
            table.add_row([d, it, maximum, one_q, two_q])
    table.note(
        "paper conclusion: 'the algorithms and results extend naturally' — "
        "the 1-out variant stays well above the bipartite 0.866 level"
    )
    return table
