"""Section 4.1.1 — quality guarantees over a matrix collection.

Paper setup: all 743 square fully indecomposable UFL matrices with
≥ 1000 nonempty rows and ≤ 2·10⁷ nonzeros; with 10 scaling iterations the
guarantees (0.632 / 0.866) were surpassed on all but 37 matrices, and 10
*more* iterations fixed those too.

Reproduction: a sampled population of random fully indecomposable
matrices (union of a cycle and random permutations — total support by
construction) spanning the collection's size/density spread.  The same
two-stage protocol is applied: check at ``base_iterations``, retry the
failures with double the iterations.
"""

from __future__ import annotations

from repro._typing import SeedLike, rng_from
from repro.constants import ONE_SIDED_GUARANTEE, TWO_SIDED_GUARANTEE
from repro.core.onesided import one_sided_match
from repro.core.twosided import two_sided_match
from repro.experiments.common import Table
from repro.graph.generators import fully_indecomposable
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

__all__ = ["run_collection"]


def run_collection(
    n_matrices: int = 40,
    base_iterations: int = 10,
    seed: SeedLike = 0,
    min_n: int = 1000,
    max_n: int = 4000,
) -> Table:
    """Check both guarantees across a sampled collection.

    Every matrix is fully indecomposable, so sprank = n and the quality
    denominator is n.
    """
    rng = rng_from(seed)
    table = Table(
        f"Collection: {n_matrices} fully indecomposable matrices, "
        f"{base_iterations} scaling iterations",
        ["stage", "matrices", "one_sided_ok", "two_sided_ok", "min_one", "min_two"],
    )

    population = []
    for _ in range(n_matrices):
        n = int(rng.integers(min_n, max_n + 1))
        deg = float(rng.integers(2, 9))
        population.append(fully_indecomposable(n, deg, seed=rng))

    def stage(graphs, iterations, label):
        one_ok = two_ok = 0
        min_one = min_two = 1.0
        failures = []
        for g in graphs:
            scaling = scale_sinkhorn_knopp(g, iterations)
            q1 = (
                one_sided_match(g, scaling=scaling, seed=rng)
                .matching.cardinality
                / g.nrows
            )
            q2 = (
                two_sided_match(g, scaling=scaling, seed=rng)
                .matching.cardinality
                / g.nrows
            )
            ok1 = q1 >= ONE_SIDED_GUARANTEE
            ok2 = q2 >= TWO_SIDED_GUARANTEE
            one_ok += ok1
            two_ok += ok2
            min_one = min(min_one, q1)
            min_two = min(min_two, q2)
            if not (ok1 and ok2):
                failures.append(g)
        table.add_row([label, len(graphs), one_ok, two_ok, min_one, min_two])
        return failures

    failures = stage(population, base_iterations, f"iters={base_iterations}")
    if failures:
        stage(failures, base_iterations * 2, f"retry iters={base_iterations * 2}")
    else:
        table.note("no failures at the base iteration count")
    table.note(
        "paper: 706/743 pass at 10 iterations; all pass with 10 more"
    )
    return table
