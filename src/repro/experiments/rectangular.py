"""Section 4.1.3 (rectangular case) — sprank-deficient rectangular matrices.

Paper setup: ``100000 × 120000`` `sprand` matrices, ``d·m`` nonzeros for
``d ∈ {2,3,4,5}``, 5 scaling iterations; minimum qualities observed were
**0.753** (OneSidedMatch) and **0.930** (TwoSidedMatch).

Scaling, choices and Karp–Sipser all operate unchanged on rectangular
shapes — the point of this experiment is that none of the square /
total-support assumptions of the theory are needed in practice.
"""

from __future__ import annotations

from repro._typing import SeedLike, rng_from
from repro.core.onesided import one_sided_match
from repro.core.twosided import two_sided_match
from repro.experiments.common import Table
from repro.graph.generators import sprand_rect
from repro.matching.exact.sprank import sprank
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

__all__ = ["run_rectangular"]


def run_rectangular(
    nrows: int = 20_000,
    ncols: int = 24_000,
    ds: tuple[int, ...] = (2, 3, 4, 5),
    iterations: int = 5,
    runs: int = 5,
    seed: SeedLike = 0,
) -> Table:
    """Regenerate the rectangular experiment (default scaled down 5x)."""
    rng = rng_from(seed)
    table = Table(
        f"Rectangular sprand {nrows}x{ncols}, {iterations} scaling "
        f"iterations, min of {runs} runs",
        ["d", "sprank", "OneSidedMatch", "TwoSidedMatch"],
    )
    min_one = min_two = 1.0
    for d in ds:
        graph = sprand_rect(nrows, ncols, float(d), seed=rng)
        maximum = sprank(graph)
        scaling = scale_sinkhorn_knopp(graph, iterations)
        one_q = min(
            one_sided_match(graph, scaling=scaling, seed=rng)
            .matching.cardinality
            / maximum
            for _ in range(runs)
        )
        two_q = min(
            two_sided_match(graph, scaling=scaling, seed=rng)
            .matching.cardinality
            / maximum
            for _ in range(runs)
        )
        min_one = min(min_one, one_q)
        min_two = min(min_two, two_q)
        table.add_row([d, maximum, one_q, two_q])
    table.note(
        f"overall minima: one-sided {min_one:.3f}, two-sided {min_two:.3f} "
        "(paper: 0.753 and 0.930)"
    )
    return table
