"""Convergence-rate experiment — Knight's σ₂² law (Section 3.3 citation).

For several instance families, fit the observed linear convergence rate
of Sinkhorn–Knopp from the error history and compare with the predicted
asymptotic rate σ₂² of the scaled matrix.  Expected shape: close
agreement on "generic" irregular families; regular families converge in
one sweep (observed rate unavailable — far better than the asymptotic
bound); instances without total support sit near rate 1 (slow), which is
why the paper's Table 1 needs 10 iterations on the adversarial family
while 5 suffice elsewhere.
"""

from __future__ import annotations

from repro._typing import SeedLike
from repro.experiments.common import Table
from repro.graph.adversarial import karp_sipser_adversarial
from repro.graph.generators import (
    fully_indecomposable,
    power_law_bipartite,
    sprand,
)
from repro.scaling.convergence_rate import convergence_study

__all__ = ["run_convergence"]


def run_convergence(
    n: int = 500,
    iterations: int = 80,
    seed: SeedLike = 0,
) -> Table:
    """Observed vs predicted Sinkhorn–Knopp rates across families."""
    families = [
        ("fully-indecomposable d=4", fully_indecomposable(n, 4.0, seed=seed)),
        ("fully-indecomposable d=8", fully_indecomposable(n, 8.0, seed=seed)),
        ("power-law skew=1", power_law_bipartite(n, 4.0, skew=1.0, seed=seed)),
        ("sprand d=3 (deficient)", sprand(n, 3.0, seed=seed)),
        ("adversarial k=2", karp_sipser_adversarial(min(n, 400), 2)),
        ("adversarial k=16", karp_sipser_adversarial(min(n, 400), 16)),
    ]
    table = Table(
        f"Sinkhorn-Knopp convergence rates (n~{n}, {iterations} sweeps): "
        "observed vs Knight's sigma_2^2",
        ["family", "observed rate", "predicted rate", "final error"],
    )
    for name, graph in families:
        st = convergence_study(graph, iterations=iterations)
        table.add_row([name, st.observed, st.predicted, st.final_error])
    table.note(
        "observed ~ predicted on irregular total-support families; "
        "'nan' observed = converged to round-off within a few sweeps "
        "(regular structure); rates near 1 = the slow cases that need "
        "the paper's 10-iteration budget"
    )
    table.note(
        "Knight's law requires support: on the deficient sprand family "
        "the scaled matrix is not substochastic and sigma_2^2 may exceed "
        "1 (the error plateaus instead of converging)"
    )
    return table
