"""Table 1 — Karp–Sipser vs TwoSidedMatch on the adversarial family.

Paper setup: the Figure-2 matrices with ``n = 3200`` and
``k ∈ {2, 4, 8, 16, 32}``; quality is the *minimum* of 10 executions
(worst-case behaviour is the subject); TwoSidedMatch is run after 0, 1, 5
and 10 Sinkhorn–Knopp iterations and the scaling error is reported per
iteration count.  Paper's headline: KS degrades from 0.78 to 0.67 as k
grows, while TwoSidedMatch with 10 iterations stays ≥ 0.98.
"""

from __future__ import annotations

from repro._typing import SeedLike, rng_from
from repro.core.twosided import two_sided_match
from repro.experiments.common import Table
from repro.graph.adversarial import karp_sipser_adversarial
from repro.matching.heuristics.karp_sipser import karp_sipser
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

__all__ = ["run_table1"]

DEFAULT_KS = (2, 4, 8, 16, 32)
DEFAULT_ITERS = (0, 1, 5, 10)


def run_table1(
    n: int = 3200,
    ks: tuple[int, ...] = DEFAULT_KS,
    iteration_counts: tuple[int, ...] = DEFAULT_ITERS,
    runs: int = 10,
    seed: SeedLike = 0,
) -> Table:
    """Regenerate Table 1.  Returns a :class:`Table` with one row per *k*.

    Quality denominators are ``n`` — the family has a perfect matching by
    construction (the two planted diagonals).
    """
    import numpy as np

    rng = rng_from(seed)
    columns = ["k", "KarpSipser"]
    for it in iteration_counts:
        columns += [f"err({it})", f"qual({it})"]
    table = Table(
        f"Table 1: adversarial family, n={n}, min of {runs} runs", columns
    )
    max_ks_var = 0.0
    max_two_var = 0.0
    for k in ks:
        graph = karp_sipser_adversarial(n, k)
        ks_samples = [
            karp_sipser(graph, seed=rng).cardinality / n for _ in range(runs)
        ]
        max_ks_var = max(max_ks_var, float(np.var(ks_samples)))
        row: list[object] = [k, min(ks_samples)]
        for it in iteration_counts:
            scaling = scale_sinkhorn_knopp(graph, it)
            samples = [
                two_sided_match(
                    graph, scaling=scaling, seed=rng
                ).matching.cardinality
                / n
                for _ in range(runs)
            ]
            if it == max(iteration_counts):
                max_two_var = max(max_two_var, float(np.var(samples)))
            row += [scaling.error, min(samples)]
        table.add_row(row)
    table.note(
        "paper (n=3200): KS 0.782..0.670 as k grows; TwoSided qual(10) >= 0.98"
    )
    table.note(
        f"max variance across runs: KS {max_ks_var:.6f}, TwoSided "
        f"{max_two_var:.6f} (paper: 0.0041 and 0.0001 — the scaled "
        "heuristic is far more stable)"
    )
    return table
