"""Shape-verification harness: the paper's claims as a pass/fail checklist.

``python -m repro.experiments verify`` runs reduced-size versions of the
studies and evaluates the *shape* claims the paper's evaluation makes —
who wins, which direction the trends go, where the floors sit.  Each
check is named after the claim it encodes, so a failing reproduction
points straight at the disagreeing claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._typing import SeedLike

__all__ = ["ShapeCheck", "run_verification", "CHECKS"]


@dataclass(frozen=True)
class ShapeCheck:
    name: str
    paper_ref: str
    fn: Callable[[int], bool]


def _check_theorem1_floor(seed: int) -> bool:
    """Fig 5a / Thm 1: OneSided >= 0.632 with 5 iterations (full sprank)."""
    from repro.constants import ONE_SIDED_GUARANTEE
    from repro.core import one_sided_match
    from repro.graph import fully_indecomposable

    g = fully_indecomposable(2000, 4.0, seed=seed)
    q = one_sided_match(g, 5, seed=seed).cardinality / g.nrows
    return q >= ONE_SIDED_GUARANTEE - 0.02


def _check_conjecture_constant(seed: int) -> bool:
    """Conjecture 1: 1-out ratio within 0.005 of 2(1-rho)."""
    from repro.constants import TWO_SIDED_GUARANTEE
    from repro.core import one_out_max_matching_size

    n = 50_000
    ratio = one_out_max_matching_size(n, seed=seed) / n
    return abs(ratio - TWO_SIDED_GUARANTEE) < 0.005


def _check_two_sided_beats_one_sided(seed: int) -> bool:
    """Every table: TwoSided quality >= OneSided quality."""
    from repro.core import one_sided_match, two_sided_match
    from repro.graph import sprand
    from repro.scaling import scale_sinkhorn_knopp

    g = sprand(5000, 4.0, seed=seed)
    sc = scale_sinkhorn_knopp(g, 5)
    one = one_sided_match(g, scaling=sc, seed=seed).cardinality
    two = two_sided_match(g, scaling=sc, seed=seed).cardinality
    return two >= one


def _check_table1_crossover(seed: int) -> bool:
    """Table 1: unscaled TwoSided < KS < TwoSided(10 iters) at k=32."""
    from repro.core import two_sided_match
    from repro.graph import karp_sipser_adversarial
    from repro.matching import karp_sipser
    from repro.scaling import scale_sinkhorn_knopp

    n = 800
    g = karp_sipser_adversarial(n, 32)
    ks = min(karp_sipser(g, seed=s).cardinality / n for s in range(3))
    s0 = scale_sinkhorn_knopp(g, 0)
    raw = min(
        two_sided_match(g, scaling=s0, seed=s).cardinality / n
        for s in range(3)
    )
    s10 = scale_sinkhorn_knopp(g, 10)
    scaled = min(
        two_sided_match(g, scaling=s10, seed=s).cardinality / n
        for s in range(3)
    )
    return raw < ks < scaled


def _check_table2_deficiency_trend(seed: int) -> bool:
    """Table 2: smaller d (more deficient) gives higher quality."""
    from repro.core import two_sided_match
    from repro.graph import sprand
    from repro.matching import sprank
    from repro.scaling import scale_sinkhorn_knopp

    qualities = {}
    for d in (2, 5):
        g = sprand(5000, float(d), seed=seed)
        maximum = sprank(g)
        sc = scale_sinkhorn_knopp(g, 10)
        qualities[d] = (
            two_sided_match(g, scaling=sc, seed=seed).cardinality / maximum
        )
    return qualities[2] > qualities[5]


def _check_iterations_help(seed: int) -> bool:
    """Tables 1-2 / Fig 5: scaling iterations improve quality."""
    from repro.core import one_sided_match
    from repro.graph import sprand
    from repro.matching import sprank
    from repro.scaling import scale_sinkhorn_knopp

    g = sprand(5000, 3.0, seed=seed)
    maximum = sprank(g)
    q0 = (
        one_sided_match(g, scaling=scale_sinkhorn_knopp(g, 0), seed=seed)
        .cardinality / maximum
    )
    q10 = (
        one_sided_match(g, scaling=scale_sinkhorn_knopp(g, 10), seed=seed)
        .cardinality / maximum
    )
    return q10 > q0


def _check_ks_mt_exactness(seed: int) -> bool:
    """Lemmas 1-3: KarpSipserMT is maximum on choice subgraphs."""
    from repro.core import choice_graph, karp_sipser_mt
    from repro.core.oneout import sample_uniform_one_out
    from repro.matching import hopcroft_karp

    rng = np.random.default_rng(seed)
    for _ in range(5):
        n = int(rng.integers(50, 500))
        rc, cc = sample_uniform_one_out(n, rng)
        g = choice_graph(rc, cc)
        if karp_sipser_mt(rc, cc).cardinality != hopcroft_karp(g).cardinality:
            return False
    return True


def _check_schedule_independence(seed: int) -> bool:
    """Alg. 4 safety: cardinality identical across simulated schedules."""
    from repro.core import karp_sipser_mt, karp_sipser_mt_simulated
    from repro.core.oneout import sample_uniform_one_out

    rc, cc = sample_uniform_one_out(300, seed)
    reference = karp_sipser_mt(rc, cc).cardinality
    for policy in ("round_robin", "random", "adversarial"):
        m = karp_sipser_mt_simulated(rc, cc, 4, policy=policy, seed=seed)
        if m.cardinality != reference:
            return False
    return True


def _check_speedup_shape(seed: int) -> bool:
    """Figs 3-4: monotone speedups, ~10x at p=16, skew scales worse."""
    from repro.graph import suite_instance
    from repro.parallel import MachineModel
    from repro.parallel.machine import ScheduleSpec
    from repro.scaling.sinkhorn_knopp import sinkhorn_knopp_work_profile

    model = MachineModel()
    speeds = {}
    for name in ("venturiLevel3", "torso1"):
        g = suite_instance(name, n=10_000, seed=seed)
        prof = sinkhorn_knopp_work_profile(g)
        sched = ScheduleSpec.dynamic(max(16, g.nrows // 256))
        curve = [
            model.speedup(prof, p, schedule=sched, barriers=2)
            for p in (2, 4, 8, 16)
        ]
        if curve != sorted(curve):
            return False
        speeds[name] = curve[-1]
    return speeds["venturiLevel3"] > 9.0 and (
        speeds["torso1"] < speeds["venturiLevel3"]
    )


def _check_scaling_error_drops(seed: int) -> bool:
    """Tables 1/3: the scaling error falls with iterations (support)."""
    from repro.graph import fully_indecomposable
    from repro.scaling import scale_sinkhorn_knopp

    g = fully_indecomposable(2000, 4.0, seed=seed)
    errs = [scale_sinkhorn_knopp(g, it).error for it in (1, 5, 10)]
    return errs[0] >= errs[1] >= errs[2]


def _check_rectangular_floors(seed: int) -> bool:
    """§4.1.3: rectangular minima near 0.753 / 0.930 (5 iterations)."""
    from repro.core import one_sided_match, two_sided_match
    from repro.graph import sprand_rect
    from repro.matching import sprank
    from repro.scaling import scale_sinkhorn_knopp

    g = sprand_rect(5000, 6000, 4.0, seed=seed)
    maximum = sprank(g)
    sc = scale_sinkhorn_knopp(g, 5)
    one = one_sided_match(g, scaling=sc, seed=seed).cardinality / maximum
    two = two_sided_match(g, scaling=sc, seed=seed).cardinality / maximum
    return one > 0.70 and two > 0.88


CHECKS: tuple[ShapeCheck, ...] = (
    ShapeCheck("theorem1-floor", "Thm 1 / Fig 5a", _check_theorem1_floor),
    ShapeCheck("conjecture1-constant", "Conj. 1", _check_conjecture_constant),
    ShapeCheck(
        "two-sided-dominates", "Tables 1-3", _check_two_sided_beats_one_sided
    ),
    ShapeCheck("table1-crossover", "Table 1", _check_table1_crossover),
    ShapeCheck(
        "table2-deficiency-trend", "Table 2", _check_table2_deficiency_trend
    ),
    ShapeCheck("iterations-help", "Tables 1-2 / Fig 5", _check_iterations_help),
    ShapeCheck("ksmt-exactness", "Lemmas 1-3", _check_ks_mt_exactness),
    ShapeCheck(
        "schedule-independence", "Alg. 4 / Lemma 4",
        _check_schedule_independence,
    ),
    ShapeCheck("speedup-shape", "Figs 3-4", _check_speedup_shape),
    ShapeCheck(
        "scaling-error-drops", "Tables 1/3", _check_scaling_error_drops
    ),
    ShapeCheck("rectangular-floors", "§4.1.3", _check_rectangular_floors),
)


def run_verification(seed: SeedLike = 0) -> tuple[int, int, list[str]]:
    """Run every shape check; returns (passed, total, lines)."""
    seed = int(seed or 0)
    lines: list[str] = []
    passed = 0
    for check in CHECKS:
        t0 = time.perf_counter()
        ok = bool(check.fn(seed))
        dt = time.perf_counter() - t0
        passed += ok
        lines.append(
            f"[{'PASS' if ok else 'FAIL'}] {check.name:<24s} "
            f"({check.paper_ref}; {dt:.1f}s)"
        )
    return passed, len(CHECKS), lines
