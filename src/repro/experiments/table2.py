"""Table 2 — qualities on sprank-deficient Erdős–Rényi matrices.

Paper setup: square ``n = 100000`` matrices from Matlab's ``sprand`` with
``d·n`` nonzeros for ``d ∈ {2,3,4,5}``; both heuristics at 0/1/5/10
scaling iterations; quality = cardinality / sprank, minimum of 10 runs.

Paper's headline: high deficiency (small d) is the *easy* case; for d=5
five iterations already yield OneSided ≈ 0.70 and TwoSided ≈ 0.87.
"""

from __future__ import annotations

from repro._typing import SeedLike, rng_from
from repro.core.onesided import one_sided_match
from repro.core.twosided import two_sided_match
from repro.experiments.common import Table
from repro.graph.generators import sprand
from repro.matching.exact.sprank import sprank
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

__all__ = ["run_table2"]

DEFAULT_DS = (2, 3, 4, 5)
DEFAULT_ITERS = (0, 1, 5, 10)


def run_table2(
    n: int = 20_000,
    ds: tuple[int, ...] = DEFAULT_DS,
    iteration_counts: tuple[int, ...] = DEFAULT_ITERS,
    runs: int = 5,
    seed: SeedLike = 0,
) -> Table:
    """Regenerate Table 2 (default size scaled down 5x from the paper)."""
    rng = rng_from(seed)
    table = Table(
        f"Table 2: sprand square n={n}, min of {runs} runs",
        ["d", "iter", "sprank", "OneSidedMatch", "TwoSidedMatch"],
    )
    for d in ds:
        graph = sprand(n, float(d), seed=rng)
        maximum = sprank(graph)
        for it in iteration_counts:
            scaling = scale_sinkhorn_knopp(graph, it)
            one_q = min(
                one_sided_match(graph, scaling=scaling, seed=rng)
                .matching.cardinality
                / maximum
                for _ in range(runs)
            )
            two_q = min(
                two_sided_match(graph, scaling=scaling, seed=rng)
                .matching.cardinality
                / maximum
                for _ in range(runs)
            )
            table.add_row([d, it, maximum, one_q, two_q])
    table.note(
        "paper (n=100000): d=2 iter=10 -> 0.879/0.954; d=5 iter=10 -> 0.716/0.882"
    )
    return table
