"""Figures 3a/3b — modelled speedups of ScaleSK and OneSidedMatch.

Paper setup: 2, 4, 8, 16 threads on the 12 instances with
``schedule(dynamic,512)``; one scaling iteration.  Reported results:
ScaleSK reaches ~8–10.6x at 16 threads (worst: torso1 at 7.7 due to
load imbalance); OneSidedMatch is slightly better, ~10–11.4x (worst:
torso1/audikw_1 ≈ 8.4).

Reproduction: the machine cost model (:class:`repro.parallel.MachineModel`)
schedules each instance's *measured* per-row work profile — see DESIGN.md
for the substitution argument.  The work profiles are:

* ScaleSK, per row: ``deg(i)`` gather-adds + constant (two sweeps,
  barriers after each);
* OneSidedMatch: ScaleSK's profile plus the choice sampling profile
  (``deg(i)`` prefix work + binary search + one write; no barrier, no
  synchronisation — hence the better scalability, as in the paper).
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike
from repro.experiments.common import Table
from repro.graph.suite import SUITE_NAMES, suite_instance
from repro.parallel.machine import MachineModel, ScheduleSpec
from repro.scaling.sinkhorn_knopp import sinkhorn_knopp_work_profile

__all__ = ["run_fig3", "DEFAULT_THREADS"]

DEFAULT_THREADS = (2, 4, 8, 16)


def _combined_speedup(
    model: MachineModel,
    profiles: list[tuple[np.ndarray, ScheduleSpec, float, int]],
    p: int,
) -> float:
    """Speedup of a kernel made of several parallel loop nests.

    Each profile is ``(item_work, schedule, serial_work, barriers)``; the
    total T1 and Tp are summed over the nests before taking the ratio.
    """
    t1 = sum(
        model.parallel_time(w, 1, schedule=s, serial_work=sw, barriers=b).total
        for w, s, sw, b in profiles
    )
    tp = sum(
        model.parallel_time(w, p, schedule=s, serial_work=sw, barriers=b).total
        for w, s, sw, b in profiles
    )
    return t1 / tp if tp > 0 else 1.0


def run_fig3(
    names: tuple[str, ...] = SUITE_NAMES,
    threads: tuple[int, ...] = DEFAULT_THREADS,
    n_override: int | None = None,
    seed: SeedLike = 0,
    model: MachineModel | None = None,
) -> tuple[Table, Table]:
    """Regenerate Figures 3a (ScaleSK) and 3b (OneSidedMatch).

    Returns two tables: instance × thread-count speedups.
    """
    model = model or MachineModel()
    cols = ["name"] + [f"p={p}" for p in threads]
    t_scale = Table("Figure 3a: ScaleSK modelled speedups", cols)
    t_one = Table("Figure 3b: OneSidedMatch modelled speedups", cols)

    for name in names:
        graph = suite_instance(name, n=n_override, seed=seed)
        # The paper uses dynamic,512 at n >= 116k (227+ chunks).  At the
        # scaled-down default sizes a fixed 512 would leave fewer chunks
        # than threads, so the chunk size is scaled to keep the paper's
        # chunk *count* (~256) — the quantity that drives load balance.
        dyn = ScheduleSpec.dynamic(min(512, max(16, graph.nrows // 256)))
        scale_profile = sinkhorn_knopp_work_profile(graph)
        # Choice sampling: per row, scan ~deg for the prefix + logarithmic
        # search + one unsynchronised write.
        choice_profile = graph.row_degrees().astype(np.float64) + 6.0

        scale_nests = [(scale_profile, dyn, 64.0, 2)]
        one_nests = scale_nests + [(choice_profile, dyn, 32.0, 0)]

        t_scale.add_row(
            [name]
            + [_combined_speedup(model, scale_nests, p) for p in threads]
        )
        t_one.add_row(
            [name] + [_combined_speedup(model, one_nests, p) for p in threads]
        )
    t_scale.note("paper at p=16: 7.7 (torso1) .. 10.6 (hugebubbles)")
    t_one.note("paper at p=16: 8.4 (torso1) .. 11.4 (europe_osm)")
    return t_scale, t_one
