"""``DynamicBipartiteGraph`` — a versioned, editable bipartite graph.

The core library's :class:`~repro.graph.BipartiteGraph` is deliberately
immutable (every algorithm sweeps frozen CSR/CSC arrays).  Streaming
workloads instead evolve one logical graph through batches of edge
insertions/deletions and occasional vertex growth.  This container keeps
the *edge set* in a form that is cheap to edit and turns it into an
immutable CSR snapshot lazily, caching one snapshot per epoch:

* edges are stored as a sorted ``int64`` key array ``(i << 32) | j`` —
  key order **is** CSR order (row-major, columns ascending), so a
  snapshot is a decode + ``bincount``, with no per-edge Python work;
* every mutating call that changes the edge set (or grows the vertex
  sets) bumps :attr:`epoch`;
* a bounded journal records which rows/columns each epoch touched, so an
  incremental consumer (:class:`~repro.stream.StreamMatcher`) can ask
  :meth:`dirty_since` for exactly the vertices whose adjacency changed
  since the epoch it last processed.  When the journal has been trimmed
  past the requested epoch the answer is ``None`` — "too far behind,
  recompute cold" — so the journal can stay bounded without ever lying.

The key packing (either id may occupy the high half, since a
column-major mirror is kept too) caps both dimensions at ``2**31``, far
beyond anything the in-memory algorithms handle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro._typing import IndexArray
from repro.errors import GraphStructureError, ShapeError
from repro.graph.csr import BipartiteGraph

__all__ = ["DynamicBipartiteGraph", "DirtySet"]

_MAX_ROWS = 1 << 31
_MAX_COLS = 1 << 31
_COL_MASK = np.int64((1 << 32) - 1)


@dataclass(frozen=True)
class DirtySet:
    """Rows/columns whose adjacency changed over a span of epochs."""

    #: Unique, sorted row ids with at least one incident edit.
    rows: IndexArray
    #: Unique, sorted column ids with at least one incident edit.
    cols: IndexArray

    @property
    def empty(self) -> bool:
        return self.rows.size == 0 and self.cols.size == 0


class DynamicBipartiteGraph:
    """A bipartite graph under edits, with epoch-stamped CSR snapshots.

    Parameters
    ----------
    base:
        Optional :class:`~repro.graph.BipartiteGraph` to seed the edge
        set from (copied; the base stays untouched).
    nrows, ncols:
        Dimensions when starting from an empty edge set (ignored when
        *base* is given).
    journal_limit:
        Maximum number of edit epochs remembered for
        :meth:`dirty_since`; older history is forgotten (consumers then
        fall back to a cold recompute).
    """

    def __init__(
        self,
        base: BipartiteGraph | None = None,
        *,
        nrows: int = 0,
        ncols: int = 0,
        journal_limit: int = 64,
    ) -> None:
        if base is not None:
            nrows, ncols = base.nrows, base.ncols
        nrows, ncols = int(nrows), int(ncols)
        if nrows < 0 or ncols < 0:
            raise ShapeError(f"negative dimensions: {nrows} x {ncols}")
        if nrows > _MAX_ROWS or ncols > _MAX_COLS:
            raise ShapeError(
                f"dynamic graphs cap at {_MAX_ROWS} rows x {_MAX_COLS} "
                f"columns (key packing), got {nrows} x {ncols}"
            )
        if journal_limit < 1:
            raise ShapeError(
                f"journal_limit must be >= 1, got {journal_limit}"
            )
        self._nrows = nrows
        self._ncols = ncols
        if base is not None and base.nnz:
            rows = base.row_of_edge().astype(np.int64)
            self._keys = (rows << 32) | base.col_ind
            # Column-major mirror, maintained incrementally so snapshots
            # never sort: CSC order is exactly ascending (col, row) keys.
            self._keys_t = np.sort((base.col_ind << 32) | rows)
        else:
            self._keys = np.empty(0, dtype=np.int64)
            self._keys_t = np.empty(0, dtype=np.int64)
        self._epoch = 0
        #: (epoch, dirty_rows, dirty_cols) per mutation, newest last.
        self._journal: deque[tuple[int, IndexArray, IndexArray]] = deque(
            maxlen=journal_limit
        )
        #: Oldest epoch ``dirty_since`` can still answer from.
        self._journal_floor = 0
        self._snapshot: BipartiteGraph | None = None
        self._snapshot_epoch = -1

    # -- properties ----------------------------------------------------

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def ncols(self) -> int:
        return self._ncols

    @property
    def shape(self) -> tuple[int, int]:
        return (self._nrows, self._ncols)

    @property
    def nnz(self) -> int:
        return int(self._keys.shape[0])

    @property
    def epoch(self) -> int:
        """Version counter; bumps once per mutating call that changed
        anything."""
        return self._epoch

    def has_edge(self, i: int, j: int) -> bool:
        if not (0 <= i < self._nrows and 0 <= j < self._ncols):
            return False
        key = np.int64((int(i) << 32) | int(j))
        pos = int(np.searchsorted(self._keys, key))
        return pos < self._keys.shape[0] and self._keys[pos] == key

    # -- mutation ------------------------------------------------------

    def _edit_keys(self, rows: object, cols: object, what: str) -> IndexArray:
        r = np.asarray(rows, dtype=np.int64).ravel()
        c = np.asarray(cols, dtype=np.int64).ravel()
        if r.shape != c.shape:
            raise ShapeError(
                f"{what}: rows and cols differ in length: "
                f"{r.shape} vs {c.shape}"
            )
        if r.size:
            if r.min() < 0 or r.max() >= self._nrows:
                raise GraphStructureError(
                    f"{what}: row indices out of range [0, {self._nrows})"
                )
            if c.min() < 0 or c.max() >= self._ncols:
                raise GraphStructureError(
                    f"{what}: column indices out of range [0, {self._ncols})"
                )
        return np.unique((r << 32) | c)

    def _membership(self, keys: IndexArray) -> np.ndarray:
        """Boolean mask: which of the (sorted, unique) *keys* exist."""
        if self._keys.size == 0 or keys.size == 0:
            return np.zeros(keys.shape[0], dtype=bool)
        pos = np.searchsorted(self._keys, keys)
        inside = pos < self._keys.shape[0]
        hit = np.zeros(keys.shape[0], dtype=bool)
        hit[inside] = self._keys[pos[inside]] == keys[inside]
        return hit

    def _commit(self, touched: IndexArray) -> None:
        """Record one mutation: bump the epoch and journal the dirty sets."""
        self._epoch += 1
        dirty_rows = np.unique(touched >> 32)
        dirty_cols = np.unique(touched & _COL_MASK)
        self._journal.append((self._epoch, dirty_rows, dirty_cols))
        if len(self._journal) == self._journal.maxlen:
            self._journal_floor = self._journal[0][0] - 1

    @staticmethod
    def _transpose_keys(keys: IndexArray) -> IndexArray:
        """Row-major edge keys -> sorted column-major keys."""
        return np.sort(((keys & _COL_MASK) << 32) | (keys >> 32))

    def add_edges(self, rows: object, cols: object) -> int:
        """Insert edges; duplicates of existing edges are ignored.

        Returns the number of edges actually added.  The epoch bumps
        only when the edge set changed.
        """
        keys = self._edit_keys(rows, cols, "add_edges")
        new = keys[~self._membership(keys)]
        if new.size == 0:
            return 0
        self._keys = np.insert(
            self._keys, np.searchsorted(self._keys, new), new
        )
        new_t = self._transpose_keys(new)
        self._keys_t = np.insert(
            self._keys_t, np.searchsorted(self._keys_t, new_t), new_t
        )
        self._commit(new)
        return int(new.size)

    def remove_edges(
        self, rows: object, cols: object, *, strict: bool = True
    ) -> int:
        """Delete edges.  Returns the number removed.

        With ``strict=True`` (default) deleting a non-existent edge
        raises :class:`~repro.errors.GraphStructureError`; with
        ``strict=False`` missing edges are silently skipped.
        """
        keys = self._edit_keys(rows, cols, "remove_edges")
        present = self._membership(keys)
        if strict and not present.all():
            missing = keys[~present][0]
            raise GraphStructureError(
                f"remove_edges: edge ({int(missing) >> 32}, "
                f"{int(missing) & int(_COL_MASK)}) does not exist "
                f"(pass strict=False to ignore)"
            )
        gone = keys[present]
        if gone.size == 0:
            return 0
        keep = np.ones(self._keys.shape[0], dtype=bool)
        keep[np.searchsorted(self._keys, gone)] = False
        self._keys = self._keys[keep]
        gone_t = self._transpose_keys(gone)
        keep_t = np.ones(self._keys_t.shape[0], dtype=bool)
        keep_t[np.searchsorted(self._keys_t, gone_t)] = False
        self._keys_t = self._keys_t[keep_t]
        self._commit(gone)
        return int(gone.size)

    def grow(self, nrows: int | None = None, ncols: int | None = None) -> None:
        """Extend the vertex sets (shrinking is not supported).

        New vertices start with no incident edges, so nothing becomes
        dirty; the epoch still bumps so snapshots refresh.
        """
        new_rows = self._nrows if nrows is None else int(nrows)
        new_cols = self._ncols if ncols is None else int(ncols)
        if new_rows < self._nrows or new_cols < self._ncols:
            raise ShapeError(
                f"grow can only extend dimensions: {self.shape} -> "
                f"({new_rows}, {new_cols})"
            )
        if new_rows > _MAX_ROWS or new_cols > _MAX_COLS:
            raise ShapeError(
                f"dynamic graphs cap at {_MAX_ROWS} rows x {_MAX_COLS} "
                f"columns (key packing)"
            )
        if (new_rows, new_cols) == self.shape:
            return
        self._nrows, self._ncols = new_rows, new_cols
        self._epoch += 1
        empty = np.empty(0, dtype=np.int64)
        self._journal.append((self._epoch, empty, empty))
        if len(self._journal) == self._journal.maxlen:
            self._journal_floor = self._journal[0][0] - 1

    # -- reads ---------------------------------------------------------

    def snapshot(self) -> BipartiteGraph:
        """The current edge set as an immutable CSR graph.

        Lazy and epoch-cached: repeated calls between edits return the
        same object, and the decode is pure numpy (the sorted key array
        is already in CSR order).
        """
        if self._snapshot is not None and self._snapshot_epoch == self._epoch:
            return self._snapshot
        row_ptr = np.zeros(self._nrows + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self._keys >> 32, minlength=self._nrows),
            out=row_ptr[1:],
        )
        col_ptr = np.zeros(self._ncols + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self._keys_t >> 32, minlength=self._ncols),
            out=col_ptr[1:],
        )
        # Assemble both views directly (the transpose() idiom): the two
        # key arrays are already in CSR resp. CSC order, so the usual
        # constructor's O(nnz log nnz) mirror sort would be pure waste.
        g = BipartiteGraph.__new__(BipartiteGraph)
        g.nrows = self._nrows
        g.ncols = self._ncols
        g.row_ptr = row_ptr
        g.col_ind = self._keys & _COL_MASK
        g.col_ptr = col_ptr
        g.row_ind = self._keys_t & _COL_MASK
        g._row_of_edge = None
        for arr in (g.row_ptr, g.col_ind, g.col_ptr, g.row_ind):
            arr.flags.writeable = False
        self._snapshot = g
        self._snapshot_epoch = self._epoch
        return self._snapshot

    # -- durability ----------------------------------------------------

    def export_state(self) -> dict:
        """Serializable image of the complete mutable state.

        Values are JSON-able scalars or numpy arrays (the checkpoint
        layer splits them accordingly).  The edit journal rides along so
        a restored graph answers :meth:`dirty_since` exactly as the
        original would — consumers left behind by the crash still get a
        truthful "too far back, go cold" answer.
        """
        epochs = np.array([e for e, _, _ in self._journal], dtype=np.int64)
        rows = [r for _, r, _ in self._journal]
        cols = [c for _, _, c in self._journal]
        empty = np.empty(0, dtype=np.int64)
        row_ptr = np.cumsum([0] + [r.size for r in rows], dtype=np.int64)
        col_ptr = np.cumsum([0] + [c.size for c in cols], dtype=np.int64)
        return {
            "nrows": self._nrows,
            "ncols": self._ncols,
            "epoch": self._epoch,
            "journal_floor": self._journal_floor,
            "journal_limit": int(self._journal.maxlen or 1),
            "keys": self._keys.copy(),
            "journal_epochs": epochs,
            "journal_rows": np.concatenate(rows) if rows else empty,
            "journal_row_ptr": row_ptr,
            "journal_cols": np.concatenate(cols) if cols else empty,
            "journal_col_ptr": col_ptr,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DynamicBipartiteGraph":
        """Rebuild a graph from :meth:`export_state` output.

        Raises :class:`~repro.errors.GraphStructureError` when the
        state image is internally inconsistent (keys out of range or
        unsorted — the symptom of a corrupted checkpoint).
        """
        g = cls(
            nrows=int(state["nrows"]),
            ncols=int(state["ncols"]),
            journal_limit=int(state["journal_limit"]),
        )
        keys = np.ascontiguousarray(state["keys"], dtype=np.int64)
        if keys.size:
            if np.any(np.diff(keys) <= 0):
                raise GraphStructureError(
                    "restored edge keys are not strictly increasing"
                )
            if (
                int(keys[-1] >> 32) >= g._nrows
                or int((keys & _COL_MASK).max()) >= g._ncols
            ):
                raise GraphStructureError(
                    "restored edge keys reference vertices out of range"
                )
        g._keys = keys
        g._keys_t = cls._transpose_keys(keys)
        g._epoch = int(state["epoch"])
        g._journal_floor = int(state["journal_floor"])
        epochs = np.asarray(state["journal_epochs"], dtype=np.int64)
        jr = np.asarray(state["journal_rows"], dtype=np.int64)
        jrp = np.asarray(state["journal_row_ptr"], dtype=np.int64)
        jc = np.asarray(state["journal_cols"], dtype=np.int64)
        jcp = np.asarray(state["journal_col_ptr"], dtype=np.int64)
        for k, ep in enumerate(epochs):
            g._journal.append(
                (
                    int(ep),
                    jr[jrp[k] : jrp[k + 1]].copy(),
                    jc[jcp[k] : jcp[k + 1]].copy(),
                )
            )
        return g

    def dirty_since(self, epoch: int) -> DirtySet | None:
        """Union of dirty rows/columns over epochs ``(epoch, current]``.

        Returns ``None`` when the journal no longer reaches back to
        *epoch* (the caller is too far behind and must recompute cold).
        """
        epoch = int(epoch)
        if epoch > self._epoch:
            raise ShapeError(
                f"dirty_since({epoch}) is ahead of the current epoch "
                f"{self._epoch}"
            )
        if epoch < self._journal_floor:
            return None
        rows = [e[1] for e in self._journal if e[0] > epoch]
        cols = [e[2] for e in self._journal if e[0] > epoch]
        empty = np.empty(0, dtype=np.int64)
        return DirtySet(
            rows=np.unique(np.concatenate(rows)) if rows else empty,
            cols=np.unique(np.concatenate(cols)) if cols else empty,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicBipartiteGraph(nrows={self._nrows}, "
            f"ncols={self._ncols}, nnz={self.nnz}, epoch={self._epoch})"
        )
