"""``StreamMatcher`` — incremental matching repair over a dynamic graph.

A cold TwoSidedMatch request is dominated by Sinkhorn–Knopp sweeps and a
full 1-out resample + Karp–Sipser pass.  After a small edit batch almost
all of that work is redundant; this matcher reuses it:

1. **warm rescale** — rerun :func:`~repro.scaling.scale_for_quality`
   starting from the previous ``(dr, dc)`` (the ``initial=`` kwarg); near
   a fixed point it recertifies the quality floor in a few sweeps, often
   zero;
2. **dirty resample** — redraw ``choice[]`` only for vertices whose
   adjacency changed (the dynamic graph's journal knows exactly which),
   keeping every clean vertex's earlier pick, so the subgraph stays a
   1-out choice structure on which Karp–Sipser is exact (Lemmas 1–4);
3. **component repair** — recompute the matching only on the connected
   components of the new choice subgraph touched by a *seed* vertex:
   one whose choice changed, or a matched vertex whose matching edge no
   longer lies in the choice subgraph.  Matched pairs in untouched
   components are provably still jointly optimal there (an augmenting
   path confined to an untouched component would have existed before the
   edit — the subgraph restricted to such a component is unchanged), so
   the union of the retained pairs and the per-component Karp–Sipser
   reruns is again a maximum matching of the whole choice subgraph;
4. **optional exact top-up** — warm-start Hopcroft–Karp from the
   repaired matching on the full graph (``topup=True``), or the
   ε-scaling auction with price state carried across epochs
   (``exact=True``).

The declared guarantee is re-certified from the warm rescale, not
assumed: ``target_quality`` when the rescale still certifies it,
otherwise the strongest ``certified_quality`` it actually reached —
identical semantics to a cold run, which is what the differential tests
pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro import telemetry as _tm
from repro._typing import FloatArray, IndexArray, SeedLike, rng_from
from repro.core.choice import (
    choices_from_weights,
    scaled_col_choices,
    scaled_row_choices,
)
from repro.core.karp_sipser_mt import karp_sipser_mt_vectorized
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import NIL, Matching
from repro.parallel.backends import Backend, get_backend
from repro.scaling.adaptive import QualityScaling, scale_for_quality
from repro.scaling.result import ScalingResult
from repro.stream.dynamic import DynamicBipartiteGraph

__all__ = ["StreamMatcher", "StreamMatchResult"]


@dataclass(frozen=True)
class StreamMatchResult:
    """Output of one :meth:`StreamMatcher.rematch` call."""

    matching: Matching
    #: The (possibly warm-started) scaling certificate backing *guarantee*.
    quality: QualityScaling
    #: Declared expected-quality floor: the target when still certified,
    #: else the strongest level the rescale reached.
    guarantee: float
    #: Graph epoch this result corresponds to.
    epoch: int
    #: ``"cold"`` or ``"incremental"``.
    mode: str
    #: Rows / columns whose choices were redrawn this call.
    resampled_rows: int
    resampled_cols: int
    #: Rows / columns inside repaired (recomputed) components.
    repaired_rows: int
    repaired_cols: int
    #: Extra pairs gained by the Hopcroft–Karp top-up (0 without topup).
    topup_gain: int
    #: Extra pairs gained by the auction exact repair (0 without exact).
    exact_gain: int = 0
    #: The :class:`~repro.matching.exact.AuctionResult` backing the
    #: exact repair (None without exact); its prices seed the next epoch.
    exact_result: "object | None" = None

    @property
    def cardinality(self) -> int:
        return self.matching.cardinality

    @property
    def scaling(self):
        return self.quality.scaling


def _pad(arr: IndexArray, n: int) -> IndexArray:
    """Extend a NIL-defaulted int array to length *n* (copy)."""
    out = np.full(n, NIL, dtype=np.int64)
    out[: arr.shape[0]] = arr
    return out


def _pad_ones(vec: FloatArray, n: int) -> FloatArray:
    out = np.ones(n, dtype=np.float64)
    out[: vec.shape[0]] = vec
    return out


def _pad_zeros(vec: FloatArray, n: int) -> FloatArray:
    out = np.zeros(n, dtype=np.float64)
    out[: vec.shape[0]] = vec
    return out


def _masked_gather(src: IndexArray, table: IndexArray) -> IndexArray:
    """``table[src]`` with NIL entries passed through untouched."""
    out = np.full(src.shape[0], NIL, dtype=np.int64)
    valid = src != NIL
    out[valid] = table[src[valid]]
    return out


def _choice_components(
    row_choice: IndexArray, col_choice: IndexArray
) -> IndexArray:
    """Component label per unified vertex of the choice subgraph.

    Built with :mod:`scipy.sparse.csgraph` (C speed); the pure-Python
    union-find in :mod:`repro.graph.components` is a reference
    implementation, far too slow at streaming sizes.
    """
    nrows = row_choice.shape[0]
    n = nrows + col_choice.shape[0]
    rows_v = np.flatnonzero(row_choice != NIL)
    cols_v = np.flatnonzero(col_choice != NIL)
    src = np.concatenate((rows_v, cols_v + nrows))
    dst = np.concatenate((row_choice[rows_v] + nrows, col_choice[cols_v]))
    adj = coo_matrix(
        (np.ones(src.shape[0], dtype=np.int8), (src, dst)), shape=(n, n)
    )
    _, labels = connected_components(adj, directed=False)
    return labels


class StreamMatcher:
    """Maintains a quality-certified matching over a
    :class:`~repro.stream.DynamicBipartiteGraph` under edits.

    Parameters
    ----------
    graph:
        The dynamic graph to track.
    target_quality:
        Expected-quality target for :func:`scale_for_quality` (must sit
        below the ``1 − 1/e`` Theorem 1 ceiling).
    seed:
        Randomness for the 1-out choices (dirty resamples draw from the
        same generator).
    backend:
        Parallel backend for scaling and choice kernels.
    topup:
        When true, finish every rematch with a warm-started
        Hopcroft–Karp pass — the result is then a true maximum matching
        and the certificate is a floor on what the heuristic alone
        would have delivered.
    exact:
        When true, finish every rematch with the ε-scaling auction
        instead (see :func:`~repro.matching.exact.auction_match`),
        warm-started from the repaired matching *and* the previous
        epoch's auction prices (padded and re-clipped as the graph
        grows).  Like ``topup`` the result is a true maximum matching;
        unlike it the exact engine's dual state survives across epochs.
        ``exact`` supersedes ``topup`` when both are set.
    max_sweeps:
        Sinkhorn–Knopp budget per rematch (cold or warm).
    """

    def __init__(
        self,
        graph: DynamicBipartiteGraph,
        target_quality: float = 0.55,
        *,
        seed: SeedLike = None,
        backend: Backend | str | None = None,
        topup: bool = False,
        exact: bool = False,
        max_sweeps: int = 500,
    ) -> None:
        self.graph = graph
        self.target_quality = float(target_quality)
        self.topup = bool(topup)
        self.exact = bool(exact)
        self._prices: FloatArray | None = None
        self.max_sweeps = int(max_sweeps)
        self._rng = rng_from(seed)
        self._backend = get_backend(backend)
        self._epoch: int | None = None
        self._quality: QualityScaling | None = None
        self._row_choice: IndexArray | None = None
        self._col_choice: IndexArray | None = None
        self._matching: Matching | None = None
        self._cold_sweeps: int | None = None
        #: Maintained (rowtot, colsum) of the current factors — lets the
        #: next incremental rescale skip the O(nnz) global measurement.
        self._scale_state: tuple[FloatArray, FloatArray] | None = None

    # -- public API ----------------------------------------------------

    @property
    def epoch(self) -> int | None:
        """Graph epoch of the last rematch (None before the first)."""
        return self._epoch

    @property
    def matching(self) -> Matching | None:
        return self._matching

    def export_state(self) -> dict:
        """Serializable image of configuration plus all warm state.

        Values are JSON-able scalars or numpy arrays.  Includes the
        exact generator state, so a restored matcher draws the *same*
        future random choices as the original would have — replaying a
        journal against a checkpoint is deterministic.
        """
        import json

        state: dict = {
            "target_quality": self.target_quality,
            "topup": self.topup,
            "exact": self.exact,
            "max_sweeps": self.max_sweeps,
            "rng_state": json.dumps(self._rng.bit_generator.state),
        }
        if self._epoch is not None:
            state["epoch"] = self._epoch
        if self._cold_sweeps is not None:
            state["cold_sweeps"] = self._cold_sweeps
        if self._prices is not None:
            state["prices"] = self._prices.copy()
        if self._quality is not None:
            qs = self._quality
            state.update(
                q_dr=qs.scaling.dr.copy(),
                q_dc=qs.scaling.dc.copy(),
                q_error=qs.scaling.error,
                q_iterations=qs.scaling.iterations,
                q_converged=qs.scaling.converged,
                q_history=list(qs.scaling.history),
                q_rung=qs.scaling.rung,
                q_warm=qs.scaling.warm_started,
                q_min_col_sum=qs.min_column_sum,
                q_certified=qs.certified_quality,
                q_target_met=qs.target_met,
            )
        if self._row_choice is not None:
            state["row_choice"] = self._row_choice.copy()
            state["col_choice"] = self._col_choice.copy()
        if self._matching is not None:
            state["row_match"] = self._matching.row_match.copy()
            state["col_match"] = self._matching.col_match.copy()
        if self._scale_state is not None:
            state["rowtot"] = self._scale_state[0].copy()
            state["colsum"] = self._scale_state[1].copy()
        return state

    @classmethod
    def from_state(
        cls,
        graph: DynamicBipartiteGraph,
        state: dict,
        *,
        backend: Backend | str | None = None,
    ) -> "StreamMatcher":
        """Rebuild a matcher over *graph* from :meth:`export_state`."""
        import json

        m = cls(
            graph,
            float(state["target_quality"]),
            backend=backend,
            topup=bool(state["topup"]),
            exact=bool(state["exact"]),
            max_sweeps=int(state["max_sweeps"]),
        )
        m._rng.bit_generator.state = json.loads(str(state["rng_state"]))
        if "epoch" in state:
            m._epoch = int(state["epoch"])
        if "cold_sweeps" in state:
            m._cold_sweeps = int(state["cold_sweeps"])
        if "prices" in state:
            m._prices = np.ascontiguousarray(
                state["prices"], dtype=np.float64
            )
        if "q_dr" in state:
            scaling = ScalingResult(
                dr=np.asarray(state["q_dr"], dtype=np.float64),
                dc=np.asarray(state["q_dc"], dtype=np.float64),
                error=float(state["q_error"]),
                iterations=int(state["q_iterations"]),
                converged=bool(state["q_converged"]),
                history=tuple(float(h) for h in state["q_history"]),
                rung=str(state["q_rung"]),
                warm_started=bool(state["q_warm"]),
            )
            m._quality = QualityScaling(
                scaling=scaling,
                min_column_sum=float(state["q_min_col_sum"]),
                certified_quality=float(state["q_certified"]),
                target_met=bool(state["q_target_met"]),
            )
        if "row_choice" in state:
            m._row_choice = np.ascontiguousarray(
                state["row_choice"], dtype=np.int64
            )
            m._col_choice = np.ascontiguousarray(
                state["col_choice"], dtype=np.int64
            )
        if "row_match" in state:
            m._matching = Matching(
                np.asarray(state["row_match"], dtype=np.int64),
                np.asarray(state["col_match"], dtype=np.int64),
            )
        if "rowtot" in state:
            m._scale_state = (
                np.ascontiguousarray(state["rowtot"], dtype=np.float64),
                np.ascontiguousarray(state["colsum"], dtype=np.float64),
            )
        return m

    def rematch(self, *, cold: bool = False) -> StreamMatchResult:
        """(Re)compute the matching for the graph's current epoch.

        The first call always runs cold; later calls repair
        incrementally when the graph's journal still covers the span
        since the last processed epoch, falling back to a cold run when
        it does not (or when ``cold=True`` forces one).
        """
        snap = self.graph.snapshot()
        epoch = self.graph.epoch
        dirty = None
        if not cold and self._epoch is not None:
            dirty = self.graph.dirty_since(self._epoch)
        with _tm.span(
            "stream.rematch", mode="cold" if dirty is None else "incremental"
        ) as sp:
            if dirty is None:
                result = self._rematch_cold(snap, epoch)
            else:
                result = self._rematch_incremental(snap, epoch, dirty)
            if _tm.enabled():
                _tm.incr("stream.rematch.runs")
                _tm.incr(f"stream.rematch.{result.mode}")
                _tm.set_gauge("stream.cardinality", result.cardinality)
                _tm.set_gauge("stream.guarantee", result.guarantee)
                sp.set(
                    cardinality=result.cardinality,
                    guarantee=result.guarantee,
                    epoch=epoch,
                )
        return result

    # -- shared pieces -------------------------------------------------

    def _declared_guarantee(self, qs: QualityScaling) -> float:
        # Exactly the target when certified: a warm and a cold run that
        # both clear the bar therefore declare the *same* number, which
        # is what makes differential guarantee checks exact.
        return self.target_quality if qs.target_met else qs.certified_quality

    def _finish(
        self,
        snap: BipartiteGraph,
        epoch: int,
        qs: QualityScaling,
        matching: Matching,
        *,
        mode: str,
        resampled: tuple[int, int],
        repaired: tuple[int, int],
    ) -> StreamMatchResult:
        gain = 0
        exact_gain = 0
        exact_result = None
        if self.exact:
            from repro.matching.exact.auction import auction_match

            before = matching.cardinality
            prices = None
            if self._prices is not None:
                prices = _pad_zeros(self._prices, snap.ncols)
            exact_result = auction_match(
                snap,
                initial=matching,
                prices=prices,
                backend=self._backend,
                seed=self._rng,
            )
            matching = exact_result.matching
            self._prices = exact_result.prices
            exact_gain = matching.cardinality - before
            if _tm.enabled():
                _tm.incr("stream.exact.runs")
                _tm.incr("stream.exact.gain", exact_gain)
        elif self.topup:
            from repro.matching.exact.hopcroft_karp import hopcroft_karp

            before = matching.cardinality
            matching = hopcroft_karp(snap, initial=matching)
            gain = matching.cardinality - before
            if _tm.enabled():
                _tm.incr("stream.topup.gain", gain)
        self._epoch = epoch
        self._quality = qs
        self._matching = matching
        result = StreamMatchResult(
            matching=matching,
            quality=qs,
            # An exact repair makes the matching provably maximum; the
            # scaling certificate then only explains the warm start.
            guarantee=1.0 if self.exact else self._declared_guarantee(qs),
            epoch=epoch,
            mode=mode,
            resampled_rows=resampled[0],
            resampled_cols=resampled[1],
            repaired_rows=repaired[0],
            repaired_cols=repaired[1],
            topup_gain=gain,
            exact_gain=exact_gain,
            exact_result=exact_result,
        )
        return result

    # -- cold path -----------------------------------------------------

    def _rematch_cold(
        self, snap: BipartiteGraph, epoch: int
    ) -> StreamMatchResult:
        from repro.stream.rescale import measure_state

        qs = scale_for_quality(
            snap, self.target_quality, max_iterations=self.max_sweeps
        )
        dr, dc = qs.scaling.dr, qs.scaling.dc
        self._scale_state = measure_state(snap, dc)
        row_choice = scaled_row_choices(
            snap, dr, dc, self._rng, backend=self._backend
        )
        col_choice = scaled_col_choices(
            snap, dr, dc, self._rng, backend=self._backend
        )
        matching = karp_sipser_mt_vectorized(row_choice, col_choice)
        self._row_choice = row_choice
        self._col_choice = col_choice
        if self._cold_sweeps is None:
            self._cold_sweeps = qs.scaling.iterations
        return self._finish(
            snap,
            epoch,
            qs,
            matching,
            mode="cold",
            resampled=(snap.nrows, snap.ncols),
            repaired=(snap.nrows, snap.ncols),
        )

    # -- incremental path ----------------------------------------------

    def _rematch_incremental(
        self, snap: BipartiteGraph, epoch: int, dirty
    ) -> StreamMatchResult:
        assert self._quality is not None and self._matching is not None
        prev = self._quality.scaling

        # 1. Warm rescale: localized repair of the previous epoch's
        # column factors (padded with ones if the graph grew) — only the
        # columns the edits disturbed get touched, with one exact global
        # measurement certifying the result.  If the local loop cannot
        # lift every column, fall back to warm-started global sweeps
        # from wherever it got to.
        from repro.stream.rescale import local_rebalance, measure_state

        state = None
        if self._scale_state is not None:
            state = (
                _pad_zeros(self._scale_state[0], snap.nrows),
                _pad_zeros(self._scale_state[1], snap.ncols),
            )
        qs, state = local_rebalance(
            snap,
            _pad_ones(prev.dc, snap.ncols),
            self.target_quality,
            state=state,
            dirty_rows=dirty.rows,
            dirty_cols=dirty.cols,
        )
        if not qs.target_met:
            if _tm.enabled():
                _tm.incr("stream.rebalance.fallbacks")
            qs = scale_for_quality(
                snap,
                self.target_quality,
                max_iterations=self.max_sweeps,
                initial=(qs.scaling.dr, qs.scaling.dc),
            )
            state = measure_state(snap, qs.scaling.dc)
        self._scale_state = state
        if _tm.enabled() and self._cold_sweeps is not None:
            _tm.incr(
                "stream.warm_sweeps_saved",
                max(0, self._cold_sweeps - qs.scaling.iterations),
            )
        dr, dc = qs.scaling.dr, qs.scaling.dc

        # 2. Resample choices for dirty vertices only.  A row pick
        # weights edges by dc alone (the row factor is constant within a
        # row), so gathering just the dirty rows' CSR segments and
        # sampling them with dc weights reproduces the exact
        # distribution; symmetrically for columns with dr.
        from repro.stream.rescale import _gather_segments

        row_choice = _pad(self._row_choice, snap.nrows)
        col_choice = _pad(self._col_choice, snap.ncols)
        if dirty.rows.size:
            cols_d, sub_ptr = _gather_segments(
                snap.row_ptr, snap.col_ind, dirty.rows
            )
            row_choice[dirty.rows] = choices_from_weights(
                sub_ptr, cols_d, dc[cols_d], self._rng,
                backend=self._backend,
            )
        if dirty.cols.size:
            rows_d, sub_ptr = _gather_segments(
                snap.col_ptr, snap.row_ind, dirty.cols
            )
            col_choice[dirty.cols] = choices_from_weights(
                sub_ptr, rows_d, dr[rows_d], self._rng,
                backend=self._backend,
            )

        # 3. Seed set: changed choices, plus matched pairs whose edge is
        # no longer in the choice subgraph (either endpoint redrawn away
        # from it, or the edge itself deleted — deletion dirties both
        # endpoints, so their redraws cannot restore it).
        old_rc = _pad(self._row_choice, snap.nrows)
        old_cc = _pad(self._col_choice, snap.ncols)
        row_match = _pad(self._matching.row_match, snap.nrows)
        col_match = _pad(self._matching.col_match, snap.ncols)
        changed_rows = np.flatnonzero(row_choice != old_rc)
        changed_cols = np.flatnonzero(col_choice != old_cc)
        m_rows = np.flatnonzero(row_match != NIL)
        m_cols = row_match[m_rows]
        in_choice = (row_choice[m_rows] == m_cols) | (
            col_choice[m_cols] == m_rows
        )
        broken_rows = m_rows[~in_choice]
        broken_cols = m_cols[~in_choice]
        nrows = snap.nrows
        seeds = np.concatenate(
            (
                changed_rows,
                broken_rows,
                changed_cols + nrows,
                broken_cols + nrows,
            )
        )

        if seeds.size == 0:
            # Nothing structural changed (e.g. pure growth, or redraws
            # landed on identical picks): keep the matching, refresh the
            # certificate.
            self._row_choice = row_choice
            self._col_choice = col_choice
            matching = Matching(row_match, col_match)
            return self._finish(
                snap,
                epoch,
                qs,
                matching,
                mode="incremental",
                resampled=(int(dirty.rows.size), int(dirty.cols.size)),
                repaired=(0, 0),
            )

        # 4. Components of the new choice subgraph; repair exactly the
        # ones containing a seed.
        labels = _choice_components(row_choice, col_choice)
        n_comp = int(labels.max()) + 1 if labels.size else 0
        hit = np.zeros(n_comp, dtype=bool)
        hit[labels[seeds]] = True
        affected = hit[labels]
        rows_r = np.flatnonzero(affected[:nrows])
        cols_r = np.flatnonzero(affected[nrows:])

        # Compact the affected slice into a local id space and rerun
        # Karp–Sipser there.  Choice edges never leave a component, so
        # every referenced target has a local id.
        row_local = np.full(nrows, NIL, dtype=np.int64)
        row_local[rows_r] = np.arange(rows_r.shape[0])
        col_local = np.full(snap.ncols, NIL, dtype=np.int64)
        col_local[cols_r] = np.arange(cols_r.shape[0])
        sub_rc = _masked_gather(row_choice[rows_r], col_local)
        sub_cc = _masked_gather(col_choice[cols_r], row_local)
        sub_match = karp_sipser_mt_vectorized(sub_rc, sub_cc)

        # 5. Merge: retained pairs live wholly in untouched components
        # (a matched pair is a choice edge, hence component-internal),
        # so the two halves are vertex-disjoint by construction.
        row_match[rows_r] = _masked_gather(sub_match.row_match, cols_r)
        col_match[cols_r] = _masked_gather(sub_match.col_match, rows_r)
        matching = Matching(row_match, col_match)

        if _tm.enabled():
            _tm.set_gauge("stream.dirty.rows", int(dirty.rows.size))
            _tm.set_gauge("stream.dirty.cols", int(dirty.cols.size))
            _tm.set_gauge("stream.repaired.rows", int(rows_r.size))
            _tm.set_gauge("stream.repaired.cols", int(cols_r.size))
            total = nrows + snap.ncols
            if total:
                _tm.set_gauge(
                    "stream.repaired.fraction",
                    (int(rows_r.size) + int(cols_r.size)) / total,
                )

        self._row_choice = row_choice
        self._col_choice = col_choice
        return self._finish(
            snap,
            epoch,
            qs,
            matching,
            mode="incremental",
            resampled=(int(dirty.rows.size), int(dirty.cols.size)),
            repaired=(int(rows_r.size), int(cols_r.size)),
        )
