"""Churn benchmark: incremental update→rematch vs cold rematch.

Drives a :class:`~repro.stream.DynamicBipartiteGraph` through batches of
edge churn (delete a fraction of the edges, insert as many new ones) and
measures, per batch, the cost of

* applying the edits (``update``),
* the :class:`~repro.stream.StreamMatcher` incremental repair
  (warm rescale + dirty resample + component repair), and
* a cold from-scratch rematch of the same epoch (a fresh matcher),

verifying along the way that the incremental path declares exactly the
same quality guarantee as the cold one.  Shared by the ``repro stream``
CLI subcommand and the ``stream_update`` / ``stream_speedup`` cells of
``benchmarks/regression.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro._typing import SeedLike, rng_from
from repro.graph.generators import union_of_permutations
from repro.stream.dynamic import DynamicBipartiteGraph
from repro.stream.matcher import StreamMatcher

__all__ = ["ChurnReport", "run_churn"]


@dataclass(frozen=True)
class ChurnReport:
    """Result of :func:`run_churn` (timings are per-batch means)."""

    n: int
    degree: int
    churn_fraction: float
    batches: int
    #: Seconds to apply one edit batch (remove + add).
    update_seconds: float
    #: Seconds for one incremental rematch after the batch.
    incremental_seconds: float
    #: Seconds for a cold rematch of the same epoch (0.0 when skipped).
    cold_seconds: float
    #: ``cold / (update + incremental)`` (0.0 when cold was skipped).
    speedup: float
    #: Declared guarantee of the final incremental rematch.
    guarantee: float
    #: Cardinality of the final incremental matching.
    cardinality: int
    #: Whether every batch's incremental guarantee equalled the cold one.
    guarantees_match: bool


def run_churn(
    n: int = 10_000,
    *,
    degree: int = 2,
    extra_degree: float = 6.0,
    churn_fraction: float = 0.01,
    batches: int = 3,
    target_quality: float = 0.60,
    seed: SeedLike = 0,
    backend: object = None,
    compare_cold: bool = True,
    max_sweeps: int = 200,
) -> ChurnReport:
    """Run the churn workload and time both rematch paths.

    The base instance is a union of *degree* random permutations (total
    support by construction, so :func:`~repro.scaling.scale_for_quality`
    certifies the target without pathological budgets) plus
    ``extra_degree * n`` uniform random edges — the extras skew the
    degree distribution so cold scaling genuinely has to iterate, which
    is the regime the streaming layer exists for.  Each batch removes
    ``churn_fraction * nnz`` random existing edges and inserts the same
    number of fresh random ones.
    """
    rng = rng_from(seed)
    base = union_of_permutations(n, degree, rng)
    graph = DynamicBipartiteGraph(base)
    if extra_degree > 0:
        from repro.graph.generators import sprand

        extra = sprand(n, extra_degree, rng)
        graph.add_edges(extra.row_of_edge(), extra.col_ind)
    matcher = StreamMatcher(
        graph,
        target_quality,
        seed=rng,
        backend=backend,
        max_sweeps=max_sweeps,
    )
    matcher.rematch()  # epoch-0 cold baseline; not part of the timings

    edit_s: list[float] = []
    inc_s: list[float] = []
    cold_s: list[float] = []
    guarantees_match = True
    result = None
    for b in range(batches):
        snap = graph.snapshot()
        m = max(1, int(round(churn_fraction * snap.nnz)))
        victims = rng.choice(snap.nnz, size=min(m, snap.nnz), replace=False)
        del_rows = snap.row_of_edge()[victims]
        del_cols = snap.col_ind[victims]
        add_rows = rng.integers(0, n, size=m)
        add_cols = rng.integers(0, n, size=m)

        t0 = time.perf_counter()
        graph.remove_edges(del_rows, del_cols)
        graph.add_edges(add_rows, add_cols)
        graph.snapshot()  # CSR refresh is part of the update cost
        t1 = time.perf_counter()
        result = matcher.rematch()
        t2 = time.perf_counter()
        edit_s.append(t1 - t0)
        inc_s.append(t2 - t1)

        if compare_cold:
            # The declared guarantee is a function of the (deterministic)
            # scaling alone, so the cold matcher may draw from the same
            # generator without affecting the comparison.
            cold_matcher = StreamMatcher(
                graph,
                target_quality,
                seed=rng,
                backend=backend,
                max_sweeps=max_sweeps,
            )
            t3 = time.perf_counter()
            cold = cold_matcher.rematch()
            t4 = time.perf_counter()
            cold_s.append(t4 - t3)
            if cold.guarantee != result.guarantee:
                guarantees_match = False

    mean_edit = float(np.mean(edit_s))
    mean_inc = float(np.mean(inc_s))
    mean_cold = float(np.mean(cold_s)) if cold_s else 0.0
    denom = mean_edit + mean_inc
    return ChurnReport(
        n=n,
        degree=degree,
        churn_fraction=churn_fraction,
        batches=batches,
        update_seconds=mean_edit,
        incremental_seconds=mean_inc,
        cold_seconds=mean_cold,
        speedup=(mean_cold / denom) if (cold_s and denom > 0) else 0.0,
        guarantee=result.guarantee if result is not None else 0.0,
        cardinality=result.cardinality if result is not None else 0,
        guarantees_match=guarantees_match,
    )
