"""Localized quality re-certification after an edit batch.

A full Sinkhorn–Knopp sweep costs O(nnz) and, after random churn, most
of it is wasted: the previous epoch's ``(dr, dc)`` already put every
*untouched* column comfortably above the certification level α — only
columns incident to the edits (or sharing a row with them) can have
dropped below it.  Worse, the sweeps needed to fix one freshly deficient
column are the same from a warm start as from a cold one, so plain
warm-started global sweeps save little (see ``docs/streaming.md``).

:func:`local_rebalance` fixes the deficient columns directly:

1. obtain all column sums of the row-normalised pick probabilities —
   either one O(nnz) pass (no sort; the CSC mirror is already
   column-grouped), or, when the caller hands back the previous epoch's
   maintained ``(rowtot, colsum)`` state, a dirty-neighbourhood refresh
   that skips the global pass entirely;
2. multiplicatively boost ``dc`` on the deficient columns to the level
   α·*slack*;
3. refresh the row totals of exactly the rows adjacent to the boosted
   columns, then re-measure exactly the columns adjacent to those rows
   (the only sums that can have moved);
4. repeat until no column is deficient or the round budget is spent.

Each round touches O(edges incident to the boosted neighbourhood)
instead of O(nnz): row totals and column sums are *delta-tracked*
(scatter-adds over exactly the edges whose contribution moved), and the
loop typically ends in a handful of rounds because a boost spreads its
side effects over high-degree rows.  Delta tracking drifts by a few
ulps per round, so before certifying, every row and column the loop
touched is re-measured from the final factors by a fresh gather — the
reported minimum and the carried state equal what a full pass would
produce.  When the loop fails to certify the target, the caller falls
back to warm-started global sweeps
(:func:`~repro.scaling.scale_for_quality` with ``initial=``).
"""

from __future__ import annotations

import numpy as np

from repro import telemetry as _tm
from repro._typing import FloatArray
from repro.constants import ONE_SIDED_GUARANTEE, one_sided_guarantee_relaxed
from repro.graph.csr import BipartiteGraph
from repro.parallel.reduction import gather_segments as _gather_segments
from repro.parallel.reduction import segment_sums
from repro.scaling.adaptive import QualityScaling, alpha_for_quality
from repro.scaling.result import ScalingResult

__all__ = ["local_rebalance", "measure_state"]

#: Per-round cap on the multiplicative boost of a deficient column.  A
#: column whose probability sum is many orders of magnitude below α
#: (near-empty support after churn) would otherwise request an unbounded
#: factor; repeated rounds then overflow ``dc`` to ``inf``, the affected
#: row totals follow, and the ``0 · inf`` products poison the certificate
#: with NaN.  Columns that genuinely cannot reach α under the cap simply
#: stay deficient and the caller falls back to global sweeps.
_MAX_BOOST = 1e6

#: Absolute ceiling on a column factor.  Keeps every downstream product
#: (row totals, probability sums) comfortably inside float64 range even
#: at the round budget: ``nnz · _DC_CAP`` stays finite.
_DC_CAP = 1e150

#: Row totals below this are treated as empty (their rows contribute no
#: probability mass).  Without the floor, a denormal total inverts to
#: ``inf`` and one ``inf · 0`` product later the certificate is NaN; the
#: floor also bounds the row factors handed to warm-start consumers at
#: ``1 / _ROWTOT_TINY``, inside the range Sinkhorn–Knopp sweeps survive.
_ROWTOT_TINY = 1e-150

#: When the final factors span more than this, renormalise ``dc`` to
#: ``max(dc) == 1`` before certifying — the row-normalised pick
#: probabilities are invariant under a global scaling of ``dc``, so the
#: certificate is unchanged while every downstream consumer (the warm
#: Sinkhorn–Knopp fallback included) sees bounded numbers.
_DC_NORM = 1e100


def _guarded_inverse(rowtot: FloatArray) -> FloatArray:
    """``1 / rowtot`` with near-empty totals mapped to zero, never inf."""
    inv = np.zeros_like(rowtot)
    np.divide(1.0, rowtot, out=inv, where=rowtot > _ROWTOT_TINY)
    return inv



def _column_prob_sums(
    graph: BipartiteGraph, dc: FloatArray, inv_rowtot: FloatArray
) -> FloatArray:
    """All column sums of the row-normalised pick probabilities, O(nnz)."""
    numer = np.repeat(dc, np.diff(graph.col_ptr))
    probs = numer * inv_rowtot[graph.row_ind]
    return segment_sums(probs, graph.col_ptr)


def measure_state(
    graph: BipartiteGraph, dc: FloatArray
) -> tuple[FloatArray, FloatArray]:
    """Exact ``(rowtot, colsum)`` of *dc* on *graph* (one O(nnz) pass).

    ``rowtot[i]`` is the sum of ``dc`` over row *i*'s columns and
    ``colsum[j]`` the column sum of the row-normalised pick
    probabilities — the two vectors :func:`local_rebalance` maintains.
    """
    rowtot = segment_sums(dc[graph.col_ind], graph.row_ptr)
    return rowtot, _column_prob_sums(graph, dc, _guarded_inverse(rowtot))


def local_rebalance(
    graph: BipartiteGraph,
    dc: FloatArray,
    target_quality: float,
    *,
    max_rounds: int = 30,
    slack: float = 1.1,
    state: tuple[FloatArray, FloatArray] | None = None,
    dirty_rows: FloatArray | None = None,
    dirty_cols: FloatArray | None = None,
) -> tuple[QualityScaling, tuple[FloatArray, FloatArray]]:
    """Repair a near-certifying column scaling to the target level locally.

    Only ``dc`` matters for the Section 3.3 certificate (row factors
    cancel in the row-normalised pick probabilities); the returned
    ``dr`` is the exact row-normaliser ``1 / rowtot`` of the final
    ``dc``, so the pair is row-stochastic by construction.

    *state* is the previous epoch's ``(rowtot, colsum)`` pair (sized for
    *graph*, ownership transfers — the arrays are updated in place).
    With it, the initial O(nnz) measurement shrinks to the dirty
    neighbourhood: only rows in *dirty_rows* changed their totals, and
    only columns adjacent to them (plus *dirty_cols*) can have moved
    their sums.  Without it, both vectors are measured from scratch.

    Returns ``(quality, (rowtot, colsum))`` — a
    :class:`~repro.scaling.adaptive.QualityScaling` whose
    ``certified_quality`` comes from exact measurements of the final
    factors, plus the maintained state for the next call.  ``target_met``
    is ``False`` when the local loop could not lift every column
    (callers should then fall back to global sweeps and re-measure).
    ``scaling.iterations`` counts local rounds.
    """
    alpha = alpha_for_quality(target_quality)
    dc = np.array(dc, dtype=np.float64, copy=True)
    level = alpha * slack

    if state is None:
        rowtot, colsum = measure_state(graph, dc)
    else:
        rowtot, colsum = state
        d_rows = np.asarray(
            dirty_rows if dirty_rows is not None else (), dtype=np.int64
        )
        d_cols = np.asarray(
            dirty_cols if dirty_cols is not None else (), dtype=np.int64
        )
        col_mask = np.zeros(graph.ncols, dtype=bool)
        col_mask[d_cols] = True
        if d_rows.size:
            cols_of_rows, sub_ptr = _gather_segments(
                graph.row_ptr, graph.col_ind, d_rows
            )
            rowtot[d_rows] = segment_sums(dc[cols_of_rows], sub_ptr)
            col_mask[cols_of_rows] = True
        stale = np.flatnonzero(col_mask)
    inv_rowtot = _guarded_inverse(rowtot)
    if state is not None and stale.size:
        # NB: multiply per edge BEFORE summing — the same operation order
        # as `_column_prob_sums` — so the refreshed entries are bitwise
        # identical to a from-scratch `measure_state` (recovery
        # recertification compares exactly, not approximately).
        rows_st, st_ptr = _gather_segments(
            graph.col_ptr, graph.row_ind, stale
        )
        colsum[stale] = segment_sums(
            np.repeat(dc[stale], np.diff(st_ptr)) * inv_rowtot[rows_st],
            st_ptr,
        )
    nonempty = np.diff(graph.col_ptr) > 0
    deficient = nonempty & (colsum < alpha)

    rounds = 0
    touched_row_mask = np.zeros(graph.nrows, dtype=bool)
    touched_col_mask = np.zeros(graph.ncols, dtype=bool)
    deficient_idx = np.flatnonzero(deficient)
    while deficient_idx.size and rounds < max_rounds:
        d = deficient_idx
        # Boost the deficient columns to slightly above the bar; their
        # sums scale linearly in dc[j] at fixed row totals.  The boost is
        # clamped (per round and in absolute dc magnitude) so near-empty
        # columns cannot drive the factors to inf/NaN; a clamped column
        # lands below `level` and simply stays deficient.
        old_dc = np.maximum(dc[d], 1e-300)
        boost = np.minimum(level / np.maximum(colsum[d], 1e-300), _MAX_BOOST)
        dc[d] = np.minimum(old_dc * boost, _DC_CAP)
        colsum[d] *= dc[d] / old_dc
        touched_col_mask[d] = True

        # Rows whose totals moved: those adjacent to a boosted column.
        # Their totals and the downstream column sums are delta-tracked
        # (scatter-adds over the touched edges only) — re-gathering the
        # full edge sets of every affected column would cost a factor of
        # the average degree more per round.
        rows_d, d_ptr = _gather_segments(graph.col_ptr, graph.row_ind, d)
        row_delta = np.bincount(
            rows_d,
            weights=np.repeat(dc[d] - old_dc, np.diff(d_ptr)),
            minlength=graph.nrows,
        )
        touched = np.flatnonzero(row_delta)
        old_inv = inv_rowtot[touched].copy()
        rowtot[touched] += row_delta[touched]
        # NB: fancy indexing in `out=` would write into a temporary copy;
        # scatter the computed values explicitly.
        new_inv = _guarded_inverse(rowtot[touched])
        inv_rowtot[touched] = new_inv
        touched_row_mask[touched] = True

        # Column sums move by dc[j] * Δ(1/rowtot) summed over the
        # touched rows each column meets.
        cols_of_rows, sub_ptr = _gather_segments(
            graph.row_ptr, graph.col_ind, touched
        )
        colsum += np.bincount(
            cols_of_rows,
            weights=dc[cols_of_rows]
            * np.repeat(new_inv - old_inv, np.diff(sub_ptr)),
            minlength=graph.ncols,
        )
        touched_col_mask[cols_of_rows] = True
        deficient_idx = np.flatnonzero(nonempty & (colsum < alpha))
        rounds += 1

    # Delta tracking drifts by a few ulps per round; the certificate and
    # the carried state must be exact, so re-measure everything the loop
    # touched from the final factors in one pass.  When the boosts drove
    # the factors to a pathological spread (near-empty columns under
    # churn), renormalise ``dc`` to ``max == 1`` first — a global scaling
    # of ``dc`` leaves the pick probabilities untouched — and re-measure
    # everything from the bounded factors instead.
    if dc.size and float(dc.max()) > _DC_NORM:
        # The floor catches factors that underflow under the
        # normalisation; they carry no mass but must stay strictly
        # positive and inside the range warm-start consumers survive.
        dc = np.maximum(dc / dc.max(), 1e-150)
        rowtot, colsum = measure_state(graph, dc)
        inv_rowtot = _guarded_inverse(rowtot)
    else:
        t_rows = np.flatnonzero(touched_row_mask)
        if t_rows.size:
            cols_tr, ptr_tr = _gather_segments(
                graph.row_ptr, graph.col_ind, t_rows
            )
            new_tot = segment_sums(dc[cols_tr], ptr_tr)
            rowtot[t_rows] = new_tot
            inv_rowtot[t_rows] = _guarded_inverse(new_tot)
        t_cols = np.flatnonzero(touched_col_mask)
        if t_cols.size:
            # Same per-edge multiplication order as `_column_prob_sums`;
            # see the stale refresh above.
            rows_tc, ptr_tc = _gather_segments(
                graph.col_ptr, graph.row_ind, t_cols
            )
            colsum[t_cols] = segment_sums(
                np.repeat(dc[t_cols], np.diff(ptr_tc))
                * inv_rowtot[rows_tc],
                ptr_tc,
            )
    current = float(colsum[nonempty].min()) if nonempty.any() else 0.0
    dr = inv_rowtot.copy()
    # Empty and near-empty rows (floor-guarded to zero above) carry no
    # probability mass; give them the conventional factor 1 so the pair
    # stays strictly positive for warm-start consumers.
    dr[rowtot <= _ROWTOT_TINY] = 1.0

    if _tm.enabled():
        _tm.incr("stream.rebalance.runs")
        _tm.set_gauge("stream.rebalance.rounds", rounds)
        _tm.set_gauge("stream.rebalance.min_col_sum", current)

    # With dr = 1/rowtot the raw scaled column sums coincide with the
    # row-normalised probability sums already in `colsum`, so the
    # paper's scaling error is free too.
    error = (
        float(np.abs(colsum[nonempty] - 1.0).max()) if nonempty.any() else 0.0
    )
    scaling = ScalingResult(
        dr=dr,
        dc=dc,
        error=error,
        iterations=rounds,
        converged=current >= alpha,
        warm_started=True,
    )
    certified = min(
        one_sided_guarantee_relaxed(min(current, 1.0)), ONE_SIDED_GUARANTEE
    )
    quality = QualityScaling(
        scaling=scaling,
        min_column_sum=current,
        certified_quality=certified,
        target_met=current >= alpha,
    )
    return quality, (rowtot, colsum)
