"""``repro.stream`` — dynamic graphs with incremental matching repair.

The streaming layer for evolving workloads (see ``docs/streaming.md``):

* :class:`DynamicBipartiteGraph` — a versioned, editable edge set with
  epoch-stamped lazy CSR snapshots and a bounded dirty-vertex journal;
* :class:`StreamMatcher` — maintains a quality-certified matching under
  edits via warm-started rescaling, dirty-vertex choice resampling and
  per-component Karp–Sipser repair, with an optional exact top-up;
* :func:`run_churn` — the churn benchmark used by the CLI and the
  regression harness.
"""

from repro.stream.bench import ChurnReport, run_churn
from repro.stream.dynamic import DirtySet, DynamicBipartiteGraph
from repro.stream.matcher import StreamMatcher, StreamMatchResult

__all__ = [
    "DynamicBipartiteGraph",
    "DirtySet",
    "StreamMatcher",
    "StreamMatchResult",
    "ChurnReport",
    "run_churn",
]
