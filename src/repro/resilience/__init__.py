"""Fault injection, recovery, and graceful degradation.

The paper's guarantees are robustness statements — Theorem 1 survives
arbitrary write races, and Section 3.3 shows the bound degrading
gracefully under under-converged scaling.  This package extends that
spirit to the *operational* failure modes of a shared-memory service:

* :mod:`repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` of crash/hang/slow/corrupt rules that the execution
  backends consult in ``map_ranges``.  Injection is only possible through
  the explicit :func:`injected_faults` context manager; production calls
  pay a single ``is None`` check.
* :mod:`repro.resilience.resilient` — :class:`ResilientBackend`, a
  wrapper adding per-chunk deadlines (expired children are killed),
  bounded retries with exponential backoff and deterministic jitter, and
  re-execution of only the failed ranges.  Exhaustion raises typed errors
  (:class:`~repro.errors.WorkerCrashError`,
  :class:`~repro.errors.DeadlineExceededError`,
  :class:`~repro.errors.RetryExhaustedError`) — never a bare hang or
  ``EOFError``.
* :mod:`repro.resilience.chaos` — the chaos harness: runs the backend
  matrix under injected fault schedules and checks that every cell either
  returns a bitwise-correct result or fails with a typed error inside its
  deadline budget (``python -m repro chaos`` / ``make chaos``).

The scaling half of the story — the support-aware degradation ladder —
lives in :func:`repro.scaling.scale_sinkhorn_knopp` and is documented in
``docs/resilience.md``.

This ``__init__`` resolves its exports lazily so that importing
:mod:`repro.parallel.backends` (which needs only the fault hook) does not
drag in the recovery layer, and to keep the import graph acyclic.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "injected_faults",
    "active_plan",
    "execute_with_fault",
    "CORRUPTED",
    "is_corrupted",
    "BackoffPolicy",
    "BackoffSchedule",
    "Deadline",
    "request_deadline",
    "current_deadline",
    "ResilientBackend",
    "ChaosOutcome",
    "ChaosReport",
    "net_schedules",
    "recovery_schedules",
    "run_chaos",
    "standard_schedules",
]

_EXPORTS = {
    "FaultKind": "repro.resilience.faults",
    "FaultSpec": "repro.resilience.faults",
    "FaultPlan": "repro.resilience.faults",
    "injected_faults": "repro.resilience.faults",
    "active_plan": "repro.resilience.faults",
    "execute_with_fault": "repro.resilience.faults",
    "CORRUPTED": "repro.resilience.faults",
    "is_corrupted": "repro.resilience.faults",
    "BackoffPolicy": "repro.resilience.backoff",
    "BackoffSchedule": "repro.resilience.backoff",
    "Deadline": "repro.resilience.deadline",
    "request_deadline": "repro.resilience.deadline",
    "current_deadline": "repro.resilience.deadline",
    "ResilientBackend": "repro.resilience.resilient",
    "ChaosOutcome": "repro.resilience.chaos",
    "ChaosReport": "repro.resilience.chaos",
    "net_schedules": "repro.resilience.chaos",
    "recovery_schedules": "repro.resilience.chaos",
    "run_chaos": "repro.resilience.chaos",
    "standard_schedules": "repro.resilience.chaos",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
