"""Deterministic, seeded fault injection for the execution backends.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules addressable by
backend label, chunk index, and call count.  Backends consult the active
plan in ``map_ranges``; when no plan is installed (the production default)
the only cost is one ``is None`` check per call.  Plans are installed with
the :func:`injected_faults` context manager — there is no way to enable
injection implicitly.

Determinism: probabilistic rules draw from a hash of
``(plan seed, rule index, backend label, chunk, call)``, so the same plan
against the same call sequence injects the same faults on every run, on
every platform, regardless of thread interleaving.

Fault kinds
-----------

``crash``
    The worker dies.  In a forked child this is a hard ``os._exit`` (the
    parent sees EOF on the result pipe and a nonzero exit status); on an
    in-process worker it raises :class:`~repro.errors.WorkerCrashError`.
``hang``
    The worker stalls for ``seconds`` (default 30) before completing
    normally — long enough to trip any sane deadline, bounded so that
    un-killable Python threads do not leak forever.
``slow``
    The worker sleeps ``seconds`` (default 0.05) and then completes —
    a straggler, not a failure.
``corrupt``
    The worker completes but its payload is replaced with the
    :data:`CORRUPTED` marker, modelling a checksum failure on the result
    channel.  :class:`~repro.resilience.ResilientBackend` detects the
    marker and treats the chunk as failed; a plain backend would hand the
    bad payload to the caller.

Network fault kinds
-------------------

The socket transport (:mod:`repro.serve.net`) consults the plan under
the backend label ``"net"`` once per response it is about to send, so a
schedule can break the wire at exact request boundaries:

``drop``
    The connection is closed without a response — the client sees EOF
    mid-request and must retry (its idempotent request id makes the
    retry safe).
``delay``
    The response is sent ``seconds`` late — a slow network, not a
    failure; the client's response deadline decides whether it counts.
``partition``
    The connection drops *and* the listener refuses every new
    connection for ``seconds`` — the client's reconnects all fail and
    its retry budget ends in a typed
    :class:`~repro.errors.PartitionedError` (or the partition heals
    first and a retry succeeds).
``truncate``
    The response frame is cut partway through and the connection
    closed — the torn-write of the wire; the framing layer detects the
    short frame.
``garbage``
    A byte inside the response payload is flipped — caught by the frame
    checksum; the client discards the frame and retries.

When a compute backend encounters one of these kinds (a plan addressed
at every label), they degrade to their nearest process-level analogue:
``drop``/``truncate``/``garbage`` behave like ``crash``, ``delay`` like
``slow``, ``partition`` like ``hang``.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterator, Sequence

from repro import telemetry as _tm
from repro.errors import BackendError, WorkerCrashError

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "injected_faults",
    "active_plan",
    "execute_with_fault",
    "CORRUPTED",
    "is_corrupted",
]

#: Exit status used by injected child-process crashes (ASCII 'I' — makes
#: injected deaths distinguishable from real ones in test output).
CRASH_EXIT_CODE = 73


class FaultKind(str, Enum):
    """The injectable failure modes."""

    CRASH = "crash"
    HANG = "hang"
    SLOW = "slow"
    CORRUPT = "corrupt"
    #: IO-layer fault: a write is cut off partway through (the classic
    #: torn write of a crash mid-append).  Only meaningful to callers
    #: that write framed records — the journal writer truncates the
    #: frame and then dies; compute backends treat it like ``crash``.
    TORN = "torn"
    #: Network faults, injected at the socket framing layer under the
    #: backend label ``"net"`` (see module docstring).  Compute backends
    #: degrade them to crash/slow/hang analogues.
    DROP = "drop"
    DELAY = "delay"
    PARTITION = "partition"
    TRUNCATE = "truncate"
    GARBAGE = "garbage"


#: Default stall durations per kind (seconds).
_DEFAULT_SECONDS = {
    FaultKind.HANG: 30.0,
    FaultKind.SLOW: 0.05,
    FaultKind.CRASH: 0.0,
    FaultKind.CORRUPT: 0.0,
    FaultKind.TORN: 0.0,
    FaultKind.DROP: 0.0,
    FaultKind.DELAY: 0.05,
    FaultKind.PARTITION: 0.5,
    FaultKind.TRUNCATE: 0.0,
    FaultKind.GARBAGE: 0.0,
}

#: Network kinds mapped to their process-level analogue, used when a
#: broadly-addressed plan reaches a compute backend's ``map_ranges``.
_NET_ANALOGUE = {
    FaultKind.DROP: FaultKind.CRASH,
    FaultKind.TRUNCATE: FaultKind.CRASH,
    FaultKind.GARBAGE: FaultKind.CRASH,
    FaultKind.DELAY: FaultKind.SLOW,
    FaultKind.PARTITION: FaultKind.HANG,
}


class _Corrupted:
    """Singleton marker standing in for a checksum-failed chunk payload."""

    _instance: "_Corrupted | None" = None

    def __new__(cls) -> "_Corrupted":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<CORRUPTED>"

    def __reduce__(self):
        # Preserve singleton identity across the process-backend pipe.
        return (_Corrupted, ())


#: The corrupted-payload marker returned by ``corrupt`` faults.
CORRUPTED = _Corrupted()


def is_corrupted(payload: object) -> bool:
    """True iff *payload* is the :data:`CORRUPTED` marker."""
    return payload is CORRUPTED


@dataclass
class FaultSpec:
    """One fault-injection rule.

    Attributes
    ----------
    kind:
        Which failure mode to inject (a :class:`FaultKind` or its string
        value).
    backend:
        Restrict to backends with this label (``"serial"``, ``"threads"``,
        ``"processes"``); ``None`` matches every backend.
    chunk:
        Restrict to this chunk index within a call; ``None`` matches all.
    call:
        Restrict to this 0-based call count (per backend label for plain
        backends; the attempt number for :class:`ResilientBackend`
        retries); ``None`` matches all.
    seconds:
        Stall duration for ``hang``/``slow`` (kind-specific default when
        ``None``).
    probability:
        Chance the rule fires when it matches (deterministic per address,
        see module docstring).
    max_hits:
        Stop firing after this many injections (``None`` = unlimited).
        The canonical "crash twice, then recover" schedule is
        ``FaultSpec("crash", max_hits=2)``.
    """

    kind: FaultKind | str
    backend: str | None = None
    chunk: int | None = None
    call: int | None = None
    seconds: float | None = None
    probability: float = 1.0
    max_hits: int | None = None
    #: Number of times this rule has fired (managed by the plan).
    hits: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        self.kind = FaultKind(self.kind)
        if not 0.0 <= self.probability <= 1.0:
            raise BackendError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.seconds is None:
            self.seconds = _DEFAULT_SECONDS[self.kind]

    def matches(self, backend: str, chunk: int, call: int) -> bool:
        """Address match only — probability and hit budget are the plan's."""
        if self.backend is not None and backend != self.backend:
            return False
        if self.chunk is not None and chunk != self.chunk:
            return False
        if self.call is not None and call != self.call:
            return False
        return True


class FaultPlan:
    """A seeded, deterministic schedule of injectable faults.

    The plan is consulted in the *parent* (the thread/process issuing the
    map call), never inside workers, so hit accounting survives child
    crashes and fork copies.  Thread-safe.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}

    def reset(self) -> "FaultPlan":
        """Clear hit counts and call counters (for reusing one plan)."""
        with self._lock:
            self._calls.clear()
            for spec in self.specs:
                spec.hits = 0
        return self

    def begin_call(self, backend: str) -> int:
        """Allocate the next call index for *backend* (plain backends)."""
        with self._lock:
            call = self._calls.get(backend, 0)
            self._calls[backend] = call + 1
        return call

    def match(self, backend: str, chunk: int, call: int) -> FaultSpec | None:
        """First rule firing at ``(backend, chunk, call)``, if any.

        Accounts a hit against the returned rule's budget and bumps the
        ``resilience.faults.*`` telemetry counters.
        """
        for index, spec in enumerate(self.specs):
            if not spec.matches(backend, chunk, call):
                continue
            if spec.probability < 1.0:
                # A string seed hashes stably (sha512 under the hood), so
                # the draw is identical across runs, platforms, and
                # thread interleavings.
                draw = random.Random(
                    f"{self.seed}:{index}:{backend}:{chunk}:{call}"
                ).random()
                if draw >= spec.probability:
                    continue
            with self._lock:
                if spec.max_hits is not None and spec.hits >= spec.max_hits:
                    continue
                spec.hits += 1
            if _tm.enabled():
                _tm.incr("resilience.faults.injected")
                _tm.incr(f"resilience.faults.{spec.kind.value}")
                _tm.event(
                    "resilience.fault",
                    kind=spec.kind.value,
                    backend=backend,
                    chunk=chunk,
                    call=call,
                )
            return spec
        return None

    def plan_call(self, backend: str, n_chunks: int) -> list[FaultSpec | None]:
        """Per-chunk rules for one ``map_ranges`` call on *backend*."""
        call = self.begin_call(backend)
        return [self.match(backend, chunk, call) for chunk in range(n_chunks)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({len(self.specs)} specs, seed={self.seed})"


#: The installed plan; ``None`` means injection is off (production default).
_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The currently installed :class:`FaultPlan`, or ``None``."""
    return _ACTIVE


@contextlib.contextmanager
def injected_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install *plan* for the duration of a ``with`` block.

    Nested installs restore the previous plan on exit.  Installation is
    process-global (the backends are), so chaos tests should not run
    concurrently with other backend users.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def execute_with_fault(
    spec: FaultSpec | None,
    fn: Callable[[int, int], Any],
    lo: int,
    hi: int,
    *,
    in_child: bool = False,
) -> Any:
    """Run ``fn(lo, hi)`` under *spec* (``None`` = run clean).

    *in_child* marks execution inside a forked worker, where ``crash``
    means a hard ``os._exit`` rather than an exception.
    """
    if spec is None:
        return fn(lo, hi)
    kind = _NET_ANALOGUE.get(spec.kind, spec.kind)
    if kind is FaultKind.CRASH or kind is FaultKind.TORN:
        if in_child:
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrashError(
            f"injected crash in worker for range [{lo}, {hi})"
        )
    if kind is FaultKind.HANG or kind is FaultKind.SLOW:
        time.sleep(spec.seconds or 0.0)
        return fn(lo, hi)
    if kind is FaultKind.CORRUPT:
        fn(lo, hi)  # do the work, lose the payload
        return CORRUPTED
    raise BackendError(f"unknown fault kind {kind!r}")  # pragma: no cover
