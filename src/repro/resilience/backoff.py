"""Seeded exponential backoff with deterministic jitter.

One retry-delay policy shared by every retrying component —
:class:`~repro.resilience.ResilientBackend` (chunk re-execution) and
:class:`~repro.serve.net.ResilientClient` (network request retries) —
so "how long do we wait before trying again" has exactly one
implementation and one test surface.

The policy is the classic capped exponential: delay ``d_k`` before
retry ``k`` starts at *initial*, multiplies by *factor* after every
retry, and is capped at *maximum*.  Jitter randomises a *fraction* of
each sleep away — ``jitter=0.5`` sleeps uniformly in ``[0.5 d, d]`` —
which de-synchronises retrying clients without ever sleeping longer
than the deterministic envelope.  The random draws come from a
generator seeded at :meth:`BackoffPolicy.schedule` time, so a given
``(policy, seed)`` pair produces the identical delay sequence on every
run, platform, and thread interleaving.

Invariants (property-tested in ``tests/test_backoff.py``):

* every delay is in ``[(1 - jitter) * envelope_k, envelope_k]`` where
  ``envelope_k = min(initial * factor**k, maximum)``;
* the undithered envelope is monotone non-decreasing and capped;
* two schedules with the same seed are equal element-wise; different
  seeds may differ but share the envelope.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.errors import BackendError

__all__ = ["BackoffPolicy", "BackoffSchedule"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff parameters (validated, immutable).

    Parameters
    ----------
    initial:
        Envelope of the sleep before the first retry, in seconds.
    factor:
        Multiplier applied to the envelope after every retry.
    maximum:
        Upper bound on a single sleep envelope.
    jitter:
        Fraction of each sleep randomised away (``0`` = deterministic,
        ``0.5`` → sleep uniformly in ``[0.5 d, d]``).
    """

    initial: float = 0.05
    factor: float = 2.0
    maximum: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.initial < 0:
            raise BackendError(
                f"backoff initial must be >= 0, got {self.initial}"
            )
        if self.factor < 1.0:
            raise BackendError(
                f"backoff factor must be >= 1, got {self.factor}"
            )
        if self.maximum < self.initial:
            raise BackendError(
                f"backoff maximum ({self.maximum}) must be >= initial "
                f"({self.initial})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise BackendError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def envelope(self, retry: int) -> float:
        """Undithered delay bound before 0-based retry *retry*."""
        if retry < 0:
            raise BackendError(f"retry index must be >= 0, got {retry}")
        return min(self.initial * self.factor**retry, self.maximum)

    def schedule(self, seed: int = 0) -> "BackoffSchedule":
        """A fresh, independently-seeded delay sequence."""
        return BackoffSchedule(self, seed)


class BackoffSchedule:
    """Stateful delay sequence drawn from a :class:`BackoffPolicy`.

    :meth:`next` returns the delay to sleep before the next retry and
    advances the envelope.  Thread-safe: concurrent chunk supervisors
    may share one schedule (the *sequence* of draws is then determined
    by arrival order, but every draw stays inside its envelope).
    """

    def __init__(self, policy: BackoffPolicy, seed: int = 0) -> None:
        self.policy = policy
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._delay = policy.initial

    def next(self) -> float:
        """The jittered delay for the next retry (advances the envelope)."""
        with self._lock:
            envelope = self._delay
            self._delay = min(
                self._delay * self.policy.factor, self.policy.maximum
            )
            frac = self._rng.random() if self.policy.jitter else 0.0
        return envelope * (1.0 - self.policy.jitter * frac)

    def peek_envelope(self) -> float:
        """The undithered bound the next :meth:`next` call honours."""
        with self._lock:
            return self._delay

    def reset(self) -> None:
        """Restart the envelope (a fresh request on the same schedule)."""
        with self._lock:
            self._delay = self.policy.initial

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BackoffSchedule({self.policy!r}, seed={self.seed})"
