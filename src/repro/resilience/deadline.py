"""Request-level deadline budgets.

A :class:`Deadline` is an absolute point on the monotonic clock that an
entire *request* — scaling sweeps, choice sampling, Karp–Sipser phases,
every retry of every chunk — must not outlive.  It complements the
per-chunk ``deadline`` of :class:`~repro.resilience.ResilientBackend`:
the per-chunk deadline bounds one *attempt*, the budget bounds the sum of
all attempts, so ``max_retries`` retries can never stretch a call past
what the caller was promised.

Budgets are installed with :func:`request_deadline` and read with
:func:`current_deadline`.  Installation is **thread-local**: the serving
layer stamps a budget on the thread executing a request, and the nested
match/scale/backend calls on that thread pick it up without any argument
threading.  :class:`~repro.resilience.ResilientBackend` captures the
installed budget once per ``map_ranges`` call and carries it onto its
supervisor threads explicitly, so chunk retries see the caller's budget
even though they run elsewhere.

When no budget is installed (the default) every consultation is one
thread-local attribute read — the same "free when off" bar as fault
injection and telemetry.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator

from repro.errors import BackendError, DeadlineExceededError

__all__ = ["Deadline", "request_deadline", "current_deadline"]


class Deadline:
    """A wall-clock budget anchored to the monotonic clock.

    Construct with :meth:`after` (the normal case) or from an absolute
    ``expires_at`` monotonic timestamp.  Instances are immutable and
    safe to share across threads.
    """

    __slots__ = ("expires_at", "budget")

    def __init__(self, expires_at: float, budget: float) -> None:
        #: Absolute ``time.monotonic()`` expiry point.
        self.expires_at = expires_at
        #: The original budget in seconds (for messages/telemetry).
        self.budget = budget

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline *seconds* from now."""
        if seconds <= 0:
            raise BackendError(
                f"deadline budget must be positive, got {seconds}"
            )
        return cls(time.monotonic() + seconds, seconds)

    def remaining(self) -> float:
        """Seconds left before expiry, floored at 0.0."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        """True once the budget is spent."""
        return time.monotonic() >= self.expires_at

    def ensure(self, what: str = "request") -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` if expired."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exhausted its {self.budget:.3g}s deadline budget"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Deadline(budget={self.budget:.3g}s, "
            f"remaining={self.remaining():.3g}s)"
        )


class _Local(threading.local):
    deadline: Deadline | None = None


_local = _Local()


def current_deadline() -> Deadline | None:
    """The budget installed on the calling thread, or ``None``."""
    return _local.deadline


@contextlib.contextmanager
def request_deadline(
    budget: "Deadline | float | None",
) -> Iterator[Deadline | None]:
    """Install a request budget on the calling thread for a ``with`` block.

    *budget* may be a :class:`Deadline`, a positive float (seconds from
    now), or ``None`` (no-op — call sites can pass an optional budget
    through unconditionally).  Nested installs keep the *tighter* (earlier)
    expiry: an inner layer may shrink the budget but never extend what an
    outer caller promised.
    """
    if budget is None:
        yield _local.deadline
        return
    deadline = budget if isinstance(budget, Deadline) else Deadline.after(budget)
    previous = _local.deadline
    if previous is not None and previous.expires_at < deadline.expires_at:
        deadline = previous
    _local.deadline = deadline
    try:
        yield deadline
    finally:
        _local.deadline = previous
