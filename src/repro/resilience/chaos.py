"""Chaos harness: the backend matrix under injected fault schedules.

Each cell of the matrix runs a real workload — Sinkhorn–Knopp scaling and
``OneSidedMatch`` — through a :class:`~repro.resilience.ResilientBackend`
while a :class:`~repro.resilience.FaultPlan` injects crashes, hangs,
stragglers, and corrupted payloads.  A cell passes when it either

* returns a **bitwise-correct** result (scaling vectors identical to the
  serial reference; matchings valid with quality above the Theorem 1
  floor), or
* raises a **typed** :class:`~repro.errors.BackendError` subclass,

and in both cases finishes inside its wall-clock budget
(``(deadline + max backoff) × attempts`` per call, plus slack) — never a
bare hang, ``EOFError``, or silent wrong answer.

Entry points: :func:`run_chaos` (used by the ``chaos``-marked tests),
``python -m repro chaos`` and ``make chaos`` (human-facing reports).

The matrix also carries a ``recovery`` row (backend ``journal``): a
durable stream session is crashed at exact write-ahead-journal record
boundaries — before the fsync, mid-record, after the last ack, mid
checkpoint rotation — then restarted through
:func:`~repro.serve.recover_registry`.  A cell passes when the recovered
state is bitwise-equal to everything the client was acknowledged, or the
restart refuses with a typed :class:`~repro.errors.RecoveryError`; a
lost acknowledged epoch fails the matrix.

Two network rows ride full sweeps as well:

* ``net`` (backend ``socket``): a stream session driven through a real
  :class:`~repro.serve.net.SocketServer` +
  :class:`~repro.serve.net.ResilientClient` pair while
  :func:`net_schedules` breaks the wire at the framing layer — drops,
  delays, partitions, truncated frames, garbled payloads.  Every
  request must end in a retry-success or a typed
  :class:`~repro.errors.TransportError` /
  :class:`~repro.errors.PartitionedError`, the acked epoch sequence
  must prove no mutation was ever applied twice (a retried request id
  is answered from the ack cache, not re-executed), and no silent
  corruption may pass the frame checksums.
* ``failover`` (backend ``router``): a 3-daemon
  :class:`~repro.serve.router.Router` soak whose session-owning daemon
  is SIGKILLed mid-sequence.  This row's contract is *stronger* than
  the usual "correct or typed": the router must revive the daemon
  through journal recovery (bitwise recertification included) and
  every scripted request must succeed, with the full acked transcript
  bitwise-equal to an uninterrupted in-process replica — a lost acked
  request or diverging acknowledgment fails the matrix.
* ``shard`` (backend ``router``): a daemon-tier sharded matching
  (:mod:`repro.shard.daemon_tier`) with one shard daemon SIGKILLed in
  the middle of the reconcile rounds.  The merged matching must be
  bitwise-equal to the uninterrupted sim-tier run, or the failure must
  be a typed error — never a silently sub-quality matching.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.constants import ONE_SIDED_GUARANTEE
from repro.errors import BackendError
from repro.resilience.faults import FaultPlan, FaultSpec, injected_faults
from repro.resilience.resilient import ResilientBackend

__all__ = [
    "ChaosOutcome",
    "ChaosReport",
    "net_schedules",
    "recovery_schedules",
    "run_chaos",
    "standard_schedules",
]


@dataclass(frozen=True)
class ChaosOutcome:
    """Result of one (workload, backend, schedule) cell.

    ``status`` is ``"ok"`` (correct result returned), ``"degraded:<E>"``
    (typed error ``E`` raised within budget), or ``"FAILED:<why>"`` (the
    resilience contract was violated).
    """

    workload: str
    backend: str
    schedule: str
    status: str
    elapsed: float
    budget: float
    detail: str = ""

    @property
    def passed(self) -> bool:
        """True iff the cell honoured the resilience contract."""
        return not self.status.startswith("FAILED")


@dataclass(frozen=True)
class ChaosReport:
    """All cell outcomes of one :func:`run_chaos` sweep."""

    outcomes: tuple[ChaosOutcome, ...]

    @property
    def passed(self) -> bool:
        """True iff every cell honoured the resilience contract."""
        return all(o.passed for o in self.outcomes)

    @property
    def failures(self) -> tuple[ChaosOutcome, ...]:
        """The contract-violating cells."""
        return tuple(o for o in self.outcomes if not o.passed)

    def render(self) -> str:
        """Fixed-width table of every cell."""
        header = (
            f"{'workload':<10} {'backend':<12} {'schedule':<10} "
            f"{'elapsed':>8} {'budget':>7}  status"
        )
        lines = [header, "-" * len(header)]
        for o in self.outcomes:
            status = o.status + (f"  [{o.detail}]" if o.detail else "")
            lines.append(
                f"{o.workload:<10} {o.backend:<12} {o.schedule:<10} "
                f"{o.elapsed:>7.2f}s {o.budget:>6.1f}s  {status}"
            )
        passed = sum(o.passed for o in self.outcomes)
        lines.append(
            f"{passed}/{len(self.outcomes)} cells honoured the contract"
        )
        return "\n".join(lines)


def standard_schedules(
    *,
    hang_seconds: float = 0.6,
    slow_seconds: float = 0.05,
    crash_hits: int = 2,
    seed: int = 0,
) -> dict[str, FaultPlan]:
    """The named fault schedules the chaos matrix runs under.

    ``none`` is the injection-free control; ``crash``/``hang``/``corrupt``
    exercise one recovery path each with a bounded hit budget (so retries
    eventually succeed); ``slow`` is pure straggling (no failure, results
    must still be bitwise-correct); ``storm`` mixes everything with an
    unbounded crash rule, so exhaustion — a typed error — is a legal
    outcome.
    """
    return {
        "none": FaultPlan([], seed=seed),
        "crash": FaultPlan(
            [FaultSpec("crash", probability=0.7, max_hits=crash_hits)],
            seed=seed,
        ),
        "hang": FaultPlan(
            [
                FaultSpec(
                    "hang", seconds=hang_seconds, probability=0.5,
                    max_hits=crash_hits,
                )
            ],
            seed=seed,
        ),
        "slow": FaultPlan(
            [FaultSpec("slow", seconds=slow_seconds, probability=0.8)],
            seed=seed,
        ),
        "corrupt": FaultPlan(
            [FaultSpec("corrupt", probability=0.7, max_hits=crash_hits)],
            seed=seed,
        ),
        "storm": FaultPlan(
            [
                FaultSpec("crash", probability=0.25),
                FaultSpec("hang", seconds=hang_seconds, probability=0.15),
                FaultSpec("slow", seconds=slow_seconds, probability=0.3),
                FaultSpec("corrupt", probability=0.2),
            ],
            seed=seed,
        ),
    }


def recovery_schedules(*, seed: int = 0) -> dict[str, FaultPlan]:
    """Fault schedules of the ``recovery`` row, one crash point each.

    The recovery workload makes six journaled stream mutations (journal
    append calls 0–5, with a checkpoint rotation along the way), so each
    schedule pins its fault to an exact record boundary:

    * ``pre_fsync`` — the bytes of append 4 are written but the process
      dies before the fsync (the record was never acknowledged);
    * ``mid_record`` — append 5 is torn partway through the frame;
    * ``post_ack`` — no injected fault: the daemon dies abruptly right
      after its last acknowledgment (EOF without a ``shutdown``);
    * ``mid_checkpoint`` — the first checkpoint rotation dies with a
      half-written snapshot temp file;
    * ``divergence`` — the journal is corrupted *in place* after the
      fact, which no crash of the append-fsync-ack discipline can
      produce; recovery must refuse with a typed error naming the
      offending byte offset instead of dropping acknowledged records.
    """
    return {
        "pre_fsync": FaultPlan(
            [FaultSpec("crash", backend="journal", call=4)], seed=seed
        ),
        "mid_record": FaultPlan(
            [FaultSpec("torn", backend="journal", call=5)], seed=seed
        ),
        "post_ack": FaultPlan([], seed=seed),
        "mid_checkpoint": FaultPlan(
            [FaultSpec("torn", backend="checkpoint", call=0)], seed=seed
        ),
        "divergence": FaultPlan([], seed=seed),
    }


def net_schedules(*, seed: int = 0) -> dict[str, FaultPlan]:
    """Fault schedules of the ``net`` row, one wire-failure mode each.

    All rules address the ``"net"`` backend label — the socket server
    consults the plan once per response it is about to send
    (:mod:`repro.serve.net`), so these break the wire at exact request
    boundaries.  Hit budgets and probabilities are chosen so a client
    with a normal retry budget eventually gets through: the row's
    contract is retry-success *or* typed error, and both outcomes must
    actually occur across the schedule set.
    """
    return {
        "none": FaultPlan([], seed=seed),
        "drop": FaultPlan(
            [FaultSpec("drop", backend="net", probability=0.4)], seed=seed
        ),
        "delay": FaultPlan(
            [
                FaultSpec(
                    "delay", backend="net", seconds=0.05, probability=0.6
                )
            ],
            seed=seed,
        ),
        "partition": FaultPlan(
            [
                FaultSpec(
                    "partition", backend="net", seconds=0.4, max_hits=1
                )
            ],
            seed=seed,
        ),
        "truncate": FaultPlan(
            [FaultSpec("truncate", backend="net", probability=0.4)],
            seed=seed,
        ),
        "garbage": FaultPlan(
            [FaultSpec("garbage", backend="net", probability=0.4)],
            seed=seed,
        ),
    }


def _net_cell(
    schedule: str,
    plan: FaultPlan,
    *,
    n: int,
    seed: int,
    budget: float,
) -> ChaosOutcome:
    """Run one ``net`` cell: a socket round-trip soak under wire faults.

    The duplicate-mutation audit rides the epoch sequence: every acked
    ``update`` must advance the epoch by exactly one step beyond the
    last ack (plus one per *ambiguous* failure in between — a request
    that exhausted retries may or may not have been applied).  A step
    larger than that window means a retry re-applied a mutation the
    server had already acked — the bug idempotent request ids exist to
    prevent.
    """
    import os
    import shutil
    import tempfile

    from repro.errors import PartitionedError, ReproError, TransportError
    from repro.resilience.backoff import BackoffPolicy
    from repro.serve.daemon import Dispatcher, GraphCache, _StreamRegistry
    from repro.serve.net import ResilientClient, SocketServer
    from repro.serve.server import MatchingServer

    graph_spec = {"kind": "union", "n": n, "k": 3, "seed": seed}
    tmpdir = tempfile.mkdtemp(prefix="repro-chaos-net-")
    t0 = time.perf_counter()
    detail = ""
    try:
        with MatchingServer("serial") as server:
            streams = _StreamRegistry(4, "serial")
            dispatcher = Dispatcher(server, GraphCache(8), streams)
            address = f"unix:{os.path.join(tmpdir, 'net.sock')}"
            with injected_faults(plan.reset()):
                with SocketServer(
                    dispatcher, address, deadline=10.0
                ) as front:
                    client = ResilientClient(
                        front.address,
                        retries=8,
                        seed=seed,
                        backoff=BackoffPolicy(
                            initial=0.02, maximum=0.3, jitter=0.5
                        ),
                        connect_timeout=0.5,
                        deadline=10.0,
                    )
                    opened = client.request(
                        {"op": "stream_open", "graph": graph_spec,
                         "seed": seed}
                    )
                    handle = opened["handle"]
                    acked = typed = ambiguous = 0
                    last_epoch = opened["epoch"]
                    for k in range(10):
                        try:
                            response = client.request(
                                {"op": "update", "handle": handle,
                                 "add": {"rows": [k % n],
                                         "cols": [(3 * k + 1) % n]}}
                            )
                        except (TransportError, PartitionedError):
                            typed += 1
                            ambiguous += 1
                            continue
                        step = response["epoch"] - last_epoch
                        if not 1 <= step <= 1 + ambiguous:
                            raise AssertionError(
                                f"epoch stepped {last_epoch} →"
                                f" {response['epoch']} with {ambiguous}"
                                f" ambiguous failures pending — a retry"
                                f" double-applied or an ack was lost"
                            )
                        last_epoch = response["epoch"]
                        ambiguous = 0
                        acked += 1
                    try:
                        rem = client.request(
                            {"op": "rematch", "handle": handle}
                        )
                        if not (
                            last_epoch
                            <= rem["epoch"]
                            <= last_epoch + ambiguous
                        ):
                            raise AssertionError(
                                f"rematch epoch {rem['epoch']} outside"
                                f" acked window [{last_epoch},"
                                f" {last_epoch + ambiguous}]"
                            )
                    except (TransportError, PartitionedError):
                        typed += 1
        status = "ok"
        detail = f"acked={acked} typed={typed}"
    except ReproError as exc:
        status = f"degraded:{type(exc).__name__}"
        detail = str(exc)[:60]
    except Exception as exc:  # noqa: BLE001 - untyped = contract violation
        status = f"FAILED:untyped:{type(exc).__name__}"
        detail = str(exc)[:60]
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    elapsed = time.perf_counter() - t0
    if elapsed > budget and not status.startswith("FAILED"):
        status = "FAILED:budget"
    return ChaosOutcome(
        workload="net",
        backend="socket",
        schedule=schedule,
        status=status,
        elapsed=elapsed,
        budget=budget,
        detail=detail,
    )


def _failover_cell(
    schedule: str,
    *,
    n: int,
    seed: int,
    budget: float,
) -> ChaosOutcome:
    """Run one ``failover`` cell: router soak vs an uninterrupted replica.

    A scripted update/rematch sequence runs through a 3-daemon
    :class:`~repro.serve.router.Router`; the ``sigkill`` schedule kills
    the session-owning daemon halfway.  Unlike the other rows, a typed
    error here is a *failure*: the zero-acked-loss contract says the
    router must carry every request through revival.  The transcript of
    acked payloads must be bitwise-equal to the same sequence applied
    to an in-process registry that never failed.
    """
    import shutil
    import tempfile

    from repro.errors import ReproError
    from repro.serve.daemon import GraphCache, _StreamRegistry
    from repro.serve.router import Router

    graph_spec = {"kind": "union", "n": n, "k": 3, "seed": seed}
    script: list[dict] = []
    for k in range(6):
        script.append(
            {"op": "update",
             "add": {"rows": [k % n, (k + 1) % n],
                     "cols": [(3 * k + 1) % n, (5 * k + 2) % n]}}
        )
        script.append({"op": "rematch"})
    strip = ("id", "rid", "ok", "handle")
    tmpdir = tempfile.mkdtemp(prefix="repro-chaos-failover-")
    t0 = time.perf_counter()
    detail = ""
    try:
        acked: list[dict] = []
        with Router(
            3, tmpdir, backend="serial", health_interval=0.0
        ) as router:
            opened = router.request(
                {"op": "stream_open", "graph": graph_spec,
                 "target_quality": 0.55, "seed": seed}
            )
            handle = opened["handle"]
            kill_at = len(script) // 2 if schedule == "sigkill" else -1
            for i, op in enumerate(script):
                if i == kill_at:
                    victim = router._node_by_name(handle.split(":", 1)[0])
                    victim.proc.kill()
                response = router.request({**op, "handle": handle})
                acked.append(
                    {k: v for k, v in response.items() if k not in strip}
                )
            restarts = sum(node.restarts for node in router.nodes)
        # The uninterrupted replica: same sequence, no network, no
        # failure.  Bitwise equality of the two transcripts is the
        # zero-acked-loss proof.
        registry = _StreamRegistry(4, "serial")
        cache = GraphCache(4)
        replica_open = registry.open(
            {"graph": graph_spec, "target_quality": 0.55, "seed": seed},
            cache,
        )
        replica: list[dict] = []
        for op in script:
            msg = {**op, "handle": replica_open["handle"]}
            if op["op"] == "update":
                replica.append(dict(registry.update(msg)))
            else:
                replica.append(dict(registry.rematch(msg)))
        if len(acked) != len(replica):
            raise AssertionError(
                f"router acked {len(acked)} of {len(replica)} requests"
            )
        for i, (got, want) in enumerate(zip(acked, replica)):
            if got != want:
                raise AssertionError(
                    f"acked transcript diverges from uninterrupted"
                    f" replica at step {i}: {got} != {want}"
                )
        if schedule == "sigkill" and restarts < 1:
            raise AssertionError(
                "SIGKILL did not trigger a journal-recovery revival"
            )
        status = "ok"
        detail = f"acks={len(acked)} restarts={restarts}"
    except ReproError as exc:
        # Zero-acked-loss is this row's contract: typed shedding is NOT
        # a legal outcome here.
        status = f"FAILED:lost:{type(exc).__name__}"
        detail = str(exc)[:60]
    except Exception as exc:  # noqa: BLE001 - untyped = contract violation
        status = f"FAILED:untyped:{type(exc).__name__}"
        detail = str(exc)[:60]
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    elapsed = time.perf_counter() - t0
    if elapsed > budget and not status.startswith("FAILED"):
        status = "FAILED:budget"
    return ChaosOutcome(
        workload="failover",
        backend="router",
        schedule=schedule,
        status=status,
        elapsed=elapsed,
        budget=budget,
        detail=detail,
    )


def _shard_cell(
    schedule: str,
    *,
    n: int,
    seed: int,
    budget: float,
) -> ChaosOutcome:
    """Run one ``shard`` cell: daemon-tier sharded matching under SIGKILL.

    A 3-shard matching runs over a 2-daemon router; the ``sigkill``
    schedule SIGKILLs the daemon owning a shard handle in the middle of
    the reconcile rounds.  The contract: the merged matching must be
    **bitwise-equal** to the uninterrupted in-process (sim-tier) run —
    the revived daemon replays its write-ahead journal back to the exact
    replicated state — or the failure must surface as a typed
    :class:`~repro.errors.ReproError`.  A silently different (and
    therefore possibly sub-quality) matching fails the matrix.
    """
    import shutil
    import tempfile

    from repro.errors import ReproError
    from repro.serve.daemon import build_graph
    from repro.serve.router import Router
    from repro.shard import shard_match
    from repro.shard.daemon_tier import shard_match_daemons

    graph_spec = {"kind": "sprand", "n": n, "degree": 4.0, "seed": seed}
    graph = build_graph(graph_spec, None)
    reference = shard_match(graph, 3, iterations=3, seed=seed)
    tmpdir = tempfile.mkdtemp(prefix="repro-chaos-shard-")
    t0 = time.perf_counter()
    detail = ""
    try:
        with Router(
            2, tmpdir, backend="serial", health_interval=0.0
        ) as router:
            if schedule == "sigkill":
                original = router.request
                state = {"commits": 0, "killed": False}

                def chaotic(msg: Mapping, **kw) -> dict:
                    if msg.get("op") == "shard_commit":
                        state["commits"] += 1
                        if state["commits"] == 2 and not state["killed"]:
                            name = str(msg.get("handle", "")).partition(
                                ":"
                            )[0]
                            victim = router._node_by_name(name)
                            victim.proc.kill()
                            victim.proc.wait()
                            state["killed"] = True
                    return original(msg, **kw)

                router.request = chaotic
            result = shard_match_daemons(
                graph_spec, 3, iterations=3,
                router=router, seed=seed, graph=graph,
            )
            restarts = sum(node.restarts for node in router.nodes)
        if not np.array_equal(
            result.matching.row_match, reference.matching.row_match
        ):
            raise AssertionError(
                "recovered merged matching diverges bitwise from the"
                " uninterrupted sim-tier run"
            )
        if result.guarantee != reference.guarantee:
            raise AssertionError(
                f"guarantee drifted across recovery:"
                f" {result.guarantee} != {reference.guarantee}"
            )
        if schedule == "sigkill" and restarts < 1:
            raise AssertionError(
                "SIGKILL did not trigger a journal-recovery revival"
            )
        status = "ok"
        detail = (
            f"cardinality={result.cardinality} restarts={restarts}"
        )
    except ReproError as exc:
        # Typed surfacing is legal; a silent wrong matching is not.
        status = f"degraded:{type(exc).__name__}"
        detail = str(exc)[:60]
    except Exception as exc:  # noqa: BLE001 - untyped = contract violation
        status = f"FAILED:untyped:{type(exc).__name__}"
        detail = str(exc)[:60]
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    elapsed = time.perf_counter() - t0
    if elapsed > budget and not status.startswith("FAILED"):
        status = "FAILED:budget"
    return ChaosOutcome(
        workload="shard",
        backend="router",
        schedule=schedule,
        status=status,
        elapsed=elapsed,
        budget=budget,
        detail=detail,
    )


def _recovery_cell(
    schedule: str,
    plan: FaultPlan,
    *,
    n: int,
    seed: int,
    budget: float,
) -> ChaosOutcome:
    """Run one ``recovery`` cell: crash a journaled daemon, restart, audit.

    The audit is against what the *client* saw: every response the
    daemon acknowledged before dying must be present, bitwise, in the
    recovered registry (replay itself re-verifies each record's stored
    acknowledgment, and recertification re-proves each session's §3.3
    certificate — this cell additionally checks the client's view).
    """
    import io
    import json
    import shutil
    import tempfile

    from repro.errors import RecoveryError, ReproError
    from repro.serve.daemon import JOURNAL_POISONED_EXIT, serve_forever
    from repro.serve.recovery import recover_registry

    graph_spec = {"kind": "union", "n": n, "k": 3, "seed": seed}
    requests = [
        {"id": 1, "op": "stream_open", "graph": graph_spec,
         "target_quality": 0.55, "seed": seed},
        {"id": 2, "op": "rematch", "handle": "s1"},
        {"id": 3, "op": "update", "handle": "s1",
         "add": {"rows": [0, 1], "cols": [1, 0]}},
        {"id": 4, "op": "rematch", "handle": "s1"},
        {"id": 5, "op": "update", "handle": "s1",
         "remove": {"rows": [0], "cols": [1]}, "strict": False},
        {"id": 6, "op": "rematch", "handle": "s1"},
    ]
    # Small enough that the final journal still holds several records
    # (so mid-file corruption in ``divergence`` is unambiguous), large
    # enough that every other schedule crosses a rotation.
    checkpoint_every = 100 if schedule == "divergence" else 3
    tmpdir = tempfile.mkdtemp(prefix="repro-chaos-recovery-")
    t0 = time.perf_counter()
    detail = ""
    try:
        out = io.StringIO()
        source = io.StringIO(
            "".join(json.dumps(r) + "\n" for r in requests)
        )
        with injected_faults(plan.reset()):
            code = serve_forever(
                stdin=source,
                stdout=out,
                journal_dir=tmpdir,
                checkpoint_every=checkpoint_every,
            )
        acked = [
            msg
            for msg in map(json.loads, out.getvalue().splitlines())
            if msg.get("ok")
        ]
        faulted = any(spec.hits for spec in plan.specs)
        if faulted and code != JOURNAL_POISONED_EXIT:
            raise AssertionError(
                f"faulted daemon exited {code}, expected poisoned exit"
                f" {JOURNAL_POISONED_EXIT}"
            )
        if not faulted and code != 0:
            raise AssertionError(f"fault-free daemon exited {code}")
        if schedule == "divergence":
            from repro.serve.journal import latest_generation

            _, _, wal = latest_generation(tmpdir)
            with open(wal, "r+b") as fh:
                buf = bytearray(fh.read())
                buf[25] ^= 0x01  # inside the first record's payload
                fh.seek(0)
                fh.write(buf)
            try:
                recover_registry(tmpdir, attach_journal=False)
            except RecoveryError as exc:
                if exc.offset is None:
                    raise AssertionError(
                        "RecoveryError did not name a byte offset"
                    ) from exc
                status = f"degraded:{type(exc).__name__}"
                detail = f"offset={exc.offset}"
            else:
                raise AssertionError(
                    "in-place corruption recovered silently — acknowledged"
                    " records were dropped"
                )
        else:
            registry, report = recover_registry(
                tmpdir, attach_journal=False
            )
            if "s1" not in registry._sessions:
                raise AssertionError("recovered registry lost session 's1'")
            graph, _matcher = registry._sessions["s1"]
            epochs = [a["epoch"] for a in acked if "epoch" in a]
            if epochs and graph.epoch < max(epochs):
                raise AssertionError(
                    f"recovered epoch {graph.epoch} behind acknowledged"
                    f" epoch {max(epochs)}"
                )
            rematches = [a for a in acked if "mode" in a]
            if rematches:
                last = {
                    key: value
                    for key, value in rematches[-1].items()
                    if key not in ("id", "ok")
                }
                recovered = registry._last_ack.get("s1")
                if recovered is None or recovered["epoch"] < last["epoch"]:
                    raise AssertionError(
                        "recovered state lost the last acknowledged rematch"
                    )
                # Recovery may legally be *ahead* of the client (a record
                # durable but never acknowledged); at the same epoch the
                # acknowledgment must match bitwise.
                if recovered["epoch"] == last["epoch"] and dict(
                    recovered
                ) != last:
                    raise AssertionError(
                        f"recovered acknowledgment diverges from the one"
                        f" the client saw: {recovered} != {last}"
                    )
            status = "ok"
            detail = (
                f"replayed={report.replayed_records}"
                f" truncated={report.truncated_bytes}B"
            )
    except ReproError as exc:
        status = f"degraded:{type(exc).__name__}"
        detail = str(exc)[:60]
    except Exception as exc:  # noqa: BLE001 - untyped = contract violation
        status = f"FAILED:untyped:{type(exc).__name__}"
        detail = str(exc)[:60]
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    elapsed = time.perf_counter() - t0
    if elapsed > budget and not status.startswith("FAILED"):
        status = "FAILED:budget"
    return ChaosOutcome(
        workload="recovery",
        backend="journal",
        schedule=schedule,
        status=status,
        elapsed=elapsed,
        budget=budget,
        detail=detail,
    )


def _run_cell(
    workload: str,
    backend_spec: str,
    schedule: str,
    plan: FaultPlan,
    fn: Callable[[ResilientBackend], str],
    make_backend: Callable[[], ResilientBackend],
    budget: float,
) -> ChaosOutcome:
    """Execute one cell and classify its outcome."""
    backend = make_backend()
    t0 = time.perf_counter()
    try:
        with injected_faults(plan.reset()):
            detail = fn(backend)
        status = "ok"
    except BackendError as exc:
        status = f"degraded:{type(exc).__name__}"
        detail = str(exc)[:60]
    except Exception as exc:  # noqa: BLE001 - untyped = contract violation
        status = f"FAILED:untyped:{type(exc).__name__}"
        detail = str(exc)[:60]
    finally:
        backend.close()
    elapsed = time.perf_counter() - t0
    if elapsed > budget and not status.startswith("FAILED"):
        status = "FAILED:budget"
    return ChaosOutcome(
        workload=workload,
        backend=backend_spec,
        schedule=schedule,
        status=status,
        elapsed=elapsed,
        budget=budget,
        detail=detail if status != "ok" else "",
    )


def run_chaos(
    n: int = 600,
    *,
    backends: Sequence[str] = ("serial", "threads:2", "processes:2", "shm:2"),
    schedules: Mapping[str, FaultPlan] | None = None,
    deadline: float = 0.3,
    max_retries: int = 3,
    sk_iterations: int = 2,
    quality_eps: float = 0.02,
    seed: int = 0,
) -> ChaosReport:
    """Run the full chaos matrix and return a :class:`ChaosReport`.

    Two workloads per (backend, schedule) pair:

    * ``scale``: Sinkhorn–Knopp on a random sparse square; on success the
      scaling vectors must be bitwise-equal to the serial no-fault
      reference.
    * ``match`` (``storm`` schedule only — the most hostile): a full
      ``OneSidedMatch``; a returned matching must validate against the
      graph and, on the total-support instance used, reach the Theorem 1
      floor minus *quality_eps*.
    * ``exact`` (``storm`` only): the ε-scaling auction over the cell's
      resilient backend; a returned matching must validate and hit the
      no-fault maximum cardinality exactly — under faults the exact tier
      may fail typed, but it may never return a sub-maximum matching.

    With the ``storm`` schedule a further workload runs per backend:

    * ``serve``: a short soak through a live
      :class:`~repro.serve.MatchingServer` over the cell's resilient
      backend — concurrent clients, every request must end in a matching
      that validates and states a guarantee no higher than its rung's
      floor, **or** a typed ``ReproError`` (shedding and breaker
      rejections included); a lost request or untyped failure violates
      the contract.

    Once per full sweep (``storm`` schedule present), on the last
    backend of *backends*, every schedule also runs the scaling workload
    with the **native** kernel tier selected (``native`` workload row):
    faults under JIT-compiled
    kernels must still yield a bitwise-correct result or a typed error.
    The tier is warm-compiled outside the faulted cells — a JIT compile
    must never read as a straggler — and on hosts without numba the row
    exercises the selection + fallback path instead (the numpy tier is
    bitwise identical by contract, so the cell's assertions are the
    same).

    And once per sweep (not per backend) the durability and network
    rows run:

    * ``recovery`` (backend ``journal``): a journaled stream daemon is
      crashed at each :func:`recovery_schedules` record boundary and
      restarted through :func:`~repro.serve.recover_registry`; the
      recovered state must contain every acknowledged mutation bitwise,
      or recovery must refuse with a typed
      :class:`~repro.errors.RecoveryError` — never a lost acknowledged
      epoch.
    * ``net`` (backend ``socket``): a socket round-trip soak under each
      :func:`net_schedules` wire fault; every request ends in
      retry-success or a typed transport error, and the acked epoch
      sequence proves no mutation was applied twice.
    * ``failover`` (backend ``router``): a 3-daemon router soak with a
      mid-sequence SIGKILL; every request must succeed across the
      journal-recovery revival and the acked transcript must be
      bitwise-equal to an uninterrupted replica — typed shedding is a
      *failure* for this row.
    """
    from repro.core.onesided import one_sided_match
    from repro.graph.generators import sprand, union_of_permutations
    from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

    if schedules is None:
        schedules = standard_schedules(
            hang_seconds=2.0 * deadline, seed=seed
        )
    graph = sprand(n, 4.0, seed=seed)
    support_graph = union_of_permutations(n, 4, seed=seed)
    reference = scale_sinkhorn_knopp(graph, sk_iterations)
    from repro.matching.exact.hopcroft_karp import hopcroft_karp

    exact_reference = hopcroft_karp(support_graph).cardinality

    # A call's worst legal wall time: every attempt burns the deadline
    # plus the capped backoff; SK makes ~2 map calls per sweep plus the
    # error reductions, and chunk supervisors run concurrently.
    per_call = (deadline + 2.0) * (max_retries + 1)
    sk_calls = 2 * sk_iterations + sk_iterations + 2
    budget = per_call * sk_calls + 5.0

    def scale_cell(backend: ResilientBackend) -> str:
        result = scale_sinkhorn_knopp(
            graph, sk_iterations, backend=backend
        )
        if not (
            np.array_equal(result.dr, reference.dr)
            and np.array_equal(result.dc, reference.dc)
        ):
            raise AssertionError("scaling diverged from serial reference")
        return ""

    def match_cell(backend: ResilientBackend) -> str:
        result = one_sided_match(
            support_graph, sk_iterations, seed=seed, backend=backend
        )
        result.matching.validate(support_graph)
        quality = result.cardinality / n
        floor = ONE_SIDED_GUARANTEE - quality_eps
        if quality < floor:
            raise AssertionError(
                f"quality {quality:.4f} below floor {floor:.4f}"
            )
        return f"quality={quality:.4f}"

    def exact_cell(backend: ResilientBackend) -> str:
        from repro.matching.exact.auction import auction_match

        result = auction_match(
            support_graph, backend=backend, sampling="never"
        )
        result.matching.validate(support_graph)
        if result.cardinality != exact_reference:
            raise AssertionError(
                f"exact cardinality {result.cardinality} != no-fault "
                f"maximum {exact_reference}"
            )
        return f"cardinality={result.cardinality}"

    def serve_cell(backend: ResilientBackend) -> str:
        from repro.errors import ReproError
        from repro.serve import (
            RUNG_GUARANTEES,
            MatchingServer,
            MatchRequest,
            ServerConfig,
        )

        n_requests, n_clients = 16, 4
        config = ServerConfig(
            max_queue=8,
            n_workers=2,
            default_deadline=budget / 2,
            breaker_threshold=3,
            breaker_cooldown=0.1,
        )
        counts = {"ok": 0, "typed": 0}
        problems: list[str] = []
        next_slot = iter(range(n_requests))
        lock = threading.Lock()
        server = MatchingServer(backend, config=config)

        def client() -> None:
            while True:
                with lock:
                    slot = next(next_slot, None)
                if slot is None:
                    return
                request = MatchRequest(
                    support_graph, sk_iterations, seed=seed + slot
                )
                try:
                    response = server.submit(request, timeout=budget)
                except ReproError:
                    with lock:
                        counts["typed"] += 1
                    continue
                except BaseException as exc:  # noqa: BLE001 - audited
                    with lock:
                        problems.append(
                            f"untyped {type(exc).__name__}: {exc}"
                        )
                    continue
                try:
                    response.matching.validate(support_graph)
                    if (
                        response.guarantee
                        > RUNG_GUARANTEES[response.rung] + 1e-9
                    ):
                        raise AssertionError(
                            f"guarantee {response.guarantee:.3f} above "
                            f"rung {response.rung!r} floor"
                        )
                except Exception as exc:  # noqa: BLE001 - audited
                    with lock:
                        problems.append(str(exc))
                    continue
                with lock:
                    counts["ok"] += 1

        try:
            threads = [
                threading.Thread(target=client) for _ in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            server.drain(timeout=budget)
        total = counts["ok"] + counts["typed"] + len(problems)
        if problems:
            raise AssertionError("; ".join(problems[:3]))
        if total != n_requests:
            raise AssertionError(
                f"lost requests: {n_requests} submitted, {total} outcomes"
            )
        return f"ok={counts['ok']} typed={counts['typed']}"

    outcomes: list[ChaosOutcome] = []
    for backend_spec in backends:
        def make_backend(spec: str = backend_spec) -> ResilientBackend:
            return ResilientBackend(
                spec, deadline=deadline, max_retries=max_retries,
                backoff=0.01, max_backoff=0.1, seed=seed,
            )

        for schedule, plan in schedules.items():
            outcomes.append(
                _run_cell(
                    "scale", backend_spec, schedule, plan,
                    scale_cell, make_backend, budget,
                )
            )
        if "storm" in schedules:
            outcomes.append(
                _run_cell(
                    "match", backend_spec, "storm", schedules["storm"],
                    match_cell, make_backend, budget * 2,
                )
            )
            outcomes.append(
                _run_cell(
                    "exact", backend_spec, "storm", schedules["storm"],
                    exact_cell, make_backend, budget * 2,
                )
            )
            outcomes.append(
                _run_cell(
                    "serve", backend_spec, "storm", schedules["storm"],
                    serve_cell, make_backend, budget * 3,
                )
            )
    # Native-tier row: the scaling workload again, on the last backend,
    # with the native kernel implementations selected.  Like the serve
    # and recovery rows it only rides full sweeps; a custom schedule set
    # without "storm" stays a pure scale matrix.
    if "storm" in schedules:
        from repro.parallel import kernel_impl, warm_compile

        native_spec = backends[-1]

        def make_native_backend(spec: str = native_spec) -> ResilientBackend:
            return ResilientBackend(
                spec, deadline=deadline, max_retries=max_retries,
                backoff=0.01, max_backoff=0.1, seed=seed,
            )

        def native_cell(backend: ResilientBackend) -> str:
            with kernel_impl("native"):
                return scale_cell(backend)

        with warnings.catch_warnings():
            # Without numba the selection falls back (warn-once) to the
            # bitwise-identical numpy tier; the row still runs.
            warnings.simplefilter("ignore", RuntimeWarning)
            with kernel_impl("native"):
                warm_compile()  # JIT outside any deadline-supervised cell
            for schedule, plan in schedules.items():
                outcomes.append(
                    _run_cell(
                        "native", native_spec, schedule, plan,
                        native_cell, make_native_backend, budget,
                    )
                )
    if "storm" in schedules:
        recovery_n = min(n, 150)
        for schedule, plan in recovery_schedules(seed=seed).items():
            outcomes.append(
                _recovery_cell(
                    schedule, plan,
                    n=recovery_n, seed=seed, budget=budget * 2,
                )
            )
        # Network rows: socket transport under wire faults, and the
        # multi-daemon failover soak (subprocess daemons — budgeted
        # generously; the cell's own assertions are wall-clock-free).
        net_n = min(n, 150)
        for schedule, plan in net_schedules(seed=seed).items():
            outcomes.append(
                _net_cell(
                    schedule, plan, n=net_n, seed=seed, budget=budget * 2
                )
            )
        for schedule in ("none", "sigkill"):
            outcomes.append(
                _failover_cell(
                    schedule,
                    n=min(n, 120),
                    seed=seed,
                    budget=max(budget * 2, 120.0),
                )
            )
        # Shard row: the daemon-tier sharded matching, uninterrupted and
        # with a shard daemon SIGKILLed mid-reconcile; the recovered
        # merged matching must be bitwise the sim-tier result or fail
        # typed — never silently sub-quality.
        for schedule in ("none", "sigkill"):
            outcomes.append(
                _shard_cell(
                    schedule,
                    n=min(n, 120),
                    seed=seed,
                    budget=max(budget * 2, 120.0),
                )
            )
    report = ChaosReport(outcomes=tuple(outcomes))
    return report
