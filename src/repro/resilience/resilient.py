"""``ResilientBackend`` — deadlines, retries, and per-chunk re-execution.

The wrapper owns chunk execution instead of delegating whole calls to the
inner backend: each range runs as an independently supervised *attempt*
(a forked child for a :class:`~repro.parallel.ProcessBackend` inner, a
daemon thread otherwise), so one failed or stalled chunk can be retried
alone while the other chunks' results are kept — exploiting the library
convention that kernels *return* their slice rather than mutate shared
state.

Failure handling:

* A child process that dies raises
  :class:`~repro.errors.WorkerCrashError` (exit status in the message).
* An attempt exceeding the per-chunk ``deadline`` raises
  :class:`~repro.errors.DeadlineExceededError`; expired children are
  killed, expired threads are abandoned (CPython threads cannot be
  killed) but the caller still gets its answer within the budget.
* A payload failing the integrity check (the fault injector's
  :data:`~repro.resilience.CORRUPTED` marker) raises
  :class:`~repro.errors.ResultCorruptionError`.

Each of these is retried up to ``max_retries`` times with exponential
backoff and deterministic seeded jitter (the shared
:class:`~repro.resilience.BackoffPolicy` — one implementation serves
this wrapper and the network client alike); exhaustion raises
:class:`~repro.errors.RetryExhaustedError` with the final failure
chained.  Any other exception is a kernel error and propagates
immediately — retrying a deterministic bug only hides it.

Request-level budgets: when the caller installed a
:func:`~repro.resilience.request_deadline` budget, each attempt's
deadline is capped to the budget's remaining time and the retry loop
refuses to back off past it, so the *total* time spent on a chunk —
every attempt plus every backoff sleep — stays inside what the caller
was promised.  Exhausting the budget raises a typed
:class:`~repro.errors.DeadlineExceededError` chaining the last failure.

Telemetry: every fault, failure, retry, and recovery increments a
``resilience.*`` counter and emits a span event, so a chaos run's story
is reconstructable from the event trace alone.

Composing with :class:`~repro.parallel.SharedMemoryBackend`
(``"resilient:shm"``): attempts run on supervisor-owned threads rather
than the inner pool's pre-forked workers (a retry closure cannot be
shipped to a worker that only executes registered kernels), so the
wrapper provides the retry/deadline contract while kernels still write
their slices into the caller's arrays in place.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro import telemetry as _tm
from repro.errors import (
    BackendError,
    DeadlineExceededError,
    ResultCorruptionError,
    RetryExhaustedError,
    WorkerCrashError,
)
from repro.parallel.backends import (
    Backend,
    ProcessBackend,
    RangeFn,
    get_backend,
)
from repro.resilience import faults as _faults
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.deadline import Deadline, current_deadline

__all__ = ["ResilientBackend"]

#: Failure types that re-execution can plausibly cure.
_RETRYABLE = (WorkerCrashError, DeadlineExceededError, ResultCorruptionError)


def _attempt_child(fn: RangeFn, lo: int, hi: int, spec, conn) -> None:
    """Run one supervised attempt inside a forked child."""
    try:
        result = _faults.execute_with_fault(spec, fn, lo, hi, in_child=True)
        ok = True
    except BaseException as exc:  # noqa: BLE001 - report to the parent
        result = exc
        ok = False
    try:
        conn.send((ok, result))
    except Exception as exc:  # payload not picklable
        try:
            conn.send((False, BackendError(f"could not return result: {exc}")))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


class ResilientBackend(Backend):
    """Deadline/retry wrapper around any execution backend.

    Parameters
    ----------
    inner:
        The wrapped backend (a :class:`~repro.parallel.Backend`, a spec
        string, or ``None`` for serial).  Fault rules address the *inner*
        label, so one plan drives plain and resilient runs identically.
    deadline:
        Per-attempt wall-clock budget in seconds.  Expired child
        processes are killed; expired threads are abandoned.
    max_retries:
        Re-executions allowed per chunk after the first attempt.
    backoff:
        Initial sleep before the first retry, in seconds.
    backoff_factor:
        Multiplier applied to the sleep after every retry.
    max_backoff:
        Upper bound on a single backoff sleep.
    jitter:
        Fraction of the sleep randomised away (``0.5`` → sleep uniformly
        in ``[0.5 d, d]``), from a generator seeded with *seed* so runs
        are reproducible.
    seed:
        Seed for the jitter generator.
    """

    def __init__(
        self,
        inner: Backend | str | None = None,
        *,
        deadline: float = 30.0,
        max_retries: int = 2,
        backoff: float = 0.05,
        backoff_factor: float = 2.0,
        max_backoff: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if deadline <= 0:
            raise BackendError(f"deadline must be positive, got {deadline}")
        if max_retries < 0:
            raise BackendError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.backoff_policy = BackoffPolicy(
            initial=backoff,
            factor=backoff_factor,
            maximum=max_backoff,
            jitter=jitter,
        )
        self.inner = get_backend(inner)
        if isinstance(self.inner, ResilientBackend):
            raise BackendError("refusing to nest ResilientBackend wrappers")
        self.n_workers = self.inner.n_workers
        self.label = f"resilient.{self.inner.label}"
        self.deadline = deadline
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.seed = seed
        self._fork = isinstance(self.inner, ProcessBackend)
        self._ctx = self.inner._ctx if self._fork else None
        # Thread attempts run the kernel closure in this process, so
        # in-place writes land in the caller's arrays; forked attempts
        # keep side effects in the child.  The kernel dispatcher
        # (:func:`repro.parallel.kernels.run_kernel`) keys off this.
        self.shares_memory = not self._fork

    # -- public surface ------------------------------------------------

    def map_ranges(self, fn: RangeFn, n: int) -> list[Any]:
        return self._map_ranges(fn, self.partition(n))

    def map_chunks(self, fn: RangeFn, parts) -> list[Any]:
        # Override the base implementation: the supervisor loop does its
        # own per-attempt fault matching, so the base class's one-shot
        # fault wrapping must not apply on top of it.
        return self._map_ranges(fn, list(parts))

    def _map_ranges(self, fn: RangeFn, parts) -> list[Any]:
        if not parts:
            return []
        # Capture the caller's request budget here, on the calling thread:
        # supervisor threads have their own (empty) thread-local state, so
        # the budget must travel explicitly.
        budget = current_deadline()
        results: list[Any] = [None] * len(parts)
        errors: list[BaseException | None] = [None] * len(parts)
        with _tm.span(
            "resilience.map_ranges", backend=self.inner.label,
            chunks=len(parts),
        ):
            if len(parts) == 1:
                # Common serial-inner case: no supervisor thread needed
                # around the supervisor logic itself.
                self._chunk_with_retry(fn, 0, parts[0], results, errors,
                                       budget)
            else:
                supervisors = [
                    threading.Thread(
                        target=self._chunk_with_retry,
                        args=(fn, idx, part, results, errors, budget),
                        name=f"resilient-chunk-{idx}",
                        daemon=True,
                    )
                    for idx, part in enumerate(parts)
                ]
                for sup in supervisors:
                    sup.start()
                for sup in supervisors:
                    sup.join()
        for err in errors:
            if err is not None:
                raise err
        return results

    def close(self) -> None:
        self.inner.close()

    def drain(self, timeout: float | None = None) -> bool:
        return self.inner.drain(timeout)

    def healthy(self) -> bool:
        return self.inner.healthy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResilientBackend({self.inner!r}, deadline={self.deadline}, "
            f"max_retries={self.max_retries})"
        )

    # -- supervision ---------------------------------------------------

    def _chunk_with_retry(
        self,
        fn: RangeFn,
        idx: int,
        part: tuple[int, int],
        results: list[Any],
        errors: list[BaseException | None],
        budget: Deadline | None = None,
    ) -> None:
        """Attempt/retry loop for one chunk (runs on a supervisor thread).

        Every exit path fills ``results[idx]`` or ``errors[idx]`` — a
        supervisor must never die silently, or the caller would see a
        ``None`` payload instead of a typed failure.
        """
        try:
            self._chunk_attempts(fn, idx, part, results, errors, budget)
        except BaseException as exc:  # noqa: BLE001 - supervisor safety net
            errors[idx] = exc

    def _budget_error(
        self, lo: int, hi: int, budget: Deadline,
        last: BaseException | None,
    ) -> DeadlineExceededError:
        exc = DeadlineExceededError(
            f"range [{lo}, {hi}) exhausted the request's "
            f"{budget.budget:.3g}s deadline budget"
            + (f" (last failure: {last})" if last is not None else "")
        )
        exc.__cause__ = last
        _tm.incr("resilience.budget_exhausted")
        return exc

    def _chunk_attempts(
        self,
        fn: RangeFn,
        idx: int,
        part: tuple[int, int],
        results: list[Any],
        errors: list[BaseException | None],
        budget: Deadline | None = None,
    ) -> None:
        lo, hi = part
        plan = _faults.active_plan()
        # Per-chunk schedule: the delay sequence for (seed, chunk) is
        # identical on every run, independent of supervisor interleaving.
        # Built lazily — seeding the jitter RNG costs more than the whole
        # happy path of a small chunk, and most chunks never retry.
        schedule = None
        last: BaseException | None = None
        for attempt in range(self.max_retries + 1):
            # The request budget bounds the *sum* of attempts: a chunk
            # whose retries would outlive it fails typed instead.
            deadline = self.deadline
            if budget is not None:
                remaining = budget.remaining()
                if remaining <= 0.0:
                    errors[idx] = self._budget_error(lo, hi, budget, last)
                    return
                deadline = min(deadline, remaining)
            # Attempt number doubles as the fault-plan call index so that
            # "fail on call 0, succeed on call 1" schedules are exact and
            # independent of supervisor-thread interleaving.
            spec = (
                plan.match(self.inner.label, idx, attempt)
                if plan is not None
                else None
            )
            try:
                result = self._attempt(fn, lo, hi, spec, deadline)
                if _faults.is_corrupted(result):
                    raise ResultCorruptionError(
                        f"integrity check failed for range [{lo}, {hi})"
                    )
                results[idx] = result
                if attempt > 0:
                    _tm.incr("resilience.recovered_chunks")
                return
            except _RETRYABLE as exc:
                last = exc
                if _tm.enabled():
                    _tm.incr("resilience.chunk_failures")
                    _tm.incr(
                        "resilience.chunk_failures."
                        + type(exc).__name__.removesuffix("Error").lower()
                    )
                    _tm.event(
                        "resilience.chunk_failure",
                        backend=self.inner.label,
                        chunk=idx, lo=lo, hi=hi, attempt=attempt,
                        error=type(exc).__name__,
                    )
                if attempt < self.max_retries:
                    if schedule is None:
                        schedule = self.backoff_policy.schedule(
                            f"{self.seed}:{idx}"
                        )
                    sleep = schedule.next()
                    if budget is not None and budget.remaining() <= sleep:
                        # No room left for the backoff, let alone another
                        # attempt — fail typed now rather than oversleep.
                        errors[idx] = self._budget_error(
                            lo, hi, budget, last
                        )
                        return
                    _tm.incr("resilience.retries")
                    time.sleep(sleep)
            except BaseException as exc:  # kernel bug: do not retry
                errors[idx] = exc
                return
        exhausted = RetryExhaustedError(
            f"range [{lo}, {hi}) failed {self.max_retries + 1} attempt(s); "
            f"last failure: {last}"
        )
        exhausted.__cause__ = last
        _tm.incr("resilience.exhausted_chunks")
        errors[idx] = exhausted

    def _attempt(
        self, fn: RangeFn, lo: int, hi: int, spec, deadline: float | None = None
    ) -> Any:
        if deadline is None:
            deadline = self.deadline
        if self._fork:
            return self._attempt_fork(fn, lo, hi, spec, deadline)
        return self._attempt_thread(fn, lo, hi, spec, deadline)

    def _attempt_thread(
        self, fn: RangeFn, lo: int, hi: int, spec, deadline: float
    ) -> Any:
        """One attempt on a dedicated daemon thread, joined with timeout."""
        box: dict[str, Any] = {}

        def run() -> None:
            try:
                box["result"] = _faults.execute_with_fault(
                    spec, fn, lo, hi, in_child=False
                )
            except BaseException as exc:  # noqa: BLE001 - reported below
                box["error"] = exc

        worker = threading.Thread(
            target=run, name=f"resilient-attempt-{lo}-{hi}", daemon=True
        )
        worker.start()
        worker.join(deadline)
        if worker.is_alive():
            raise DeadlineExceededError(
                f"range [{lo}, {hi}) exceeded the {deadline:.3g}s "
                f"deadline (worker thread abandoned)"
            )
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _attempt_fork(
        self, fn: RangeFn, lo: int, hi: int, spec, deadline: float
    ) -> Any:
        """One attempt in a forked child, killed on deadline expiry."""
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_attempt_child, args=(fn, lo, hi, spec, send)
        )
        proc.start()
        send.close()
        try:
            # poll() also wakes on EOF, so crashes surface immediately
            # rather than after the full deadline.
            if not recv.poll(deadline):
                proc.kill()
                proc.join()
                raise DeadlineExceededError(
                    f"range [{lo}, {hi}) exceeded the {deadline:.3g}s "
                    f"deadline (worker pid {proc.pid} killed)"
                )
            try:
                ok, payload = recv.recv()
            except EOFError:
                proc.join()
                raise WorkerCrashError(
                    f"worker for range [{lo}, {hi}) exited with status "
                    f"{proc.exitcode} before returning a result"
                ) from None
        finally:
            recv.close()
        proc.join()
        if not ok:
            raise (
                payload
                if isinstance(payload, BaseException)
                else BackendError(str(payload))
            )
        return payload
