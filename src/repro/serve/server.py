"""``MatchingServer`` — an overload-safe, in-process matching service.

The paper's heuristics are cheap approximations *with stated quality
floors*, which is exactly what a latency-bounded service wants: when the
budget is tight, trade guarantee for speed and **say so on the response**.
The server composes the library's robustness substrate into a request
path:

* **Admission control** — a bounded queue (:mod:`repro.serve.admission`)
  sheds excess load with typed :class:`~repro.errors.OverloadedError`
  at submission time; a fixed pool of serving workers bounds concurrency.
* **Deadline propagation** — every request is stamped with a
  :class:`~repro.resilience.Deadline` budget at admission.  Queue wait,
  every Sinkhorn–Knopp sweep, every chunk retry, and every ladder step
  spend from the same budget (via
  :func:`~repro.resilience.request_deadline`, which
  :class:`~repro.resilience.ResilientBackend` honours per chunk), so a
  request can never outlive what its caller was promised.
* **Quality degradation ladder** — under queue pressure or repeated
  deadline misses requests step down
  ``two_sided → one_sided → greedy``; the response carries the rung it
  was served at plus the matching quality guarantee for that rung, the
  same contract as :attr:`~repro.scaling.ScalingResult.rung`.
* **Circuit breaker** — consecutive worker crashes / deadline misses
  open the breaker (:mod:`repro.serve.breaker`); submissions fail fast
  with :class:`~repro.errors.CircuitOpenError` while the pool respawns,
  then half-open probes close it.
* **Graceful drain** — :meth:`MatchingServer.drain` stops admission,
  completes (or typed-fails) everything queued, waits for in-flight
  requests, then drains the execution backend (the shared-memory pool
  finishes its in-flight chunks and unlinks its segments).
* **Probes + telemetry** — :meth:`health` / :meth:`ready` for liveness
  and readiness, and ``serve.*`` counters/gauges/timers throughout.

The server is deliberately transport-free: :meth:`submit` is a blocking
in-process call (`submit_async` returns a ticket), and
``python -m repro serve`` wraps it in a stdin/stdout JSON-lines daemon.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import telemetry as _tm
from repro.constants import ONE_SIDED_GUARANTEE, TWO_SIDED_GUARANTEE
from repro.errors import (
    BackendError,
    DeadlineExceededError,
    ReproError,
    ResultCorruptionError,
    RetryExhaustedError,
    ServerClosedError,
    ServiceError,
    WorkerCrashError,
)
from repro.graph.csr import BipartiteGraph
from repro.matching.matching import Matching
from repro.parallel.backends import Backend, default_worker_count, get_backend
from repro.resilience.deadline import Deadline, request_deadline
from repro.resilience.resilient import ResilientBackend
from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import BreakerState, CircuitBreaker

__all__ = [
    "RUNGS",
    "RUNG_GUARANTEES",
    "MatchRequest",
    "MatchResponse",
    "ServerConfig",
    "MatchingServer",
    "rung_for_pressure",
]

#: The quality degradation ladder, best rung first.  ``exact`` is opt-in:
#: ``auto`` requests start at ``two_sided`` (the best rung with bounded
#: latency) and only explicit ``method="exact"`` requests attempt the
#: auction rung — and even those shed to ``two_sided`` when the remaining
#: deadline budget is under ``ServerConfig.exact_min_budget``.
RUNGS = ("exact", "two_sided", "one_sided", "greedy")

#: Quality floor stated on a response served at each rung.  ``exact`` is
#: a maximum matching (floor 1 by construction).  The heuristic
#: rungs state the paper's floors as a fraction of ``n`` on total-support
#: inputs (Conjecture 1's ``2(1 - ρ) ≈ 0.866`` and Theorem 1's
#: ``1 - 1/e ≈ 0.632``; the per-response value is further reduced by the
#: scaling rung, see ``OneSidedResult.guarantee``).  The ``greedy`` rung
#: is a maximal matching, whose classical floor is half the *maximum*
#: matching on any input — weaker, but never zero, which is the point of
#: the last rung.
RUNG_GUARANTEES = {
    "exact": 1.0,
    "two_sided": TWO_SIDED_GUARANTEE,
    "one_sided": ONE_SIDED_GUARANTEE,
    "greedy": 0.5,
}

#: Rung where ``auto`` requests start (exact stays opt-in).
_AUTO_TOP = RUNGS.index("two_sided")

#: Failures that mean "the substrate is unhealthy" — they feed the
#: circuit breaker and the ladder's miss counter.
_SUBSTRATE_FAILURES = (
    WorkerCrashError,
    DeadlineExceededError,
    RetryExhaustedError,
    ResultCorruptionError,
)

_STOP = object()  # worker-stop sentinel


def rung_for_pressure(
    fill: float,
    recent_misses: int,
    config: "ServerConfig",
    requested: str = "auto",
) -> str:
    """The ladder rung a request starts at, given current pressure.

    An explicit *requested* rung is honoured as-is (the caller opted out
    of ``auto``).  Otherwise start from ``two_sided`` — the best rung
    with bounded latency; ``exact`` is never entered implicitly — and
    step down once past ``pressure_high`` queue fill, twice past
    ``pressure_critical``, and one more when the recent deadline-miss
    count reaches ``miss_threshold`` — each signal independently says
    "the budget is not being met at the current rung".
    """
    if requested != "auto":
        return requested
    steps = _AUTO_TOP
    if fill >= config.pressure_critical:
        steps += 2
    elif fill >= config.pressure_high:
        steps += 1
    if recent_misses >= config.miss_threshold:
        steps += 1
    return RUNGS[min(steps, len(RUNGS) - 1)]


@dataclass(frozen=True)
class MatchRequest:
    """One matching request.

    ``method`` is ``"auto"`` (the server picks the rung from current
    pressure) or an explicit rung name from :data:`RUNGS`.  ``deadline``
    is the request's total wall-clock budget in seconds (the server
    default applies when ``None``).
    """

    graph: BipartiteGraph
    iterations: int = 5
    seed: int | None = None
    method: str = "auto"
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.method != "auto" and self.method not in RUNGS:
            raise ServiceError(
                f"method must be 'auto' or one of {RUNGS}, "
                f"got {self.method!r}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ServiceError(
                f"deadline must be positive, got {self.deadline}"
            )


@dataclass(frozen=True)
class MatchResponse:
    """A served matching plus its provenance and quality statement."""

    matching: Matching
    #: Ladder rung the request was served at (see :data:`RUNGS`).
    rung: str
    #: Quality floor for that rung (scaling-rung aware for the heuristic
    #: rungs; 0.5-of-maximum for ``greedy``).
    guarantee: float
    #: Scaling degradation-ladder rung, when a scaled heuristic ran.
    scaling_rung: str | None
    #: True when the request was served below its requested/top rung.
    degraded: bool
    #: Wall-clock seconds from admission to completion.
    elapsed: float
    #: Seconds the request waited in the admission queue.
    queue_wait: float
    request_id: int

    @property
    def cardinality(self) -> int:
        return self.matching.cardinality


@dataclass
class ServerConfig:
    """Tuning knobs for :class:`MatchingServer`.

    The defaults are sized for an interactive service on one host:
    admission bounded at ``max_queue``, concurrency at
    :func:`~repro.parallel.default_worker_count`, and a ladder that
    reacts to queue fill and a sliding window of deadline misses.
    """

    #: Admission queue capacity (requests beyond it are shed typed).
    max_queue: int = 64
    #: Serving worker threads; ``None`` → the CPU affinity count.
    n_workers: int | None = None
    #: Budget for requests that do not carry their own, in seconds.
    default_deadline: float = 30.0
    #: Per-chunk attempt deadline for the auto-created
    #: :class:`~repro.resilience.ResilientBackend` wrapper.
    chunk_deadline: float = 5.0
    #: Per-chunk retries for the auto-created wrapper.
    max_retries: int = 2
    #: Consecutive substrate failures that open the circuit breaker.
    breaker_threshold: int = 5
    #: Seconds the breaker stays open before half-open probes.
    breaker_cooldown: float = 1.0
    #: Concurrent probe requests while half-open.
    breaker_probes: int = 1
    #: Minimum remaining deadline budget (seconds) for attempting the
    #: ``exact`` rung; explicit ``method="exact"`` requests with less
    #: budget left shed straight to ``two_sided`` (marked ``degraded``)
    #: instead of starting an auction they cannot finish.
    exact_min_budget: float = 5.0
    #: Queue fill fraction at which ``auto`` requests step down one rung.
    pressure_high: float = 0.5
    #: Queue fill fraction at which they step down two rungs.
    pressure_critical: float = 0.875
    #: Sliding window (seconds) for the deadline-miss counter.
    miss_window: float = 5.0
    #: Misses inside the window that step the ladder down one more rung.
    miss_threshold: int = 3
    #: Test seam: called as ``hook(request, rung)`` on the serving worker
    #: right before each rung execution.  Lets tests block workers or
    #: inject substrate failures deterministically.  Never set this in
    #: production.
    execute_hook: Callable[[MatchRequest, str], None] | None = None

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ServiceError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ServiceError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.default_deadline <= 0 or self.chunk_deadline <= 0:
            raise ServiceError("deadlines must be positive")
        if self.exact_min_budget < 0:
            raise ServiceError(
                f"exact_min_budget must be >= 0, got {self.exact_min_budget}"
            )
        if not 0.0 < self.pressure_high <= self.pressure_critical <= 1.0:
            raise ServiceError(
                "need 0 < pressure_high <= pressure_critical <= 1"
            )


class _Ticket:
    """A submitted request: budget, outcome slot, and completion event."""

    __slots__ = (
        "request_id", "request", "budget", "probe", "enqueued_at",
        "_done", "_response", "_error",
    )

    def __init__(
        self, request_id: int, request: MatchRequest, budget: Deadline,
        probe: bool,
    ) -> None:
        self.request_id = request_id
        self.request = request
        self.budget = budget
        self.probe = probe
        self.enqueued_at = time.monotonic()
        self._done = threading.Event()
        self._response: MatchResponse | None = None
        self._error: BaseException | None = None

    def fulfil(self, response: MatchResponse) -> None:
        self._response = response
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> MatchResponse:
        """Block for the outcome; re-raises the typed failure, if any.

        The server fulfils every admitted ticket (workers have a safety
        net), so *timeout* is a belt-and-braces guard, not the deadline
        mechanism — the budget is enforced server-side.
        """
        if not self._done.wait(timeout):
            raise DeadlineExceededError(
                f"request {self.request_id} produced no outcome within "
                f"{timeout:.3g}s (server wedged?)"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class MatchingServer:
    """Long-running, overload-safe matching service (in-process).

    Parameters
    ----------
    backend:
        Execution substrate: a :class:`~repro.parallel.Backend`
        instance, a spec string (``"shm:4"``, ``"threads"``, ...), or
        ``None`` for serial.  Anything that is not already a
        :class:`~repro.resilience.ResilientBackend` is wrapped in one
        (per-chunk deadlines and retries from the config), so deadline
        budgets always reach chunk execution.  Backends created here
        (from a spec / ``None``) are closed by :meth:`drain`; a backend
        *instance* stays the caller's to close.
    config:
        A :class:`ServerConfig`; defaults apply when ``None``.
    """

    def __init__(
        self,
        backend: Backend | str | None = None,
        *,
        config: ServerConfig | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self._owns_backend = not isinstance(backend, Backend)
        inner = get_backend(backend)
        if isinstance(inner, ResilientBackend):
            self._backend: ResilientBackend = inner
        else:
            self._backend = ResilientBackend(
                inner,
                deadline=self.config.chunk_deadline,
                max_retries=self.config.max_retries,
            )
        self.n_workers = (
            self.config.n_workers
            if self.config.n_workers is not None
            else default_worker_count()
        )
        self._queue = AdmissionQueue(self.config.max_queue)
        self._breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            probes=self.config.breaker_probes,
        )
        self._ids = itertools.count(1)
        self._accepting = True
        self._closed = False
        self._lifecycle = threading.Lock()
        self._misses: deque[float] = deque()
        self._miss_lock = threading.Lock()
        self._inflight = 0
        self._idle = threading.Condition()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{i}",
                daemon=True,
            )
            for i in range(self.n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ----------------------------------------------------

    def submit(
        self, request: MatchRequest, timeout: float | None = None
    ) -> MatchResponse:
        """Submit *request* and block for its outcome.

        Returns a :class:`MatchResponse` or raises the request's typed
        failure: :class:`~repro.errors.OverloadedError` (queue full),
        :class:`~repro.errors.CircuitOpenError` (breaker open),
        :class:`~repro.errors.DeadlineExceededError` (budget spent),
        :class:`~repro.errors.ServerClosedError` (draining/stopped), or
        a :class:`~repro.errors.BackendError` subclass from execution.
        """
        return self.submit_async(request).result(timeout)

    def submit_async(self, request: MatchRequest) -> _Ticket:
        """Admit *request* and return its ticket without blocking.

        Admission control happens here, synchronously: shedding
        (``Overloaded``), breaker rejection (``CircuitOpen``), and drain
        rejection (``ServerClosed``) all raise on the caller's thread.
        """
        _tm.incr("serve.submitted")
        if not self._accepting:
            _tm.incr("serve.rejected.closed")
            raise ServerClosedError(
                "server is draining and accepts no new requests"
            )
        probe = self._breaker.admit()  # raises CircuitOpenError when open
        budget = Deadline.after(
            request.deadline
            if request.deadline is not None
            else self.config.default_deadline
        )
        ticket = _Ticket(next(self._ids), request, budget, probe)
        try:
            self._queue.offer(ticket)
        except BaseException:
            if probe:
                self._breaker.release_probe()
            raise
        _tm.incr("serve.accepted")
        return ticket

    # -- probes --------------------------------------------------------

    def ready(self) -> bool:
        """Readiness: accepting, breaker not open, workers and pool alive."""
        return (
            self._accepting
            and not self._closed
            and self._breaker.state is not BreakerState.OPEN
            and self._backend.healthy()
            and any(w.is_alive() for w in self._workers)
        )

    def health(self) -> dict[str, Any]:
        """Liveness/health snapshot (cheap; safe to poll)."""
        if self._closed:
            status = "stopped"
        elif not self._accepting:
            status = "draining"
        elif not self.ready():
            status = "degraded"
        else:
            status = "ok"
        misses = self._recent_misses()
        return {
            "status": status,
            "ready": self.ready(),
            "queue_depth": self._queue.depth,
            "queue_capacity": self._queue.capacity,
            "inflight": self._inflight,
            "workers": self.n_workers,
            "breaker": self._breaker.state.value,
            "backend": self._backend.label,
            "backend_healthy": self._backend.healthy(),
            "recent_deadline_misses": misses,
            "rung_floor": rung_for_pressure(
                self._queue.fill, misses, self.config
            ),
        }

    # -- lifecycle -----------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: finish queued + in-flight work, then stop.

        Stops admission immediately, lets the workers finish everything
        already queued (every request is budget-bounded, so this
        terminates), then stops the workers and drains the execution
        backend.  If *timeout* expires first, the still-queued requests
        are failed with a typed
        :class:`~repro.errors.ServerClosedError` and shutdown proceeds —
        a drain never hangs and never silently drops a ticket.  Returns
        ``True`` iff everything queued was served.
        """
        with self._lifecycle:
            if self._closed:
                return True
            self._accepting = False
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            served_all = True
            with self._idle:
                while self._queue.depth > 0 or self._inflight > 0:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        served_all = False
                        break
                    self._idle.wait(
                        0.05 if remaining is None else min(0.05, remaining)
                    )
            for ticket in self._queue.drain_pending():
                served_all = False
                if ticket.probe:
                    self._breaker.release_probe()
                _tm.incr("serve.shed.drained")
                ticket.fail(
                    ServerClosedError(
                        f"request {ticket.request_id} shed: server shut "
                        f"down before it ran"
                    )
                )
            # Queue is empty; anything in flight finishes on its own
            # budget.  Wait it out, then stop the workers.
            with self._idle:
                while self._inflight > 0:
                    self._idle.wait(0.05)
            for _ in self._workers:
                self._queue.put_sentinel(_STOP)
            for worker in self._workers:
                worker.join(timeout=5.0)
            # A submit racing past the accepting check can enqueue after
            # the sweep above; fail those stragglers rather than strand
            # their tickets behind dead workers.
            for ticket in self._queue.drain_pending():
                if ticket is _STOP:
                    continue
                served_all = False
                if ticket.probe:
                    self._breaker.release_probe()
                ticket.fail(
                    ServerClosedError(
                        f"request {ticket.request_id} shed: server shut "
                        f"down before it ran"
                    )
                )
            if self._owns_backend:
                self._backend.drain()
            self._closed = True
            _tm.incr("serve.drains")
            _tm.event("serve.drained", served_all=served_all)
            return served_all

    def close(self) -> None:
        """Immediate shutdown: shed the queue, keep in-flight results."""
        self.drain(timeout=0.0)

    def __enter__(self) -> "MatchingServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.drain()

    # -- serving workers ----------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.take(timeout=0.1)
            if ticket is None:
                continue
            if ticket is _STOP:
                break
            with self._idle:
                self._inflight += 1
            try:
                self._handle(ticket)
            finally:
                with self._idle:
                    self._inflight -= 1
                    self._idle.notify_all()

    def _handle(self, ticket: _Ticket) -> None:
        """Serve one ticket; every exit path fulfils or typed-fails it."""
        queue_wait = time.monotonic() - ticket.enqueued_at
        try:
            if ticket.budget.expired:
                _tm.incr("serve.shed.expired_in_queue")
                raise DeadlineExceededError(
                    f"request {ticket.request_id} spent its entire "
                    f"{ticket.budget.budget:.3g}s budget queueing "
                    f"({queue_wait:.3g}s) — the server is overloaded"
                )
            response = self._execute(ticket, queue_wait)
        except BaseException as exc:  # noqa: BLE001 - typed below
            error = (
                exc
                if isinstance(exc, ReproError)
                else ServiceError(
                    f"internal error serving request "
                    f"{ticket.request_id}: {exc!r}"
                )
            )
            if not isinstance(exc, ReproError):
                error.__cause__ = exc
            if isinstance(error, _SUBSTRATE_FAILURES):
                self._breaker.record_failure(ticket.probe)
            else:
                self._breaker.record_success(ticket.probe)
            if _tm.enabled():
                _tm.incr("serve.failed")
                _tm.incr(f"serve.failed.{type(error).__name__}")
            ticket.fail(error)
            return
        self._breaker.record_success(ticket.probe)
        if _tm.enabled():
            _tm.incr("serve.completed")
            _tm.incr(f"serve.rung.{response.rung}")
            _tm.observe(f"serve.latency.{response.rung}", response.elapsed)
            _tm.observe("serve.queue_wait", queue_wait)
        ticket.fulfil(response)

    def _execute(self, ticket: _Ticket, queue_wait: float) -> MatchResponse:
        """Walk the ladder from the pressure-selected rung downwards."""
        request = ticket.request
        top = rung_for_pressure(
            self._queue.fill,
            self._recent_misses(),
            self.config,
            request.method,
        )
        last: BaseException | None = None
        for rung in RUNGS[RUNGS.index(top):]:
            if (
                rung == "exact"
                and ticket.budget.remaining() < self.config.exact_min_budget
            ):
                # Not enough budget left to finish an auction — shed to
                # the best bounded-latency rung instead of starting work
                # we would abandon (the response is marked degraded).
                if _tm.enabled():
                    _tm.incr("serve.exact.shed")
                    _tm.event(
                        "serve.exact_shed",
                        request=ticket.request_id,
                        remaining=ticket.budget.remaining(),
                    )
                continue
            try:
                ticket.budget.ensure(f"request {ticket.request_id}")
                if self.config.execute_hook is not None:
                    self.config.execute_hook(request, rung)
                matching, guarantee, scaling_rung = self._run_rung(
                    rung, request, ticket.budget
                )
            except _SUBSTRATE_FAILURES as exc:
                last = exc
                self._record_miss()
                if _tm.enabled():
                    _tm.incr("serve.rung_failures")
                    _tm.event(
                        "serve.rung_failure",
                        request=ticket.request_id,
                        rung=rung,
                        error=type(exc).__name__,
                    )
                continue
            degraded = rung != (
                RUNGS[_AUTO_TOP] if request.method == "auto"
                else request.method
            )
            return MatchResponse(
                matching=matching,
                rung=rung,
                guarantee=guarantee,
                scaling_rung=scaling_rung,
                degraded=degraded,
                elapsed=time.monotonic() - ticket.enqueued_at,
                queue_wait=queue_wait,
                request_id=ticket.request_id,
            )
        assert last is not None  # ladder only ends via failures
        raise last

    def _run_rung(
        self, rung: str, request: MatchRequest, budget: Deadline
    ) -> tuple[Matching, float, str | None]:
        """One rung attempt on a dedicated thread, bounded by *budget*.

        The runner thread installs the request budget thread-locally, so
        the resilient backend caps every chunk attempt and backoff to the
        remaining time; the join below additionally bounds code outside
        the backend (e.g. the ``greedy`` rung's serial loop), which is
        abandoned on expiry like a resilient thread attempt.
        """
        remaining = budget.remaining()
        box: dict[str, Any] = {}

        def run() -> None:
            try:
                with request_deadline(budget):
                    if rung == "exact":
                        from repro.core.twosided import two_sided_match

                        res = two_sided_match(
                            request.graph,
                            request.iterations,
                            seed=request.seed,
                            backend=self._backend,
                            engine="vectorized",
                            quality="exact",
                        )
                        box["out"] = (
                            res.matching, res.guarantee, res.scaling.rung
                        )
                    elif rung == "two_sided":
                        from repro.core.twosided import two_sided_match

                        res = two_sided_match(
                            request.graph,
                            request.iterations,
                            seed=request.seed,
                            backend=self._backend,
                            engine="vectorized",
                        )
                        box["out"] = (
                            res.matching, res.guarantee, res.scaling.rung
                        )
                    elif rung == "one_sided":
                        from repro.core.onesided import one_sided_match

                        res = one_sided_match(
                            request.graph,
                            request.iterations,
                            seed=request.seed,
                            backend=self._backend,
                        )
                        box["out"] = (
                            res.matching, res.guarantee, res.scaling.rung
                        )
                    else:
                        from repro.matching.heuristics.greedy import (
                            greedy_edge_matching,
                        )

                        matching = greedy_edge_matching(
                            request.graph, seed=request.seed
                        )
                        box["out"] = (
                            matching, RUNG_GUARANTEES["greedy"], None
                        )
            except BaseException as exc:  # noqa: BLE001 - reported below
                box["error"] = exc

        runner = threading.Thread(
            target=run, name=f"serve-rung-{rung}", daemon=True
        )
        runner.start()
        runner.join(remaining)
        if runner.is_alive():
            raise DeadlineExceededError(
                f"rung {rung!r} exceeded the request's remaining "
                f"{remaining:.3g}s budget (runner abandoned)"
            )
        if "error" in box:
            raise box["error"]
        return box["out"]

    # -- ladder pressure ----------------------------------------------

    def _record_miss(self) -> None:
        now = time.monotonic()
        with self._miss_lock:
            self._misses.append(now)
            self._trim_misses(now)
        _tm.incr("serve.deadline_misses")

    def _recent_misses(self) -> int:
        with self._miss_lock:
            self._trim_misses(time.monotonic())
            return len(self._misses)

    def _trim_misses(self, now: float) -> None:
        horizon = now - self.config.miss_window
        while self._misses and self._misses[0] < horizon:
            self._misses.popleft()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MatchingServer(backend={self._backend.label!r}, "
            f"workers={self.n_workers}, "
            f"queue={self._queue.depth}/{self._queue.capacity}, "
            f"breaker={self._breaker.state.value})"
        )
