"""Crash recovery for durable stream sessions.

:func:`recover_registry` rebuilds a daemon's stream registry from a
journal directory: load the newest checkpoint (if any), truncate any
torn journal tail, replay the surviving records through the *same* code
paths that produced them, and recertify every recovered session before
a single request is served.  The contract, proven by the chaos matrix's
``recovery`` row and the committed torn-write corpus:

* every mutation that was **acknowledged** before the crash is present
  in the recovered state, bitwise — same epoch, same matching, same
  certified guarantee;
* anything the recovery cannot restore *and verify* is a typed
  :class:`~repro.errors.RecoveryError` — never a silently weaker or
  emptier state.

Recertification is not a checksum: the §3.3 guarantee of each session
is re-measured from the recovered graph and scaling factors
(:func:`~repro.stream.rescale.measure_state`) and compared exactly
against the stored warm state and the last acknowledged response.  A
checkpoint that loads cleanly but disagrees with its own graph is
refused.

:func:`supervise` is the watchdog: spawn the daemon, and while it keeps
dying with nonzero status, respawn it with ``--recover`` up to a restart
budget.  Acked state survives each death by construction.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro import telemetry as _tm
from repro.errors import RecoveryError
from repro.serve.daemon import GraphCache, _StreamRegistry
from repro.serve.journal import (
    DurableLog,
    latest_generation,
    scan_journal,
)

__all__ = ["RecoveryReport", "recover_registry", "supervise"]


@dataclass(frozen=True)
class RecoveryReport:
    """What a :func:`recover_registry` call found and did."""

    #: Generation recovered from (0 = no checkpoint existed yet).
    generation: int
    #: Whether a checkpoint file seeded the registry.
    from_checkpoint: bool
    #: Journal records replayed on top of the checkpoint.
    replayed_records: int
    #: Torn-tail bytes truncated from the journal (0 = clean file).
    truncated_bytes: int
    #: Open sessions after recovery.
    sessions: int

    def render(self) -> str:
        source = (
            f"checkpoint gen {self.generation}"
            if self.from_checkpoint
            else "empty state"
        )
        return (
            f"recovered {self.sessions} session(s) from {source},"
            f" {self.replayed_records} record(s) replayed,"
            f" {self.truncated_bytes} torn byte(s) truncated"
        )


def _recertify(registry: _StreamRegistry) -> None:
    """Re-prove every recovered session's certificate from its graph.

    The stored warm state claims "these factors certify this minimum
    column sum on this graph"; recovery re-measures that claim from
    scratch and compares exactly.  Divergence means the checkpoint,
    journal, and graph do not describe the same state — refuse to serve
    rather than hand out a certificate nobody ever proved.
    """
    from repro.scaling.adaptive import _min_column_sum
    from repro.stream.rescale import measure_state

    for handle, (graph, matcher) in registry._sessions.items():
        quality = matcher._quality
        if quality is None:
            continue  # never rematched; nothing was certified
        snap = graph.snapshot()
        scaling = quality.scaling
        if (
            scaling.dr.shape[0] != snap.nrows
            or scaling.dc.shape[0] != snap.ncols
        ):
            raise RecoveryError(
                f"session {handle!r}: recovered scaling factors have shape"
                f" {scaling.dr.shape[0]}x{scaling.dc.shape[0]} but the graph"
                f" is {snap.nrows}x{snap.ncols}"
            )
        # The certificate describes the graph at the matcher's epoch; a
        # journal may legitimately end with edits applied but not yet
        # rematched (the next rematch recertifies those).  Only when the
        # graph is at the certified epoch can the claim be re-measured.
        if matcher._epoch == graph.epoch:
            measured = _min_column_sum(snap, scaling.dr, scaling.dc)
            if measured != quality.min_column_sum:
                raise RecoveryError(
                    f"session {handle!r}: recertified minimum column sum"
                    f" {measured!r} diverges from the recovered certificate"
                    f" {quality.min_column_sum!r}"
                )
            if matcher._scale_state is not None:
                rowtot, colsum = measure_state(snap, scaling.dc)
                if not (
                    np.array_equal(rowtot, matcher._scale_state[0])
                    and np.array_equal(colsum, matcher._scale_state[1])
                ):
                    raise RecoveryError(
                        f"session {handle!r}: recovered warm scale state"
                        f" does not match a fresh measurement of the graph"
                    )
        ack = registry._last_ack.get(str(handle))
        if ack is not None and "guarantee" in ack:
            recovered = (
                1.0
                if matcher.exact
                else (
                    matcher.target_quality
                    if quality.target_met
                    else quality.certified_quality
                )
            )
            if recovered != ack["guarantee"]:
                raise RecoveryError(
                    f"session {handle!r}: recovered guarantee {recovered!r}"
                    f" diverges from the last acknowledged"
                    f" {ack['guarantee']!r}"
                )
        if matcher._matching is not None and matcher._epoch == graph.epoch:
            matcher._matching.validate(snap)


def recover_registry(
    directory: str | os.PathLike[str],
    *,
    backend: Any = None,
    max_streams: int = 8,
    cache: GraphCache | None = None,
    checkpoint_every: int = 64,
    attach_journal: bool = True,
) -> tuple[_StreamRegistry, RecoveryReport]:
    """Rebuild a stream registry from a journal *directory*.

    Returns the registry (with a live :class:`DurableLog` attached,
    ready to serve, unless *attach_journal* is false) and a
    :class:`RecoveryReport`.  Raises :class:`RecoveryError` when the
    directory's state cannot be restored *and verified* — corrupted
    checkpoint, interleaved journal corruption, or replay/recertification
    divergence.
    """
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        raise RecoveryError(f"journal directory {directory!r} does not exist")
    started = time.perf_counter()
    generation, ckpt_path, wal_path = latest_generation(directory)
    cache = cache if cache is not None else GraphCache(32)
    registry = _StreamRegistry(max_streams, backend)

    from_checkpoint = False
    if ckpt_path is not None:
        from repro.serve.checkpoint import read_snapshot

        registry.restore_state(read_snapshot(ckpt_path))
        from_checkpoint = True

    replayed = 0
    truncated = 0
    if wal_path is not None:
        scan = scan_journal(wal_path)  # raises on interleaved corruption
        if scan.truncated:
            truncated = scan.total_bytes - scan.valid_bytes
            # Drop the torn tail on disk too: appending after garbage
            # would turn the next crash into "valid after invalid".
            with open(wal_path, "r+b") as fh:
                fh.truncate(scan.valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        for record in scan.records:
            registry.apply_record(record, cache)
            replayed += 1

    _recertify(registry)

    # Retire any generations left behind by a crash mid-rotation (the
    # new generation was already complete, so these are dead weight).
    for name in os.listdir(directory):
        stale = os.path.join(directory, name)
        if name.endswith(".tmp"):
            os.unlink(stale)
            continue
        for prefix in ("ckpt-", "wal-"):
            if name.startswith(prefix):
                stem = name[len(prefix) :].split(".", 1)[0]
                if stem.isdigit() and int(stem) < generation:
                    os.unlink(stale)

    if attach_journal:
        registry.journal = DurableLog(
            directory, checkpoint_every=checkpoint_every
        )

    report = RecoveryReport(
        generation=generation,
        from_checkpoint=from_checkpoint,
        replayed_records=replayed,
        truncated_bytes=truncated,
        sessions=len(registry._sessions),
    )
    if _tm.enabled():
        _tm.incr("serve.recovery.runs")
        _tm.incr("serve.recovery.replayed_records", replayed)
        _tm.incr("serve.recovery.truncated_bytes", truncated)
        _tm.set_gauge("serve.recovery.sessions", report.sessions)
        _tm.observe(
            "serve.recovery.seconds", time.perf_counter() - started
        )
    return registry, report


def supervise(
    argv: Sequence[str],
    *,
    journal_dir: str,
    max_restarts: int = 3,
    backoff: float = 0.2,
) -> int:
    """Watchdog respawn loop around a daemon command.

    Runs ``argv`` (inheriting this process's stdio); while it exits
    nonzero and restarts remain, respawns it with ``--recover`` appended
    so each incarnation rebuilds from *journal_dir*.  Returns the final
    exit code — 0 only if some incarnation shut down cleanly.
    """
    attempt = list(argv)
    restarts = 0
    while True:
        code = subprocess.call(attempt)
        if code == 0 or restarts >= max_restarts:
            return code
        restarts += 1
        if _tm.enabled():
            _tm.incr("serve.recovery.respawns")
        print(
            f"daemon exited with {code}; respawn {restarts}/{max_restarts}"
            f" via recovery from {journal_dir!r}",
            file=sys.stderr,
        )
        time.sleep(backoff * restarts)
        attempt = list(argv)
        if "--recover" not in attempt:
            attempt.append("--recover")
