"""Per-tenant admission quotas for the multi-daemon router.

The router (:mod:`repro.serve.router`) fronts a *shared* pool of
daemons; one tenant flooding it with requests must not starve the
others.  :class:`TenantQuotas` bounds each tenant's **in-flight**
requests — admission is checked *before* the consistent-hash ring even
picks a daemon, so a shed request costs one dict lookup, not a network
round-trip.  Over-quota submissions fail fast with a typed
:class:`~repro.errors.QuotaExceededError` (the client decides whether
to back off and retry); they are never silently queued.

Fairness is structural: every tenant gets an independent counter, so a
flooding tenant exhausts only its *own* slots.  There is no global
limit here — the per-daemon admission queue
(:class:`~repro.serve.server.MatchingServer`) already bounds total
load; this layer only divides the right to reach it.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Iterator

from repro import telemetry as _tm
from repro.errors import QuotaExceededError, ServiceError

__all__ = ["TenantQuotas"]


class TenantQuotas:
    """Thread-safe per-tenant in-flight request accounting.

    Parameters
    ----------
    limit:
        Default maximum in-flight requests per tenant.
    overrides:
        Per-tenant limits overriding the default (e.g. a batch tenant
        allowed deeper pipelines).

    Usage::

        quotas = TenantQuotas(limit=8)
        with quotas.admitted("alice"):      # raises QuotaExceededError
            response = node.request(msg)    # when alice is at her cap
    """

    def __init__(
        self, limit: int = 8, *, overrides: dict[str, int] | None = None
    ) -> None:
        if limit < 1:
            raise ServiceError(
                f"tenant quota limit must be >= 1, got {limit}"
            )
        for tenant, cap in (overrides or {}).items():
            if cap < 1:
                raise ServiceError(
                    f"tenant {tenant!r} quota must be >= 1, got {cap}"
                )
        self.limit = int(limit)
        self.overrides = dict(overrides or {})
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}
        self._shed: dict[str, int] = {}

    def limit_for(self, tenant: str) -> int:
        """The in-flight cap applying to *tenant*."""
        return self.overrides.get(tenant, self.limit)

    def inflight(self, tenant: str) -> int:
        """Currently admitted (un-released) requests for *tenant*."""
        with self._lock:
            return self._inflight.get(tenant, 0)

    def acquire(self, tenant: str) -> None:
        """Admit one request for *tenant* or shed it with a typed error."""
        tenant = str(tenant)
        cap = self.limit_for(tenant)
        with self._lock:
            held = self._inflight.get(tenant, 0)
            if held >= cap:
                self._shed[tenant] = self._shed.get(tenant, 0) + 1
                if _tm.enabled():
                    _tm.incr("serve.quota.shed")
                raise QuotaExceededError(
                    f"tenant {tenant!r} is at its quota of {cap}"
                    f" in-flight requests"
                )
            self._inflight[tenant] = held + 1
        if _tm.enabled():
            _tm.incr("serve.quota.admitted")

    def release(self, tenant: str) -> None:
        """Return one slot; over-release is a caller bug, not a no-op."""
        tenant = str(tenant)
        with self._lock:
            held = self._inflight.get(tenant, 0)
            if held < 1:
                raise ServiceError(
                    f"release without acquire for tenant {tenant!r}"
                )
            if held == 1:
                del self._inflight[tenant]
            else:
                self._inflight[tenant] = held - 1

    @contextlib.contextmanager
    def admitted(self, tenant: str) -> Iterator[None]:
        """``with``-scoped acquire/release pair."""
        self.acquire(tenant)
        try:
            yield
        finally:
            self.release(tenant)

    def snapshot(self) -> dict[str, Any]:
        """In-flight and shed counts per tenant (for ``router_health``)."""
        with self._lock:
            return {
                "limit": self.limit,
                "overrides": dict(self.overrides),
                "inflight": dict(self._inflight),
                "shed": dict(self._shed),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            busy = sum(self._inflight.values())
        return f"TenantQuotas(limit={self.limit}, inflight={busy})"
