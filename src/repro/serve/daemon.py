"""JSON-lines daemon: ``python -m repro serve`` over stdin/stdout.

One request per input line, one JSON response per line, in request
order (each tagged with the request's ``id``).  The protocol is
deliberately tiny — it exists so the service can be driven from any
language or from a shell pipe, not to be a real RPC layer; in-process
callers wanting concurrency use :class:`~repro.serve.MatchingServer`
directly via ``submit_async``.

Requests (``op`` selects the operation)::

    {"id": 1, "op": "match", "graph": {...}, "iterations": 5,
     "seed": 7, "method": "auto", "deadline": 2.0}
    {"id": 2, "op": "health"}
    {"id": 3, "op": "shutdown"}

Streaming requests work against a *handle* to a server-side
:class:`~repro.stream.DynamicBipartiteGraph` (see ``docs/streaming.md``)::

    {"id": 4, "op": "stream_open", "graph": {...}, "target_quality": 0.6}
    {"id": 5, "op": "update", "handle": "s1",
     "add": {"rows": [0], "cols": [1]}, "remove": {"rows": [2], "cols": [0]}}
    {"id": 6, "op": "rematch", "handle": "s1", "expect_epoch": 2}
    {"id": 7, "op": "stream_close", "handle": "s1"}

``update``/``rematch`` also answer to ``stream_update``/``stream_rematch``.
``expect_epoch`` (optional) makes ``rematch`` fail with a typed
``StreamError`` when the graph has moved past the epoch the client
thinks it is at, instead of silently answering for a newer state.

Graph specs (``graph``) are cached by their JSON key (LRU-bounded — see
*graph_cache_cap*), so a client can re-submit the same spec without
rebuilding it server-side:

* ``{"kind": "sprand", "n": 1000, "degree": 4.0, "seed": 0}``
* ``{"kind": "union", "n": 1000, "k": 3, "seed": 0}``
* ``{"path": "matrix.mtx"}`` — Matrix Market or ``.npz`` via
  :mod:`repro.graph.io`
* ``{"nrows": 2, "ncols": 2, "rows": [0, 1], "cols": [1, 0]}`` — COO

Responses are ``{"id", "ok": true, ...}`` on success or
``{"id", "ok": false, "error": "<TypedErrorClass>", "message": ...}``.
Match responses carry the matching's column-for-each-row array plus the
rung / guarantee / degradation provenance.  EOF on stdin (or a
``shutdown`` op) drains the server gracefully.
"""

from __future__ import annotations

import contextlib
import json
import sys
import threading
from collections import OrderedDict
from typing import Any, IO

import numpy as np

from repro import telemetry as _tm
from repro.errors import ReproError, ServiceError, ShardError, StreamError
from repro.graph.csr import BipartiteGraph
from repro.parallel.backends import Backend
from repro.serve.server import MatchingServer, MatchRequest, ServerConfig

__all__ = [
    "serve_forever",
    "build_graph",
    "Dispatcher",
    "GraphCache",
    "BROKEN_PIPE_EXIT",
    "JOURNAL_POISONED_EXIT",
]


class GraphCache:
    """LRU-bounded spec-key → graph cache for the daemon.

    The previous unbounded ``dict`` leaked memory in a long-running
    daemon fed many distinct specs; this keeps at most *cap* graphs,
    evicting the least recently *used* (hits refresh recency).  The
    mapping surface (``in`` / ``[]``) matches what :func:`build_graph`
    needs, so a plain dict still works there too.
    """

    def __init__(self, cap: int = 32) -> None:
        if cap < 1:
            raise ServiceError(f"graph cache cap must be >= 1, got {cap}")
        self.cap = int(cap)
        self.evictions = 0
        self._data: OrderedDict[str, BipartiteGraph] = OrderedDict()

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, key: str) -> BipartiteGraph:
        self._data.move_to_end(key)
        return self._data[key]

    def __setitem__(self, key: str, graph: BipartiteGraph) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = graph
        while len(self._data) > self.cap:
            self._data.popitem(last=False)
            self.evictions += 1
            if _tm.enabled():
                _tm.incr("serve.graph_cache.evictions")


def _coo_indices(value: Any, field: str) -> np.ndarray:
    """Validate one COO index field into an int64 array (typed errors)."""
    try:
        arr = np.asarray(value)
    except Exception:
        raise ServiceError(
            f"COO field {field!r} is not array-like"
        ) from None
    if arr.ndim != 1:
        raise ServiceError(
            f"COO field {field!r} must be a flat list, got shape"
            f" {arr.shape}"
        )
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise ServiceError(
            f"COO field {field!r} must contain integers only, got"
            f" dtype {arr.dtype}"
        )
    return arr.astype(np.int64)


def _coo_dim(spec: dict, field: str) -> int:
    if field not in spec:
        raise ServiceError(f"COO graph spec is missing {field!r}")
    value = spec[field]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(
            f"COO field {field!r} must be an integer, got"
            f" {type(value).__name__}"
        )
    return value


def build_graph(
    spec: Any, cache: "GraphCache | dict[str, BipartiteGraph] | None" = None
) -> BipartiteGraph:
    """Materialise a graph from a daemon *spec* (see module docstring)."""
    if not isinstance(spec, dict):
        raise ServiceError(
            f"graph spec must be an object, got {type(spec).__name__}"
        )
    key = json.dumps(spec, sort_keys=True)
    if cache is not None and key in cache:
        return cache[key]
    if "path" in spec:
        path = str(spec["path"])
        if path.endswith(".npz"):
            from repro.graph.io import load_npz

            graph = load_npz(path)
        else:
            from repro.graph.io import read_matrix_market

            graph = read_matrix_market(path)
    elif spec.get("kind") == "sprand":
        from repro.graph.generators import sprand

        graph = sprand(
            int(spec["n"]),
            float(spec.get("degree", 4.0)),
            seed=spec.get("seed"),
        )
    elif spec.get("kind") == "union":
        from repro.graph.generators import union_of_permutations

        graph = union_of_permutations(
            int(spec["n"]), int(spec.get("k", 3)), seed=spec.get("seed")
        )
    elif "rows" in spec and "cols" in spec:
        from repro.graph.build import from_edges

        nrows = _coo_dim(spec, "nrows")
        ncols = _coo_dim(spec, "ncols")
        rows = _coo_indices(spec["rows"], "rows")
        cols = _coo_indices(spec["cols"], "cols")
        if rows.shape[0] != cols.shape[0]:
            raise ServiceError(
                f"COO fields 'rows' and 'cols' differ in length:"
                f" {rows.shape[0]} vs {cols.shape[0]}"
            )
        graph = from_edges(nrows, ncols, rows, cols)
    else:
        raise ServiceError(
            "graph spec needs 'path', 'kind' in {'sprand', 'union'}, or "
            "COO 'rows'/'cols'"
        )
    if cache is not None:
        cache[key] = graph
    return cache[key] if cache is not None else graph


def _error_response(request_id: Any, exc: BaseException) -> dict[str, Any]:
    if not isinstance(exc, ReproError):
        # Contract: the daemon never emits untyped failures.
        exc = ServiceError(f"internal daemon error: {exc!r}")
    return {
        "id": request_id,
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }


def _rid_field(msg: dict[str, Any]) -> dict[str, Any]:
    """The journal-record fragment carrying a request's idempotency id.

    Present only when the client sent one, so journals written by
    rid-less clients are byte-identical to earlier releases.
    """
    rid = msg.get("rid")
    return {} if rid is None else {"rid": str(rid)}


class _StreamRegistry:
    """Server-side handles to dynamic graphs and their matchers.

    With a :class:`~repro.serve.journal.DurableLog` attached, every
    successful mutating op is journaled (and fsync'd) *before* its
    response is returned — the write-ahead discipline that makes an
    acknowledgment survive a crash.  A journal failure poisons the log;
    the serve loop then stops so the supervisor can restart through
    :func:`~repro.serve.recovery.recover_registry`.
    """

    def __init__(
        self,
        max_streams: int,
        backend: Backend | str | None,
        *,
        journal: Any = None,
    ) -> None:
        self.max_streams = int(max_streams)
        self.backend = backend
        self.journal = journal
        self._sessions: dict[str, tuple[Any, Any]] = {}
        #: handle → ShardSession; shares the ``s<n>`` handle namespace and
        #: the *max_streams* budget with dynamic-graph sessions.
        self._shards: dict[str, Any] = {}
        self._last_ack: dict[str, dict[str, Any]] = {}
        self._next = 0
        #: rid → acknowledged payload, rebuilt by :meth:`apply_record`
        #: during recovery so a client retry of an already-acked mutation
        #: is answered from the replayed ack instead of re-applied.
        self.replayed_acks: dict[str, dict[str, Any]] = {}

    # -- durability ----------------------------------------------------

    @property
    def poisoned(self) -> bool:
        """True once the journal refused a write (state ahead of disk)."""
        return self.journal is not None and self.journal.poisoned is not None

    def _journal_append(self, record: dict[str, Any]) -> None:
        if self.journal is None:
            return
        self.journal.append(record)
        if self.journal.should_checkpoint:
            from repro.serve.checkpoint import write_snapshot

            state = self.export_state()
            self.journal.rotate(lambda tmp: write_snapshot(tmp, state))

    def export_state(self) -> dict[str, Any]:
        """Checkpointable image of every open session."""
        return {
            "next": self._next,
            "sessions": {
                handle: {
                    "graph": graph.export_state(),
                    "matcher": matcher.export_state(),
                }
                for handle, (graph, matcher) in self._sessions.items()
            },
            "shards": {
                handle: session.export_state()
                for handle, session in self._shards.items()
            },
            "last_ack": dict(self._last_ack),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Adopt a checkpoint image (see :mod:`repro.serve.recovery`)."""
        from repro.stream.dynamic import DynamicBipartiteGraph
        from repro.stream.matcher import StreamMatcher

        self._next = int(state["next"])
        self._sessions = {}
        for handle, parts in state["sessions"].items():
            graph = DynamicBipartiteGraph.from_state(parts["graph"])
            matcher = StreamMatcher.from_state(
                graph, parts["matcher"], backend=self.backend
            )
            self._sessions[handle] = (graph, matcher)
        self._shards = {}
        if state.get("shards"):
            from repro.shard.session import ShardSession

            for handle, sess in state["shards"].items():
                self._shards[handle] = ShardSession.import_state(sess, None)
        self._last_ack = {
            h: dict(a) for h, a in state.get("last_ack", {}).items()
        }

    def apply_record(self, record: dict[str, Any], cache: Any) -> None:
        """Replay one journal record, verifying it reproduces its ack.

        Used by recovery with no journal attached; any divergence from
        the recorded acknowledgment is a typed
        :class:`~repro.errors.RecoveryError` — the recovered state would
        not be the one the client saw.
        """
        from repro.errors import RecoveryError

        op = record.get("op")
        handle = record.get("handle")
        rid = record.get("rid")
        if op == "open":
            response = self.open(
                {
                    "graph": record.get("graph"),
                    "target_quality": record.get("target_quality", 0.55),
                    "seed": record.get("seed"),
                    "topup": record.get("topup", False),
                    "exact": record.get("exact", False),
                },
                cache,
            )
            if response["handle"] != handle:
                raise RecoveryError(
                    f"replayed open produced handle {response['handle']!r},"
                    f" journal says {handle!r}"
                )
            _, matcher = self._sessions[handle]
            matcher._rng.bit_generator.state = record["rng"]
        elif op == "update":
            response = self.update({"handle": handle, **record["msg"]})
        elif op == "rematch":
            response = self.rematch(
                {"handle": handle, "cold": record.get("cold", False)}
            )
        elif op == "close":
            response = self.close({"handle": handle})
            if rid is not None:
                self.replayed_acks[str(rid)] = dict(response)
            return
        elif op == "shard_open":
            response = self.shard_open(
                {
                    "graph": record.get("graph"),
                    "n_shards": record.get("n_shards"),
                    "index": record.get("index"),
                    "chunk_rows": record.get("chunk_rows"),
                    "chunk_cols": record.get("chunk_cols"),
                },
                cache,
            )
            if response["handle"] != handle:
                raise RecoveryError(
                    f"replayed shard_open produced handle"
                    f" {response['handle']!r}, journal says {handle!r}"
                )
        elif op == "shard_arm":
            response = self.shard_arm(
                {
                    "handle": handle,
                    "row_choice": record["row_choice"],
                    "col_choice": record["col_choice"],
                }
            )
        elif op == "shard_commit":
            response = self.shard_commit(
                {"handle": handle, "candidates": record.get("candidates", ())}
            )
        elif op == "shard_finish":
            response = self.shard_finish({"handle": handle})
        elif op == "shard_close":
            response = self.shard_close({"handle": handle})
            if rid is not None:
                self.replayed_acks[str(rid)] = dict(response)
            return
        else:
            raise RecoveryError(f"journal record has unknown op {op!r}")
        ack = record.get("ack", {})
        diverged = {
            key: (response.get(key), expected)
            for key, expected in ack.items()
            if response.get(key) != expected
        }
        if diverged:
            raise RecoveryError(
                f"replay of {op!r} on {handle!r} diverged from the"
                f" acknowledged response: {diverged}"
            )
        if rid is not None:
            self.replayed_acks[str(rid)] = dict(response)

    # -- ops -----------------------------------------------------------

    def open(self, msg: dict[str, Any], cache: Any) -> dict[str, Any]:
        from repro.stream.dynamic import DynamicBipartiteGraph
        from repro.stream.matcher import StreamMatcher

        if len(self._sessions) >= self.max_streams:
            raise StreamError(
                f"stream limit reached ({self.max_streams} open);"
                f" close a handle first"
            )
        base = build_graph(msg.get("graph"), cache)
        graph = DynamicBipartiteGraph(base)
        matcher = StreamMatcher(
            graph,
            float(msg.get("target_quality", 0.55)),
            seed=msg.get("seed"),
            backend=self.backend,
            topup=bool(msg.get("topup", False)),
            exact=bool(msg.get("exact", False)),
        )
        self._next += 1
        handle = f"s{self._next}"
        self._sessions[handle] = (graph, matcher)
        if _tm.enabled():
            _tm.incr("serve.stream.opens")
            _tm.set_gauge("serve.stream.open_handles", len(self._sessions))
        response = {
            "handle": handle,
            "epoch": graph.epoch,
            "nrows": graph.nrows,
            "ncols": graph.ncols,
            "nnz": graph.nnz,
        }
        self._journal_append(
            {
                "op": "open",
                "handle": handle,
                **_rid_field(msg),
                "graph": msg.get("graph"),
                "target_quality": float(msg.get("target_quality", 0.55)),
                "seed": msg.get("seed"),
                "topup": bool(msg.get("topup", False)),
                "exact": bool(msg.get("exact", False)),
                # The concrete generator state (seed may be None): replay
                # restores it so recovered sessions draw identical
                # randomness.
                "rng": matcher._rng.bit_generator.state,
                "ack": response,
            }
        )
        return response

    def get(self, msg: dict[str, Any]) -> tuple[Any, Any]:
        handle = msg.get("handle")
        if handle not in self._sessions:
            raise StreamError(f"unknown stream handle {handle!r}")
        return self._sessions[handle]

    def update(self, msg: dict[str, Any]) -> dict[str, Any]:
        graph, _ = self.get(msg)
        added = removed = 0
        remove = msg.get("remove")
        if remove is not None:
            removed = graph.remove_edges(
                _coo_indices(remove.get("rows", ()), "remove.rows"),
                _coo_indices(remove.get("cols", ()), "remove.cols"),
                strict=bool(msg.get("strict", True)),
            )
        add = msg.get("add")
        if add is not None:
            added = graph.add_edges(
                _coo_indices(add.get("rows", ()), "add.rows"),
                _coo_indices(add.get("cols", ()), "add.cols"),
            )
        grow = msg.get("grow")
        if grow is not None:
            graph.grow(
                int(grow.get("nrows", graph.nrows)),
                int(grow.get("ncols", graph.ncols)),
            )
        if _tm.enabled():
            _tm.incr("serve.stream.updates")
        response = {
            "epoch": graph.epoch,
            "added": added,
            "removed": removed,
            "nnz": graph.nnz,
        }
        self._journal_append(
            {
                "op": "update",
                "handle": msg.get("handle"),
                **_rid_field(msg),
                "msg": {
                    key: msg[key]
                    for key in ("add", "remove", "grow", "strict")
                    if key in msg
                },
                "ack": response,
            }
        )
        return response

    def rematch(self, msg: dict[str, Any]) -> dict[str, Any]:
        graph, matcher = self.get(msg)
        expect = msg.get("expect_epoch")
        if expect is not None and int(expect) != graph.epoch:
            raise StreamError(
                f"stale epoch: client expected {int(expect)}, graph is at"
                f" {graph.epoch}"
            )
        result = matcher.rematch(cold=bool(msg.get("cold", False)))
        if _tm.enabled():
            _tm.incr("serve.stream.rematches")
        payload = {
            "epoch": result.epoch,
            "mode": result.mode,
            "cardinality": result.cardinality,
            "certified_quality": result.quality.certified_quality,
            "min_column_sum": result.quality.min_column_sum,
            "guarantee": result.guarantee,
            "resampled_rows": result.resampled_rows,
            "resampled_cols": result.resampled_cols,
            "repaired_rows": result.repaired_rows,
            "repaired_cols": result.repaired_cols,
            "topup_gain": result.topup_gain,
            "exact_gain": result.exact_gain,
        }
        handle = msg.get("handle")
        self._last_ack[str(handle)] = dict(payload)
        self._journal_append(
            {
                "op": "rematch",
                "handle": handle,
                **_rid_field(msg),
                "cold": bool(msg.get("cold", False)),
                "ack": dict(payload),
            }
        )
        if msg.get("include_matching"):
            payload["row_match"] = result.matching.row_match.tolist()
        return payload

    def close(self, msg: dict[str, Any]) -> dict[str, Any]:
        handle = msg.get("handle")
        if handle not in self._sessions:
            raise StreamError(f"unknown stream handle {handle!r}")
        del self._sessions[handle]
        self._last_ack.pop(str(handle), None)
        if _tm.enabled():
            _tm.incr("serve.stream.closes")
            _tm.set_gauge("serve.stream.open_handles", len(self._sessions))
        self._journal_append(
            {"op": "close", "handle": handle, **_rid_field(msg)}
        )
        return {"handle": handle, "closed": True}

    # -- shard ops (see docs/sharding.md, "Daemon tier") ----------------

    def get_shard(self, msg: dict[str, Any]) -> Any:
        handle = msg.get("handle")
        if handle not in self._shards:
            raise ShardError(f"unknown shard handle {handle!r}")
        return self._shards[handle]

    def shard_open(self, msg: dict[str, Any], cache: Any) -> dict[str, Any]:
        from repro.shard.session import ShardSession

        if len(self._sessions) + len(self._shards) >= self.max_streams:
            raise StreamError(
                f"stream limit reached ({self.max_streams} open);"
                f" close a handle first"
            )
        base = build_graph(msg.get("graph"), cache)
        session = ShardSession.build(
            base,
            msg.get("graph"),
            int(msg.get("n_shards", 1)),
            int(msg.get("index", 0)),
            chunk_rows=msg.get("chunk_rows"),
            chunk_cols=msg.get("chunk_cols"),
        )
        self._next += 1
        handle = f"s{self._next}"
        self._shards[handle] = session
        if _tm.enabled():
            _tm.incr("serve.shard.opens")
            _tm.set_gauge("serve.shard.open_handles", len(self._shards))
        response = {"handle": handle, **session.info()}
        self._journal_append(
            {
                "op": "shard_open",
                "handle": handle,
                **_rid_field(msg),
                "graph": msg.get("graph"),
                "n_shards": int(msg.get("n_shards", 1)),
                "index": int(msg.get("index", 0)),
                "chunk_rows": session.shard.chunk_rows,
                "chunk_cols": session.shard.chunk_cols,
                "ack": response,
            }
        )
        return response

    def shard_sweep(self, msg: dict[str, Any]) -> dict[str, Any]:
        # Pure: a deterministic function of the request vectors and the
        # (immutable) slice — never journaled, safe to re-run on retry.
        return self.get_shard(msg).sweep(msg)

    def shard_choices(self, msg: dict[str, Any]) -> dict[str, Any]:
        return self.get_shard(msg).choices(msg)

    def shard_scan(self, msg: dict[str, Any]) -> dict[str, Any]:
        return self.get_shard(msg).scan()

    def shard_arm(self, msg: dict[str, Any]) -> dict[str, Any]:
        session = self.get_shard(msg)
        response = session.arm(msg)
        self._journal_append(
            {
                "op": "shard_arm",
                "handle": msg.get("handle"),
                **_rid_field(msg),
                "row_choice": [int(v) for v in msg.get("row_choice", ())],
                "col_choice": [int(v) for v in msg.get("col_choice", ())],
                "ack": dict(response),
            }
        )
        return response

    def shard_commit(self, msg: dict[str, Any]) -> dict[str, Any]:
        session = self.get_shard(msg)
        response = session.commit(msg)
        self._journal_append(
            {
                "op": "shard_commit",
                "handle": msg.get("handle"),
                **_rid_field(msg),
                "candidates": [int(v) for v in msg.get("candidates", ())],
                "ack": dict(response),
            }
        )
        return response

    def shard_finish(self, msg: dict[str, Any]) -> dict[str, Any]:
        session = self.get_shard(msg)
        response = session.finish()
        self._journal_append(
            {
                "op": "shard_finish",
                "handle": msg.get("handle"),
                **_rid_field(msg),
                "ack": dict(response),
            }
        )
        # The full match array rides the response but stays out of the
        # journal ack: the checksum already pins it bit for bit.
        return {
            **response,
            "match": session.require_state().match.tolist(),
        }

    def shard_close(self, msg: dict[str, Any]) -> dict[str, Any]:
        handle = msg.get("handle")
        if handle not in self._shards:
            raise ShardError(f"unknown shard handle {handle!r}")
        del self._shards[handle]
        if _tm.enabled():
            _tm.incr("serve.shard.closes")
            _tm.set_gauge("serve.shard.open_handles", len(self._shards))
        self._journal_append(
            {"op": "shard_close", "handle": handle, **_rid_field(msg)}
        )
        return {"handle": handle, "closed": True}


#: Exit code of a daemon that stopped because its journal poisoned —
#: nonzero so a supervisor restarts it through recovery.
JOURNAL_POISONED_EXIT = 75

#: Exit code of a daemon whose output pipe closed mid-response (EX_IOERR):
#: the reader is gone, so further acks would be lies; die loudly instead
#: of hanging or dying with an unhandled ``BrokenPipeError`` traceback.
BROKEN_PIPE_EXIT = 74


class Dispatcher:
    """Transport-independent request dispatcher for the daemon protocol.

    One instance serves both fronts — the stdio loop in
    :func:`serve_forever` and socket connections in
    :class:`~repro.serve.net.SocketServer` — so the two transports
    cannot drift in semantics.  :meth:`handle` maps one request object
    to ``(response, stop)``; :meth:`handle_line` adds JSON-line
    parsing.  Neither ever raises for a bad request: failures come back
    as typed ``{"ok": false, "error": ...}`` responses
    (``KeyboardInterrupt`` / ``SystemExit`` excepted).

    Idempotency: a request carrying a ``rid`` (client-unique request
    id) has its successful response remembered in an LRU of *acked_cap*
    entries; a retry with the same ``rid`` — e.g. after the network
    dropped the first ack — is answered from that cache without
    re-applying the mutation.  The cache is seeded from the journal on
    recovery (see :meth:`_StreamRegistry.apply_record`), so the
    guarantee holds across daemon failover, not just within one
    process.  Stream ops serialise on an internal lock; ``match``
    submissions run outside it so slow matches do not block health
    probes or other connections.
    """

    def __init__(
        self,
        server: MatchingServer,
        cache: "GraphCache | dict[str, BipartiteGraph]",
        streams: _StreamRegistry,
        *,
        acked_cap: int = 1024,
    ) -> None:
        if acked_cap < 1:
            raise ServiceError(
                f"acked cache cap must be >= 1, got {acked_cap}"
            )
        self.server = server
        self.cache = cache
        self.streams = streams
        self.acked_cap = int(acked_cap)
        self.rid_evictions = 0
        self._lock = threading.RLock()
        self._acked: OrderedDict[str, dict[str, Any]] = OrderedDict()
        for rid, payload in streams.replayed_acks.items():
            self._remember(rid, {"ok": True, **payload})

    @property
    def poisoned(self) -> bool:
        """True once the journal refused a write (stop serving)."""
        return self.streams.poisoned

    def _remember(self, rid: str, response: dict[str, Any]) -> None:
        with self._lock:
            self._acked[rid] = response
            self._acked.move_to_end(rid)
            while len(self._acked) > self.acked_cap:
                self._acked.popitem(last=False)
                self.rid_evictions += 1
                if _tm.enabled():
                    _tm.incr("serve.rid_evictions")

    def _replay(self, rid: str) -> dict[str, Any] | None:
        with self._lock:
            cached = self._acked.get(rid)
            if cached is not None:
                self._acked.move_to_end(rid)
                return dict(cached)
        return None

    def health(self) -> dict[str, Any]:
        """The server's health merged with daemon-level state.

        Adds open/maximum stream sessions, graph-cache occupancy, and —
        when a journal is attached — its generation, records since the
        last checkpoint, and poisoned state.
        """
        payload = self.server.health()
        journal = self.streams.journal
        with self._lock:
            payload["sessions"] = len(self.streams._sessions)
            payload["shards"] = len(self.streams._shards)
            payload["rid_evictions"] = self.rid_evictions
        payload["max_streams"] = self.streams.max_streams
        payload["journal"] = (
            None
            if journal is None
            else {
                "generation": journal.generation,
                "records_since_checkpoint": journal.records_since_checkpoint,
                "poisoned": journal.poisoned,
            }
        )
        payload["graph_cache"] = {
            "size": len(self.cache),
            "cap": getattr(self.cache, "cap", None),
        }
        return payload

    def _match(self, msg: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            graph = build_graph(msg.get("graph"), self.cache)
        request = MatchRequest(
            graph,
            iterations=int(msg.get("iterations", 5)),
            seed=msg.get("seed"),
            method=str(msg.get("method", "auto")),
            deadline=msg.get("deadline"),
        )
        response = self.server.submit(request)
        return {
            "ok": True,
            "cardinality": response.cardinality,
            "rung": response.rung,
            "guarantee": response.guarantee,
            "scaling_rung": response.scaling_rung,
            "degraded": response.degraded,
            "elapsed": response.elapsed,
            "queue_wait": response.queue_wait,
            "row_match": response.matching.row_match.tolist(),
        }

    def handle(self, msg: Any) -> tuple[dict[str, Any], bool]:
        """Dispatch one request object → ``(response, stop)``."""
        request_id: Any = None
        try:
            if not isinstance(msg, dict):
                raise ServiceError("request must be a JSON object")
            request_id = msg.get("id")
            rid = msg.get("rid")
            if rid is not None:
                replay = self._replay(str(rid))
                if replay is not None:
                    replay["id"] = request_id
                    if _tm.enabled():
                        _tm.incr("serve.rid_replays")
                    return replay, False
            op = msg.get("op", "match")
            if op == "match":
                response = self._match(msg)
            elif op == "stream_open":
                with self._lock:
                    response = {
                        "ok": True,
                        **self.streams.open(msg, self.cache),
                    }
            elif op in ("update", "stream_update"):
                with self._lock:
                    response = {"ok": True, **self.streams.update(msg)}
            elif op in ("rematch", "stream_rematch"):
                with self._lock:
                    response = {"ok": True, **self.streams.rematch(msg)}
            elif op == "stream_close":
                with self._lock:
                    response = {"ok": True, **self.streams.close(msg)}
            elif op == "shard_open":
                with self._lock:
                    response = {
                        "ok": True,
                        **self.streams.shard_open(msg, self.cache),
                    }
            elif op == "shard_sweep":
                with self._lock:
                    response = {"ok": True, **self.streams.shard_sweep(msg)}
            elif op == "shard_choices":
                with self._lock:
                    response = {"ok": True, **self.streams.shard_choices(msg)}
            elif op == "shard_scan":
                with self._lock:
                    response = {"ok": True, **self.streams.shard_scan(msg)}
            elif op == "shard_arm":
                with self._lock:
                    response = {"ok": True, **self.streams.shard_arm(msg)}
            elif op == "shard_commit":
                with self._lock:
                    response = {"ok": True, **self.streams.shard_commit(msg)}
            elif op == "shard_finish":
                with self._lock:
                    response = {"ok": True, **self.streams.shard_finish(msg)}
            elif op == "shard_close":
                with self._lock:
                    response = {"ok": True, **self.streams.shard_close(msg)}
            elif op == "health":
                response = {"ok": True, **self.health()}
            elif op == "shutdown":
                return (
                    {"id": request_id, "ok": True, "status": "draining"},
                    True,
                )
            else:
                raise ServiceError(
                    f"unknown op {op!r}; expected 'match', 'stream_open',"
                    f" 'update', 'rematch', 'stream_close', a 'shard_*'"
                    f" verb, 'health', or 'shutdown'"
                )
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - typed in response
            return _error_response(request_id, exc), False
        response["id"] = request_id
        if rid is not None and response.get("ok"):
            self._remember(str(rid), dict(response))
        return response, False

    def handle_line(self, line: str) -> tuple[dict[str, Any], bool] | None:
        """Dispatch one JSON line; ``None`` for blank lines."""
        line = line.strip()
        if not line:
            return None
        try:
            msg = json.loads(line)
        except json.JSONDecodeError as exc:
            return (
                _error_response(
                    None, ServiceError(f"request is not valid JSON: {exc}")
                ),
                False,
            )
        return self.handle(msg)


def serve_forever(
    backend: Backend | str | None = None,
    *,
    config: ServerConfig | None = None,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
    graph_cache_cap: int = 32,
    max_streams: int = 8,
    journal_dir: str | None = None,
    recover: bool = False,
    checkpoint_every: int = 64,
    acked_cap: int = 1024,
) -> int:
    """Run the JSON-lines daemon until EOF or a ``shutdown`` op.

    Returns a process exit code (0 on clean shutdown).  *stdin* /
    *stdout* default to the process streams; tests pass ``io.StringIO``.
    *graph_cache_cap* bounds the spec→graph LRU cache; *max_streams*
    bounds the number of concurrently open dynamic-graph handles;
    *acked_cap* bounds the idempotency replay cache (evictions count on
    the ``serve.rid_evictions`` telemetry counter).

    With *journal_dir* every stream mutation is write-ahead journaled
    (fsync before ack) and checkpointed every *checkpoint_every*
    records; *recover* first rebuilds the stream registry from the
    directory's checkpoint + journal (see ``docs/serving.md``,
    "Durability & crash recovery").  When the journal poisons — a
    failed or injected-faulty write — the daemon stops with exit code
    :data:`JOURNAL_POISONED_EXIT` rather than acknowledging mutations
    it can no longer make durable.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    # A SIGKILLed predecessor never swept its shared-memory segments;
    # reclaim any whose creator is gone before spawning our own.
    from repro.parallel.shm import reclaim_stale_segments

    reclaim_stale_segments()
    cache = GraphCache(graph_cache_cap)
    if recover:
        if journal_dir is None:
            raise ServiceError("--recover requires a journal directory")
        from repro.serve.recovery import recover_registry

        streams, _ = recover_registry(
            journal_dir,
            backend=backend,
            max_streams=max_streams,
            cache=cache,
            checkpoint_every=checkpoint_every,
        )
    elif journal_dir is not None:
        from repro.serve.journal import DurableLog

        streams = _StreamRegistry(
            max_streams,
            backend,
            journal=DurableLog(
                journal_dir, checkpoint_every=checkpoint_every
            ),
        )
    else:
        streams = _StreamRegistry(max_streams, backend)

    broken_pipe = False
    with MatchingServer(backend, config=config) as server:
        dispatcher = Dispatcher(server, cache, streams, acked_cap=acked_cap)
        for line in stdin:
            try:
                handled = dispatcher.handle_line(line)
            except (KeyboardInterrupt, SystemExit):
                break
            if handled is None:
                continue
            response, stop = handled
            try:
                stdout.write(json.dumps(response) + "\n")
                stdout.flush()
            except (BrokenPipeError, OSError) as exc:
                # The reader hung up mid-response.  The old behaviour —
                # an unhandled traceback, or a hang retrying the write —
                # left supervisors guessing; instead log one typed line
                # and exit nonzero so they restart us.
                broken_pipe = True
                with contextlib.suppress(Exception):
                    sys.stderr.write(
                        json.dumps(
                            {
                                "event": "serve.output_pipe_closed",
                                "error": type(exc).__name__,
                                "message": str(exc),
                            }
                        )
                        + "\n"
                    )
                    sys.stderr.flush()
                if _tm.enabled():
                    _tm.incr("serve.output_pipe_closed")
                break
            if stop:
                break
            if dispatcher.poisoned:
                # The in-memory registry is ahead of the durable log;
                # acknowledging anything further would be a lie.  Die
                # and let the supervisor restart through recovery.
                break
    if streams.journal is not None:
        streams.journal.close()
    if streams.poisoned:
        return JOURNAL_POISONED_EXIT
    return BROKEN_PIPE_EXIT if broken_pipe else 0
