"""JSON-lines daemon: ``python -m repro serve`` over stdin/stdout.

One request per input line, one JSON response per line, in request
order (each tagged with the request's ``id``).  The protocol is
deliberately tiny — it exists so the service can be driven from any
language or from a shell pipe, not to be a real RPC layer; in-process
callers wanting concurrency use :class:`~repro.serve.MatchingServer`
directly via ``submit_async``.

Requests (``op`` selects the operation)::

    {"id": 1, "op": "match", "graph": {...}, "iterations": 5,
     "seed": 7, "method": "auto", "deadline": 2.0}
    {"id": 2, "op": "health"}
    {"id": 3, "op": "shutdown"}

Graph specs (``graph``) are cached by their JSON key, so a client can
re-submit the same spec without rebuilding it server-side:

* ``{"kind": "sprand", "n": 1000, "degree": 4.0, "seed": 0}``
* ``{"kind": "union", "n": 1000, "k": 3, "seed": 0}``
* ``{"path": "matrix.mtx"}`` — Matrix Market or ``.npz`` via
  :mod:`repro.graph.io`
* ``{"nrows": 2, "ncols": 2, "rows": [0, 1], "cols": [1, 0]}`` — COO

Responses are ``{"id", "ok": true, ...}`` on success or
``{"id", "ok": false, "error": "<TypedErrorClass>", "message": ...}``.
Match responses carry the matching's column-for-each-row array plus the
rung / guarantee / degradation provenance.  EOF on stdin (or a
``shutdown`` op) drains the server gracefully.
"""

from __future__ import annotations

import json
import sys
from typing import Any, IO

from repro.errors import ReproError, ServiceError
from repro.graph.csr import BipartiteGraph
from repro.parallel.backends import Backend
from repro.serve.server import MatchingServer, MatchRequest, ServerConfig

__all__ = ["serve_forever", "build_graph"]


def build_graph(spec: Any, cache: dict[str, BipartiteGraph] | None = None) -> BipartiteGraph:
    """Materialise a graph from a daemon *spec* (see module docstring)."""
    if not isinstance(spec, dict):
        raise ServiceError(
            f"graph spec must be an object, got {type(spec).__name__}"
        )
    key = json.dumps(spec, sort_keys=True)
    if cache is not None and key in cache:
        return cache[key]
    if "path" in spec:
        path = str(spec["path"])
        if path.endswith(".npz"):
            from repro.graph.io import load_npz

            graph = load_npz(path)
        else:
            from repro.graph.io import read_matrix_market

            graph = read_matrix_market(path)
    elif spec.get("kind") == "sprand":
        from repro.graph.generators import sprand

        graph = sprand(
            int(spec["n"]),
            float(spec.get("degree", 4.0)),
            seed=spec.get("seed"),
        )
    elif spec.get("kind") == "union":
        from repro.graph.generators import union_of_permutations

        graph = union_of_permutations(
            int(spec["n"]), int(spec.get("k", 3)), seed=spec.get("seed")
        )
    elif "rows" in spec and "cols" in spec:
        from repro.graph.build import from_edges

        graph = from_edges(
            int(spec["nrows"]),
            int(spec["ncols"]),
            spec["rows"],
            spec["cols"],
        )
    else:
        raise ServiceError(
            "graph spec needs 'path', 'kind' in {'sprand', 'union'}, or "
            "COO 'rows'/'cols'"
        )
    if cache is not None:
        cache[key] = graph
    return cache[key] if cache is not None else graph


def _error_response(request_id: Any, exc: BaseException) -> dict[str, Any]:
    if not isinstance(exc, ReproError):
        # Contract: the daemon never emits untyped failures.
        exc = ServiceError(f"internal daemon error: {exc!r}")
    return {
        "id": request_id,
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }


def _handle_match(
    server: MatchingServer,
    msg: dict[str, Any],
    cache: dict[str, BipartiteGraph],
) -> dict[str, Any]:
    graph = build_graph(msg.get("graph"), cache)
    request = MatchRequest(
        graph,
        iterations=int(msg.get("iterations", 5)),
        seed=msg.get("seed"),
        method=str(msg.get("method", "auto")),
        deadline=msg.get("deadline"),
    )
    response = server.submit(request)
    return {
        "id": msg.get("id"),
        "ok": True,
        "cardinality": response.cardinality,
        "rung": response.rung,
        "guarantee": response.guarantee,
        "scaling_rung": response.scaling_rung,
        "degraded": response.degraded,
        "elapsed": response.elapsed,
        "queue_wait": response.queue_wait,
        "row_match": response.matching.row_match.tolist(),
    }


def serve_forever(
    backend: Backend | str | None = None,
    *,
    config: ServerConfig | None = None,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
) -> int:
    """Run the JSON-lines daemon until EOF or a ``shutdown`` op.

    Returns a process exit code (0 on clean shutdown).  *stdin* /
    *stdout* default to the process streams; tests pass ``io.StringIO``.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    cache: dict[str, BipartiteGraph] = {}

    def emit(payload: dict[str, Any]) -> None:
        stdout.write(json.dumps(payload) + "\n")
        stdout.flush()

    with MatchingServer(backend, config=config) as server:
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            request_id: Any = None
            try:
                msg = json.loads(line)
                if not isinstance(msg, dict):
                    raise ServiceError("request must be a JSON object")
                request_id = msg.get("id")
                op = msg.get("op", "match")
                if op == "match":
                    emit(_handle_match(server, msg, cache))
                elif op == "health":
                    emit({"id": request_id, "ok": True, **server.health()})
                elif op == "shutdown":
                    emit({"id": request_id, "ok": True, "status": "draining"})
                    break
                else:
                    raise ServiceError(
                        f"unknown op {op!r}; expected 'match', 'health', "
                        f"or 'shutdown'"
                    )
            except json.JSONDecodeError as exc:
                emit(_error_response(request_id, ServiceError(
                    f"request is not valid JSON: {exc}"
                )))
            except BaseException as exc:  # noqa: BLE001 - typed in response
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    break
                emit(_error_response(request_id, exc))
    return 0
