"""``repro.serve`` — a long-running, overload-safe matching service.

The serving layer composes the robustness substrate (resilient backends,
fault injection, deadline budgets, telemetry) into a request path with a
stated contract: every submitted request ends in a valid matching *with
a quality guarantee for the rung it was served at*, or a typed error —
within its deadline budget, under overload, and across worker crashes.

Entry points:

* :class:`MatchingServer` — in-process server (``submit`` /
  ``submit_async``, ``health``/``ready`` probes, ``drain``).
* :func:`run_soak` — overload/chaos soak harness with contract audit.
* :func:`serve_forever` — stdin/stdout JSON-lines daemon
  (``python -m repro serve``).
* :class:`DurableLog` / :func:`recover_registry` / :func:`supervise` —
  write-ahead journal, checkpoint/restore and the crash-recovery path
  (``python -m repro serve --journal DIR`` / ``--recover``).
* :class:`SocketServer` / :class:`ResilientClient` /
  :func:`serve_listen` — the network front: framed unix/TCP transport
  with a retrying, idempotent client
  (``python -m repro serve --listen unix:/tmp/d.sock``).
* :class:`Router` / :class:`TenantQuotas` — N supervised daemons behind
  consistent-hash routing, per-tenant admission quotas, and
  journal-recovery failover (``python -m repro route --daemons 3``).

See ``docs/serving.md`` for the architecture.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.daemon import (
    BROKEN_PIPE_EXIT,
    JOURNAL_POISONED_EXIT,
    Dispatcher,
    serve_forever,
)
from repro.serve.journal import DurableLog, JournalScan, scan_journal
from repro.serve.net import ResilientClient, SocketServer, serve_listen
from repro.serve.quota import TenantQuotas
from repro.serve.router import Router, RouterNode
from repro.serve.recovery import (
    RecoveryReport,
    recover_registry,
    supervise,
)
from repro.serve.server import (
    RUNG_GUARANTEES,
    RUNGS,
    MatchingServer,
    MatchRequest,
    MatchResponse,
    ServerConfig,
    rung_for_pressure,
)
from repro.serve.soak import SoakReport, run_soak

__all__ = [
    "AdmissionQueue",
    "BreakerState",
    "BROKEN_PIPE_EXIT",
    "CircuitBreaker",
    "Dispatcher",
    "DurableLog",
    "JOURNAL_POISONED_EXIT",
    "JournalScan",
    "RecoveryReport",
    "ResilientClient",
    "Router",
    "RouterNode",
    "SocketServer",
    "TenantQuotas",
    "recover_registry",
    "scan_journal",
    "serve_listen",
    "supervise",
    "MatchRequest",
    "MatchResponse",
    "MatchingServer",
    "RUNGS",
    "RUNG_GUARANTEES",
    "ServerConfig",
    "SoakReport",
    "rung_for_pressure",
    "run_soak",
    "serve_forever",
]
