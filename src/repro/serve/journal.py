"""Write-ahead journal for durable stream sessions.

The daemon's stream state (dynamic graphs, warm matcher state, epoch
history) lives in memory; this module is what makes an acknowledged
mutation survive the process.  The discipline is the classic WAL one:

1. apply the operation in memory;
2. append one framed record describing it and ``fsync``;
3. only then acknowledge to the client.

A crash between (1) and (2) loses only unacknowledged work; a crash
mid-append leaves a *torn tail* that the scanner truncates away — again
only unacknowledged work.  There is no state an acknowledged client saw
that a restart cannot reconstruct.

Record framing
--------------

One record per line::

    J1 <len:8 hex> <crc:8 hex> <payload>\\n

``len`` is the byte length of the UTF-8 JSON *payload*; ``crc`` is its
CRC-32.  The fixed 21-byte header makes torn writes cheap to detect:
a record is valid iff the magic, both hex fields, the checksum, and the
trailing newline all check out.  Scanning stops at the first invalid
byte; if a *valid* record exists after that point the file was corrupted
in place (a crash can only tear the tail), and recovery refuses with a
typed :class:`~repro.errors.RecoveryError` naming the byte offset rather
than silently dropping acknowledged records.

Generations
-----------

A journal directory holds at most one checkpoint and one live journal::

    ckpt-000003.npz     # state snapshot (absent at generation 0)
    wal-000003.log      # records since that snapshot

:meth:`DurableLog.rotate` advances the generation atomically: the new
checkpoint is written to a temp file, fsync'd, renamed into place, the
directory fsync'd, an empty next journal created, and only then the old
generation unlinked — a crash at any instant leaves at least one
complete generation on disk.

Fault injection
---------------

The writer consults the active :class:`~repro.resilience.FaultPlan`
under the backend labels ``"journal"`` (appends) and ``"checkpoint"``
(rotations), so chaos tests can tear writes, skip the fsync, or flip
payload bits at exact record boundaries — deterministically.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import telemetry as _tm
from repro.errors import RecoveryError, WorkerCrashError
from repro.resilience.faults import FaultKind, FaultSpec, active_plan

__all__ = [
    "DurableLog",
    "JournalScan",
    "encode_record",
    "scan_journal",
    "latest_generation",
]

_MAGIC = b"J1 "
#: magic(3) + len(8) + sp(1) + crc(8) + sp(1)
_HEADER = 21


def encode_record(record: dict[str, Any]) -> bytes:
    """Frame one record: ``J1 <len> <crc> <payload>\\n``."""
    payload = json.dumps(record, sort_keys=True).encode("utf-8")
    return b"%s%08x %08x %s\n" % (
        _MAGIC,
        len(payload),
        zlib.crc32(payload),
        payload,
    )


def _parse_at(buf: bytes, pos: int) -> tuple[dict[str, Any], int] | None:
    """Parse the record starting at *pos*, or None if invalid there."""
    if buf[pos : pos + 3] != _MAGIC:
        return None
    header = buf[pos : pos + _HEADER]
    if len(header) < _HEADER or header[11:12] != b" " or header[20:21] != b" ":
        return None
    try:
        length = int(header[3:11], 16)
        crc = int(header[12:20], 16)
    except ValueError:
        return None
    end = pos + _HEADER + length
    payload = buf[pos + _HEADER : end]
    if len(payload) < length or buf[end : end + 1] != b"\n":
        return None
    if zlib.crc32(payload) != crc:
        return None
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(obj, dict):
        return None
    return obj, end + 1


@dataclass(frozen=True)
class JournalScan:
    """Result of :func:`scan_journal`."""

    #: Decoded records of the longest valid prefix, in append order.
    records: list[dict[str, Any]] = field(default_factory=list)
    #: Byte length of that prefix.
    valid_bytes: int = 0
    #: Total bytes in the file.
    total_bytes: int = 0

    @property
    def truncated(self) -> bool:
        """True iff a torn/invalid tail was dropped."""
        return self.valid_bytes < self.total_bytes


def scan_journal(path: str | os.PathLike[str]) -> JournalScan:
    """Decode a journal file, recovering the longest valid prefix.

    An invalid *tail* is the signature of a crash mid-append and is
    dropped (those records were never acknowledged).  A valid record
    *after* invalid bytes cannot result from any crash of the
    append-fsync-ack discipline — it means in-place corruption of
    potentially acknowledged state — so that raises
    :class:`~repro.errors.RecoveryError` with the offending byte offset
    instead of silently losing a record.
    """
    with open(path, "rb") as fh:
        buf = fh.read()
    records: list[dict[str, Any]] = []
    pos = 0
    while pos < len(buf):
        parsed = _parse_at(buf, pos)
        if parsed is None:
            break
        obj, pos = parsed
        records.append(obj)
    if pos < len(buf):
        # Anything parseable beyond the first bad byte is interleaved
        # corruption, not a torn tail.
        probe = pos + 1
        while probe < len(buf):
            nxt = buf.find(_MAGIC, probe)
            if nxt < 0:
                break
            if _parse_at(buf, nxt) is not None:
                raise RecoveryError(
                    f"journal {os.fspath(path)!r} has a valid record at"
                    f" byte {nxt} after invalid bytes at offset {pos} —"
                    f" in-place corruption, refusing to truncate"
                    f" acknowledged records",
                    offset=pos,
                )
            probe = nxt + 1
    return JournalScan(
        records=records, valid_bytes=pos, total_bytes=len(buf)
    )


def _ckpt_name(gen: int) -> str:
    return f"ckpt-{gen:06d}.npz"


def _wal_name(gen: int) -> str:
    return f"wal-{gen:06d}.log"


def latest_generation(
    directory: str | os.PathLike[str],
) -> tuple[int, str | None, str | None]:
    """``(generation, checkpoint path or None, journal path or None)``.

    The latest generation is the highest numbered *journal* file; a
    checkpoint without its journal (crash between rename and journal
    creation) still counts, with an implicitly empty journal.
    """
    directory = os.fspath(directory)
    gens: set[int] = set()
    for name in os.listdir(directory):
        for prefix in ("ckpt-", "wal-"):
            if name.startswith(prefix) and not name.endswith(".tmp"):
                stem = name[len(prefix) :].split(".", 1)[0]
                if stem.isdigit():
                    gens.add(int(stem))
    if not gens:
        return 0, None, None
    gen = max(gens)
    ckpt = os.path.join(directory, _ckpt_name(gen))
    wal = os.path.join(directory, _wal_name(gen))
    return (
        gen,
        ckpt if os.path.exists(ckpt) else None,
        wal if os.path.exists(wal) else None,
    )


def _fsync_dir(directory: str) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class DurableLog:
    """The daemon's journal: fault-aware appends plus generation rotation.

    Parameters
    ----------
    directory:
        Journal directory (created if missing).  Appends go to the
        current generation's ``wal-*.log``.
    checkpoint_every:
        Suggest a checkpoint (:attr:`should_checkpoint`) after this many
        appended records.
    fsync:
        Disable only in tests that measure pure framing overhead; the
        durability contract requires it on.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        checkpoint_every: int = 64,
        fsync: bool = True,
    ) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.checkpoint_every = int(checkpoint_every)
        self.fsync = bool(fsync)
        self.generation, _, wal = latest_generation(self.directory)
        self._poisoned: str | None = None
        self._since_checkpoint = 0
        path = os.path.join(self.directory, _wal_name(self.generation))
        if wal is None:
            with open(path, "ab") as fh:
                if self.fsync:
                    os.fsync(fh.fileno())
            _fsync_dir(self.directory)
        self._fh = open(path, "ab")

    # -- appends -------------------------------------------------------

    @property
    def poisoned(self) -> str | None:
        """Reason the log refuses further writes, or None."""
        return self._poisoned

    @property
    def path(self) -> str:
        """Path of the current generation's journal file."""
        return os.path.join(self.directory, _wal_name(self.generation))

    def _fault(self, label: str) -> FaultSpec | None:
        plan = active_plan()
        if plan is None:
            return None
        return plan.match(label, 0, plan.begin_call(label))

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record (fsync before returning).

        Any failure — injected or real — poisons the log: the in-memory
        state may now be ahead of disk, so continuing to acknowledge
        would break the recovery contract.  The daemon is expected to
        stop and let the supervisor restart it through recovery.
        """
        if self._poisoned is not None:
            raise RecoveryError(
                f"journal is poisoned ({self._poisoned}); restart through"
                f" recovery before accepting new mutations"
            )
        frame = encode_record(record)
        spec = self._fault("journal")
        try:
            if spec is not None:
                self._inject(spec, frame)
            else:
                self._fh.write(frame)
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
        except BaseException as exc:
            self._poisoned = repr(exc)
            raise
        self._since_checkpoint += 1
        if _tm.enabled():
            _tm.incr("serve.journal.appends")
            _tm.incr("serve.journal.bytes", len(frame))

    def _inject(self, spec: FaultSpec, frame: bytes) -> None:
        """Apply an IO fault to one append, then die like a crash would."""
        kind = spec.kind
        if kind is FaultKind.SLOW or kind is FaultKind.HANG:
            import time

            time.sleep(spec.seconds or 0.0)
            self._fh.write(frame)
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            return
        if kind is FaultKind.TORN:
            # The write is cut partway through the frame, past the
            # header so the tail is unambiguously torn, and the process
            # dies before any fsync.
            cut = max(_HEADER + 1, len(frame) // 2)
            self._fh.write(frame[:cut])
            self._fh.flush()
            raise WorkerCrashError(
                f"injected torn write after {cut} of {len(frame)} bytes"
            )
        if kind is FaultKind.CRASH:
            # Full write, no fsync: the bytes may or may not survive.
            self._fh.write(frame)
            self._fh.flush()
            raise WorkerCrashError("injected crash before journal fsync")
        if kind is FaultKind.CORRUPT:
            flipped = bytearray(frame)
            flipped[_HEADER + (len(frame) - _HEADER) // 2] ^= 0x40
            self._fh.write(bytes(flipped))
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            raise WorkerCrashError("injected checksum corruption on append")
        raise WorkerCrashError(  # pragma: no cover - exhaustive above
            f"unsupported journal fault {kind!r}"
        )

    # -- checkpoint rotation -------------------------------------------

    @property
    def records_since_checkpoint(self) -> int:
        return self._since_checkpoint

    @property
    def should_checkpoint(self) -> bool:
        return (
            self.checkpoint_every > 0
            and self._since_checkpoint >= self.checkpoint_every
        )

    def rotate(self, write_snapshot: Callable[[str], None]) -> int:
        """Advance one generation around a durable checkpoint.

        *write_snapshot* is called with a temp path and must write the
        complete state snapshot there; this method then makes it
        durable, swaps in an empty journal, and retires the previous
        generation.  A crash anywhere in the sequence leaves a
        recoverable directory (the old generation survives until the
        new one is fully in place).
        """
        if self._poisoned is not None:
            raise RecoveryError(
                f"journal is poisoned ({self._poisoned}); cannot checkpoint"
            )
        spec = self._fault("checkpoint")
        new_gen = self.generation + 1
        ckpt = os.path.join(self.directory, _ckpt_name(new_gen))
        tmp = ckpt + ".tmp"
        try:
            write_snapshot(tmp)
            if spec is not None and spec.kind is FaultKind.TORN:
                with open(tmp, "r+b") as fh:
                    fh.truncate(max(1, os.path.getsize(tmp) // 2))
                raise WorkerCrashError("injected crash mid-checkpoint")
            if spec is not None and spec.kind is FaultKind.CRASH:
                os.unlink(tmp)
                raise WorkerCrashError("injected crash before checkpoint")
            with open(tmp, "rb") as fh:
                os.fsync(fh.fileno())
            os.rename(tmp, ckpt)
            _fsync_dir(self.directory)
            old_gen = self.generation
            self._fh.close()
            self.generation = new_gen
            self._fh = open(self.path, "ab")
            if self.fsync:
                os.fsync(self._fh.fileno())
            _fsync_dir(self.directory)
            for name in (_ckpt_name(old_gen), _wal_name(old_gen)):
                stale = os.path.join(self.directory, name)
                if os.path.exists(stale):
                    os.unlink(stale)
        except BaseException as exc:
            self._poisoned = repr(exc)
            raise
        self._since_checkpoint = 0
        if _tm.enabled():
            _tm.incr("serve.journal.checkpoints")
        return new_gen

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableLog({self.directory!r}, gen={self.generation},"
            f" pending={self._since_checkpoint})"
        )
