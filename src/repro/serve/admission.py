"""Admission control: a bounded request queue with typed load shedding.

The queue is the server's only buffer, and it is *bounded on purpose*:
under sustained overload an unbounded queue converts every request into a
deadline miss (queueing delay grows without limit), while a bounded queue
plus typed :class:`~repro.errors.OverloadedError` rejection keeps the
queueing delay of every *accepted* request below
``capacity × service time`` — which is what lets the server promise that
accepted requests finish inside their deadline budgets.

Shedding happens at submission time on the caller's thread, so a rejected
client learns immediately (fail fast) and the serving workers never spend
cycles on a request that was doomed at arrival.
"""

from __future__ import annotations

import queue
from typing import Any

from repro import telemetry as _tm
from repro.errors import OverloadedError

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Bounded FIFO with typed rejection and a queue-depth gauge.

    ``offer`` never blocks: a full queue raises
    :class:`~repro.errors.OverloadedError` (counted in
    ``serve.shed.overloaded``).  ``take`` is the worker side; the
    ``serve.queue_depth`` gauge tracks the depth on every transition.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise OverloadedError(
                f"queue capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._q: "queue.Queue[Any]" = queue.Queue(maxsize=capacity)

    @property
    def depth(self) -> int:
        """Current number of queued items (approximate under concurrency)."""
        return self._q.qsize()

    @property
    def fill(self) -> float:
        """Queue depth as a fraction of capacity, in ``[0, 1]``."""
        return min(1.0, self.depth / self.capacity)

    def offer(self, item: Any) -> None:
        """Enqueue *item* or shed it with a typed error, never block."""
        try:
            self._q.put_nowait(item)
        except queue.Full:
            _tm.incr("serve.shed.overloaded")
            raise OverloadedError(
                f"admission queue is full ({self.capacity} queued); "
                f"request shed — back off and retry"
            ) from None
        if _tm.enabled():
            _tm.set_gauge("serve.queue_depth", self.depth)

    def take(self, timeout: float) -> Any | None:
        """Dequeue the oldest item, or ``None`` after *timeout* seconds."""
        try:
            item = self._q.get(timeout=timeout)
        except queue.Empty:
            return None
        if _tm.enabled():
            _tm.set_gauge("serve.queue_depth", self.depth)
        return item

    def drain_pending(self) -> list[Any]:
        """Remove and return everything currently queued (shutdown path)."""
        items: list[Any] = []
        while True:
            try:
                items.append(self._q.get_nowait())
            except queue.Empty:
                break
        if items and _tm.enabled():
            _tm.set_gauge("serve.queue_depth", self.depth)
        return items

    def put_sentinel(self, sentinel: Any) -> None:
        """Blocking put used only for worker-stop sentinels at shutdown."""
        self._q.put(sentinel)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdmissionQueue(depth={self.depth}/{self.capacity})"
