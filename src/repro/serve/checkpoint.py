"""Checkpoint snapshots of the daemon's stream registry.

A checkpoint is one ``.npz`` holding every open session's complete
state — the dynamic graph (edge keys + epoch + edit journal) and the
matcher's warm state (matching, scaling factors, auction prices, rng
state) — plus registry bookkeeping and the last acknowledged rematch per
session.  Replay cost after a crash is then bounded by the churn since
the last checkpoint, not by session lifetime.

The on-disk layout is flat: numpy arrays under ``<handle>/<part>/<key>``
entries, everything JSON-able under one ``__meta__`` entry.  Writing
durably (temp file + fsync + rename) is the journal's job
(:meth:`~repro.serve.journal.DurableLog.rotate`); this module only
serializes.  Any structural problem on load — unreadable zip, missing
arrays, meta/array disagreement — raises a typed
:class:`~repro.errors.RecoveryError`; a checkpoint is either perfect or
rejected (recovery then falls back to an older generation when one
exists).
"""

from __future__ import annotations

import io
import json
import os
from typing import Any

import numpy as np

from repro.errors import RecoveryError

__all__ = ["write_snapshot", "read_snapshot"]

_META = "__meta__"
_VERSION = 1


def _split(state: dict[str, Any]) -> tuple[dict[str, Any], dict[str, Any]]:
    """Partition an ``export_state`` dict into (scalars, arrays)."""
    scalars: dict[str, Any] = {}
    arrays: dict[str, Any] = {}
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            arrays[key] = value
        else:
            scalars[key] = value
    return scalars, arrays


def write_snapshot(path: str | os.PathLike[str], registry: dict[str, Any]) -> None:
    """Serialize a registry-state dict (see ``_StreamRegistry.export_state``)
    to *path* as one ``.npz``."""
    meta: dict[str, Any] = {
        "version": _VERSION,
        "next": int(registry["next"]),
        "handles": sorted(registry["sessions"]),
        "scalars": {},
        "last_ack": registry.get("last_ack", {}),
        # Shard sessions are fully JSON-able (spec + reconcile vectors as
        # lists) — they ride the metadata entry untouched.
        "shards": registry.get("shards", {}),
    }
    arrays: dict[str, np.ndarray] = {}
    for handle, parts in registry["sessions"].items():
        meta["scalars"][handle] = {}
        for part in ("graph", "matcher"):
            part_scalars, part_arrays = _split(parts[part])
            meta["scalars"][handle][part] = part_scalars
            for key, value in part_arrays.items():
                arrays[f"{handle}/{part}/{key}"] = value
    buf = io.BytesIO()
    np.savez_compressed(buf, **{_META: np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )}, **arrays)
    with open(path, "wb") as fh:
        fh.write(buf.getvalue())


def read_snapshot(path: str | os.PathLike[str]) -> dict[str, Any]:
    """Load a checkpoint back into a registry-state dict.

    Raises :class:`RecoveryError` on any structural defect; a partially
    readable checkpoint is never returned.
    """
    try:
        with np.load(path, allow_pickle=False) as npz:
            names = set(npz.files)
            if _META not in names:
                raise RecoveryError(
                    f"checkpoint {os.fspath(path)!r} has no metadata entry"
                )
            meta = json.loads(bytes(npz[_META]).decode("utf-8"))
            if meta.get("version") != _VERSION:
                raise RecoveryError(
                    f"checkpoint {os.fspath(path)!r} has unsupported"
                    f" version {meta.get('version')!r}"
                )
            sessions: dict[str, Any] = {}
            for handle in meta["handles"]:
                parts: dict[str, dict[str, Any]] = {}
                for part in ("graph", "matcher"):
                    state = dict(meta["scalars"][handle][part])
                    prefix = f"{handle}/{part}/"
                    for name in names:
                        if name.startswith(prefix):
                            state[name[len(prefix) :]] = npz[name]
                    parts[part] = state
                sessions[handle] = parts
            return {
                "next": int(meta["next"]),
                "sessions": sessions,
                "last_ack": meta.get("last_ack", {}),
                "shards": meta.get("shards", {}),
            }
    except RecoveryError:
        raise
    except Exception as exc:
        raise RecoveryError(
            f"checkpoint {os.fspath(path)!r} is unreadable: {exc!r}"
        ) from exc
