"""Socket front for the daemon protocol: framing, server, client.

The stdio daemon (:func:`~repro.serve.daemon.serve_forever`) serves one
pipe.  This module puts the same :class:`~repro.serve.daemon.Dispatcher`
behind a listening socket — unix-domain or TCP — so many clients, and
the multi-daemon :class:`~repro.serve.router.Router`, can talk to one
daemon concurrently.  Three layers:

Framing
    A request or response is one *frame*::

        N1 <len:8 hex> <crc:8 hex> <payload bytes>\\n

    — a 21-byte ASCII header carrying the payload length and its
    CRC-32, mirroring the journal's record framing
    (:mod:`repro.serve.journal`).  A short read is a *truncated* frame
    and a checksum mismatch is a *corrupt* frame; both surface as
    :class:`~repro.errors.TransportError`, never as garbled JSON
    handed to the application.

:class:`SocketServer`
    Accepts connections, reads frames, dispatches each request through
    the shared dispatcher, writes response frames.  Per-connection
    read deadlines bound how long an idle or wedged client can hold a
    thread.  Network faults from an installed
    :class:`~repro.resilience.FaultPlan` are injected *here*, at the
    framing layer, under the backend label ``"net"`` — one plan call
    per response about to be sent — so a schedule can drop, delay,
    partition, truncate, or garble the wire at exact request
    boundaries (see :mod:`repro.resilience.faults`).

:class:`ResilientClient`
    One logical request = one idempotency id (``rid``) + up to
    *retries* transport attempts with seeded-jitter exponential
    backoff (:class:`~repro.resilience.BackoffPolicy` — the same
    policy :class:`~repro.resilience.ResilientBackend` uses).  Because
    the rid rides every attempt, a retry after an *ambiguous* failure
    (the ack may or may not have been applied) is answered from the
    server's acked-response cache instead of re-applying the mutation.
    Exhausting retries raises :class:`~repro.errors.PartitionedError`
    when every attempt failed to even connect, else
    :class:`~repro.errors.TransportError`; in-band daemon errors are
    re-raised as their typed :mod:`repro.errors` class.  Health checks
    go through :meth:`ResilientClient.probe`, which *hedges*: if the
    first probe has not answered within ``hedge_delay`` a second
    connection races it, and the first response wins.

Addresses are strings: ``"unix:/path/to.sock"`` or
``"tcp:host:port"`` (``"tcp:127.0.0.1:0"`` binds an ephemeral port;
read the bound address back from :attr:`SocketServer.address`).
"""

from __future__ import annotations

import contextlib
import json
import os
import queue
import socket
import threading
import time
import zlib
from typing import Any, Callable

from repro import telemetry as _tm
from repro.errors import (
    PartitionedError,
    ReproError,
    ServiceError,
    TransportError,
)
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.faults import FaultKind, FaultSpec, active_plan
from repro.serve.daemon import Dispatcher

__all__ = [
    "encode_frame",
    "read_frame",
    "parse_address",
    "SocketServer",
    "ResilientClient",
    "serve_listen",
]

#: Frame magic — ``N1`` for "network framing, version 1".
FRAME_MAGIC = b"N1 "

#: ``b"N1 " + 8 hex len + b" " + 8 hex crc + b" "`` — fixed header size.
_HEADER = 21

#: Refuse frames above this size (64 MiB) — a corrupted length field
#: must not make the reader allocate gigabytes.
MAX_FRAME = 64 * 1024 * 1024

#: Backend label the socket server uses when consulting the fault plan.
NET_FAULT_LABEL = "net"


def encode_frame(payload: bytes) -> bytes:
    """Wrap *payload* in a length-prefixed, checksummed frame."""
    if len(payload) > MAX_FRAME:
        raise TransportError(
            f"frame payload of {len(payload)} bytes exceeds the"
            f" {MAX_FRAME}-byte limit"
        )
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return (
        FRAME_MAGIC
        + f"{len(payload):08x} {crc:08x} ".encode("ascii")
        + payload
        + b"\n"
    )


def _read_exactly(reader: Any, n: int) -> bytes:
    """Read exactly *n* bytes; short data is a truncated frame."""
    data = reader.read(n)
    if data is None:
        data = b""
    if len(data) != n:
        raise TransportError(
            f"truncated frame: wanted {n} bytes, got {len(data)}"
            f" before EOF"
        )
    return data


def read_frame(reader: Any) -> bytes | None:
    """Read one frame's payload from a binary *reader*.

    Returns ``None`` on clean EOF (no bytes before the header).  A
    partial header/payload, bad magic, unparsable length, oversized
    frame, or checksum mismatch raises
    :class:`~repro.errors.TransportError` — corruption is detected at
    the framing layer, never passed upward as mangled JSON.
    """
    header = reader.read(_HEADER)
    if header is None:
        header = b""
    if not header:
        return None
    if len(header) != _HEADER:
        raise TransportError(
            f"truncated frame header: got {len(header)} of"
            f" {_HEADER} bytes"
        )
    if header[:3] != FRAME_MAGIC:
        raise TransportError(
            f"bad frame magic {header[:3]!r}; peer is not speaking the"
            f" N1 protocol"
        )
    try:
        length = int(header[3:11], 16)
        crc = int(header[12:20], 16)
    except ValueError:
        raise TransportError(
            f"unparsable frame header {header!r}"
        ) from None
    if length > MAX_FRAME:
        raise TransportError(
            f"frame announces {length} bytes, above the"
            f" {MAX_FRAME}-byte limit"
        )
    payload = _read_exactly(reader, length)
    _read_exactly(reader, 1)  # trailing newline
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if actual != crc:
        raise TransportError(
            f"frame checksum mismatch: header says {crc:08x}, payload"
            f" is {actual:08x}"
        )
    return payload


def parse_address(address: str) -> tuple[int, Any]:
    """``"unix:/path"`` / ``"tcp:host:port"`` → ``(family, sockaddr)``."""
    if not isinstance(address, str):
        raise ServiceError(
            f"address must be a string, got {type(address).__name__}"
        )
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ServiceError("unix address needs a socket path")
        return socket.AF_UNIX, path
    if address.startswith("tcp:"):
        rest = address[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host:
            raise ServiceError(
                f"tcp address must be 'tcp:host:port', got {address!r}"
            )
        try:
            return socket.AF_INET, (host, int(port))
        except ValueError:
            raise ServiceError(
                f"tcp port must be an integer, got {port!r}"
            ) from None
    raise ServiceError(
        f"address must start with 'unix:' or 'tcp:', got {address!r}"
    )


def format_address(family: int, sockaddr: Any) -> str:
    """Inverse of :func:`parse_address` (for ephemeral TCP ports)."""
    if family == socket.AF_UNIX:
        return f"unix:{sockaddr}"
    host, port = sockaddr[0], sockaddr[1]
    return f"tcp:{host}:{port}"


class SocketServer:
    """Serve a :class:`~repro.serve.daemon.Dispatcher` over a socket.

    One accept thread plus one thread per live connection.  The server
    owns neither the dispatcher nor its
    :class:`~repro.serve.MatchingServer` — callers compose those
    (see :func:`serve_listen`) so tests can drive an in-process
    dispatcher through a real socket.

    Parameters
    ----------
    dispatcher:
        The shared request dispatcher.
    address:
        ``"unix:..."`` or ``"tcp:host:port"`` listen address.
    deadline:
        Per-connection read deadline in seconds — a connection idle
        longer than this is closed (``None`` = wait forever).
    backlog:
        ``listen()`` backlog.
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        address: str,
        *,
        deadline: float | None = 30.0,
        backlog: int = 16,
    ) -> None:
        if deadline is not None and deadline <= 0:
            raise ServiceError(
                f"connection deadline must be positive, got {deadline}"
            )
        self.dispatcher = dispatcher
        self.deadline = deadline
        self.backlog = int(backlog)
        self._family, self._sockaddr = parse_address(address)
        self._listener: socket.socket | None = None
        self._bound: Any = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        #: Set when a ``shutdown`` op was dispatched — :meth:`serve`
        #: callers wait on this.
        self.shutdown_requested = threading.Event()
        #: Monotonic timestamp until which the listener stays down
        #: (an injected ``partition`` fault).
        self._partition_until = 0.0

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> str:
        """The bound listen address (resolves ephemeral TCP ports)."""
        if self._bound is None:
            return format_address(self._family, self._sockaddr)
        return format_address(self._family, self._bound)

    def _bind(self) -> socket.socket:
        if self._family == socket.AF_UNIX:
            # A stale socket file from a SIGKILLed predecessor would
            # make bind() fail; nobody can be listening on it if we
            # were told to take the address.
            with contextlib.suppress(OSError):
                os.unlink(self._sockaddr)
        listener = socket.socket(self._family, socket.SOCK_STREAM)
        if self._family == socket.AF_INET:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        # Rebind to the *originally bound* address so an ephemeral TCP
        # port survives a partition-heal rebind.
        listener.bind(self._bound if self._bound is not None else self._sockaddr)
        listener.listen(self.backlog)
        # Poll-style accept: closing a socket does NOT reliably wake a
        # thread blocked in accept() on Linux, so a blocking accept
        # would make stop() hang and a partition never heal.
        listener.settimeout(0.2)
        self._bound = listener.getsockname()
        return listener

    def start(self) -> "SocketServer":
        """Bind, listen, and start accepting in a background thread."""
        if self._listener is not None:
            raise ServiceError("socket server already started")
        self._listener = self._bind()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="net-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the listener, and join workers."""
        self._stopping.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            with contextlib.suppress(OSError):
                listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        with self._lock:
            threads = list(self._conn_threads)
        for thread in threads:
            thread.join(timeout=5.0)
        if self._family == socket.AF_UNIX:
            with contextlib.suppress(OSError):
                os.unlink(self._sockaddr)

    def __enter__(self) -> "SocketServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- serving -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            listener = self._listener
            if listener is None:
                # An injected partition tore the listener down: sit out
                # the window (clients' connects genuinely fail — the
                # socket is gone, not just slow), then rebind.
                remaining = self._partition_until - time.monotonic()
                if remaining > 0:
                    time.sleep(min(remaining, 0.1))
                    continue
                try:
                    self._listener = self._bind()
                except OSError:
                    return
                continue
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                if self._stopping.is_set():
                    return  # listener closed by stop()
                continue  # torn down by a partition mid-accept
            conn.settimeout(self.deadline)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="net-conn",
                daemon=True,
            )
            with self._lock:
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
            thread.start()

    def _net_fault(self) -> FaultSpec | None:
        plan = active_plan()
        if plan is None:
            return None
        call = plan.begin_call(NET_FAULT_LABEL)
        return plan.match(NET_FAULT_LABEL, 0, call)

    def _send_response(
        self, conn: socket.socket, response: dict[str, Any]
    ) -> bool:
        """Frame and send *response*, applying any injected net fault.

        Returns False when the connection should be closed afterwards.
        """
        payload = json.dumps(response).encode("utf-8")
        spec = self._net_fault()
        kind = None if spec is None else FaultKind(spec.kind)
        if kind is FaultKind.DROP:
            return False
        if kind is FaultKind.PARTITION:
            self._partition_until = time.monotonic() + (spec.seconds or 0.0)
            # Tear the listener down so reconnects fail at connect()
            # (FileNotFound / ConnectionRefused), not as silent EOFs —
            # the accept loop rebinds once the window passes.
            listener, self._listener = self._listener, None
            if listener is not None:
                with contextlib.suppress(OSError):
                    listener.close()
            if self._family == socket.AF_UNIX:
                with contextlib.suppress(OSError):
                    os.unlink(self._sockaddr)
            return False
        if kind is FaultKind.DELAY:
            time.sleep(spec.seconds or 0.0)
        frame = encode_frame(payload)
        if kind is FaultKind.TRUNCATE:
            conn.sendall(frame[: max(1, len(frame) // 2)])
            return False
        if kind is FaultKind.GARBAGE:
            # Flip one payload byte; the header's CRC now lies, which
            # is exactly what the client-side framing must catch.
            body = bytearray(frame)
            body[_HEADER] ^= 0xFF
            frame = bytes(body)
        conn.sendall(frame)
        return True

    def _serve_connection(self, conn: socket.socket) -> None:
        reader = conn.makefile("rb")
        try:
            while not self._stopping.is_set():
                try:
                    payload = read_frame(reader)
                except (TransportError, OSError, socket.timeout):
                    return  # deadline hit or client garbled — hang up
                if payload is None:
                    return  # client finished
                try:
                    msg = json.loads(payload.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    msg = None
                    response: dict[str, Any] = {
                        "id": None,
                        "ok": False,
                        "error": "ServiceError",
                        "message": f"request is not valid JSON: {exc}",
                    }
                    stop = False
                if msg is not None:
                    response, stop = self.dispatcher.handle(msg)
                if _tm.enabled():
                    _tm.incr("serve.net.requests")
                try:
                    keep = self._send_response(conn, response)
                except OSError:
                    return  # client hung up mid-write
                if stop:
                    self.shutdown_requested.set()
                    return
                if not keep or self.dispatcher.poisoned:
                    return
        finally:
            with contextlib.suppress(OSError):
                reader.close()
            with contextlib.suppress(OSError):
                conn.close()


class _ConnectError(TransportError):
    """The connection could not even be made (tagged at connect())."""


#: When *every* attempt of a request dies before the connection exists,
#: the service is partitioned from the client's point of view.
_CONNECT_FAILURES = (_ConnectError,)


class ResilientClient:
    """Retrying, idempotent client for the socket daemon protocol.

    Each :meth:`request` assigns the message a fresh idempotency id
    (``rid``, unless the caller provided one) and attempts the
    round-trip up to ``1 + retries`` times over fresh connections,
    sleeping a seeded-jitter exponential backoff between attempts.  The
    rid is constant across attempts, so the server's acked-response
    cache de-duplicates a retry whose predecessor was applied but whose
    ack was lost — the ambiguous-drop case that makes naive retries
    double-apply mutations.

    With ``keepalive=True`` the client holds one persistent connection
    and reuses it across requests (the server side already serves many
    frames per connection), paying the dial cost once instead of per
    request — the difference matters for chatty protocols like the
    shard verbs, where one matching is hundreds of small round-trips.
    Any failure on the kept connection drops it; the *next* attempt
    redials, so the retry/idempotency semantics — and the
    ``PartitionedError`` vs ``TransportError`` typing on exhaustion —
    are unchanged.  Hedged probes always use fresh connections.

    A response with ``"ok": false`` raises the typed
    :mod:`repro.errors` class named in its ``error`` field (in-band
    failures are *not* retried — the daemon already gave a definitive
    answer).  Transport failures retry; exhaustion raises
    :class:`~repro.errors.PartitionedError` if no attempt ever got a
    connection, else :class:`~repro.errors.TransportError`.
    """

    def __init__(
        self,
        address: str,
        *,
        retries: int = 5,
        backoff: BackoffPolicy | None = None,
        seed: int = 0,
        connect_timeout: float = 2.0,
        deadline: float = 30.0,
        client_id: str | None = None,
        keepalive: bool = False,
    ) -> None:
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        if connect_timeout <= 0 or deadline <= 0:
            raise ServiceError(
                "connect_timeout and deadline must be positive"
            )
        self.address = address
        self._family, self._sockaddr = parse_address(address)
        self.retries = int(retries)
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.seed = seed
        self.connect_timeout = float(connect_timeout)
        self.deadline = float(deadline)
        self.client_id = (
            client_id
            if client_id is not None
            else f"c{os.getpid()}-{id(self) & 0xFFFF:04x}"
        )
        self._seq = 0
        self._seq_lock = threading.Lock()
        self.keepalive = bool(keepalive)
        self._conn: socket.socket | None = None
        self._conn_reader: Any = None
        self._conn_lock = threading.Lock()

    def close(self) -> None:
        """Drop the kept connection (no-op without one)."""
        with self._conn_lock:
            self._drop_conn()

    def _drop_conn(self) -> None:
        """Close the persistent connection (``_conn_lock`` held)."""
        reader, self._conn_reader = self._conn_reader, None
        conn, self._conn = self._conn, None
        if reader is not None:
            with contextlib.suppress(OSError):
                reader.close()
        if conn is not None:
            with contextlib.suppress(OSError):
                conn.close()

    def _next_rid(self) -> str:
        with self._seq_lock:
            self._seq += 1
            return f"{self.client_id}:{self._seq}"

    def _dial(self, deadline: float) -> socket.socket:
        """Open one connection (connect failures get the typed tag)."""
        conn = socket.socket(self._family, socket.SOCK_STREAM)
        conn.settimeout(self.connect_timeout)
        try:
            conn.connect(self._sockaddr)
        except OSError as exc:
            with contextlib.suppress(OSError):
                conn.close()
            raise _ConnectError(
                f"connect to {self.address} failed: {exc}"
            ) from exc
        conn.settimeout(deadline)
        return conn

    @staticmethod
    def _exchange(
        conn: socket.socket, reader: Any, msg: dict[str, Any]
    ) -> dict[str, Any]:
        """Send one frame and read one response on an open connection."""
        conn.sendall(encode_frame(json.dumps(msg).encode("utf-8")))
        payload = read_frame(reader)
        if payload is None:
            raise TransportError(
                "server closed the connection without a response"
            )
        try:
            response = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportError(
                f"response payload is not valid JSON: {exc}"
            ) from None
        if not isinstance(response, dict):
            raise TransportError(
                f"response must be a JSON object, got"
                f" {type(response).__name__}"
            )
        return response

    def _roundtrip_fresh(
        self, msg: dict[str, Any], deadline: float
    ) -> dict[str, Any]:
        """One connect → send → receive attempt over a throwaway
        connection (raises on any failure)."""
        conn = self._dial(deadline)
        try:
            reader = conn.makefile("rb")
            try:
                return self._exchange(conn, reader, msg)
            finally:
                with contextlib.suppress(OSError):
                    reader.close()
        finally:
            with contextlib.suppress(OSError):
                conn.close()

    def _roundtrip_once(
        self, msg: dict[str, Any], deadline: float
    ) -> dict[str, Any]:
        """One attempt; with keepalive, over the kept connection."""
        if not self.keepalive:
            return self._roundtrip_fresh(msg, deadline)
        with self._conn_lock:
            if self._conn is None:
                self._conn = self._dial(deadline)
                self._conn_reader = self._conn.makefile("rb")
                if _tm.enabled():
                    _tm.incr("serve.net.client_connects")
            else:
                self._conn.settimeout(deadline)
                if _tm.enabled():
                    _tm.incr("serve.net.client_conn_reuses")
            try:
                return self._exchange(self._conn, self._conn_reader, msg)
            except BaseException:
                # Whatever went wrong, the stream position is now
                # unknowable — drop the connection so the next attempt
                # starts from a clean dial.
                self._drop_conn()
                raise

    def request(
        self,
        msg: dict[str, Any],
        *,
        deadline: float | None = None,
        check: bool = True,
    ) -> dict[str, Any]:
        """Send one request, retrying transport failures (see class doc).

        With ``check=True`` (default) an in-band ``"ok": false``
        response raises its typed error; ``check=False`` returns the
        raw response dict either way.
        """
        msg = dict(msg)
        msg.setdefault("rid", self._next_rid())
        msg.setdefault("id", msg["rid"])
        per_try = self.deadline if deadline is None else float(deadline)
        schedule = self.backoff.schedule(f"{self.seed}:{msg['rid']}")
        failures: list[BaseException] = []
        for attempt in range(1 + self.retries):
            if attempt and _tm.enabled():
                _tm.incr("serve.net.client_retries")
            try:
                response = self._roundtrip_once(msg, per_try)
            except (TransportError, OSError) as exc:
                failures.append(exc)
                if attempt < self.retries:
                    time.sleep(schedule.next())
                continue
            if check and not response.get("ok", False):
                raise error_from_response(response)
            return response
        last = failures[-1]
        if all(isinstance(exc, _CONNECT_FAILURES) for exc in failures):
            raise PartitionedError(
                f"{self.address} unreachable after"
                f" {1 + self.retries} attempts: {last!r}"
            ) from last
        raise TransportError(
            f"request {msg['rid']} to {self.address} failed after"
            f" {1 + self.retries} attempts: {last!r}"
        ) from last

    def probe(
        self, *, hedge_delay: float = 0.1, deadline: float = 5.0
    ) -> dict[str, Any]:
        """Hedged health check: race a second probe after *hedge_delay*.

        A single slow daemon (GC pause, injected ``delay``) should not
        make the router think it is dead; a second connection is opened
        if the first has not answered in time, and whichever responds
        first wins.  Raises like :meth:`request` when both fail.
        """
        results: "queue.Queue[tuple[str, Any]]" = queue.Queue()

        def attempt() -> None:
            try:
                results.put(
                    ("ok", self._roundtrip_fresh({"op": "health"}, deadline))
                )
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                results.put(("err", exc))

        threading.Thread(target=attempt, daemon=True).start()
        hedged = False
        outcomes: list[tuple[str, Any]] = []
        budget = time.monotonic() + deadline
        while True:
            timeout = (
                hedge_delay
                if not hedged
                else max(0.01, budget - time.monotonic())
            )
            try:
                kind, value = results.get(timeout=timeout)
            except queue.Empty:
                if hedged:
                    raise TransportError(
                        f"health probe to {self.address} timed out after"
                        f" {deadline}s (hedged)"
                    ) from None
                hedged = True
                if _tm.enabled():
                    _tm.incr("serve.net.hedged_probes")
                threading.Thread(target=attempt, daemon=True).start()
                continue
            if kind == "ok":
                return value
            outcomes.append((kind, value))
            if not hedged:
                # The first probe failed fast; hedge immediately rather
                # than waiting out the delay against nothing.
                hedged = True
                threading.Thread(target=attempt, daemon=True).start()
                continue
            if len(outcomes) >= 2:
                last = outcomes[-1][1]
                if all(
                    isinstance(v, _CONNECT_FAILURES) for _, v in outcomes
                ):
                    raise PartitionedError(
                        f"{self.address} unreachable: both hedged probes"
                        f" failed: {last!r}"
                    ) from last
                raise TransportError(
                    f"health probe to {self.address} failed twice:"
                    f" {last!r}"
                ) from last

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResilientClient({self.address!r}, retries={self.retries},"
            f" client_id={self.client_id!r})"
        )


def error_from_response(response: dict[str, Any]) -> ReproError:
    """Rehydrate a daemon error response into its typed exception."""
    import repro.errors as _errors

    name = response.get("error")
    message = response.get("message", "")
    cls = getattr(_errors, str(name), None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return ServiceError(f"{name}: {message}")


def serve_listen(
    address: str,
    backend: Any = None,
    *,
    config: Any = None,
    graph_cache_cap: int = 32,
    max_streams: int = 8,
    journal_dir: str | None = None,
    recover: bool = False,
    checkpoint_every: int = 64,
    acked_cap: int = 1024,
    deadline: float | None = 30.0,
    ready: Callable[[str], None] | None = None,
) -> int:
    """Run a socket daemon at *address* until a ``shutdown`` op.

    The socket-front twin of
    :func:`~repro.serve.daemon.serve_forever`: same journal/recovery
    wiring, same dispatcher semantics, same exit codes
    (:data:`~repro.serve.daemon.JOURNAL_POISONED_EXIT` when the
    write-ahead log poisons).  *ready* is called with the bound
    address once the server is accepting — ``python -m repro serve
    --listen`` prints it so supervisors can wait for the line.
    """
    from repro.parallel.shm import reclaim_stale_segments
    from repro.serve.daemon import (
        JOURNAL_POISONED_EXIT,
        GraphCache,
        _StreamRegistry,
    )
    from repro.serve.server import MatchingServer

    reclaim_stale_segments()
    cache = GraphCache(graph_cache_cap)
    if recover:
        if journal_dir is None:
            raise ServiceError("--recover requires a journal directory")
        from repro.serve.recovery import recover_registry

        streams, _ = recover_registry(
            journal_dir,
            backend=backend,
            max_streams=max_streams,
            cache=cache,
            checkpoint_every=checkpoint_every,
        )
    elif journal_dir is not None:
        from repro.serve.journal import DurableLog

        streams = _StreamRegistry(
            max_streams,
            backend,
            journal=DurableLog(journal_dir, checkpoint_every=checkpoint_every),
        )
    else:
        streams = _StreamRegistry(max_streams, backend)

    with MatchingServer(backend, config=config) as server:
        dispatcher = Dispatcher(server, cache, streams, acked_cap=acked_cap)
        with SocketServer(
            dispatcher, address, deadline=deadline
        ) as front:
            if ready is not None:
                ready(front.address)
            while not front.shutdown_requested.wait(timeout=0.2):
                if dispatcher.poisoned:
                    break
    if streams.journal is not None:
        streams.journal.close()
    return JOURNAL_POISONED_EXIT if streams.poisoned else 0
