"""Multi-daemon router: consistent hashing, supervision, failover.

:class:`Router` runs *N* socket daemons (``python -m repro serve
--listen``), each with its own write-ahead journal directory, and
fronts them behind one :meth:`Router.request` call:

* **Admission** — per-tenant in-flight quotas
  (:class:`~repro.serve.quota.TenantQuotas`) are enforced *before* the
  hash ring: a flooding tenant is shed with a typed
  :class:`~repro.errors.QuotaExceededError` without costing a network
  round-trip or displacing other tenants.
* **Routing** — graph ids and stream sessions are placed on a
  consistent-hash ring (SHA-1, *vnodes* virtual nodes per daemon), so
  the same graph spec always lands on the same daemon — its spec→graph
  cache stays hot — and adding a daemon moves only ``1/N`` of the key
  space.  Stream handles are namespaced ``"<node>:<handle>"`` on the
  way out and resolved back on the way in, pinning a session to the
  daemon holding its state.
* **Failover** — a health loop probes every daemon (hedged probes via
  :meth:`~repro.serve.net.ResilientClient.probe`); a dead or wedged
  daemon is ejected from the ring, SIGKILLed if still running, and
  respawned with ``--recover``: the replacement replays its journal,
  recertifies every session's §3.3 certificate bitwise
  (:func:`~repro.serve.recovery.recover_registry` refuses divergence),
  and only then re-admits.  A request that catches a daemon mid-death
  retries after the revival under the *same* idempotency id, so an
  acked mutation is never re-applied and an acked request is never
  lost — the zero-acked-loss contract the failover chaos row checks.

The router owns its daemons: :meth:`stop` shuts them down (journal
directories survive — they *are* the durable state).  Use as a context
manager.
"""

from __future__ import annotations

import bisect
import contextlib
import hashlib
import json
import os
import subprocess
import sys
import threading
import time
from typing import Any

from repro import telemetry as _tm
from repro.errors import (
    PartitionedError,
    ServiceError,
    StreamError,
    TransportError,
)
from repro.serve.net import ResilientClient
from repro.serve.quota import TenantQuotas

__all__ = ["Router", "RouterNode"]

#: Ops whose ``handle`` field pins them to the daemon that owns the
#: session (vs. ops routed by graph key or sent anywhere healthy).
_HANDLE_OPS = frozenset(
    {
        "update",
        "stream_update",
        "rematch",
        "stream_rematch",
        "stream_close",
        "shard_sweep",
        "shard_choices",
        "shard_arm",
        "shard_scan",
        "shard_commit",
        "shard_finish",
        "shard_close",
    }
)


class RouterNode:
    """One supervised daemon: process, address, journal, health."""

    def __init__(
        self, index: int, address: str, journal_dir: str, client: ResilientClient
    ) -> None:
        self.index = index
        self.name = f"n{index}"
        self.address = address
        self.journal_dir = journal_dir
        self.client = client
        self.proc: subprocess.Popen[bytes] | None = None
        self.healthy = False
        self.restarts = 0
        self.lock = threading.RLock()

    @property
    def pid(self) -> int | None:
        return None if self.proc is None else self.proc.pid

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "healthy" if self.healthy else "ejected"
        return f"RouterNode({self.name}, {self.address}, {state})"


def _ring_hash(key: str) -> int:
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
    )


class Router:
    """Front *daemons* supervised socket daemons behind one request API.

    Parameters
    ----------
    daemons:
        Number of daemon processes to run.
    base_dir:
        Directory for sockets, journals (``<base>/j<i>``), and child
        logs.  Journals persist across router restarts — a restarted
        router recovers the daemons from them.
    backend:
        Backend spec forwarded to each daemon (``None`` = daemon
        default).
    quotas:
        Per-tenant admission quotas (default
        ``TenantQuotas(limit=8)``).
    vnodes:
        Virtual nodes per daemon on the hash ring.
    health_interval:
        Seconds between health sweeps (0 disables the background loop;
        failover then happens only on request failures).
    """

    def __init__(
        self,
        daemons: int,
        base_dir: str,
        *,
        backend: str | None = None,
        quotas: TenantQuotas | None = None,
        max_streams: int = 8,
        checkpoint_every: int = 64,
        vnodes: int = 32,
        health_interval: float = 0.5,
        request_retries: int = 5,
        spawn_timeout: float = 60.0,
        seed: int = 0,
    ) -> None:
        if daemons < 1:
            raise ServiceError(f"need at least 1 daemon, got {daemons}")
        if vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {vnodes}")
        self.base_dir = os.path.abspath(base_dir)
        self.backend = backend
        self.quotas = quotas if quotas is not None else TenantQuotas()
        self.max_streams = int(max_streams)
        self.checkpoint_every = int(checkpoint_every)
        self.health_interval = float(health_interval)
        self.spawn_timeout = float(spawn_timeout)
        self.seed = seed
        os.makedirs(self.base_dir, exist_ok=True)
        self.nodes: list[RouterNode] = []
        for i in range(int(daemons)):
            address = f"unix:{os.path.join(self.base_dir, f'n{i}.sock')}"
            journal_dir = os.path.join(self.base_dir, f"j{i}")
            os.makedirs(journal_dir, exist_ok=True)
            client = ResilientClient(
                address,
                retries=request_retries,
                seed=seed + i,
                client_id=f"rt{os.getpid()}-n{i}",
                # The router is exactly the chatty caller keep-alive is
                # for: shard rounds are hundreds of tiny requests per
                # node (probes still hedge over fresh dials).
                keepalive=True,
            )
            self.nodes.append(RouterNode(i, address, journal_dir, client))
        # The ring is fixed at construction: ejection is handled by
        # skipping unhealthy nodes at lookup time, so keys do not
        # migrate (and lose their session/cache affinity) during a
        # transient failure.
        ring: list[tuple[int, int]] = []
        for node in self.nodes:
            for v in range(vnodes):
                ring.append((_ring_hash(f"{node.name}#{v}"), node.index))
        ring.sort()
        self._ring = ring
        self._rid_seq = 0
        self._rid_lock = threading.Lock()
        self._stopping = threading.Event()
        self._health_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def _env(self) -> dict[str, str]:
        env = dict(os.environ)
        # Make sure children import the same repro tree as this process,
        # wherever the test runner found it.
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        parts = [src] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        return env

    def _spawn(self, node: RouterNode, *, recover: bool) -> None:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--listen",
            node.address,
            "--journal",
            node.journal_dir,
            "--max-streams",
            str(self.max_streams),
            "--checkpoint-every",
            str(self.checkpoint_every),
        ]
        if self.backend:
            argv += ["--backend", self.backend]
        if recover:
            argv.append("--recover")
        log_path = os.path.join(self.base_dir, f"{node.name}.log")
        with open(log_path, "ab") as log:
            node.proc = subprocess.Popen(
                argv,
                stdin=subprocess.DEVNULL,
                stdout=log,
                stderr=log,
                env=self._env(),
            )

    def _await_healthy(self, node: RouterNode, timeout: float) -> None:
        budget = time.monotonic() + timeout
        last: BaseException | None = None
        while time.monotonic() < budget:
            if not node.alive():
                code = None if node.proc is None else node.proc.poll()
                raise ServiceError(
                    f"daemon {node.name} exited with code {code} before"
                    f" becoming healthy (log:"
                    f" {os.path.join(self.base_dir, node.name + '.log')})"
                )
            try:
                node.client.probe(deadline=2.0)
                return
            except (TransportError, PartitionedError) as exc:
                last = exc
                time.sleep(0.05)
        raise ServiceError(
            f"daemon {node.name} not healthy after {timeout}s: {last!r}"
        )

    def start(self) -> "Router":
        """Spawn every daemon and wait until all probe healthy."""
        for node in self.nodes:
            # A journal left by a previous run (or a previous life of
            # this router) holds acked state — recover it, do not
            # overwrite it.
            recover = bool(os.listdir(node.journal_dir))
            self._spawn(node, recover=recover)
        for node in self.nodes:
            self._await_healthy(node, self.spawn_timeout)
            node.healthy = True
        if self.health_interval > 0:
            self._health_thread = threading.Thread(
                target=self._health_loop, name="router-health", daemon=True
            )
            self._health_thread.start()
        return self

    def stop(self) -> None:
        """Shut every daemon down (journals survive)."""
        self._stopping.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
            self._health_thread = None
        for node in self.nodes:
            with node.lock:
                if node.alive():
                    with contextlib.suppress(
                        TransportError, PartitionedError, ServiceError
                    ):
                        node.client.request({"op": "shutdown"}, check=False)
                    try:
                        node.proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        node.proc.kill()
                        node.proc.wait(timeout=5.0)
                node.healthy = False
                node.client.close()

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- supervision ---------------------------------------------------

    def _health_loop(self) -> None:
        while not self._stopping.wait(timeout=self.health_interval):
            for node in self.nodes:
                if self._stopping.is_set():
                    return
                try:
                    node.client.probe(deadline=2.0)
                    node.healthy = True
                except (TransportError, PartitionedError, ServiceError):
                    if self._stopping.is_set():
                        return
                    node.healthy = False
                    if _tm.enabled():
                        _tm.incr("serve.router.ejections")
                    with contextlib.suppress(ServiceError):
                        self.revive(node)

    def revive(self, node: RouterNode) -> None:
        """Respawn *node* through journal recovery and re-admit it.

        The replacement daemon replays its write-ahead journal and
        recertifies every recovered session before it starts serving
        (``--recover``); a daemon whose recovered state diverges from
        its acked responses refuses to start, and this method raises
        rather than re-admitting it.  Safe to call concurrently — the
        first caller does the work, later callers return once the node
        probes healthy again.
        """
        with node.lock:
            if node.alive():
                try:
                    node.client.probe(deadline=2.0)
                    node.healthy = True
                    return  # someone else already revived it
                except (TransportError, PartitionedError):
                    node.proc.kill()
            if node.proc is not None:
                with contextlib.suppress(subprocess.TimeoutExpired):
                    node.proc.wait(timeout=10.0)
            node.healthy = False
            # The kept connection (if any) points at the dead process.
            node.client.close()
            self._spawn(node, recover=True)
            self._await_healthy(node, self.spawn_timeout)
            node.healthy = True
            node.restarts += 1
            if _tm.enabled():
                _tm.incr("serve.router.revivals")

    # -- routing -------------------------------------------------------

    def _node_by_name(self, name: str) -> RouterNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise StreamError(
            f"stream handle names unknown daemon {name!r}; expected one"
            f" of {[n.name for n in self.nodes]}"
        )

    def _route(self, key: str) -> RouterNode:
        """The ring node owning *key*, skipping ejected daemons."""
        point = _ring_hash(key)
        start = bisect.bisect_right(self._ring, (point,))
        n = len(self._ring)
        fallback: RouterNode | None = None
        for step in range(n):
            node = self.nodes[self._ring[(start + step) % n][1]]
            if fallback is None:
                fallback = node
            if node.healthy:
                return node
        # Every daemon is ejected: pick the ring owner and let the
        # request path revive it — refusing outright would turn a
        # transient full outage into a permanent one.
        assert fallback is not None
        return fallback

    def _next_rid(self) -> str:
        with self._rid_lock:
            self._rid_seq += 1
            return f"rt{os.getpid()}:{self._rid_seq}"

    def _forward(
        self, node: RouterNode, msg: dict[str, Any], deadline: float | None
    ) -> dict[str, Any]:
        try:
            return node.client.request(msg, deadline=deadline, check=False)
        except (TransportError, PartitionedError):
            # The daemon died (or the wire did) with the request's fate
            # unknown.  Revive through recovery, then retry under the
            # SAME rid: if the mutation was applied-and-acked before
            # the crash, the journal replay rebuilt the rid cache and
            # the retry is answered without re-applying.
            node.healthy = False
            self.revive(node)
            return node.client.request(msg, deadline=deadline, check=False)

    def request(
        self,
        msg: dict[str, Any],
        *,
        tenant: str = "default",
        deadline: float | None = None,
        check: bool = True,
    ) -> dict[str, Any]:
        """Route one daemon-protocol request (see module docstring).

        Raises :class:`~repro.errors.QuotaExceededError` when *tenant*
        is at its in-flight cap.  With ``check=True`` an in-band
        ``"ok": false`` response raises its typed error.
        """
        from repro.serve.net import error_from_response

        msg = dict(msg)
        op = str(msg.get("op", "match"))
        self.quotas.acquire(tenant)
        try:
            msg.setdefault("rid", self._next_rid())
            msg.setdefault("id", msg["rid"])
            if op in _HANDLE_OPS:
                name, sep, local = str(msg.get("handle", "")).partition(":")
                if not sep:
                    raise StreamError(
                        f"router stream handles look like 'n0:s1', got"
                        f" {msg.get('handle')!r}"
                    )
                node = self._node_by_name(name)
                msg["handle"] = local
            elif op in ("match", "stream_open"):
                key = json.dumps(
                    msg.get("graph"), sort_keys=True, default=str
                )
                node = self._route(key)
            elif op == "shard_open":
                # Same graph, different shard index → different ring key,
                # so a K-shard plan spreads across daemons instead of
                # stacking K sessions on the spec's cache-affinity node.
                key = json.dumps(
                    {"graph": msg.get("graph"), "shard": msg.get("index")},
                    sort_keys=True,
                    default=str,
                )
                node = self._route(key)
            else:
                node = self._route(msg["rid"])
            response = self._forward(node, msg, deadline)
            if response.get("ok") and "handle" in response:
                response["handle"] = f"{node.name}:{response['handle']}"
            if check and not response.get("ok", False):
                raise error_from_response(response)
            return response
        finally:
            self.quotas.release(tenant)

    def health(self) -> dict[str, Any]:
        """Router-level health: per-node state plus quota accounting."""
        return {
            "nodes": [
                {
                    "name": node.name,
                    "address": node.address,
                    "healthy": node.healthy,
                    "alive": node.alive(),
                    "pid": node.pid,
                    "restarts": node.restarts,
                }
                for node in self.nodes
            ],
            "quotas": self.quotas.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        healthy = sum(node.healthy for node in self.nodes)
        return (
            f"Router({len(self.nodes)} daemons, {healthy} healthy,"
            f" base={self.base_dir!r})"
        )
