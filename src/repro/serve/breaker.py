"""Circuit breaker: fail fast while the execution substrate recovers.

A crashed shared-memory pool takes a moment to respawn, and a backend
drowning in deadline misses will miss the next deadline too.  Letting
requests pile onto a failing substrate turns one fault into a queue full
of slow failures; the breaker converts them into *immediate* typed
:class:`~repro.errors.CircuitOpenError` rejections instead.

States (the classic three):

``closed``
    Normal operation.  Consecutive failures are counted; reaching
    ``threshold`` trips the breaker.
``open``
    Every admission fails fast.  After ``cooldown`` seconds the next
    admission transitions to half-open.
``half_open``
    Up to ``probes`` requests are admitted as probes; everyone else
    still fails fast.  A probe success closes the breaker (the pool
    respawned, the path works); a probe failure re-opens it and restarts
    the cooldown.

Transitions are counted in ``serve.breaker.*`` and emitted as
``serve.breaker`` events, so an operator can reconstruct the open/close
history from the telemetry trace alone.  The clock is injectable for
deterministic tests.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Callable

from repro import telemetry as _tm
from repro.errors import BackendError, CircuitOpenError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probes.

    Parameters
    ----------
    threshold:
        Consecutive failures that trip the breaker open.
    cooldown:
        Seconds the breaker stays open before admitting probes.
    probes:
        Concurrent probe requests allowed while half-open.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 1.0,
        probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise BackendError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise BackendError(f"cooldown must be >= 0, got {cooldown}")
        if probes < 1:
            raise BackendError(f"probes must be >= 1, got {probes}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.probes = probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_out = 0

    # -- state ---------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """Current state (performs the timed open → half-open move)."""
        with self._lock:
            self._tick()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def _tick(self) -> None:
        """Open → half-open once the cooldown elapsed (lock held)."""
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probes_out = 0

    def _transition(self, state: BreakerState) -> None:
        self._state = state
        _tm.incr(f"serve.breaker.{state.value}")
        _tm.event(
            "serve.breaker", state=state.value, failures=self._failures
        )

    # -- admission -----------------------------------------------------

    def admit(self) -> bool:
        """Admit one request, returning ``True`` iff it is a probe.

        Raises :class:`~repro.errors.CircuitOpenError` while open (or
        while every half-open probe slot is taken).
        """
        with self._lock:
            self._tick()
            if self._state is BreakerState.CLOSED:
                return False
            if self._state is BreakerState.OPEN:
                retry_in = max(
                    0.0, self.cooldown - (self._clock() - self._opened_at)
                )
                raise CircuitOpenError(
                    f"circuit breaker open after {self._failures} "
                    f"consecutive failure(s); probes admitted in "
                    f"{retry_in:.3g}s"
                )
            if self._probes_out >= self.probes:
                raise CircuitOpenError(
                    "circuit breaker half-open and all probe slots are "
                    "taken; retry shortly"
                )
            self._probes_out += 1
            return True

    def release_probe(self) -> None:
        """Return an unused probe slot (the probe was shed pre-execution)."""
        with self._lock:
            self._probes_out = max(0, self._probes_out - 1)

    # -- outcome reporting ---------------------------------------------

    def record_success(self, probe: bool = False) -> None:
        """A request completed; a probe success closes the breaker."""
        with self._lock:
            self._failures = 0
            if probe:
                self._probes_out = max(0, self._probes_out - 1)
            if self._state is not BreakerState.CLOSED and (
                probe or self._state is BreakerState.HALF_OPEN
            ):
                self._transition(BreakerState.CLOSED)

    def record_failure(self, probe: bool = False) -> None:
        """A request failed on the substrate; may trip or re-open."""
        with self._lock:
            self._failures += 1
            if probe:
                self._probes_out = max(0, self._probes_out - 1)
            if self._state is BreakerState.HALF_OPEN or probe:
                self._opened_at = self._clock()
                self._transition(BreakerState.OPEN)
            elif (
                self._state is BreakerState.CLOSED
                and self._failures >= self.threshold
            ):
                self._opened_at = self._clock()
                self._transition(BreakerState.OPEN)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state.value}, "
            f"failures={self._failures}/{self.threshold})"
        )
