"""Soak harness: hammer a live :class:`MatchingServer` and audit it.

The soak drives the server the way the chaos matrix drives backends: a
swarm of client threads submits back-to-back at a configurable multiple
of serving capacity, optionally with a fault plan injected underneath,
and every single outcome is audited against the service contract:

* every request ends in a valid-for-its-rung matching **or** a typed
  ``ReproError`` — untyped exceptions are contract violations;
* no request is lost — outcomes are counted against submissions;
* accepted requests respect their deadline budgets (p99 bound with a
  scheduling-slack allowance);
* the run terminates — a hung request would hang the soak, which the
  caller bounds with a hard timeout (CI uses ``timeout(1)``).

``python -m repro serve --soak N`` runs this and exits non-zero on any
violation, so the soak doubles as the CI overload test.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import CircuitOpenError, OverloadedError, ReproError
from repro.graph.generators import union_of_permutations
from repro.parallel.backends import Backend
from repro.resilience.faults import FaultPlan, injected_faults
from repro.serve.server import (
    RUNG_GUARANTEES,
    MatchingServer,
    MatchRequest,
    ServerConfig,
)

__all__ = ["SoakReport", "run_soak"]

#: Scheduling slack added on top of the deadline when auditing latency:
#: the budget bounds server-side work, but the client thread also pays
#: queue-notify and GIL wakeup costs that are not the server's doing.
_LATENCY_SLACK = 0.25


@dataclass
class SoakReport:
    """Outcome audit of one soak run."""

    requests: int
    clients: int
    overload: float
    deadline: float
    elapsed: float
    #: Outcome class -> count.  Classes: ``ok:<rung>`` for successes and
    #: the typed error class name for failures.
    outcomes: Counter = field(default_factory=Counter)
    #: Accepted-request latencies (seconds), successes only.
    latencies: list[float] = field(default_factory=list)
    #: Contract violations; an empty list means the soak passed.
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def completed(self) -> int:
        return sum(
            count
            for outcome, count in self.outcomes.items()
            if outcome.startswith("ok:")
        )

    @property
    def shed(self) -> int:
        return sum(
            count
            for outcome, count in self.outcomes.items()
            if outcome in ("OverloadedError", "CircuitOpenError")
        )

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall clock."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile over completed requests (0 when none)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def render(self) -> str:
        lines = [
            f"soak: {self.requests} requests, {self.clients} clients "
            f"({self.overload:g}x capacity), deadline {self.deadline:g}s, "
            f"{self.elapsed:.2f}s wall",
            f"  completed {self.completed}  shed {self.shed} "
            f"({self.shed_rate:.0%})  throughput {self.throughput:.1f}/s  "
            f"p50 {self.percentile(0.50) * 1e3:.1f}ms  "
            f"p99 {self.percentile(0.99) * 1e3:.1f}ms",
        ]
        for outcome, count in sorted(self.outcomes.items()):
            lines.append(f"    {outcome:28s} {count}")
        if self.violations:
            lines.append("  VIOLATIONS:")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  contract held: typed-or-correct, none lost")
        return "\n".join(lines)


def run_soak(
    requests: int = 200,
    *,
    backend: Backend | str | None = None,
    n: int = 1500,
    degree: int = 4,
    iterations: int = 2,
    deadline: float = 1.0,
    overload: float = 2.0,
    seed: int = 0,
    config: ServerConfig | None = None,
    fault_plan: FaultPlan | None = None,
) -> SoakReport:
    """Soak a :class:`MatchingServer` and audit every outcome.

    Spawns ``round(n_workers * overload)`` client threads that submit
    back-to-back until *requests* submissions have been made, then
    drains the server.  With ``overload > 1`` the admission queue must
    shed — typed ``OverloadedError`` outcomes are expected and counted,
    not violations.  *fault_plan* (a
    :class:`~repro.resilience.FaultPlan`) is installed around the whole
    run to exercise the breaker and the degradation ladder.
    """
    cfg = config or ServerConfig(
        default_deadline=deadline,
        chunk_deadline=max(0.2, deadline / 2),
        max_retries=2,
        max_queue=16,
    )
    graph = union_of_permutations(n, degree, seed=seed)
    report_lock = threading.Lock()
    submitted = 0
    submit_lock = threading.Lock()

    server = MatchingServer(backend, config=cfg)
    report = SoakReport(
        requests=requests,
        clients=max(1, round(server.n_workers * overload)),
        overload=overload,
        deadline=deadline,
        elapsed=0.0,
    )

    def take_slot() -> int | None:
        nonlocal submitted
        with submit_lock:
            if submitted >= requests:
                return None
            submitted += 1
            return submitted

    def client(client_idx: int) -> None:
        while True:
            slot = take_slot()
            if slot is None:
                return
            request = MatchRequest(
                graph,
                iterations=iterations,
                seed=seed + slot,
                deadline=deadline,
            )
            started = time.monotonic()
            try:
                response = server.submit(
                    request, timeout=deadline * 4 + 10.0
                )
            except (OverloadedError, CircuitOpenError) as exc:
                with report_lock:
                    report.outcomes[type(exc).__name__] += 1
                time.sleep(0.005)  # shed → back off like a real client
                continue
            except ReproError as exc:
                with report_lock:
                    report.outcomes[type(exc).__name__] += 1
                continue
            except BaseException as exc:  # noqa: BLE001 - audited
                with report_lock:
                    report.outcomes[f"UNTYPED:{type(exc).__name__}"] += 1
                    report.violations.append(
                        f"request {slot} raised untyped "
                        f"{type(exc).__name__}: {exc}"
                    )
                continue
            latency = time.monotonic() - started
            problems: list[str] = []
            try:
                response.matching.validate(graph)
            except ReproError as exc:
                problems.append(
                    f"request {slot} returned an invalid matching at "
                    f"rung {response.rung}: {exc}"
                )
            if response.guarantee > RUNG_GUARANTEES[response.rung] + 1e-9:
                problems.append(
                    f"request {slot} overstated its guarantee: "
                    f"{response.guarantee:.3f} > rung floor "
                    f"{RUNG_GUARANTEES[response.rung]:.3f}"
                )
            with report_lock:
                report.outcomes[f"ok:{response.rung}"] += 1
                report.latencies.append(latency)
                report.violations.extend(problems)

    started = time.monotonic()
    try:
        with injected_faults(fault_plan) if fault_plan else _noop():
            threads = [
                threading.Thread(
                    target=client, args=(i,), name=f"soak-client-{i}"
                )
                for i in range(report.clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
    finally:
        server.drain(timeout=deadline * 4 + 10.0)
    report.elapsed = time.monotonic() - started

    # -- audit ---------------------------------------------------------
    total = sum(report.outcomes.values())
    if total != requests:
        report.violations.append(
            f"lost requests: {requests} submitted, {total} outcomes"
        )
    if fault_plan is None and report.completed == 0:
        report.violations.append(
            "zero requests completed on a healthy substrate"
        )
    if report.latencies:
        p99 = report.percentile(0.99)
        bound = deadline * 1.25 + _LATENCY_SLACK
        if p99 > bound:
            report.violations.append(
                f"p99 latency {p99:.3f}s exceeds budget bound "
                f"{bound:.3f}s (deadline {deadline:g}s)"
            )
    return report


class _noop:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None
