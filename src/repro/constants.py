"""Mathematical constants used by the paper's quality guarantees.

The two headline numbers:

* :data:`ONE_SIDED_GUARANTEE` — Theorem 1: ``OneSidedMatch`` returns a
  matching of expected size at least ``n (1 - 1/e) ≈ 0.632 n``.
* :data:`TWO_SIDED_GUARANTEE` — Conjecture 1: ``TwoSidedMatch`` returns a
  matching of size ``2 (1 - ρ) n ≈ 0.866 n`` asymptotically almost surely,
  where ``ρ`` is the unique positive root of ``x e^x = 1`` (the omega
  constant, ``W(1)`` for the Lambert W function).
"""

from __future__ import annotations

import math

__all__ = [
    "E",
    "ONE_SIDED_GUARANTEE",
    "RHO",
    "TWO_SIDED_GUARANTEE",
    "one_sided_guarantee_relaxed",
    "lambert_w0_of_one",
]


def lambert_w0_of_one() -> float:
    """Solve ``x e^x = 1`` for ``x > 0`` by Newton iteration.

    Returns the omega constant ``Ω = W(1) ≈ 0.5671432904``.  Computed from
    scratch (rather than via :func:`scipy.special.lambertw`) so the constant
    the library advertises is self-contained and testable against scipy.
    """
    x = 0.5
    for _ in range(64):
        ex = math.exp(x)
        f = x * ex - 1.0
        fp = ex * (1.0 + x)
        step = f / fp
        x -= step
        if abs(step) < 1e-16:
            break
    return x


#: Base of the natural logarithm.
E: float = math.e

#: Theorem 1 lower bound on |M| / n for OneSidedMatch:  1 - 1/e.
ONE_SIDED_GUARANTEE: float = 1.0 - 1.0 / math.e

#: Unique positive root of x e^x = 1 (Karonski & Pittel's ρ).
RHO: float = lambert_w0_of_one()

#: Conjecture 1 bound on |M| / n for TwoSidedMatch:  2 (1 - ρ).
TWO_SIDED_GUARANTEE: float = 2.0 * (1.0 - RHO)


def one_sided_guarantee_relaxed(alpha: float) -> float:
    """Theorem 1 under relaxed scaling (Section 3.3 of the paper).

    If the scaling is stopped early so that every column sum of the scaled
    matrix is at least ``alpha`` (instead of exactly 1), the expected
    matching size is still at least ``n (1 - 1/e**alpha)``.

    >>> round(one_sided_guarantee_relaxed(0.92), 4)
    0.6015
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha!r}")
    return 1.0 - math.exp(-alpha)
