"""Lightweight observability for the matching library.

Telemetry is **off by default** and free when off: every instrumentation
point in the library is either behind :func:`enabled` or a single no-op
call, and none sit inside per-vertex loops (engines aggregate locally and
record per phase).  The measured disabled-mode overhead on the serial
``KarpSipserMT`` hot path is below the noise floor — see
``docs/observability.md`` for the metric catalogue and the measurement.

Usage::

    from repro import telemetry
    from repro.telemetry import JsonLinesSink

    telemetry.enable(JsonLinesSink("trace.jsonl"))
    two_sided_match(graph, 5, seed=0)
    print(telemetry.render_report(telemetry.get_registry().snapshot()))
    telemetry.disable()

or scoped (state restored on exit, sinks flushed)::

    with telemetry.session(JsonLinesSink("trace.jsonl")) as registry:
        one_sided_match(graph, 5)

The instrumentation vocabulary:

* :func:`incr` / :func:`set_gauge` / :func:`observe` — update a named
  :class:`Counter` / :class:`Gauge` / :class:`Timer` in the active
  registry (no-ops while disabled).
* :func:`span` — a timed, nestable ``with`` block; the duration lands in
  the ``span.<path>`` timer and a ``span`` event goes to the sinks.  While
  disabled it returns a shared do-nothing object (no allocation).
* :func:`event` — emit a raw event dict to the sinks (e.g. one per
  Sinkhorn–Knopp sweep).
"""

from __future__ import annotations

import contextlib

from repro.telemetry.metrics import Counter, Gauge, Timer
from repro.telemetry.registry import Registry, Span
from repro.telemetry.sinks import (
    JsonLinesSink,
    NullSink,
    Sink,
    TableSink,
    render_report,
)

__all__ = [
    # primitives
    "Counter",
    "Gauge",
    "Timer",
    "Registry",
    "Span",
    # sinks
    "Sink",
    "NullSink",
    "JsonLinesSink",
    "TableSink",
    "render_report",
    # runtime
    "enable",
    "disable",
    "enabled",
    "reset",
    "session",
    "get_registry",
    "incr",
    "set_gauge",
    "observe",
    "event",
    "span",
]


class _State:
    """Process-wide telemetry switchboard (one per interpreter)."""

    __slots__ = ("enabled", "registry", "sinks")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = Registry()
        self.sinks: list[Sink] = []

    def emit(self, evt: dict) -> None:
        for sink in self.sinks:
            sink.emit(evt)


_state = _State()


class _NullSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


def enable(*sinks: Sink, registry: Registry | None = None) -> Registry:
    """Turn telemetry on, replacing the active sinks with *sinks*.

    Metrics accumulate into *registry* (a fresh one is kept if none was
    ever supplied; pass one explicitly to isolate runs).  Returns the
    active registry.
    """
    if registry is not None:
        _state.registry = registry
    _state.sinks = list(sinks)
    _state.enabled = True
    return _state.registry


def disable() -> None:
    """Turn telemetry off (sinks are flushed, state kept for inspection)."""
    _state.enabled = False
    for sink in _state.sinks:
        sink.flush()


def enabled() -> bool:
    """True iff instrumentation points are currently recording."""
    return _state.enabled


def reset() -> None:
    """Disable, close sinks, and start over with an empty registry."""
    _state.enabled = False
    for sink in _state.sinks:
        sink.close()
    _state.sinks = []
    _state.registry = Registry()


def get_registry() -> Registry:
    """The registry instrumentation currently records into."""
    return _state.registry


@contextlib.contextmanager
def session(*sinks: Sink, registry: Registry | None = None):
    """Enable telemetry for a ``with`` block, restoring prior state after.

    Yields the registry in effect inside the block.
    """
    prev = (_state.enabled, _state.registry, _state.sinks)
    try:
        yield enable(*sinks, registry=registry or Registry())
    finally:
        for sink in _state.sinks:
            sink.flush()
        _state.enabled, _state.registry, _state.sinks = prev


def incr(name: str, amount: int = 1) -> None:
    """Increment counter *name* (no-op while disabled)."""
    if _state.enabled:
        _state.registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge *name* (no-op while disabled)."""
    if _state.enabled:
        _state.registry.gauge(name).set(value)


def observe(name: str, seconds: float) -> None:
    """Record a duration into timer *name* (no-op while disabled)."""
    if _state.enabled:
        _state.registry.timer(name).observe(seconds)


def event(name: str, **payload) -> None:
    """Emit a raw event to the active sinks (no-op while disabled)."""
    if _state.enabled:
        _state.emit({"event": name, **payload})


def span(name: str, **attrs):
    """A timed nestable block; a shared no-op object while disabled."""
    if not _state.enabled:
        return _NULL_SPAN
    return Span(_state, name, attrs)
