"""Metric primitives: :class:`Counter`, :class:`Gauge`, :class:`Timer`.

Each metric owns its lock, so hot paths updating different metrics never
contend with each other.  All three are cheap enough to update from inner
library code, but the instrumentation policy (see ``docs/observability.md``)
is to keep updates *out* of per-vertex loops: engines aggregate locally and
record once per phase, which is what keeps the disabled-mode overhead
unmeasurable.
"""

from __future__ import annotations

import math
import threading
import time

__all__ = ["Counter", "Gauge", "Timer"]


class Counter:
    """A monotonically increasing event count."""

    kind = "counter"
    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self._value}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A point-in-time value (last write wins; min/max are tracked)."""

    kind = "gauge"
    __slots__ = ("name", "_lock", "_value", "_min", "_max", "_writes")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = math.nan
        self._min = math.inf
        self._max = -math.inf
        self._writes = 0

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._value = value
            self._writes += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def value(self) -> float:
        return self._value

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "value": self._value,
            "min": self._min,
            "max": self._max,
            "writes": self._writes,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, value={self._value})"


class Timer:
    """Accumulated wall-time observations (count/total/min/max/mean)."""

    kind = "timer"
    __slots__ = ("name", "_lock", "_count", "_total", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        with self._lock:
            self._count += 1
            self._total += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds

    def time(self) -> "_TimerContext":
        """Context manager observing the wall time of its block."""
        return _TimerContext(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else math.nan

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self._count,
            "total": self._total,
            "min": self._min if self._count else math.nan,
            "max": self._max if self._count else math.nan,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer({self.name!r}, count={self._count}, total={self._total:.6f})"


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.observe(time.perf_counter() - self._start)
