"""Thread-safe metric registry and nestable spans.

The :class:`Registry` is a name → metric map with get-or-create semantics;
a name is permanently bound to the kind it was first created as (asking for
``counter("x")`` after ``timer("x")`` raises :class:`TelemetryError` — a
silent kind change would corrupt every report downstream).

A :class:`Span` measures the wall time of a ``with`` block.  Spans nest
through a per-thread stack: a span opened inside another gets the path
``outer/inner``, its duration lands in the timer ``span.outer/inner``, and
the completed span is emitted to the active sinks as an event.  Each thread
has its own stack, so concurrently open spans on different threads do not
interleave their paths.
"""

from __future__ import annotations

import threading
import time

from repro.errors import TelemetryError
from repro.telemetry.metrics import Counter, Gauge, Timer

__all__ = ["Registry", "Span"]

_METRIC_TYPES = {Counter.kind: Counter, Gauge.kind: Gauge, Timer.kind: Timer}


class Registry:
    """A thread-safe collection of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Timer] = {}

    def _get_or_create(self, name: str, cls: type):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TelemetryError(
                    f"metric {name!r} is a {metric.kind}, not a "
                    f"{cls.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get_or_create(name, Timer)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        """The metric registered under *name*, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """A plain-dict copy of every metric (JSON-serialisable)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in metrics}

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({len(self)} metrics)"


_span_stack = threading.local()


def _current_stack() -> list[str]:
    stack = getattr(_span_stack, "stack", None)
    if stack is None:
        stack = []
        _span_stack.stack = stack
    return stack


class Span:
    """A timed, attributed, nestable section of work.

    Created by :func:`repro.telemetry.span`; not instantiated directly.
    On exit the span's duration is observed into ``span.<path>`` of the
    owning registry and a ``span`` event (path, seconds, attributes) is
    emitted to the sinks.
    """

    __slots__ = ("name", "path", "attrs", "_state", "_start")

    def __init__(self, state, name: str, attrs: dict) -> None:
        self.name = name
        self.path = name  # finalised on __enter__
        self.attrs = attrs
        self._state = state
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach or update attributes reported when the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = _current_stack()
        self.path = "/".join(stack + [self.name]) if stack else self.name
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        seconds = time.perf_counter() - self._start
        stack = _current_stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        state = self._state
        if state.enabled:
            state.registry.timer(f"span.{self.path}").observe(seconds)
            state.emit(
                {
                    "event": "span",
                    "name": self.path,
                    "seconds": seconds,
                    **self.attrs,
                }
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.path!r})"
