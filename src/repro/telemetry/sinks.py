"""Event sinks: where telemetry events go when enabled.

Every sink consumes plain-dict events (``{"event": ..., "name": ...,
payload}``).  Three implementations:

* :class:`JsonLinesSink` — one JSON object per line, append-mode; the
  machine-readable trace (``JsonLinesSink.read`` round-trips it).
* :class:`TableSink` — aligned human-readable lines on a stream (stdout by
  default); the "watch it run" sink.
* :class:`NullSink` — swallows everything; useful to measure the cost of
  the instrumentation itself.

Sinks must tolerate concurrent ``emit`` calls (the backends emit from
worker threads); both stateful sinks serialise writes with a lock.
"""

from __future__ import annotations

import abc
import io
import json
import sys
import threading
from pathlib import Path

__all__ = ["Sink", "NullSink", "JsonLinesSink", "TableSink", "render_report"]


def _jsonable(value):
    """Coerce numpy scalars and other stragglers into JSON-safe values."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


class Sink(abc.ABC):
    """Receives telemetry events."""

    @abc.abstractmethod
    def emit(self, event: dict) -> None:
        """Consume one event dict."""

    def flush(self) -> None:  # noqa: B027 - optional hook
        """Push buffered output to its destination (no-op by default)."""

    def close(self) -> None:  # noqa: B027 - optional hook
        """Release resources (no-op by default)."""


class NullSink(Sink):
    """Discards every event."""

    def emit(self, event: dict) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullSink()"


class JsonLinesSink(Sink):
    """Appends one JSON object per event to *path* (or a file-like)."""

    def __init__(self, path) -> None:
        self._lock = threading.Lock()
        self._closed = False
        if hasattr(path, "write"):
            self._file = path
            self._owns = False
            self.path = None
        else:
            self.path = Path(path)
            self._file = open(self.path, "a", encoding="utf-8")
            self._owns = True

    def emit(self, event: dict) -> None:
        line = json.dumps(event, default=_jsonable)
        with self._lock:
            if not self._closed:
                self._file.write(line + "\n")

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._file.flush()
            if self._owns:
                self._file.close()

    @staticmethod
    def read(path) -> list[dict]:
        """Parse a JSON-lines trace back into a list of event dicts."""
        events = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonLinesSink({str(self.path)!r})"


class TableSink(Sink):
    """Writes each event as an aligned line on *stream* (default stdout)."""

    def __init__(self, stream=None) -> None:
        self._lock = threading.Lock()
        self._stream = stream

    def _out(self):
        return self._stream if self._stream is not None else sys.stdout

    def emit(self, event: dict) -> None:
        event = dict(event)
        kind = event.pop("event", "event")
        name = event.pop("name", None)
        if name is None:
            # Raw telemetry.event(...) payloads carry the name in "event".
            name, kind = kind, "event"
        if "seconds" in event:
            timing = f"{event.pop('seconds') * 1e3:10.3f} ms"
        else:
            timing = " " * 13
        attrs = "  ".join(f"{k}={_fmt(v)}" for k, v in event.items())
        with self._lock:
            self._out().write(f"[{kind:<5}] {name:<44} {timing}  {attrs}\n")

    def flush(self) -> None:
        with self._lock:
            self._out().flush()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TableSink()"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_report(snapshot: dict[str, dict]) -> str:
    """Format a :meth:`Registry.snapshot` as a sorted metrics table.

    Used by ``python -m repro telemetry`` for the end-of-run report.
    """
    out = io.StringIO()
    if not snapshot:
        return "(no metrics recorded)\n"
    width = max(len(name) for name in snapshot) + 2
    out.write(f"{'metric':<{width}} {'kind':<8} value\n")
    out.write("-" * (width + 40) + "\n")
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["kind"]
        if kind == "timer":
            value = (
                f"count={entry['count']}  total={entry['total']:.6f}s  "
                f"mean={entry['mean']:.6f}s  max={entry['max']:.6f}s"
            )
        elif kind == "gauge":
            value = f"{entry['value']:.6g}  (min={entry['min']:.6g}, max={entry['max']:.6g})"
        else:
            value = str(entry["value"])
        out.write(f"{name:<{width}} {kind:<8} {value}\n")
    return out.getvalue()
