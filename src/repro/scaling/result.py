"""Scaling result container."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._typing import FloatArray

__all__ = ["ScalingResult"]


@dataclass(frozen=True)
class ScalingResult:
    """Output of a scaling algorithm.

    Attributes
    ----------
    dr, dc:
        Row and column scaling vectors (the diagonals of ``D_R``/``D_C``);
        the scaled entry is ``s_ij = dr[i] * a_ij * dc[j]``.
    error:
        The paper's convergence measure: maximum absolute deviation of the
        scaled *column* sums from one (row sums are exactly one after each
        Sinkhorn–Knopp row sweep, up to round-off).
    iterations:
        Iterations actually performed.
    converged:
        Whether *error* reached the requested tolerance (always ``False``
        when a fixed iteration count was requested without a tolerance).
    history:
        Per-iteration error trace when the caller asked for one.
    rung:
        Which rung of the degradation ladder produced this result:
        ``"full"`` (the requested computation, convergence attainable),
        ``"capped"`` (the matrix provably lacks total support, so the
        iteration budget was capped and only the Section 3.3 relaxed
        guarantee applies), or ``"uniform"`` (pattern-uniform
        ``dr = dc = 1`` fallback — no guarantee).  See
        ``docs/resilience.md``.
    warm_started:
        Whether the sweep started from caller-provided ``(dr, dc)``
        factors (the ``initial=`` kwarg) instead of all-ones.  Warm
        starts from a near-fixed-point converge in a handful of sweeps —
        the streaming layer's rescaling path (``docs/streaming.md``).
    """

    dr: FloatArray
    dc: FloatArray
    error: float
    iterations: int
    converged: bool
    history: tuple[float, ...] = field(default=())
    rung: str = "full"
    warm_started: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "dr", np.ascontiguousarray(self.dr, dtype=np.float64)
        )
        object.__setattr__(
            self, "dc", np.ascontiguousarray(self.dc, dtype=np.float64)
        )

    @property
    def shape(self) -> tuple[int, int]:
        return (int(self.dr.shape[0]), int(self.dc.shape[0]))

    @property
    def degraded(self) -> bool:
        """True iff a fallback rung (not ``"full"``) produced this result."""
        return self.rung != "full"
