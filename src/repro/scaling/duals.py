"""Dual-like column prices derived from doubly-stochastic scaling factors.

Sinkhorn–Knopp scaling of the (0,1) pattern computes factors ``(dr, dc)``
with ``s_ij = dr[i]·dc[j]`` approximately doubly stochastic.  The log
factors are (up to normalisation) the entropic-regularisation duals of
the assignment LP relaxation: a column that many rows compete for ends up
with a *small* ``dc[j]`` (its raw sum was large and had to be squashed),
which corresponds to a *high* dual price.  :func:`dual_prices` turns that
observation into a warm-start price vector for the auction engine —
contested columns start expensive, so early bidding rounds skip the price
discovery the heuristic scaling already performed.

This is a heuristic accelerator only: the auction's exactness argument
(see ``matching/exact/auction.py``) is independent of the initial prices
as long as they are finite and non-negative, which this function
guarantees.  Prices are normalised into ``[0, span]`` with
``span = spread · eps`` so the abandonment cap stays proportional to the
ε-schedule.
"""

from __future__ import annotations

import numpy as np

from repro._typing import FloatArray
from repro.errors import ShapeError
from repro.scaling.result import ScalingResult

__all__ = ["dual_prices"]

#: Default width of the initial price range, in units of ``eps``.
DEFAULT_SPREAD: float = 4.0


def dual_prices(
    scaling: ScalingResult | FloatArray,
    *,
    eps: float = 1.0,
    spread: float = DEFAULT_SPREAD,
) -> FloatArray:
    """Column prices in ``[0, spread·eps]`` from scaling factors.

    *scaling* is a :class:`~repro.scaling.result.ScalingResult` (its
    ``dc`` vector is used) or a raw positive column-factor array.  The
    mapping is ``p_j ∝ -log dc[j]`` shifted and scaled into the target
    range — monotone in contestedness, invariant to the factors' overall
    normalisation.  Columns with non-positive factors (empty columns keep
    factor 1 under the library's convention) land wherever ``log`` puts
    them after clipping to a tiny floor; they are never matched anyway.
    """
    dc = scaling.dc if isinstance(scaling, ScalingResult) else np.asarray(
        scaling, dtype=np.float64
    )
    if dc.ndim != 1:
        raise ShapeError(f"column factors must be 1-D, got shape {dc.shape}")
    if eps <= 0 or spread < 0:
        raise ShapeError(
            f"eps must be positive and spread non-negative, got {eps}/{spread}"
        )
    if dc.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)
    u = -np.log(np.maximum(dc, np.finfo(np.float64).tiny))
    u = u - u.min()
    top = u.max()
    if top > 0:
        u *= (spread * eps) / top
    return u
