"""Sinkhorn–Knopp convergence-rate analysis (Section 3.3's citation).

The paper notes (citing Knight's SIMAX 2008 analysis [22]) that
Sinkhorn–Knopp converges **linearly with rate σ₂²** — the square of the
second-largest singular value of the limiting doubly stochastic matrix.
This module makes that claim checkable per instance:

* :func:`observed_rate` — fit the linear rate from the error history
  (the geometric mean of successive error ratios over the tail);
* :func:`theoretical_rate` — compute σ₂² of the scaled matrix with a
  sparse SVD;
* :func:`convergence_study` — both numbers side by side, the comparison
  the experiment ``python -m repro.experiments convergence`` tabulates.

Fast-mixing families (expanders, e.g. random fully indecomposable
matrices) have small σ₂ and need the paper's "a few iterations"; nearly
decoupled families (e.g. two blocks joined by one edge) have σ₂ → 1 and
converge slowly — exactly the instances where the paper's Table 1 needs
10 iterations instead of 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScalingError
from repro.graph.csr import BipartiteGraph
from repro.scaling.result import ScalingResult
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp

__all__ = [
    "observed_rate",
    "theoretical_rate",
    "ConvergenceStudy",
    "convergence_study",
]


def observed_rate(history: tuple[float, ...] | list[float]) -> float:
    """Linear convergence rate fitted from an error history.

    Returns the geometric mean of ``err[k+1] / err[k]`` over the tail of
    the history (the first iterations are transient).  ``nan`` when the
    history is too short or already at round-off.
    """
    errs = np.asarray(history, dtype=np.float64)
    errs = errs[errs > 1e-14]
    if errs.shape[0] < 4:
        return float("nan")
    tail = errs[errs.shape[0] // 2 :]
    if tail.shape[0] < 2:
        return float("nan")
    ratios = tail[1:] / tail[:-1]
    ratios = ratios[(ratios > 0) & np.isfinite(ratios)]
    if ratios.size == 0:
        return float("nan")
    return float(np.exp(np.log(ratios).mean()))


def theoretical_rate(
    graph: BipartiteGraph, scaling: ScalingResult
) -> float:
    """Knight's predicted rate: σ₂² of the scaled matrix ``D_R A D_C``.

    Computed with a sparse partial SVD; requires a square matrix with at
    least 3 rows (``svds`` needs k < min(shape)).
    """
    if not graph.is_square:
        raise ScalingError("theoretical_rate needs a square matrix")
    if graph.nrows < 3:
        raise ScalingError("matrix too small for a partial SVD")
    from scipy.sparse import csr_matrix
    from scipy.sparse.linalg import svds

    values = graph.scaled_values(scaling.dr, scaling.dc)
    mat = csr_matrix(
        (values, graph.col_ind.copy(), graph.row_ptr.copy()),
        shape=graph.shape,
    )
    # Largest two singular values; σ1 = 1 for doubly stochastic.
    try:
        sigma = svds(mat, k=2, return_singular_vectors=False)
    except Exception as exc:  # pragma: no cover - ARPACK non-convergence
        raise ScalingError(f"partial SVD failed: {exc}") from exc
    sigma = np.sort(sigma)[::-1]
    return float(sigma[1] ** 2)


@dataclass(frozen=True)
class ConvergenceStudy:
    """Observed vs predicted Sinkhorn–Knopp convergence rate."""

    observed: float
    predicted: float
    iterations: int
    final_error: float

    @property
    def agreement(self) -> float:
        """|observed − predicted| (nan when either is nan)."""
        return abs(self.observed - self.predicted)


def convergence_study(
    graph: BipartiteGraph,
    *,
    iterations: int = 60,
) -> ConvergenceStudy:
    """Measure and predict the convergence rate on *graph*.

    The scaling is run for *iterations* sweeps with history tracking;
    σ₂² is evaluated at the final (near-stochastic) scaling — Knight's
    theorem is about the limit matrix, so the later the snapshot the
    better the prediction.
    """
    # A convergence study needs the full requested sweep budget even on
    # support-deficient patterns (the observed rate IS the deliverable),
    # so the degradation ladder must not cap it.
    scaling = scale_sinkhorn_knopp(
        graph, iterations, track_history=True, degradation=False
    )
    return ConvergenceStudy(
        observed=observed_rate(scaling.history),
        predicted=theoretical_rate(graph, scaling),
        iterations=scaling.iterations,
        final_error=scaling.error,
    )
