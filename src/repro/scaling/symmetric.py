"""Symmetry-preserving scaling (Knight–Ruiz–Uçar [23]).

For a symmetric pattern one usually wants ``dr = dc`` so the scaled matrix
stays symmetric.  The alternate Sinkhorn–Knopp sweeps break symmetry at
every half-step; the Ruiz update preserves it exactly because rows and
columns are scaled simultaneously with the same factors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScalingError
from repro.graph.csr import BipartiteGraph
from repro.parallel.backends import Backend, get_backend
from repro.parallel.reduction import segment_sums
from repro.scaling.result import ScalingResult

__all__ = ["scale_symmetric", "is_pattern_symmetric"]


def is_pattern_symmetric(graph: BipartiteGraph) -> bool:
    """True iff the pattern equals its transpose."""
    if not graph.is_square:
        return False
    return np.array_equal(graph.row_ptr, graph.col_ptr) and np.array_equal(
        graph.col_ind, graph.row_ind
    )


def scale_symmetric(
    graph: BipartiteGraph,
    iterations: int | None = None,
    *,
    tolerance: float | None = None,
    max_iterations: int = 1000,
    backend: Backend | str | None = None,
    track_history: bool = False,
) -> ScalingResult:
    """Symmetric doubly stochastic scaling: returns ``dr == dc``.

    Update per iteration: ``d[i] /= sqrt(rowsum_i)`` where ``rowsum_i`` is
    the scaled row sum ``d[i] * sum_j d[j]`` over the row pattern.  The
    reported error is the maximum row-sum deviation (identical to the
    column deviation by symmetry).

    Raises :class:`ScalingError` if the pattern is not symmetric.
    """
    if not is_pattern_symmetric(graph):
        raise ScalingError("scale_symmetric requires a symmetric pattern")
    if iterations is not None and tolerance is not None:
        raise ScalingError("pass either iterations or tolerance, not both")
    if iterations is None and tolerance is None:
        iterations = 10

    get_backend(backend)  # validated for interface parity; sweeps are numpy
    d = np.ones(graph.nrows, dtype=np.float64)
    history: list[float] = []
    nonempty = graph.row_degrees() > 0

    def current_error() -> float:
        sums = d * segment_sums(d[graph.col_ind], graph.row_ptr)
        if not nonempty.any():
            return 0.0
        return float(np.abs(sums[nonempty] - 1.0).max())

    limit = iterations if iterations is not None else max_iterations
    done = 0
    converged = False
    error = current_error()
    for _ in range(limit):
        if tolerance is not None and error <= tolerance:
            converged = True
            break
        sums = d * segment_sums(d[graph.col_ind], graph.row_ptr)
        fac = np.ones_like(sums)
        np.divide(1.0, np.sqrt(sums), out=fac, where=sums > 0)
        d *= fac
        done += 1
        error = current_error()
        if track_history:
            history.append(error)
    if tolerance is not None and error <= tolerance:
        converged = True

    return ScalingResult(
        dr=d,
        dc=d.copy(),
        error=error,
        iterations=done,
        converged=converged,
        history=tuple(history),
    )
