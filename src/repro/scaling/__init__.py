"""Doubly stochastic scaling of (0,1) matrices.

The heuristics' edge-selection probabilities come from scaling the
adjacency matrix ``A`` to a doubly stochastic ``S = D_R A D_C``
(Section 2.2 of the paper).  The primary method is the parallel
Sinkhorn–Knopp of Algorithm 1 (:func:`scale_sinkhorn_knopp`); the reviewed
alternatives (Ruiz equilibration, its symmetry-preserving variant) are also
implemented.
"""

from repro.scaling.result import ScalingResult
from repro.scaling.duals import dual_prices
from repro.scaling.sinkhorn_knopp import scale_sinkhorn_knopp
from repro.scaling.ruiz import scale_ruiz
from repro.scaling.distributed import scale_sinkhorn_knopp_distributed
from repro.scaling.diagnostics import estimate_matchable_edges, matchability_report
from repro.scaling.adaptive import alpha_for_quality, scale_for_quality, QualityScaling
from repro.scaling.convergence_rate import convergence_study, observed_rate, theoretical_rate
from repro.scaling.symmetric import scale_symmetric
from repro.scaling.convergence import (
    column_sum_error,
    row_sum_error,
    scaled_column_sums,
    scaled_row_sums,
)

__all__ = [
    "ScalingResult",
    "dual_prices",
    "scale_sinkhorn_knopp",
    "scale_ruiz",
    "scale_sinkhorn_knopp_distributed",
    "estimate_matchable_edges",
    "matchability_report",
    "alpha_for_quality",
    "scale_for_quality",
    "QualityScaling",
    "convergence_study",
    "observed_rate",
    "theoretical_rate",
    "scale_symmetric",
    "column_sum_error",
    "row_sum_error",
    "scaled_column_sums",
    "scaled_row_sums",
]
