"""Convergence measures for scaling algorithms.

The paper's stopping criterion (Section 2.2): after each iteration the row
sums are one by construction, so convergence is judged by how far the
*column* sums stray from one.  Empty rows/columns are excluded — a matrix
with an empty row or column has no support at all, and the relaxed theory
of Section 3.3 only speaks about the sums over nonempty lines.
"""

from __future__ import annotations

import numpy as np

from repro._typing import FloatArray
from repro.graph.csr import BipartiteGraph
from repro.parallel.backends import Backend
from repro.parallel.reduction import segment_sums, segment_sums_parallel

__all__ = [
    "scaled_column_sums",
    "scaled_row_sums",
    "column_sum_error",
    "row_sum_error",
]


def scaled_column_sums(
    graph: BipartiteGraph,
    dr: FloatArray,
    dc: FloatArray,
    backend: Backend | None = None,
) -> FloatArray:
    """Column sums of ``D_R A D_C``: ``dc[j] * sum_{i in A*j} dr[i]``."""
    gathered = np.asarray(dr, dtype=np.float64)[graph.row_ind]
    if backend is None:
        sums = segment_sums(gathered, graph.col_ptr)
    else:
        sums = segment_sums_parallel(gathered, graph.col_ptr, backend)
    return sums * np.asarray(dc, dtype=np.float64)


def scaled_row_sums(
    graph: BipartiteGraph,
    dr: FloatArray,
    dc: FloatArray,
    backend: Backend | None = None,
) -> FloatArray:
    """Row sums of ``D_R A D_C``: ``dr[i] * sum_{j in Ai*} dc[j]``."""
    gathered = np.asarray(dc, dtype=np.float64)[graph.col_ind]
    if backend is None:
        sums = segment_sums(gathered, graph.row_ptr)
    else:
        sums = segment_sums_parallel(gathered, graph.row_ptr, backend)
    return sums * np.asarray(dr, dtype=np.float64)


def column_sum_error(
    graph: BipartiteGraph,
    dr: FloatArray,
    dc: FloatArray,
    backend: Backend | None = None,
) -> float:
    """``max_j |colsum_j - 1|`` over nonempty columns (the paper's
    "scaling error" in Tables 1 and 3)."""
    sums = scaled_column_sums(graph, dr, dc, backend)
    nonempty = graph.col_degrees() > 0
    if not nonempty.any():
        return 0.0
    return float(np.abs(sums[nonempty] - 1.0).max())


def row_sum_error(
    graph: BipartiteGraph,
    dr: FloatArray,
    dc: FloatArray,
    backend: Backend | None = None,
) -> float:
    """``max_i |rowsum_i - 1|`` over nonempty rows."""
    sums = scaled_row_sums(graph, dr, dc, backend)
    nonempty = graph.row_degrees() > 0
    if not nonempty.any():
        return 0.0
    return float(np.abs(sums[nonempty] - 1.0).max())
