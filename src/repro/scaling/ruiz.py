"""Ruiz equilibration (the reviewed alternative scaling of Section 2.2).

Ruiz's algorithm [29] scales rows and columns *simultaneously* each
iteration instead of alternately:

.. code-block:: text

    dr[i] *= 1 / sqrt(rowsum_i)    (both computed from the current
    dc[j] *= 1 / sqrt(colsum_j)     scaled matrix, then applied together)

For unsymmetric matrices it converges more slowly than Sinkhorn–Knopp
(Knight–Ruiz–Uçar [23]), which the library's tests demonstrate; it is
provided because the paper explicitly notes "other doubly stochastic
scaling methods can also be used" and to support the symmetric variant.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScalingError
from repro.graph.csr import BipartiteGraph
from repro.parallel.backends import Backend, get_backend
from repro.scaling.convergence import (
    column_sum_error,
    scaled_column_sums,
    scaled_row_sums,
)
from repro.scaling.result import ScalingResult

__all__ = ["scale_ruiz"]


def scale_ruiz(
    graph: BipartiteGraph,
    iterations: int | None = None,
    *,
    tolerance: float | None = None,
    max_iterations: int = 1000,
    backend: Backend | str | None = None,
    track_history: bool = False,
) -> ScalingResult:
    """Scale toward doubly stochastic form with Ruiz equilibration.

    Parameters mirror :func:`repro.scaling.scale_sinkhorn_knopp`; the
    reported error is the same column-sum deviation so the two methods'
    convergence behaviour is directly comparable.
    """
    if iterations is not None and tolerance is not None:
        raise ScalingError("pass either iterations or tolerance, not both")
    if iterations is None and tolerance is None:
        iterations = 10
    if iterations is not None and iterations < 0:
        raise ScalingError(f"iterations must be >= 0, got {iterations}")

    be = get_backend(backend)
    dr = np.ones(graph.nrows, dtype=np.float64)
    dc = np.ones(graph.ncols, dtype=np.float64)
    history: list[float] = []

    limit = iterations if iterations is not None else max_iterations
    done = 0
    converged = False
    error = column_sum_error(graph, dr, dc)
    for _ in range(limit):
        if tolerance is not None and error <= tolerance:
            converged = True
            break
        rsums = scaled_row_sums(graph, dr, dc, be)
        csums = scaled_column_sums(graph, dr, dc, be)
        r_fac = np.ones_like(rsums)
        np.divide(1.0, np.sqrt(rsums), out=r_fac, where=rsums > 0)
        c_fac = np.ones_like(csums)
        np.divide(1.0, np.sqrt(csums), out=c_fac, where=csums > 0)
        dr *= r_fac
        dc *= c_fac
        done += 1
        error = column_sum_error(graph, dr, dc)
        if track_history:
            history.append(error)
    if tolerance is not None and error <= tolerance:
        converged = True

    return ScalingResult(
        dr=dr,
        dc=dc,
        error=error,
        iterations=done,
        converged=converged,
        history=tuple(history),
    )
