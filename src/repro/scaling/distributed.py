"""Distributed-memory Sinkhorn–Knopp (Amestoy–Duff–Ruiz–Uçar style).

Section 2.2 of the paper cites the VECPAR 2008 distributed-memory
parallelisation of matrix scaling.  This module reproduces its structure
on the in-process message-passing fabric
(:mod:`repro.parallel.mpi_sim`):

* the matrix is distributed by contiguous **row blocks** (1-D);
* each rank holds the CSR slice of its rows and a replicated copy of the
  column scaling vector ``dc``;
* per iteration: every rank computes *partial* column sums from its
  block, an ``allreduce(sum)`` produces the global column sums (and
  thus the new ``dc`` everywhere), then each rank updates its own block
  of ``dr`` locally — one collective per sweep, exactly the
  communication pattern of the reference;
* the convergence error is an ``allreduce(max)`` over local errors.

The result is bit-for-bit comparable with the shared-memory
:func:`repro.scaling.scale_sinkhorn_knopp` (floating-point sums are
reassociated across ranks, so agreement is to round-off, not bitwise —
the tests check ``rtol=1e-12``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScalingError
from repro.graph.csr import BipartiteGraph
from repro.parallel.mpi_sim import SimComm, run_ranks
from repro.parallel.partition import static_partition
from repro.parallel.reduction import segment_sums
from repro.scaling.result import ScalingResult

__all__ = ["scale_sinkhorn_knopp_distributed"]


def _rank_program(comm: SimComm, block):
    """One rank's Sinkhorn–Knopp over its row block."""
    (row_ptr, col_ind, ncols, iterations, col_degrees) = block
    n_local = row_ptr.shape[0] - 1
    dr_local = np.ones(n_local, dtype=np.float64)
    dc = np.ones(ncols, dtype=np.float64)
    nonempty_cols = col_degrees > 0

    def partial_col_sums() -> np.ndarray:
        """This block's contribution to the global column sums of D_R A."""
        out = np.zeros(ncols, dtype=np.float64)
        if col_ind.size:
            contributions = np.repeat(dr_local, np.diff(row_ptr))
            np.add.at(out, col_ind, contributions)
        return out

    error = 0.0
    for _ in range(iterations):
        # Column sweep: global sums via one allreduce.
        csum = yield from comm.allreduce(partial_col_sums())
        np.divide(1.0, csum, out=dc, where=csum > 0.0)
        dc[csum <= 0.0] = 1.0
        # Row sweep: purely local.
        rsum = segment_sums(dc[col_ind], row_ptr)
        np.divide(1.0, rsum, out=dr_local, where=rsum > 0.0)
        dr_local[rsum <= 0.0] = 1.0
    # Final error: |dc * global colsum - 1| over nonempty columns.
    csum = yield from comm.allreduce(partial_col_sums())
    scaled = csum * dc
    local_err = (
        float(np.abs(scaled[nonempty_cols] - 1.0).max())
        if nonempty_cols.any()
        else 0.0
    )
    error = yield from comm.allreduce(local_err, op="max")
    dr_blocks = yield from comm.allgather(dr_local)
    return dr_blocks, dc, error


def scale_sinkhorn_knopp_distributed(
    graph: BipartiteGraph,
    iterations: int = 10,
    *,
    n_ranks: int = 4,
) -> ScalingResult:
    """Run Sinkhorn–Knopp across *n_ranks* simulated distributed ranks.

    Parameters
    ----------
    graph:
        The (0,1) matrix.
    iterations:
        Fixed sweep count (the paper's working regime).
    n_ranks:
        Number of simulated distributed-memory ranks (row blocks).
    """
    if iterations < 0:
        raise ScalingError(f"iterations must be >= 0, got {iterations}")
    if n_ranks < 1:
        raise ScalingError(f"n_ranks must be >= 1, got {n_ranks}")

    col_degrees = graph.col_degrees()
    blocks = []
    for lo, hi in static_partition(graph.nrows, n_ranks):
        row_ptr = graph.row_ptr[lo : hi + 1] - graph.row_ptr[lo]
        col_ind = graph.col_ind[graph.row_ptr[lo] : graph.row_ptr[hi]]
        blocks.append((row_ptr, col_ind, graph.ncols, iterations, col_degrees))
    if not blocks:  # zero-row matrix
        return ScalingResult(
            dr=np.ones(0), dc=np.ones(graph.ncols), error=0.0,
            iterations=iterations, converged=False,
        )

    results = run_ranks(_rank_program, blocks)
    dr_blocks, dc, error = results[0]
    dr = (
        np.concatenate(dr_blocks)
        if dr_blocks
        else np.ones(0, dtype=np.float64)
    )
    return ScalingResult(
        dr=dr, dc=dc, error=float(error), iterations=iterations,
        converged=False,
    )
